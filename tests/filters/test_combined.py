"""Unit tests for the two-filters-per-run baseline (Bloom + SuRF)."""

import random

import pytest

from repro.errors import FilterBuildError
from repro.filters.base import deserialize_filter, serialize_envelope
from repro.filters.combined import CombinedPointRangeFilter


@pytest.fixture
def keys(rng):
    return rng.sample(range(1 << 32), 2000)


class TestCombinedFilter:
    def test_no_false_negatives(self, keys):
        filt = CombinedPointRangeFilter(key_bits=32, bits_per_key=22)
        filt.populate(keys)
        for key in keys[:300]:
            assert filt.may_contain(key)
            assert filt.may_contain_range(key, key + 5)

    def test_memory_is_sum_of_parts(self, keys):
        filt = CombinedPointRangeFilter(key_bits=32, bits_per_key=24)
        filt.populate(keys)
        bloom, surf = filt._require()  # noqa: SLF001
        assert filt.size_in_bits() == bloom.size_in_bits() + surf.size_in_bits()

    def test_point_queries_served_by_bloom(self, keys, rng):
        filt = CombinedPointRangeFilter(
            key_bits=32, bits_per_key=22, point_fraction=0.5
        )
        filt.populate(keys)
        key_set = set(keys)
        fp = sum(
            filt.may_contain(k)
            for k in (rng.randrange(1 << 32) for _ in range(3000))
            if k not in key_set
        )
        assert fp / 3000 < 0.05  # 11 bits/key Bloom quality

    def test_point_budget_split_costs_fpr_vs_rosetta(self, keys, rng):
        """The §1 tradeoff: splitting the budget degrades point FPR
        relative to Rosetta, which serves points from the full budget's
        bottom level."""
        from repro.filters.rosetta_adapter import RosettaFilter

        combined = CombinedPointRangeFilter(key_bits=32, bits_per_key=14)
        combined.populate(keys)
        rosetta = RosettaFilter(key_bits=32, bits_per_key=14, max_range=1,
                                strategy="single")
        rosetta.populate(keys)
        key_set = set(keys)
        probes = [
            k for k in (rng.randrange(1 << 32) for _ in range(6000))
            if k not in key_set
        ]
        combined_fp = sum(combined.may_contain(k) for k in probes)
        rosetta_fp = sum(rosetta.may_contain(k) for k in probes)
        assert rosetta_fp <= combined_fp

    def test_single_point_range_routes_to_bloom(self, keys):
        filt = CombinedPointRangeFilter(key_bits=32)
        filt.populate(keys)
        assert filt.may_contain_range(keys[0], keys[0])

    def test_invalid_fraction(self):
        with pytest.raises(FilterBuildError):
            CombinedPointRangeFilter(point_fraction=0.0)
        with pytest.raises(FilterBuildError):
            CombinedPointRangeFilter(point_fraction=1.0)

    def test_double_populate(self, keys):
        filt = CombinedPointRangeFilter(key_bits=32)
        filt.populate(keys)
        with pytest.raises(FilterBuildError):
            filt.populate(keys)

    def test_unpopulated_rejected(self):
        with pytest.raises(FilterBuildError):
            CombinedPointRangeFilter().may_contain(1)

    def test_envelope_roundtrip(self, keys):
        filt = CombinedPointRangeFilter(key_bits=32, bits_per_key=20)
        filt.populate(keys)
        restored = deserialize_filter(serialize_envelope(filt))
        assert isinstance(restored, CombinedPointRangeFilter)
        for key in keys[:100]:
            assert restored.may_contain(key)
            assert restored.may_contain_range(key, key + 3)

    def test_probe_counters(self, keys):
        filt = CombinedPointRangeFilter(key_bits=32)
        filt.populate(keys)
        filt.reset_probe_count()
        filt.may_contain(keys[0])
        filt.may_contain_range(keys[0], keys[0] + 10)
        assert filt.probe_count() >= 2
