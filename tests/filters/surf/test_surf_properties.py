"""Property-based tests for SuRF against an exact oracle.

SuRF's contract is one-sided like Rosetta's: it may only err by answering
"maybe" for an empty range / absent key.  These properties check the
no-false-negative direction exhaustively over random byte-string corpora,
for every variant and encoding split.
"""

import bisect

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.filters.surf.surf import SuRF

_corpora = st.sets(st.binary(min_size=1, max_size=5), min_size=1, max_size=40)


@settings(max_examples=120, deadline=None)
@given(
    corpus=_corpora,
    variant=st.sampled_from(["base", "hash", "real"]),
    probe=st.binary(min_size=1, max_size=6),
)
def test_point_no_false_negatives(corpus, variant, probe):
    keys = sorted(corpus)
    surf = SuRF.build(keys, variant=variant, suffix_bits=8)
    if probe in corpus:
        assert surf.may_contain(probe)


@settings(max_examples=120, deadline=None)
@given(
    corpus=_corpora,
    variant=st.sampled_from(["base", "hash", "real"]),
    low=st.binary(min_size=1, max_size=5),
    high=st.binary(min_size=1, max_size=5),
)
def test_range_no_false_negatives(corpus, variant, low, high):
    if low > high:
        low, high = high, low
    keys = sorted(corpus)
    surf = SuRF.build(keys, variant=variant, suffix_bits=8)
    idx = bisect.bisect_left(keys, low)
    truly_nonempty = idx < len(keys) and keys[idx] <= high
    if truly_nonempty:
        assert surf.may_contain_range(low, high)


@settings(max_examples=80, deadline=None)
@given(corpus=_corpora, dense_levels=st.integers(min_value=0, max_value=8))
def test_encoding_split_equivalence(corpus, dense_levels):
    """Any dense/sparse split answers exactly like the all-sparse encoding."""
    keys = sorted(corpus)
    reference = SuRF.build(keys, variant="base", dense_levels=0)
    candidate = SuRF.build(keys, variant="base", dense_levels=dense_levels)
    probes = keys + [k + b"\x00" for k in keys] + [b"\x00", b"\xff\xff"]
    for probe in probes:
        assert candidate.may_contain(probe) == reference.may_contain(probe)
    for low in probes[:10]:
        assert candidate.may_contain_range(
            low, low + b"\xff"
        ) == reference.may_contain_range(low, low + b"\xff")


@settings(max_examples=80, deadline=None)
@given(corpus=_corpora, variant=st.sampled_from(["base", "hash", "real"]))
def test_serialization_equivalence(corpus, variant):
    keys = sorted(corpus)
    surf = SuRF.build(keys, variant=variant, suffix_bits=6)
    restored = SuRF.from_bytes(surf.to_bytes())
    for probe in keys + [b"\x01", b"zz"]:
        assert restored.may_contain(probe) == surf.may_contain(probe)


@settings(max_examples=60, deadline=None)
@given(corpus=_corpora)
def test_memory_grows_with_suffix_bits(corpus):
    keys = sorted(corpus)
    base = SuRF.build(keys, variant="base")
    real = SuRF.build(keys, variant="real", suffix_bits=8)
    assert real.size_in_bits() == base.size_in_bits() + 8 * len(keys)
