"""Unit tests for SuRF's suffix storage and real-suffix extraction."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.filters.surf.surf import _SuffixStore, _real_suffix


class TestSuffixStore:
    def test_put_get_roundtrip(self):
        store = _SuffixStore(suffix_bits=8, num_slots=10)
        for slot in range(10):
            store.put(slot, slot * 17 % 256)
        for slot in range(10):
            assert store.get(slot) == slot * 17 % 256

    def test_non_byte_aligned_widths(self):
        store = _SuffixStore(suffix_bits=5, num_slots=20)
        values = [v % 32 for v in range(20)]
        for slot, value in enumerate(values):
            store.put(slot, value)
        assert [store.get(slot) for slot in range(20)] == values

    def test_zero_width(self):
        store = _SuffixStore(suffix_bits=0, num_slots=5)
        assert store.get(3) == 0
        assert store.size_in_bits() == 0

    def test_size_accounting(self):
        assert _SuffixStore(suffix_bits=7, num_slots=100).size_in_bits() == 700

    def test_serialization_roundtrip(self):
        store = _SuffixStore(suffix_bits=11, num_slots=9)
        for slot in range(9):
            store.put(slot, (slot * 331) % (1 << 11))
        restored = _SuffixStore.from_bytes(store.to_bytes())
        assert restored.suffix_bits == 11
        assert restored.num_slots == 9
        for slot in range(9):
            assert restored.get(slot) == store.get(slot)


class TestRealSuffix:
    def test_whole_byte_window(self):
        assert _real_suffix(b"abcdef", depth=2, suffix_bits=8) == ord("c")

    def test_two_byte_window(self):
        expected = (ord("c") << 8) | ord("d")
        assert _real_suffix(b"abcdef", depth=2, suffix_bits=16) == expected

    def test_sub_byte_window_takes_msbs(self):
        # 'c' = 0x63 = 0b01100011; top 4 bits = 0b0110 = 6.
        assert _real_suffix(b"abc", depth=2, suffix_bits=4) == 6

    def test_window_past_end_zero_padded(self):
        assert _real_suffix(b"ab", depth=2, suffix_bits=8) == 0
        assert _real_suffix(b"ab", depth=1, suffix_bits=16) == ord("b") << 8

    def test_zero_bits(self):
        assert _real_suffix(b"abc", depth=0, suffix_bits=0) == 0

    @settings(max_examples=100)
    @given(
        key=st.binary(min_size=1, max_size=10),
        depth=st.integers(min_value=0, max_value=12),
        suffix_bits=st.integers(min_value=1, max_value=32),
    )
    def test_property_value_in_range(self, key, depth, suffix_bits):
        value = _real_suffix(key, depth, suffix_bits)
        assert 0 <= value < (1 << suffix_bits)

    @settings(max_examples=100)
    @given(
        key=st.binary(min_size=2, max_size=10),
        suffix_bits=st.integers(min_value=1, max_value=16),
    )
    def test_property_distinguishes_next_byte(self, key, suffix_bits):
        """Keys differing in the byte right after `depth` must yield
        different suffixes whenever the window covers >= 8 bits... or at
        least whenever their leading window bits differ."""
        depth = 0
        other = bytes([key[0] ^ 0x80]) + key[1:]
        a = _real_suffix(key, depth, suffix_bits)
        b = _real_suffix(other, depth, suffix_bits)
        assert a != b  # the flipped MSB is always inside the window
