"""Unit tests for the rank/select bit vector."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.filters.surf.bitvector import RankBitVector


class TestRank:
    def test_rank_prefix_counts(self):
        vector = RankBitVector.from_bits([1, 0, 1, 1, 0, 0, 1])
        expected = [0, 1, 1, 2, 3, 3, 3, 4]
        assert [vector.rank1(i) for i in range(8)] == expected

    def test_rank_zero(self):
        vector = RankBitVector.from_bits([1, 1])
        assert vector.rank1(0) == 0

    def test_rank_beyond_length_clamps(self):
        vector = RankBitVector.from_bits([1, 0, 1])
        assert vector.rank1(100) == 2

    def test_rank_across_word_boundaries(self):
        flags = [i % 3 == 0 for i in range(200)]
        vector = RankBitVector.from_bits(flags)
        running = 0
        for i, flag in enumerate(flags):
            assert vector.rank1(i) == running
            running += flag

    def test_empty_vector(self):
        vector = RankBitVector.from_bits([])
        assert len(vector) == 0
        assert vector.num_ones == 0
        assert vector.rank1(5) == 0


class TestSelect:
    def test_select_positions(self):
        vector = RankBitVector.from_bits([0, 1, 0, 0, 1, 1])
        assert vector.select1(1) == 1
        assert vector.select1(2) == 4
        assert vector.select1(3) == 5

    def test_select_out_of_range(self):
        vector = RankBitVector.from_bits([1, 0])
        with pytest.raises(IndexError):
            vector.select1(0)
        with pytest.raises(IndexError):
            vector.select1(2)

    def test_select_inverts_rank(self):
        rng = random.Random(4)
        flags = [rng.random() < 0.3 for _ in range(500)]
        vector = RankBitVector.from_bits(flags)
        for nth in range(1, vector.num_ones + 1):
            position = vector.select1(nth)
            assert vector.get(position)
            assert vector.rank1(position) == nth - 1

    def test_select_across_many_words(self):
        flags = [True] * 300
        vector = RankBitVector.from_bits(flags)
        assert vector.select1(300) == 299
        assert vector.select1(65) == 64


class TestAccounting:
    def test_size_charges_payload_only(self):
        vector = RankBitVector.from_bits([1] * 128)
        assert vector.size_in_bits() == 128
        assert vector.overhead_bits() > 0

    def test_serialization_roundtrip(self):
        rng = random.Random(5)
        flags = [rng.random() < 0.5 for _ in range(333)]
        vector = RankBitVector.from_bits(flags)
        restored = RankBitVector.from_bytes(vector.to_bytes())
        assert len(restored) == len(vector)
        assert restored.num_ones == vector.num_ones
        for i in range(333):
            assert restored.get(i) == vector.get(i)


@settings(max_examples=100)
@given(st.lists(st.booleans(), max_size=400))
def test_property_rank_select_consistency(flags):
    vector = RankBitVector.from_bits(flags)
    assert vector.num_ones == sum(flags)
    assert vector.rank1(len(flags)) == sum(flags)
    for nth in range(1, min(vector.num_ones, 20) + 1):
        position = vector.select1(nth)
        assert flags[position]
        assert sum(flags[:position]) == nth - 1
