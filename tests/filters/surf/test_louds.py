"""Unit tests for the LOUDS-Dense and LOUDS-Sparse encodings."""

import pytest

from repro.filters.surf.builder import TERM_SYMBOL, build_culled_trie
from repro.filters.surf.louds_dense import LoudsDense
from repro.filters.surf.louds_sparse import LoudsSparse


@pytest.fixture
def small_trie():
    # Keys chosen to produce branching, chains, and a terminator.
    keys = sorted([b"ab", b"abc", b"axe", b"bad", b"bat", b"cow"])
    return build_culled_trie(keys)


class TestLoudsDense:
    def test_node_count(self, small_trie):
        dense = LoudsDense.from_levels(small_trie.levels)
        assert dense.num_nodes == small_trie.num_nodes

    def test_labels_and_children(self, small_trie):
        dense = LoudsDense.from_levels(small_trie.levels)
        root = 0
        for symbol in (ord("a") + 1, ord("b") + 1, ord("c") + 1):
            assert dense.has_label(root, symbol)
        assert not dense.has_label(root, ord("z") + 1)
        # 'c' edge culls to a leaf ("cow" unique at first byte).
        assert not dense.has_child(root, ord("c") + 1)
        assert dense.has_child(root, ord("a") + 1)

    def test_smallest_label_ge(self, small_trie):
        dense = LoudsDense.from_levels(small_trie.levels)
        assert dense.smallest_label_ge(0, 0) == ord("a") + 1
        assert dense.smallest_label_ge(0, ord("b") + 1) == ord("b") + 1
        assert dense.smallest_label_ge(0, ord("d") + 1) is None

    def test_child_ids_are_level_order(self, small_trie):
        dense = LoudsDense.from_levels(small_trie.levels)
        # Children of root: 'a' node and 'b' node, ids 1 and 2.
        assert dense.child_id(0, ord("a") + 1) == 1
        assert dense.child_id(0, ord("b") + 1) == 2

    def test_leaf_value_indexes_are_dense(self, small_trie):
        dense = LoudsDense.from_levels(small_trie.levels)
        # Collect value indexes of all leaf edges; they must be 0..L-1.
        indexes = []
        for node in range(dense.num_nodes):
            for symbol in range(257):
                if dense.has_label(node, symbol) and not dense.has_child(
                    node, symbol
                ):
                    indexes.append(dense.leaf_value_index(node, symbol))
        assert sorted(indexes) == list(range(dense.num_leaves))

    def test_memory_accounting(self, small_trie):
        dense = LoudsDense.from_levels(small_trie.levels)
        assert dense.size_in_bits() == dense.num_nodes * 513

    def test_serialization_roundtrip(self, small_trie):
        dense = LoudsDense.from_levels(small_trie.levels)
        restored = LoudsDense.from_bytes(dense.to_bytes())
        assert restored.num_nodes == dense.num_nodes
        assert restored.num_leaves == dense.num_leaves
        for node in range(dense.num_nodes):
            for symbol in (0, 50, 98, 99, 120, 256):
                assert restored.has_label(node, symbol) == dense.has_label(
                    node, symbol
                )

    def test_empty_region(self):
        dense = LoudsDense.from_levels([])
        assert dense.num_nodes == 0
        assert dense.size_in_bits() == 0


class TestLoudsSparse:
    def test_edge_and_node_counts(self, small_trie):
        sparse = LoudsSparse.from_levels(small_trie.levels)
        assert sparse.num_edges == small_trie.num_edges
        assert sparse.num_nodes == small_trie.num_nodes
        assert sparse.num_root_nodes == 1  # the trie root

    def test_node_edge_ranges_partition(self, small_trie):
        sparse = LoudsSparse.from_levels(small_trie.levels)
        cursor = 0
        for node in range(sparse.num_nodes):
            start, end = sparse.node_edge_range(node)
            assert start == cursor
            assert end > start
            cursor = end
        assert cursor == sparse.num_edges

    def test_smallest_label_ge(self, small_trie):
        sparse = LoudsSparse.from_levels(small_trie.levels)
        found = sparse.smallest_label_ge(0, 0)
        assert found is not None
        symbol, position = found
        assert symbol == ord("a") + 1
        assert position == 0
        assert sparse.smallest_label_ge(0, ord("z")) is None

    def test_label_position_exact(self, small_trie):
        sparse = LoudsSparse.from_levels(small_trie.levels)
        assert sparse.label_position(0, ord("b") + 1) is not None
        assert sparse.label_position(0, ord("q") + 1) is None

    def test_child_node_mapping(self, small_trie):
        sparse = LoudsSparse.from_levels(small_trie.levels)
        # Follow root's 'a' edge; the child must be node 1 (level order).
        _, position = sparse.smallest_label_ge(0, ord("a") + 1)
        assert sparse.edge_has_child(position)
        assert sparse.child_node(position) == 1

    def test_leaf_value_indexes_are_dense(self, small_trie):
        sparse = LoudsSparse.from_levels(small_trie.levels)
        indexes = [
            sparse.leaf_value_index(position)
            for position in range(sparse.num_edges)
            if not sparse.edge_has_child(position)
        ]
        assert sorted(indexes) == list(range(sparse.num_leaves))

    def test_memory_accounting(self, small_trie):
        sparse = LoudsSparse.from_levels(small_trie.levels)
        assert sparse.size_in_bits() == sparse.num_edges * 10

    def test_serialization_roundtrip(self, small_trie):
        sparse = LoudsSparse.from_levels(small_trie.levels)
        restored = LoudsSparse.from_bytes(sparse.to_bytes())
        assert restored.num_edges == sparse.num_edges
        assert restored.num_root_nodes == sparse.num_root_nodes
        for node in range(sparse.num_nodes):
            assert restored.node_edge_range(node) == sparse.node_edge_range(node)


class TestHybridSplit:
    def test_dense_top_sparse_bottom_counts(self, small_trie):
        cutoff = 1
        dense = LoudsDense.from_levels(small_trie.levels[:cutoff])
        sparse = LoudsSparse.from_levels(small_trie.levels[cutoff:])
        assert dense.num_nodes == small_trie.levels[0].num_nodes
        assert sparse.num_root_nodes == small_trie.levels[1].num_nodes
        assert dense.num_nodes + sparse.num_nodes == small_trie.num_nodes

    def test_dense_children_continue_into_sparse(self, small_trie):
        cutoff = 1
        dense = LoudsDense.from_levels(small_trie.levels[:cutoff])
        # Root's 'a' child is the first level-1 node => global id 1 =>
        # sparse-local id 0 after subtracting dense.num_nodes (1).
        child = dense.child_id(0, ord("a") + 1)
        assert child == 1
        assert child - dense.num_nodes == 0
