"""Unit tests for SuRF: point/range queries, variants, budget fitting."""

import random

import pytest

from repro.errors import FilterBuildError, FilterQueryError
from repro.filters.surf.surf import SuRF, SurfFilter

WORDS = sorted(
    {
        b"apple", b"application", b"apply", b"banana", b"band", b"bandana",
        b"bandit", b"can", b"canal", b"candle", b"sigmod", b"sigma",
        b"zebra",
    }
)


class TestPointLookups:
    def test_no_false_negatives(self):
        surf = SuRF.build(WORDS, variant="real", suffix_bits=8)
        assert all(surf.may_contain(w) for w in WORDS)

    def test_no_false_negatives_all_variants(self):
        for variant in ("base", "hash", "real"):
            surf = SuRF.build(WORDS, variant=variant, suffix_bits=8)
            assert all(surf.may_contain(w) for w in WORDS), variant

    def test_base_variant_shares_prefix_false_positive(self):
        surf = SuRF.build([b"sigmod"], variant="base")
        # Single key culls to 1 byte: anything starting with 's' collides.
        assert surf.may_contain(b"sunday")

    def test_suffix_bits_reject_prefix_collision(self):
        surf = SuRF.build([b"sigmod", b"apple"], variant="real", suffix_bits=8)
        # "sunday" shares culled prefix 's' with "sigmod" but differs in the
        # next byte ('u' vs 'i'), which the real suffix catches.
        assert not surf.may_contain(b"sunday")

    def test_hash_suffix_rejects_collision(self):
        surf = SuRF.build([b"sigmod", b"apple"], variant="hash", suffix_bits=16)
        assert not surf.may_contain(b"sunday")

    def test_definitely_absent_divergent_key(self):
        surf = SuRF.build(WORDS, variant="base")
        assert not surf.may_contain(b"000_no_such_prefix")

    def test_prefix_of_stored_key_not_present(self):
        surf = SuRF.build(sorted([b"banana", b"band"]), variant="real",
                          suffix_bits=8)
        # "ban" is a strict prefix of stored keys, itself absent; the trie
        # has internal path b-a-n with no terminator.
        assert not surf.may_contain(b"ban")

    def test_terminator_key_present(self):
        surf = SuRF.build(sorted([b"ab", b"abc"]), variant="base")
        assert surf.may_contain(b"ab")
        assert surf.may_contain(b"abc")

    def test_empty_filter(self):
        surf = SuRF.build([], variant="base")
        assert not surf.may_contain(b"x")
        assert not surf.may_contain_range(b"a", b"z")


class TestRangeLookups:
    def test_occupied_range_positive(self):
        surf = SuRF.build(WORDS, variant="real", suffix_bits=8)
        assert surf.may_contain_range(b"band", b"candle")
        assert surf.may_contain_range(b"a", b"b")
        assert surf.may_contain_range(b"zebra", b"zzzz")

    def test_empty_range_before_all_keys(self):
        surf = SuRF.build(WORDS, variant="base")
        assert not surf.may_contain_range(b"0", b"9")

    def test_empty_range_after_all_keys(self):
        surf = SuRF.build(WORDS, variant="base")
        # No stored key starts with 0xff, so the trie can prove emptiness.
        assert not surf.may_contain_range(b"\xff\x00", b"\xff\xff")

    def test_culled_prefix_covers_extensions(self):
        """The classic SuRF false positive: "zebra" culls to "z", whose
        interval covers every "z*" query — this is by design, not a bug."""
        surf = SuRF.build(WORDS, variant="base")
        assert surf.may_contain_range(b"zz", b"zzzz")

    def test_empty_gap_between_keys(self):
        surf = SuRF.build(sorted([b"aaa", b"zzz"]), variant="base")
        # Keys cull to 1 byte; [mmm, qqq] hits neither 'a' nor 'z' subtree.
        assert not surf.may_contain_range(b"mmm", b"qqq")

    def test_single_point_range(self):
        surf = SuRF.build(WORDS, variant="real", suffix_bits=8)
        assert surf.may_contain_range(b"sigmod", b"sigmod")

    def test_invalid_range(self):
        surf = SuRF.build(WORDS, variant="base")
        with pytest.raises(FilterQueryError):
            surf.may_contain_range(b"z", b"a")

    def test_seek_returns_first_reachable_leaf(self):
        surf = SuRF.build(sorted([b"banana", b"cherry"]), variant="base")
        # "banana" culls to "b"; its interval [b, b\xff...] covers "bb".
        leaf = surf.seek(b"bb")
        assert leaf is not None
        assert leaf.prefix_bytes() == b"b"
        # Seeking past the "b" interval lands on "cherry"'s leaf.
        leaf = surf.seek(b"c")
        assert leaf is not None
        assert leaf.prefix_bytes() == b"c"

    def test_seek_past_everything(self):
        surf = SuRF.build(sorted([b"apple"]), variant="base")
        assert surf.seek(b"zzz") is None

    def test_no_false_negative_ranges_exhaustive_small(self):
        keys = sorted([b"ab", b"abc", b"ad", b"b", b"ba"])
        surf = SuRF.build(keys, variant="real", suffix_bits=8)
        for low in keys:
            assert surf.may_contain_range(low, low + b"\xff")
            assert surf.may_contain_range(low[:1], low)


class TestIntegerAdapter:
    @pytest.fixture
    def keys(self, rng):
        return rng.sample(range(1 << 32), 3000)

    def test_no_false_negatives(self, keys):
        filt = SurfFilter(key_bits=32, variant="real", suffix_bits=8)
        filt.populate(keys)
        assert all(filt.may_contain(k) for k in keys)

    def test_range_no_false_negatives(self, keys):
        filt = SurfFilter(key_bits=32, variant="real", suffix_bits=8)
        filt.populate(keys)
        for key in keys[:300]:
            assert filt.may_contain_range(max(0, key - 3), key + 3)

    def test_empty_range_fpr_reasonable(self, keys, rng):
        filt = SurfFilter(key_bits=32, variant="real", suffix_bits=8)
        filt.populate(keys)
        key_set = set(keys)
        fp = trials = 0
        while trials < 1000:
            low = rng.randrange((1 << 32) - 32)
            if any(k in key_set for k in range(low, low + 32)):
                continue
            trials += 1
            fp += filt.may_contain_range(low, low + 31)
        assert fp / trials < 0.5

    def test_budget_fitting_tracks_target(self, keys):
        for budget in (12, 22, 30):
            filt = SurfFilter(key_bits=32, variant="real", bits_per_key=budget)
            filt.populate(keys)
            actual = filt.size_in_bits() / len(set(keys))
            # Structure is the floor; above it, we land within ~1.5 bits.
            floor = SurfFilter(key_bits=32, variant="base")
            floor.populate(keys)
            minimum = floor.size_in_bits() / len(set(keys))
            assert actual >= minimum - 1e-9
            if budget > minimum + 1:
                assert actual == pytest.approx(budget, abs=1.5)

    def test_budget_below_structure_uses_minimum(self, keys):
        filt = SurfFilter(key_bits=32, variant="real", bits_per_key=2)
        filt.populate(keys)
        assert filt.suffix_bits == 0  # fell back to the structural minimum

    def test_key_width_must_be_byte_aligned(self):
        with pytest.raises(FilterBuildError):
            SurfFilter(key_bits=31)

    def test_out_of_domain_key(self, keys):
        filt = SurfFilter(key_bits=32)
        filt.populate(keys)
        with pytest.raises(FilterQueryError):
            filt.may_contain(1 << 33)

    def test_double_populate(self, keys):
        filt = SurfFilter(key_bits=32)
        filt.populate(keys)
        with pytest.raises(FilterBuildError):
            filt.populate(keys)

    def test_probe_counter(self, keys):
        filt = SurfFilter(key_bits=32)
        filt.populate(keys)
        filt.reset_probe_count()
        filt.may_contain(keys[0])
        assert filt.probe_count() >= 1


class TestSerialization:
    def test_roundtrip_preserves_answers(self):
        surf = SuRF.build(WORDS, variant="real", suffix_bits=8)
        restored = SuRF.from_bytes(surf.to_bytes())
        assert restored.variant == "real"
        assert restored.num_keys == surf.num_keys
        probes = WORDS + [b"nope", b"sig", b"bananaz", b"zzzz"]
        for probe in probes:
            assert restored.may_contain(probe) == surf.may_contain(probe)
        assert restored.may_contain_range(b"m", b"q") == surf.may_contain_range(
            b"m", b"q"
        )

    def test_adapter_roundtrip(self, rng):
        keys = rng.sample(range(1 << 32), 500)
        filt = SurfFilter(key_bits=32, variant="hash", suffix_bits=8)
        filt.populate(keys)
        restored = SurfFilter.deserialize(filt.serialize())
        for key in keys[:100]:
            assert restored.may_contain(key)

    def test_size_accounting_matches_parts(self):
        surf = SuRF.build(WORDS, variant="real", suffix_bits=8)
        assert surf.size_in_bits() == surf.structure_bits() + 8 * len(WORDS)


class TestDenseLevels:
    def test_forced_all_dense(self):
        surf = SuRF.build(WORDS, variant="base", dense_levels=100)
        assert all(surf.may_contain(w) for w in WORDS)
        assert not surf.may_contain_range(b"0", b"9")

    def test_forced_all_sparse(self):
        surf = SuRF.build(WORDS, variant="base", dense_levels=0)
        assert all(surf.may_contain(w) for w in WORDS)
        assert not surf.may_contain_range(b"0", b"9")

    def test_dense_and_sparse_answer_identically(self, rng):
        keys = sorted({bytes([rng.randrange(97, 123) for _ in range(4)])
                       for _ in range(300)})
        all_dense = SuRF.build(keys, variant="base", dense_levels=100)
        all_sparse = SuRF.build(keys, variant="base", dense_levels=0)
        hybrid = SuRF.build(keys, variant="base", dense_levels=2)
        for _ in range(500):
            probe = bytes([rng.randrange(97, 123) for _ in range(4)])
            expected = all_sparse.may_contain(probe)
            assert all_dense.may_contain(probe) == expected
            assert hybrid.may_contain(probe) == expected
        for _ in range(200):
            low = bytes([rng.randrange(97, 123) for _ in range(3)])
            high = low + b"\xff"
            expected = all_sparse.may_contain_range(low, high)
            assert all_dense.may_contain_range(low, high) == expected
            assert hybrid.may_contain_range(low, high) == expected

    def test_invalid_variant(self):
        with pytest.raises(FilterBuildError):
            SuRF.build(WORDS, variant="bogus")

    def test_invalid_suffix_bits(self):
        with pytest.raises(FilterBuildError):
            SuRF.build(WORDS, variant="real", suffix_bits=65)
