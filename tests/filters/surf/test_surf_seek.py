"""Focused tests for SuRF's seek (moveToKeyGreaterThan) machinery.

Seek drives the range-emptiness answer, so its corner cases — deep
backtracking, dense/sparse boundary crossings, terminator ordering,
leftmost-leaf detours — get their own suite beyond the property tests.
"""

import pytest

from repro.filters.surf.surf import SuRF


class TestBacktracking:
    def test_multi_level_backtrack(self):
        # "aaaz" forces a descent three levels deep; seeking past it must
        # climb back to the root and land on "b".
        keys = sorted([b"aaaa", b"aaaz", b"b"])
        surf = SuRF.build(keys, variant="base", dense_levels=0)
        leaf = surf.seek(b"aab")
        assert leaf is not None
        assert leaf.prefix_bytes() == b"b"

    def test_backtrack_to_none_past_last_key(self):
        keys = sorted([b"aaaa", b"aaab"])
        surf = SuRF.build(keys, variant="base", dense_levels=0)
        assert surf.seek(b"aaac") is None
        assert surf.seek(b"zzz") is None

    def test_backtrack_across_dense_sparse_boundary(self):
        # Force a dense top level; the backtrack from a sparse subtree must
        # resume sibling search inside the dense region.
        keys = sorted([b"aaaa", b"aaab", b"cccc"])
        surf = SuRF.build(keys, variant="base", dense_levels=1)
        leaf = surf.seek(b"aab")
        assert leaf is not None
        assert leaf.prefix_bytes() == b"c"

    def test_seek_within_run_of_siblings(self):
        keys = sorted([b"ka", b"kc", b"ke"])
        surf = SuRF.build(keys, variant="base", dense_levels=0)
        assert surf.seek(b"kb").prefix_bytes() == b"kc"
        assert surf.seek(b"kd").prefix_bytes() == b"ke"
        assert surf.seek(b"kf") is None


class TestLeftmostDetours:
    def test_detour_descends_to_smallest_leaf(self):
        # Seeking "b" at the root must take the "c" edge and then the
        # *smallest* path underneath it.
        keys = sorted([b"a", b"cba", b"cbz", b"cz"])
        surf = SuRF.build(keys, variant="base", dense_levels=0)
        leaf = surf.seek(b"b")
        assert leaf.prefix_bytes() == b"cba"

    def test_detour_prefers_terminator(self):
        # "cb" is a prefix key: its terminator leaf sorts before "cba".
        keys = sorted([b"a", b"cb", b"cba"])
        surf = SuRF.build(keys, variant="base", dense_levels=0)
        leaf = surf.seek(b"b")
        assert leaf.is_exact_key
        assert leaf.prefix_bytes() == b"cb"


class TestExhaustedQueries:
    def test_query_shorter_than_paths(self):
        # Seeking "a" (1 byte) in a trie whose keys extend beyond it: every
        # extension is >= the query.
        keys = sorted([b"apple", b"apricot"])
        surf = SuRF.build(keys, variant="base", dense_levels=0)
        leaf = surf.seek(b"a")
        assert leaf is not None
        assert leaf.prefix_bytes().startswith(b"ap")

    def test_exhausted_exact_terminator(self):
        keys = sorted([b"ab", b"abc"])
        surf = SuRF.build(keys, variant="base", dense_levels=0)
        leaf = surf.seek(b"ab")
        assert leaf.is_exact_key  # the terminator: exactly "ab"

    def test_value_indexes_unique_across_leaves(self):
        keys = sorted([b"ab", b"abc", b"ax", b"b", b"ba"])
        surf = SuRF.build(keys, variant="base", dense_levels=1)
        seen = set()
        for key in keys:
            leaf = surf.seek(key)
            assert leaf is not None
            seen.add(leaf.value_index)
        assert len(seen) == len(keys)


class TestSeekOrderAgreesWithSortedKeys:
    @staticmethod
    def _next_probe(leaf) -> bytes:
        """Smallest key past the leaf's represented interval."""
        prefix = leaf.prefix_bytes()
        if leaf.is_exact_key:
            return prefix + b"\x00"  # any extension of the exact key
        successor = int.from_bytes(prefix, "big") + 1
        return successor.to_bytes(len(prefix), "big")

    @pytest.mark.parametrize("dense_levels", [0, 1, 2, 100])
    def test_iterating_seeks_visits_keys_in_order(self, dense_levels):
        keys = sorted([b"al", b"alpha", b"be", b"beta", b"gamma", b"go"])
        surf = SuRF.build(keys, variant="base", dense_levels=dense_levels)
        visited = []
        probe = b"\x00"
        for _ in range(20):
            leaf = surf.seek(probe)
            if leaf is None:
                break
            visited.append(leaf.prefix_bytes())
            probe = self._next_probe(leaf)
        # Culled prefixes, in trie order, one per stored key.
        assert len(visited) == len(keys)
        assert visited == sorted(visited)
