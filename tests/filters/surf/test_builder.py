"""Unit tests for culled-trie construction."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FilterBuildError
from repro.filters.surf.builder import (
    TERM_SYMBOL,
    build_culled_trie,
    cull_depths,
    longest_common_prefix,
)


class TestLcp:
    def test_basic(self):
        assert longest_common_prefix(b"abcde", b"abXde") == 2
        assert longest_common_prefix(b"abc", b"abc") == 3
        assert longest_common_prefix(b"abc", b"abcd") == 3
        assert longest_common_prefix(b"", b"x") == 0


class TestCullDepths:
    def test_single_key_culls_to_one_byte(self):
        assert cull_depths([b"hello"]) == [1]

    def test_divergent_keys(self):
        # "apple" vs "banana": diverge at byte 0 -> depth 1 each.
        assert cull_depths([b"apple", b"banana"]) == [1, 1]

    def test_shared_prefix(self):
        # "sigmod" and "sigma": lcp 4 -> depth 5 each.
        assert cull_depths([b"sigma", b"sigmod"]) == [5, 5]

    def test_prefix_key_gets_terminator_depth(self):
        # "ab" is a prefix of "abc": depth len+1 marks the terminator.
        depths = cull_depths([b"ab", b"abc"])
        assert depths[0] == 3  # len("ab") + 1 -> terminator leaf
        assert depths[1] == 3

    def test_middle_key_uses_max_neighbor_lcp(self):
        depths = cull_depths([b"aa", b"ab", b"xy"])
        assert depths == [2, 2, 1]


class TestBuildCulledTrie:
    def test_empty(self):
        trie = build_culled_trie([])
        assert trie.num_keys == 0
        assert trie.levels == []

    def test_rejects_unsorted(self):
        with pytest.raises(FilterBuildError):
            build_culled_trie([b"b", b"a"])

    def test_rejects_duplicates(self):
        with pytest.raises(FilterBuildError):
            build_culled_trie([b"a", b"a"])

    def test_rejects_empty_key(self):
        with pytest.raises(FilterBuildError):
            build_culled_trie([b"", b"a"])

    def test_single_key_single_edge(self):
        trie = build_culled_trie([b"hello"])
        assert trie.num_edges == 1
        assert trie.levels[0].labels == [ord("h") + 1]
        assert trie.levels[0].has_child == [False]
        assert trie.levels[0].leaf_key_ids == [0]

    def test_leaf_count_equals_key_count(self):
        keys = sorted({b"apple", b"apply", b"banana", b"band", b"bandit"})
        trie = build_culled_trie(keys)
        assert len(trie.leaf_key_ids_in_order()) == len(keys)

    def test_terminator_edge_created(self):
        trie = build_culled_trie([b"ab", b"abc"])
        labels = [label for level in trie.levels for label in level.labels]
        assert TERM_SYMBOL in labels

    def test_terminator_sorts_first(self):
        trie = build_culled_trie([b"ab", b"abc"])
        # Node at depth 2 has edges [TERM, 'c'+1] in that order.
        level = trie.levels[2]
        assert level.labels == [TERM_SYMBOL, ord("c") + 1]
        assert level.louds == [True, False]

    def test_louds_marks_node_starts(self):
        keys = sorted([b"aa", b"ab", b"ba", b"bb"])
        trie = build_culled_trie(keys)
        # Depth 0: one node (root) with edges a, b.
        assert trie.levels[0].louds == [True, False]
        # Depth 1: two nodes, each with two edges.
        assert trie.levels[1].louds == [True, False, True, False]

    def test_labels_sorted_within_node(self):
        keys = sorted([bytes([b]) + b"x" for b in (9, 3, 200, 77)])
        trie = build_culled_trie(keys)
        labels = trie.levels[0].labels
        assert labels == sorted(labels)

    def test_chain_of_single_children(self):
        # "aaaa" and "aaab" share 3 bytes: internal chain down to depth 4.
        trie = build_culled_trie([b"aaaa", b"aaab"])
        assert len(trie.levels) == 4
        for depth in range(3):
            assert trie.levels[depth].has_child == [True]
        assert trie.levels[3].has_child == [False, False]

    def test_leaf_ids_in_lexicographic_order_per_level(self):
        keys = sorted([b"ca", b"cb", b"da"])
        trie = build_culled_trie(keys)
        assert trie.leaf_key_ids_in_order() == [2, 0, 1]
        # 'd*' culls at depth 1 (leaf id 2); 'ca'/'cb' leaves at depth 2.


@settings(max_examples=100)
@given(
    st.sets(
        st.binary(min_size=1, max_size=6), min_size=1, max_size=30
    )
)
def test_property_structure_invariants(key_set):
    keys = sorted(key_set)
    trie = build_culled_trie(keys)
    # One leaf per key.
    assert sorted(trie.leaf_key_ids_in_order()) == list(range(len(keys)))
    # Edge/node bookkeeping: every level's louds marks at least one node,
    # and leaf + internal edges partition the level.
    for level in trie.levels:
        if level.labels:
            assert level.louds[0] is True
        leaf_edges = sum(1 for flag in level.has_child if not flag)
        assert leaf_edges == len(level.leaf_key_ids)
    # Internal edges at depth d equal node count at depth d+1.
    for depth in range(len(trie.levels) - 1):
        internal = sum(trie.levels[depth].has_child)
        assert internal == trie.levels[depth + 1].num_nodes
