"""Unit tests for the point-filter baselines: Bloom, Cuckoo, fence pointers."""

import random

import pytest

from repro.errors import FilterBuildError, FilterQueryError
from repro.filters.bloom_point import BloomPointFilter
from repro.filters.cuckoo import CuckooFilter
from repro.filters.fence import FencePointerFilter


@pytest.fixture
def keys(rng):
    return rng.sample(range(1 << 32), 3000)


class TestBloomPointFilter:
    def test_no_false_negatives(self, keys):
        filt = BloomPointFilter(key_bits=32, bits_per_key=10)
        filt.populate(keys)
        assert all(filt.may_contain(k) for k in keys)

    def test_point_fpr(self, keys, rng):
        filt = BloomPointFilter(key_bits=32, bits_per_key=10)
        filt.populate(keys)
        key_set = set(keys)
        fp = sum(
            filt.may_contain(k)
            for k in (rng.randrange(1 << 32) for _ in range(5000))
            if k not in key_set
        )
        assert fp / 5000 < 0.03  # theory ~0.0082

    def test_ranges_always_pass(self, keys):
        filt = BloomPointFilter(key_bits=32, bits_per_key=10)
        filt.populate(keys)
        assert filt.may_contain_range(0, 10)

    def test_size_one_range_is_point_probe(self, keys):
        filt = BloomPointFilter(key_bits=32, bits_per_key=12)
        filt.populate(keys)
        assert filt.may_contain_range(keys[0], keys[0])

    def test_invalid_range(self, keys):
        filt = BloomPointFilter(key_bits=32)
        filt.populate(keys)
        with pytest.raises(FilterQueryError):
            filt.may_contain_range(5, 4)

    def test_double_populate_rejected(self, keys):
        filt = BloomPointFilter(key_bits=32)
        filt.populate(keys)
        with pytest.raises(FilterBuildError):
            filt.populate(keys)

    def test_query_before_populate_rejected(self):
        with pytest.raises(FilterBuildError):
            BloomPointFilter().may_contain(1)

    def test_serialization_roundtrip(self, keys):
        filt = BloomPointFilter(key_bits=32, bits_per_key=10)
        filt.populate(keys)
        restored = BloomPointFilter.deserialize(filt.serialize())
        assert restored.key_bits == 32
        assert all(restored.may_contain(k) for k in keys[:200])

    def test_memory_budget(self, keys):
        filt = BloomPointFilter(key_bits=32, bits_per_key=10)
        filt.populate(keys)
        assert filt.size_in_bits() == pytest.approx(10 * len(set(keys)), rel=0.01)

    def test_probe_counter(self, keys):
        filt = BloomPointFilter(key_bits=32)
        filt.populate(keys)
        filt.may_contain(keys[0])
        filt.may_contain(keys[1])
        assert filt.probe_count() == 2
        filt.reset_probe_count()
        assert filt.probe_count() == 0


class TestCuckooFilter:
    def test_no_false_negatives(self, keys):
        filt = CuckooFilter(key_bits=32, bits_per_key=12)
        filt.populate(keys)
        assert all(filt.may_contain(k) for k in keys)

    def test_point_fpr(self, keys, rng):
        filt = CuckooFilter(key_bits=32, bits_per_key=12)
        filt.populate(keys)
        key_set = set(keys)
        fp = sum(
            filt.may_contain(k)
            for k in (rng.randrange(1 << 32) for _ in range(5000))
            if k not in key_set
        )
        assert fp / 5000 < 0.05

    def test_ranges_always_pass(self, keys):
        filt = CuckooFilter(key_bits=32)
        filt.populate(keys)
        assert filt.may_contain_range(1, 100)

    def test_dense_key_set_still_inserts(self):
        # Sequential keys stress the kick loop.
        filt = CuckooFilter(key_bits=32, bits_per_key=8)
        filt.populate(list(range(5000)))
        assert all(filt.may_contain(k) for k in range(5000))

    def test_serialization_roundtrip(self, keys):
        filt = CuckooFilter(key_bits=32, bits_per_key=12)
        filt.populate(keys)
        restored = CuckooFilter.deserialize(filt.serialize())
        assert all(restored.may_contain(k) for k in keys[:200])

    def test_invalid_budget(self):
        with pytest.raises(FilterBuildError):
            CuckooFilter(bits_per_key=0)


class TestFencePointerFilter:
    def test_stored_keys_pass(self, keys):
        filt = FencePointerFilter(key_bits=32, keys_per_page=64)
        filt.populate(keys)
        assert all(filt.may_contain(k) for k in keys)

    def test_out_of_span_rejected(self, keys):
        filt = FencePointerFilter(key_bits=32, keys_per_page=64)
        filt.populate(keys)
        assert not filt.may_contain_range(0, min(keys) - 1) if min(keys) > 0 else True
        top = max(keys)
        if top < (1 << 32) - 2:
            assert not filt.may_contain_range(top + 1, (1 << 32) - 1)

    def test_gap_between_pages_rejected(self):
        # Two pages of 4 keys with a large gap between them.
        filt = FencePointerFilter(key_bits=32, keys_per_page=4)
        filt.populate([1, 2, 3, 4, 1000, 1001, 1002, 1003])
        assert not filt.may_contain_range(10, 900)
        assert filt.may_contain_range(3, 5)
        assert filt.may_contain_range(999, 1000)

    def test_in_page_gap_not_detectable(self):
        # Within one page min/max cannot prune interior gaps.
        filt = FencePointerFilter(key_bits=32, keys_per_page=64)
        filt.populate([10, 1000])
        assert filt.may_contain_range(400, 500)

    def test_empty_filter(self):
        filt = FencePointerFilter(key_bits=32)
        filt.populate([])
        assert not filt.may_contain_range(0, 100)

    def test_serialization_roundtrip(self, keys):
        filt = FencePointerFilter(key_bits=32, keys_per_page=32)
        filt.populate(keys)
        restored = FencePointerFilter.deserialize(filt.serialize())
        assert restored.keys_per_page == 32
        for key in keys[:100]:
            assert restored.may_contain(key) == filt.may_contain(key)

    def test_memory_is_two_keys_per_page(self, keys):
        filt = FencePointerFilter(key_bits=32, keys_per_page=100)
        filt.populate(keys)
        pages = (len(set(keys)) + 99) // 100
        assert filt.size_in_bits() == 2 * 32 * pages

    def test_invalid_page_size(self):
        with pytest.raises(FilterBuildError):
            FencePointerFilter(keys_per_page=0)
