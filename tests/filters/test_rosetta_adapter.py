"""Unit tests for the Rosetta filter-template adapter."""

import pytest

from repro.errors import FilterBuildError
from repro.filters.base import deserialize_filter, serialize_envelope
from repro.filters.rosetta_adapter import RosettaFilter


class TestAdapter:
    def test_populate_and_query(self, small_keys):
        filt = RosettaFilter(key_bits=32, bits_per_key=16, max_range=64)
        filt.populate(small_keys)
        assert all(filt.may_contain(k) for k in small_keys[:200])
        assert filt.may_contain_range(small_keys[0], small_keys[0] + 5)

    def test_double_populate_rejected(self, small_keys):
        filt = RosettaFilter(key_bits=32)
        filt.populate(small_keys)
        with pytest.raises(FilterBuildError):
            filt.populate(small_keys)

    def test_unpopulated_access_rejected(self):
        filt = RosettaFilter(key_bits=32)
        with pytest.raises(FilterBuildError):
            filt.may_contain(1)
        with pytest.raises(FilterBuildError):
            filt.size_in_bits()
        with pytest.raises(FilterBuildError):
            _ = filt.rosetta

    def test_strategy_and_histogram_forwarded(self, small_keys):
        filt = RosettaFilter(
            key_bits=32, bits_per_key=12, strategy="hybrid",
            range_size_histogram={4: 10},
        )
        filt.populate(small_keys)
        assert filt.rosetta.allocation.strategy == "single"  # hybrid resolved

    def test_memory_budget(self, small_keys):
        filt = RosettaFilter(key_bits=32, bits_per_key=18)
        filt.populate(small_keys)
        expected = 18 * len(set(small_keys))
        assert filt.size_in_bits() == pytest.approx(expected, rel=0.01)

    def test_tightened_range(self, small_keys):
        filt = RosettaFilter(key_bits=32, bits_per_key=24)
        filt.populate(small_keys)
        key = sorted(small_keys)[10]
        result = filt.tightened_range(max(0, key - 20), key + 20)
        assert result is not None

    def test_probe_count_tracks_core_stats(self, small_keys):
        filt = RosettaFilter(key_bits=32, bits_per_key=12)
        filt.populate(small_keys)
        filt.reset_probe_count()
        filt.may_contain(small_keys[0])
        assert filt.probe_count() >= 1
        filt.reset_probe_count()
        assert filt.probe_count() == 0

    def test_probe_count_before_populate_is_zero(self):
        assert RosettaFilter().probe_count() == 0

    def test_envelope_roundtrip(self, small_keys):
        filt = RosettaFilter(key_bits=32, bits_per_key=12)
        filt.populate(small_keys)
        restored = deserialize_filter(serialize_envelope(filt))
        assert isinstance(restored, RosettaFilter)
        assert restored.key_bits == 32
        for key in small_keys[:100]:
            assert restored.may_contain(key) == filt.may_contain(key)
