"""Unit tests for the Prefix Bloom filter baseline."""

import random

import pytest

from repro.errors import FilterBuildError, FilterQueryError
from repro.filters.prefix_bloom import PrefixBloomFilter


@pytest.fixture
def keys(rng):
    return rng.sample(range(1 << 32), 2000)


class TestBasics:
    def test_no_false_negatives_points(self, keys):
        filt = PrefixBloomFilter(key_bits=32, prefix_bits=16, bits_per_key=10)
        filt.populate(keys)
        assert all(filt.may_contain(k) for k in keys)

    def test_no_false_negatives_ranges(self, keys):
        filt = PrefixBloomFilter(key_bits=32, prefix_bits=16, bits_per_key=10)
        filt.populate(keys)
        for key in keys[:200]:
            assert filt.may_contain_range(max(0, key - 5), key + 5)

    def test_point_probe_is_prefix_probe(self):
        """Keys sharing a prefix are indistinguishable (the paper's point)."""
        filt = PrefixBloomFilter(key_bits=16, prefix_bits=8, bits_per_key=20)
        filt.populate([0x1234])
        # 0x12FF shares the 8-bit prefix 0x12: necessarily positive.
        assert filt.may_contain(0x12FF)

    def test_range_within_single_empty_prefix(self):
        filt = PrefixBloomFilter(key_bits=16, prefix_bits=8, bits_per_key=20)
        filt.populate([0x1234])
        # [0x4000, 0x4010] lies in prefix 0x40, which holds no key.
        assert not filt.may_contain_range(0x4000, 0x4010)

    def test_range_spanning_too_many_prefixes_passes(self):
        filt = PrefixBloomFilter(
            key_bits=16, prefix_bits=8, bits_per_key=20, max_covering_prefixes=4
        )
        filt.populate([0x1234])
        # Spans 16 prefixes > cap: must conservatively pass.
        assert filt.may_contain_range(0x4000, 0x4FFF)

    def test_cross_prefix_range(self):
        filt = PrefixBloomFilter(key_bits=16, prefix_bits=8, bits_per_key=20)
        filt.populate([0x12FF])
        # [0x12FE, 0x1301] touches prefixes 0x12 (occupied) and 0x13.
        assert filt.may_contain_range(0x12FE, 0x1301)


class TestAutoPrefixLength:
    def test_density_aware_default(self, keys):
        filt = PrefixBloomFilter(key_bits=32, bits_per_key=10)
        filt.populate(keys)
        # ceil(log2(2000)) + 2 = 13.
        assert filt.prefix_bits == 13

    def test_auto_clamps_to_key_bits(self):
        filt = PrefixBloomFilter(key_bits=8, bits_per_key=10)
        filt.populate(list(range(200)))
        assert filt.prefix_bits == 8

    def test_occupancy_regime(self, keys, rng):
        """With ~4x buckets per key, empty short ranges see moderate FPR."""
        filt = PrefixBloomFilter(key_bits=32, bits_per_key=10)
        filt.populate(keys)
        key_set = set(keys)
        fp = trials = 0
        while trials < 1000:
            low = rng.randrange((1 << 32) - 16)
            if any(k in key_set for k in range(low, low + 16)):
                continue
            trials += 1
            fp += filt.may_contain_range(low, low + 15)
        # Bucket occupancy ~ 2000/2^13 = 24%: FPR far from 0 and from 1.
        assert 0.05 < fp / trials < 0.65


class TestValidation:
    def test_invalid_prefix_bits(self):
        with pytest.raises(FilterBuildError):
            PrefixBloomFilter(key_bits=16, prefix_bits=17)
        with pytest.raises(FilterBuildError):
            PrefixBloomFilter(key_bits=16, prefix_bits=0)

    def test_invalid_range(self, keys):
        filt = PrefixBloomFilter(key_bits=32, prefix_bits=16)
        filt.populate(keys)
        with pytest.raises(FilterQueryError):
            filt.may_contain_range(10, 9)

    def test_double_populate(self, keys):
        filt = PrefixBloomFilter(key_bits=32, prefix_bits=16)
        filt.populate(keys)
        with pytest.raises(FilterBuildError):
            filt.populate(keys)

    def test_unpopulated_query(self):
        with pytest.raises(FilterBuildError):
            PrefixBloomFilter().may_contain(1)


class TestSerialization:
    def test_roundtrip(self, keys):
        filt = PrefixBloomFilter(key_bits=32, prefix_bits=14, bits_per_key=12)
        filt.populate(keys)
        restored = PrefixBloomFilter.deserialize(filt.serialize())
        assert restored.prefix_bits == 14
        for key in keys[:200]:
            assert restored.may_contain(key) == filt.may_contain(key)
