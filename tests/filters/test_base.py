"""Unit tests for the master filter template and the codec registry."""

import pytest

from repro.errors import SerializationError
from repro.filters.base import (
    FilterFactory,
    KeyFilter,
    deserialize_filter,
    register_filter_codec,
    serialize_envelope,
)
from repro.filters.bloom_point import BloomPointFilter
from repro.filters.rosetta_adapter import RosettaFilter


class _StubFilter(KeyFilter):
    name = "stub-for-tests"

    def __init__(self, payload: bytes = b"") -> None:
        self.payload = payload

    def populate(self, keys):
        self.payload = bytes(len(keys))

    def may_contain(self, key):
        return True

    def may_contain_range(self, low, high):
        return True

    def size_in_bits(self):
        return len(self.payload) * 8

    def serialize(self):
        return self.payload


class TestEnvelope:
    def test_roundtrip_through_registry(self):
        register_filter_codec("stub-for-tests", lambda p: _StubFilter(p))
        original = _StubFilter(b"hello")
        restored = deserialize_filter(serialize_envelope(original))
        assert isinstance(restored, _StubFilter)
        assert restored.payload == b"hello"

    def test_unknown_codec_rejected(self):
        envelope = bytes([7]) + b"unknown" + b"data"
        with pytest.raises(SerializationError):
            deserialize_filter(envelope)

    def test_empty_envelope_rejected(self):
        with pytest.raises(SerializationError):
            deserialize_filter(b"")

    def test_truncated_tag_rejected(self):
        with pytest.raises(SerializationError):
            deserialize_filter(bytes([10]) + b"abc")

    def test_invalid_codec_name(self):
        with pytest.raises(ValueError):
            register_filter_codec("", lambda p: None)
        with pytest.raises(ValueError):
            register_filter_codec("x" * 300, lambda p: None)

    def test_builtin_filters_registered(self):
        bloom = BloomPointFilter(key_bits=16)
        bloom.populate([1, 2, 3])
        restored = deserialize_filter(serialize_envelope(bloom))
        assert isinstance(restored, BloomPointFilter)

        rosetta = RosettaFilter(key_bits=16, bits_per_key=10)
        rosetta.populate([1, 2, 3])
        restored = deserialize_filter(serialize_envelope(rosetta))
        assert isinstance(restored, RosettaFilter)
        assert restored.may_contain(2)


class TestFilterFactory:
    def test_builds_fresh_instances(self):
        factory = FilterFactory("bloom-test", _populated, bits_per_key=8)
        a = factory.build([1, 2, 3])
        b = factory.build([4, 5, 6])
        assert a is not b
        assert a.may_contain(1) and b.may_contain(4)

    def test_repr(self):
        factory = FilterFactory("x", lambda keys: _StubFilter(), bits_per_key=7)
        assert "x" in repr(factory)
        assert "7" in repr(factory)


def _populated(keys):
    filt = BloomPointFilter(key_bits=16, bits_per_key=8)
    filt.populate(keys)
    return filt


class TestDefaultMethods:
    def test_default_tightened_range(self):
        stub = _StubFilter()
        assert stub.tightened_range(3, 9) == (3, 9)

    def test_default_probe_count(self):
        assert _StubFilter().probe_count() == 0
        _StubFilter().reset_probe_count()  # no crash
