"""Unit tests for the quotient filter."""

import random

import pytest

from repro.errors import FilterBuildError, FilterQueryError
from repro.filters.quotient import QuotientFilter


@pytest.fixture
def keys(rng):
    return rng.sample(range(1 << 40), 5000)


class TestQuotientFilter:
    def test_no_false_negatives(self, keys):
        filt = QuotientFilter(key_bits=64, bits_per_key=12)
        filt.populate(keys)
        assert all(filt.may_contain(k) for k in keys)

    def test_point_fpr_tracks_remainder_width(self, keys, rng):
        filt = QuotientFilter(key_bits=64, bits_per_key=14)
        filt.populate(keys)
        key_set = set(keys)
        fp = sum(
            filt.may_contain(k)
            for k in (rng.randrange(1 << 40) for _ in range(8000))
            if k not in key_set
        )
        # FPR ~ load / 2^r; at 14 bits/key r >= 9 -> well below 1%.
        assert fp / 8000 < 0.05

    def test_more_memory_lowers_fpr(self, keys, rng):
        key_set = set(keys)
        probes = [
            k for k in (rng.randrange(1 << 40) for _ in range(8000))
            if k not in key_set
        ]
        results = {}
        for bits_per_key in (6, 16):
            filt = QuotientFilter(key_bits=64, bits_per_key=bits_per_key)
            filt.populate(keys)
            results[bits_per_key] = sum(filt.may_contain(k) for k in probes)
        assert results[16] <= results[6]

    def test_clustered_keys_still_correct(self):
        # Sequential keys produce heavy quotient collisions and long runs.
        keys = list(range(4000))
        filt = QuotientFilter(key_bits=32, bits_per_key=12)
        filt.populate(keys)
        assert all(filt.may_contain(k) for k in keys)

    def test_load_factor_near_target(self, keys):
        filt = QuotientFilter(key_bits=64, bits_per_key=12)
        filt.populate(keys)
        assert 0.3 < filt.load_factor() < 0.85

    def test_memory_tracks_budget(self, keys):
        filt = QuotientFilter(key_bits=64, bits_per_key=12)
        filt.populate(keys)
        assert filt.size_in_bits() / len(set(keys)) == pytest.approx(12, rel=0.3)

    def test_ranges_pass(self, keys):
        filt = QuotientFilter(key_bits=64)
        filt.populate(keys)
        assert filt.may_contain_range(0, 100)
        with pytest.raises(FilterQueryError):
            filt.may_contain_range(2, 1)

    def test_too_small_budget_rejected(self):
        with pytest.raises(FilterBuildError):
            QuotientFilter(bits_per_key=3)

    def test_double_populate_and_unpopulated(self, keys):
        filt = QuotientFilter(key_bits=64)
        filt.populate(keys)
        with pytest.raises(FilterBuildError):
            filt.populate(keys)
        with pytest.raises(FilterBuildError):
            QuotientFilter().may_contain(1)

    def test_serialization_roundtrip(self, keys):
        filt = QuotientFilter(key_bits=64, bits_per_key=12)
        filt.populate(keys)
        restored = QuotientFilter.deserialize(filt.serialize())
        assert restored.quotient_bits == filt.quotient_bits
        assert restored.remainder_bits == filt.remainder_bits
        for key in keys[:300]:
            assert restored.may_contain(key)
        rng = random.Random(9)
        for _ in range(300):
            probe = rng.randrange(1 << 40)
            assert restored.may_contain(probe) == filt.may_contain(probe)

    def test_tiny_key_set(self):
        filt = QuotientFilter(key_bits=16, bits_per_key=12)
        filt.populate([7])
        assert filt.may_contain(7)

    def test_probe_counter(self, keys):
        filt = QuotientFilter(key_bits=64)
        filt.populate(keys)
        filt.may_contain(keys[0])
        assert filt.probe_count() == 1
        filt.reset_probe_count()
        assert filt.probe_count() == 0
