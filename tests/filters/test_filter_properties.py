"""Property-based no-false-negative tests across every point/range filter.

Every filter in the library shares one contract: it may answer "maybe" for
absent keys/empty ranges, but never "no" for present keys/occupied ranges.
These suites drive the whole registry through hypothesis.
"""

import bisect

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.factories import FILTER_NAMES, make_factory

_KEY_BITS = 16
_key_sets = st.sets(
    st.integers(min_value=0, max_value=(1 << _KEY_BITS) - 1),
    min_size=1,
    max_size=50,
)

# Quotient needs > 4 bits/key; give every recipe a healthy budget.
_POINT_FILTERS = ("bloom", "cuckoo", "quotient", "prefix-bloom")
_RANGE_FILTERS = (
    "rosetta", "rosetta-single", "rosetta-equilibrium", "surf", "surf-base",
    "bloom+surf", "fence",
)


@settings(max_examples=60, deadline=None)
@given(
    keys=_key_sets,
    name=st.sampled_from(_POINT_FILTERS + _RANGE_FILTERS),
    probe=st.integers(min_value=0, max_value=(1 << _KEY_BITS) - 1),
)
def test_point_queries_never_false_negative(keys, name, probe):
    factory = make_factory(name, _KEY_BITS, 14, max_range=16)
    filt = factory.build(sorted(keys))
    if probe in keys:
        assert filt.may_contain(probe), name


@settings(max_examples=60, deadline=None)
@given(
    keys=_key_sets,
    name=st.sampled_from(_RANGE_FILTERS + _POINT_FILTERS),
    low=st.integers(min_value=0, max_value=(1 << _KEY_BITS) - 1),
    size=st.integers(min_value=1, max_value=64),
)
def test_range_queries_never_false_negative(keys, name, low, size):
    factory = make_factory(name, _KEY_BITS, 14, max_range=16)
    filt = factory.build(sorted(keys))
    high = min(low + size - 1, (1 << _KEY_BITS) - 1)
    if low > high:
        return
    ordered = sorted(keys)
    idx = bisect.bisect_left(ordered, low)
    if idx < len(ordered) and ordered[idx] <= high:
        assert filt.may_contain_range(low, high), name


@settings(max_examples=40, deadline=None)
@given(keys=_key_sets, name=st.sampled_from(FILTER_NAMES))
def test_serialization_roundtrip_preserves_answers(keys, name):
    from repro.filters.base import deserialize_filter, serialize_envelope

    factory = make_factory(name, _KEY_BITS, 14, max_range=16)
    filt = factory.build(sorted(keys))
    restored = deserialize_filter(serialize_envelope(filt))
    probes = list(keys)[:10] + [0, (1 << _KEY_BITS) - 1]
    for probe in probes:
        assert restored.may_contain(probe) == filt.may_contain(probe), name
    for low in probes[:5]:
        high = min(low + 7, (1 << _KEY_BITS) - 1)
        assert restored.may_contain_range(low, high) == filt.may_contain_range(
            low, high
        ), name


@settings(max_examples=40, deadline=None)
@given(keys=_key_sets, name=st.sampled_from(FILTER_NAMES))
def test_memory_accounting_positive(keys, name):
    factory = make_factory(name, _KEY_BITS, 14, max_range=16)
    filt = factory.build(sorted(keys))
    assert filt.size_in_bits() >= 0
    assert isinstance(filt.size_in_bits(), int)
