"""Tests for the capacity-planning helpers in core.analysis."""

import random

import pytest

from repro.core import analysis
from repro.core.rosetta import Rosetta


class TestBudgetForTargetFpr:
    def test_known_point(self):
        # Per-subtree target: 0.01 / (2*log2 64) = 1/1200;
        # 1.4427 * log2(64 * 1200) = 23.43.
        assert analysis.budget_for_target_fpr(64, 0.01) == pytest.approx(
            23.43, abs=0.1
        )

    def test_monotone_in_fpr(self):
        assert analysis.budget_for_target_fpr(64, 0.001) > (
            analysis.budget_for_target_fpr(64, 0.1)
        )

    def test_monotone_in_range(self):
        assert analysis.budget_for_target_fpr(1024, 0.01) > (
            analysis.budget_for_target_fpr(4, 0.01)
        )

    def test_invalid(self):
        with pytest.raises(ValueError):
            analysis.budget_for_target_fpr(0, 0.1)
        with pytest.raises(ValueError):
            analysis.budget_for_target_fpr(64, 0.0)


class TestAchievableFpr:
    def test_inverts_budget(self):
        for fpr in (0.1, 0.01, 0.001):
            budget = analysis.budget_for_target_fpr(64, fpr)
            assert analysis.achievable_fpr_for_budget(
                1000, 64, budget
            ) == pytest.approx(fpr, rel=1e-6)

    def test_clamped_at_one(self):
        assert analysis.achievable_fpr_for_budget(1000, 1024, 0.5) == 1.0

    def test_invalid(self):
        with pytest.raises(ValueError):
            analysis.achievable_fpr_for_budget(-1, 64, 10)
        with pytest.raises(ValueError):
            analysis.achievable_fpr_for_budget(10, 0, 10)
        with pytest.raises(ValueError):
            analysis.achievable_fpr_for_budget(10, 64, -1)

    def test_prediction_matches_measurement(self):
        """Plan a budget for 5% FPR at range 16; the built filter delivers
        an FPR of that order."""
        target = 0.05
        budget = analysis.budget_for_target_fpr(16, target)
        rng = random.Random(17)
        keys = rng.sample(range(1 << 32), 8000)
        filt = Rosetta.build(
            keys, key_bits=32, bits_per_key=budget, max_range=16,
            strategy="equilibrium",
        )
        key_set = set(keys)
        fp = trials = 0
        while trials < 1200:
            low = rng.randrange((1 << 32) - 16)
            if any(k in key_set for k in range(low, low + 16)):
                continue
            trials += 1
            fp += filt.may_contain_range(low, low + 15)
        measured = fp / trials
        # Within a factor of ~3 of the planned target (the bound is a
        # first-order model; the win condition is the order of magnitude).
        assert measured < target * 3
        assert measured > target / 100
