"""Unit tests for the Rosetta filter: construction, queries, serialization."""

import random

import pytest

from repro.core.allocation import LevelAllocation
from repro.core.bloom import BloomFilter
from repro.core.rosetta import Rosetta
from repro.errors import FilterBuildError, FilterQueryError, SerializationError


@pytest.fixture
def paper_filter(tiny_keys):
    """The Fig. 2/3 running example: keys {3,6,7,8,9,11} in a 4-bit domain."""
    return Rosetta.build(
        tiny_keys, key_bits=4, bits_per_key=64, max_range=16, strategy="uniform"
    )


class TestConstruction:
    def test_build_with_bits_per_key(self, small_keys):
        filt = Rosetta.build(small_keys, key_bits=32, bits_per_key=16)
        assert filt.num_keys == len(set(small_keys))
        assert filt.bits_per_key() == pytest.approx(16, rel=0.01)

    def test_build_with_total_bits(self, small_keys):
        filt = Rosetta.build(small_keys, key_bits=32, total_bits=100_000)
        assert filt.size_in_bits() == pytest.approx(100_000, rel=0.01)

    def test_both_budgets_rejected(self, small_keys):
        with pytest.raises(FilterBuildError):
            Rosetta.build(small_keys, key_bits=32, bits_per_key=10, total_bits=10)

    def test_neither_budget_rejected(self, small_keys):
        with pytest.raises(FilterBuildError):
            Rosetta.build(small_keys, key_bits=32)

    def test_levels_follow_max_range(self, small_keys):
        for max_range, expected_levels in ((1, 1), (2, 2), (64, 7), (100, 7)):
            filt = Rosetta.build(
                small_keys, key_bits=32, bits_per_key=10, max_range=max_range
            )
            assert filt.num_levels == expected_levels

    def test_levels_capped_by_key_bits(self):
        filt = Rosetta.build([0, 1, 2], key_bits=3, bits_per_key=20, max_range=1024)
        assert filt.num_levels == 4  # heights 0..3

    def test_out_of_domain_keys_rejected(self):
        with pytest.raises(FilterBuildError):
            Rosetta.build([16], key_bits=4, bits_per_key=10)
        with pytest.raises(FilterBuildError):
            Rosetta.build([-1], key_bits=4, bits_per_key=10)

    def test_invalid_max_range(self, small_keys):
        with pytest.raises(FilterBuildError):
            Rosetta.build(small_keys, key_bits=32, bits_per_key=10, max_range=0)

    def test_duplicates_collapse(self):
        filt = Rosetta.build([5, 5, 5, 9], key_bits=8, bits_per_key=10)
        assert filt.num_keys == 2

    def test_wide_keys_scalar_path(self):
        keys = [1 << 70, (1 << 70) + 5, (1 << 90) + 1]
        filt = Rosetta.build(keys, key_bits=96, bits_per_key=20, max_range=16)
        for key in keys:
            assert filt.may_contain(key)

    def test_allocation_recorded(self, small_keys):
        filt = Rosetta.build(
            small_keys, key_bits=32, bits_per_key=10, strategy="single"
        )
        assert filt.allocation.strategy == "single"


class TestPointQueries:
    def test_no_false_negatives(self, small_keys):
        filt = Rosetta.build(small_keys, key_bits=32, bits_per_key=14)
        assert all(filt.may_contain(k) for k in small_keys)

    def test_fpr_reasonable(self, small_keys):
        filt = Rosetta.build(small_keys, key_bits=32, bits_per_key=20,
                             strategy="single")
        key_set = set(small_keys)
        rng = random.Random(9)
        trials = 5000
        fp = sum(
            filt.may_contain(k)
            for k in (rng.randrange(1 << 32) for _ in range(trials))
            if k not in key_set
        )
        assert fp / trials < 0.01

    def test_out_of_domain_query_rejected(self, paper_filter):
        with pytest.raises(FilterQueryError):
            paper_filter.may_contain(16)

    def test_empty_filter_rejects_everything(self):
        filt = Rosetta.build([], key_bits=8, bits_per_key=10)
        assert not filt.may_contain(5)
        assert not filt.may_contain_range(0, 255)


class TestRangeQueries:
    def test_paper_example_positive(self, paper_filter):
        # range(8, 12) in the paper: keys 8, 9, 11 are inside.
        assert paper_filter.may_contain_range(8, 12)

    def test_paper_example_negative(self, paper_filter):
        # [4, 5] holds no key from {3,6,7,8,9,11}; with 64 bits/key the
        # filter should prune it.
        assert not paper_filter.may_contain_range(4, 5)

    def test_no_false_negatives_on_ranges(self, small_keys):
        filt = Rosetta.build(small_keys, key_bits=32, bits_per_key=14)
        rng = random.Random(10)
        for key in rng.sample(small_keys, 300):
            low = max(0, key - rng.randrange(0, 32))
            high = min((1 << 32) - 1, key + rng.randrange(0, 32))
            assert filt.may_contain_range(low, high)

    def test_empty_range_fpr(self, small_keys):
        filt = Rosetta.build(
            small_keys, key_bits=32, bits_per_key=22, max_range=64,
            strategy="equilibrium",
        )
        key_set = set(small_keys)
        rng = random.Random(11)
        fp = trials = 0
        while trials < 1500:
            low = rng.randrange((1 << 32) - 64)
            if any(k in key_set for k in range(low, low + 32)):
                continue
            trials += 1
            fp += filt.may_contain_range(low, low + 31)
        assert fp / trials < 0.05

    def test_queries_larger_than_max_range_still_correct(self, small_keys):
        filt = Rosetta.build(
            small_keys, key_bits=32, bits_per_key=14, max_range=8
        )
        key = small_keys[0]
        assert filt.may_contain_range(max(0, key - 500), key + 500)

    def test_range_clamped_to_domain(self, paper_filter):
        # high beyond the domain is clamped, not an error.
        assert paper_filter.may_contain_range(11, 10**9)

    def test_invalid_range_rejected(self, paper_filter):
        with pytest.raises(FilterQueryError):
            paper_filter.may_contain_range(5, 4)

    def test_whole_domain_positive(self, paper_filter):
        assert paper_filter.may_contain_range(0, 15)


class TestTightening:
    def test_tightens_to_occupied_subrange(self, small_keys):
        filt = Rosetta.build(small_keys, key_bits=32, bits_per_key=64,
                             max_range=64, strategy="uniform")
        key = sorted(small_keys)[100]
        low, high = max(0, key - 30), key + 30
        result = filt.tightened_range(low, high)
        assert result is not None
        eff_low, eff_high = result
        assert low <= eff_low <= key <= eff_high + 0  # key inside window
        assert eff_high - eff_low <= high - low

    def test_none_for_empty_range(self, paper_filter):
        assert paper_filter.tightened_range(4, 5) is None

    def test_agrees_with_plain_range_query(self, small_keys):
        filt = Rosetta.build(small_keys, key_bits=32, bits_per_key=18)
        rng = random.Random(12)
        for _ in range(200):
            low = rng.randrange((1 << 32) - 64)
            high = low + rng.randrange(1, 64)
            assert (filt.tightened_range(low, high) is not None) == (
                filt.may_contain_range(low, high)
            )

    def test_exact_single_key(self, paper_filter):
        result = paper_filter.tightened_range(8, 8)
        assert result == (8, 8)


class TestProbeStats:
    def test_probe_counting(self, small_keys):
        filt = Rosetta.build(small_keys, key_bits=32, bits_per_key=14)
        filt.stats.reset()
        filt.may_contain(small_keys[0])
        assert filt.stats.point_queries == 1
        assert filt.stats.bloom_probes == 1

    def test_single_level_probe_cost_linear(self, small_keys):
        filt = Rosetta.build(
            small_keys, key_bits=32, bits_per_key=22, max_range=32,
            strategy="single",
        )
        filt.stats.reset()
        # An empty range far from keys: every key in the range is probed.
        key_set = set(small_keys)
        rng = random.Random(13)
        while True:
            low = rng.randrange((1 << 32) - 32)
            if not any(k in key_set for k in range(low, low + 32)):
                break
        filt.may_contain_range(low, low + 31)
        assert filt.stats.bloom_probes >= 32 * 0.9  # mostly negative probes

    def test_zero_bit_levels_not_counted(self, small_keys):
        filt = Rosetta.build(
            small_keys, key_bits=32, bits_per_key=22, max_range=64,
            strategy="single",
        )
        # All levels above the leaf are empty; only leaf probes count.
        filt.stats.reset()
        filt.may_contain_range(0, 63)
        leaf_probes = filt.stats.bloom_probes
        assert leaf_probes <= 64


class TestSerialization:
    def test_roundtrip_preserves_answers(self, small_keys):
        filt = Rosetta.build(small_keys, key_bits=32, bits_per_key=12)
        restored = Rosetta.from_bytes(filt.to_bytes())
        assert restored.key_bits == filt.key_bits
        assert restored.num_levels == filt.num_levels
        assert restored.num_keys == filt.num_keys
        rng = random.Random(14)
        for _ in range(300):
            key = rng.randrange(1 << 32)
            assert restored.may_contain(key) == filt.may_contain(key)
        for _ in range(100):
            low = rng.randrange((1 << 32) - 64)
            high = low + rng.randrange(0, 64)
            assert restored.may_contain_range(low, high) == filt.may_contain_range(
                low, high
            )

    def test_bad_magic(self):
        with pytest.raises(SerializationError):
            Rosetta.from_bytes(b"NOTROSET" + b"\x00" * 16)

    def test_truncated_payload(self, small_keys):
        payload = Rosetta.build(small_keys, key_bits=32, bits_per_key=10).to_bytes()
        with pytest.raises(SerializationError):
            Rosetta.from_bytes(payload[: len(payload) // 2])


class TestInternalValidation:
    def test_constructor_guards(self):
        bloom = BloomFilter(64, 1)
        alloc = LevelAllocation(bits_per_level=(64,), strategy="test")
        with pytest.raises(FilterBuildError):
            Rosetta(0, [bloom], alloc, 1)
        with pytest.raises(FilterBuildError):
            Rosetta(4, [], alloc, 1)
        with pytest.raises(FilterBuildError):
            Rosetta(2, [bloom] * 5, alloc, 1)  # more levels than the domain

    def test_repr_mentions_strategy(self, small_keys):
        filt = Rosetta.build(
            small_keys, key_bits=32, bits_per_key=10, strategy="variable"
        )
        assert "variable" in repr(filt)
