"""Per-filter hash salting: identity at zero, re-keying, serialization.

Salting exists so a rebuilt filter stops honoring the false positives an
adversary learned against its predecessor.  The contract under test:

* salt 0 is the *bit-exact identity* — unsalted stores keep producing the
  historical filter blocks (``RBF1`` for Bloom, trailer-less payloads for
  cuckoo/quotient), so pre-salting serialized filters stay loadable;
* a nonzero salt re-keys the FP set (learned FPs go stale) while never
  introducing false negatives, and survives a serialize/deserialize
  round-trip;
* scalar and batch probe paths agree under any salt;
* structural filters (SuRF), which hash nothing and therefore cannot be
  re-keyed, reject salts loudly at every layer — filter ctor, factory,
  and DBOptions validation.
"""

import random

import numpy as np
import pytest

from repro.bench.factories import make_factory
from repro.core.bloom import BloomFilter
from repro.core.hashing import (
    derive_filter_salt,
    mix_salt,
    mix_salt_array,
    splitmix64,
)
from repro.core.tuning import WorkloadTracker, observed_fpr
from repro.errors import (
    FilterBuildError,
    InvalidOptionsError,
    SerializationError,
)
from repro.filters.base import FilterFactory
from repro.filters.bloom_point import BloomPointFilter
from repro.filters.cuckoo import CuckooFilter
from repro.filters.quotient import QuotientFilter
from repro.filters.rosetta_adapter import RosettaFilter
from repro.filters.surf.surf import SurfFilter
from repro.lsm.options import DBOptions
from repro.lsm.stats import PerfStats

SALT = 0xDEAD_BEEF_F00D_CAFE


# ----------------------------------------------------------------------
# The salt mixers themselves
# ----------------------------------------------------------------------
class TestSaltMixers:
    def test_zero_salt_is_identity(self):
        for value in (0, 1, 65, 2**63, 2**64 - 1):
            assert mix_salt(value, 0) == value

    def test_nonzero_salt_is_splitmix_of_xor(self):
        assert mix_salt(12345, SALT) == splitmix64(12345 ^ SALT)
        assert mix_salt(12345, SALT) != 12345

    def test_array_matches_scalar(self):
        values = np.asarray(
            [0, 1, 65, 2**63, 2**64 - 1, 777], dtype=np.uint64
        )
        mixed = mix_salt_array(values, SALT)
        for raw, out in zip(values, mixed):
            assert int(out) == mix_salt(int(raw), SALT)
        assert mix_salt_array(values, 0) is values  # identity, no copy

    def test_derive_salt_zero_seed_disables(self):
        assert derive_filter_salt(0, 7) == 0
        assert derive_filter_salt(0, 0) == 0

    def test_derive_salt_nonzero_and_per_file(self):
        salts = {derive_filter_salt(42, number) for number in range(200)}
        assert len(salts) == 200  # distinct per file
        assert 0 not in salts  # never silently unsalted

    def test_derive_salt_deterministic(self):
        assert derive_filter_salt(42, 7) == derive_filter_salt(42, 7)
        assert derive_filter_salt(42, 7) != derive_filter_salt(43, 7)


# ----------------------------------------------------------------------
# Salted core Bloom filter
# ----------------------------------------------------------------------
class TestSaltedBloom:
    def _learned_fps(self, bf, key_set, rng, trials=4000):
        """Absent keys the filter wrongly admits (an attacker's loot)."""
        found = []
        for _ in range(trials):
            probe = rng.randrange(10**9)
            if probe not in key_set and bf.may_contain(probe):
                found.append(probe)
        return found

    def test_no_false_negatives_under_salt(self):
        keys = random.Random(3).sample(range(10**9), 2000)
        bf = BloomFilter.from_keys_and_bits(keys, num_bits=20000, salt=SALT)
        assert all(bf.may_contain(k) for k in keys)

    def test_salt_goes_stale_after_rekey(self):
        """The attack the salt defeats: learned FPs die on rebuild."""
        rng = random.Random(4)
        keys = rng.sample(range(10**9), 2000)
        unsalted = BloomFilter.from_keys_and_bits(keys, num_bits=12000)
        learned = self._learned_fps(unsalted, set(keys), rng)
        assert len(learned) > 50  # ~6% FPR: plenty to learn
        # Replay against the unsalted filter: deterministic, 100% hits.
        assert all(unsalted.may_contain(k) for k in learned)
        # Rebuild with a salt: each learned key survives only at the
        # design FPR, so the vast majority go stale.
        salted = BloomFilter.from_keys_and_bits(
            keys, num_bits=12000, salt=SALT
        )
        survivors = sum(salted.may_contain(k) for k in learned)
        assert survivors < len(learned) / 2

    def test_scalar_batch_parity_with_salt(self):
        keys = list(range(0, 3000, 7))
        bf = BloomFilter.from_keys_and_bits(keys, num_bits=8192, salt=SALT)
        probes = np.arange(5000, dtype=np.uint64)
        bulk = bf.may_contain_many_ints(probes)
        for i, probe in enumerate(probes):
            assert bulk[i] == bf.may_contain(int(probe))

    def test_bulk_add_matches_scalar_add_with_salt(self):
        keys = list(range(0, 2000, 3))
        scalar = BloomFilter(4096, 5, salt=SALT)
        bulk = BloomFilter(4096, 5, salt=SALT)
        for key in keys:
            scalar.add(key)
        bulk.add_many_ints(np.asarray(keys, dtype=np.uint64))
        for probe in range(4000):
            assert scalar.may_contain(probe) == bulk.may_contain(probe)

    def test_invalid_salt_rejected(self):
        with pytest.raises(FilterBuildError):
            BloomFilter(100, 2, salt=1 << 64)
        with pytest.raises(FilterBuildError):
            BloomFilter(100, 2, salt=-1)

    def test_union_requires_matching_salt(self):
        a = BloomFilter.from_keys_and_bits(range(10), num_bits=512, salt=SALT)
        b = BloomFilter.from_keys_and_bits(range(10), num_bits=512, salt=1)
        with pytest.raises(FilterBuildError):
            a.union(b)


class TestBloomSerializationVersioning:
    def test_salt_zero_writes_legacy_rbf1(self):
        bf = BloomFilter.from_keys_and_bits(range(100), num_bits=2000)
        assert bf.to_bytes().startswith(b"RBF1")

    def test_nonzero_salt_writes_rbf2(self):
        bf = BloomFilter.from_keys_and_bits(
            range(100), num_bits=2000, salt=SALT
        )
        assert bf.to_bytes().startswith(b"RBF2")

    def test_salted_roundtrip_preserves_salt_and_verdicts(self):
        bf = BloomFilter.from_keys_and_bits(
            range(100), num_bits=2000, salt=SALT
        )
        restored = BloomFilter.from_bytes(bf.to_bytes())
        assert restored.salt == SALT
        for probe in range(500):
            assert restored.may_contain(probe) == bf.may_contain(probe)

    def test_legacy_rbf1_loads_as_salt_zero(self):
        legacy = BloomFilter.from_keys_and_bits(range(100), num_bits=2000)
        restored = BloomFilter.from_bytes(legacy.to_bytes())
        assert restored.salt == 0
        assert all(restored.may_contain(k) for k in range(100))

    def test_truncated_rbf2_rejected(self):
        payload = BloomFilter.from_keys_and_bits(
            range(10), num_bits=256, salt=SALT
        ).to_bytes()
        with pytest.raises(SerializationError):
            BloomFilter.from_bytes(payload[:20])  # cut inside the salt

    def test_rbf2_with_zero_salt_rejected(self):
        payload = bytearray(
            BloomFilter.from_keys_and_bits(
                range(10), num_bits=256, salt=SALT
            ).to_bytes()
        )
        payload[16:24] = b"\x00" * 8  # the salt field
        with pytest.raises(SerializationError):
            BloomFilter.from_bytes(bytes(payload))


# ----------------------------------------------------------------------
# Salted adapters: Rosetta, point Bloom, cuckoo, quotient
# ----------------------------------------------------------------------
def _populated(filt, keys):
    filt.populate(keys)
    return filt


class TestSaltedAdapters:
    KEYS = sorted(random.Random(5).sample(range(1 << 24), 500))

    @pytest.mark.parametrize(
        "make",
        [
            lambda salt: RosettaFilter(
                key_bits=24, bits_per_key=14.0, max_range=32, salt=salt
            ),
            lambda salt: BloomPointFilter(
                key_bits=24, bits_per_key=10.0, salt=salt
            ),
            lambda salt: CuckooFilter(
                key_bits=24, bits_per_key=12.0, salt=salt
            ),
            lambda salt: QuotientFilter(
                key_bits=24, bits_per_key=12.0, salt=salt
            ),
        ],
        ids=["rosetta", "bloom", "cuckoo", "quotient"],
    )
    def test_roundtrip_preserves_salt_and_membership(self, make):
        filt = _populated(make(SALT), self.KEYS)
        restored = type(filt).deserialize(filt.serialize())
        assert restored.salt == SALT
        assert all(restored.may_contain(k) for k in self.KEYS)
        rng = random.Random(6)
        for _ in range(300):
            probe = rng.randrange(1 << 24)
            assert restored.may_contain(probe) == filt.may_contain(probe)

    @pytest.mark.parametrize(
        "make",
        [
            lambda salt: CuckooFilter(key_bits=24, bits_per_key=12.0, salt=salt),
            lambda salt: QuotientFilter(key_bits=24, bits_per_key=12.0, salt=salt),
        ],
        ids=["cuckoo", "quotient"],
    )
    def test_legacy_payload_loads_as_salt_zero(self, make):
        """Pre-salting payloads carry no trailer and load as salt 0."""
        unsalted = _populated(make(0), self.KEYS)
        salted = _populated(make(SALT), self.KEYS)
        legacy_payload = unsalted.serialize()
        # The salt rides as an 8-byte trailer: same payload, +8 bytes.
        assert len(salted.serialize()) == len(legacy_payload) + 8
        restored = type(unsalted).deserialize(legacy_payload)
        assert restored.salt == 0
        assert all(restored.may_contain(k) for k in self.KEYS)

    def test_rosetta_salted_ranges_no_false_negatives(self):
        filt = _populated(
            RosettaFilter(key_bits=24, bits_per_key=14.0, max_range=32, salt=SALT),
            self.KEYS,
        )
        for key in self.KEYS[:100]:
            assert filt.may_contain_range(key, min(key + 31, (1 << 24) - 1))

    def test_rosetta_scalar_batch_parity_with_salt(self):
        filt = _populated(
            RosettaFilter(key_bits=24, bits_per_key=14.0, max_range=32, salt=SALT),
            self.KEYS,
        )
        rng = random.Random(7)
        points = [rng.randrange(1 << 24) for _ in range(200)]
        assert filt.may_contain_batch(points) == [
            filt.may_contain(p) for p in points
        ]
        lows = [rng.randrange((1 << 24) - 32) for _ in range(100)]
        highs = [lo + 31 for lo in lows]
        assert filt.may_contain_range_batch(lows, highs) == [
            filt.may_contain_range(lo, hi) for lo, hi in zip(lows, highs)
        ]

    def test_bloom_point_scalar_batch_parity_with_salt(self):
        filt = _populated(
            BloomPointFilter(key_bits=24, bits_per_key=10.0, salt=SALT),
            self.KEYS,
        )
        rng = random.Random(8)
        points = [rng.randrange(1 << 24) for _ in range(300)]
        assert filt.may_contain_batch(points) == [
            filt.may_contain(p) for p in points
        ]


# ----------------------------------------------------------------------
# Structural filters refuse salts at every layer
# ----------------------------------------------------------------------
class TestStructuralSaltRejection:
    def test_surf_ctor_rejects_salt(self):
        with pytest.raises(FilterBuildError, match="cannot be salted"):
            SurfFilter(key_bits=32, salt=SALT)

    def test_factory_rejects_salt_for_structural_recipe(self):
        factory = make_factory("surf", 32, 10.0)
        assert not factory.salt_capable
        with pytest.raises(FilterBuildError, match="cannot be salted"):
            factory.build([1, 2, 3], salt=SALT)

    def test_factory_salt_capability_flags(self):
        assert make_factory("bloom", 32, 10.0).salt_capable
        assert make_factory("rosetta", 32, 14, max_range=32).salt_capable
        assert make_factory("cuckoo", 32, 12.0).salt_capable
        assert make_factory("quotient", 32, 12.0).salt_capable

    def test_plain_builder_without_salt_parameter(self):
        factory = FilterFactory(
            "opaque", lambda keys: _populated(
                BloomPointFilter(key_bits=24), list(keys)
            )
        )
        assert not factory.salt_capable
        factory.build([1, 2, 3])  # salt 0: fine
        with pytest.raises(FilterBuildError):
            factory.build([1, 2, 3], salt=SALT)

    def test_dboptions_reject_salt_seed_with_structural_factory(self):
        options = DBOptions(
            key_bits=32,
            filter_factory=make_factory("surf", 32, 10.0),
            filter_salt_seed=SALT,
        )
        with pytest.raises(InvalidOptionsError, match="not salt-capable"):
            options.validate()

    def test_dboptions_accept_salt_seed_with_hashed_factory(self):
        options = DBOptions(
            key_bits=32,
            filter_factory=make_factory("bloom", 32, 10.0),
            filter_salt_seed=SALT,
        )
        options.validate()
        assert options.filter_salt_seed == SALT

    def test_dboptions_salt_seed_range_checked(self):
        with pytest.raises(InvalidOptionsError):
            DBOptions(key_bits=32, filter_salt_seed=1 << 64).validate()

    def test_dboptions_quarantine_knobs_validated(self):
        with pytest.raises(InvalidOptionsError):
            DBOptions(key_bits=32, quarantine_fpr_multiple=1.0).validate()
        with pytest.raises(InvalidOptionsError):
            DBOptions(key_bits=32, quarantine_min_probes=0).validate()


# ----------------------------------------------------------------------
# One observed-FPR convention everywhere
# ----------------------------------------------------------------------
class TestObservedFprConvention:
    def test_helper_definition(self):
        assert observed_fpr(0, 0) == 0.0
        assert observed_fpr(0, 10) == 0.0
        assert observed_fpr(1, 3) == 0.25
        assert observed_fpr(5, 0) == 1.0

    def test_perf_stats_matches_helper(self):
        stats = PerfStats()
        stats.add(filter_false_positives=3, filter_negatives=9)
        assert stats.observed_fpr == observed_fpr(3, 9)

    def test_tracker_matches_helper(self):
        tracker = WorkloadTracker()
        for _ in range(9):
            tracker.record_filter_outcome(False, False)  # true negatives
        for _ in range(3):
            tracker.record_filter_outcome(True, False)  # false positives
        assert tracker.observed_false_positive_rate == observed_fpr(3, 9)
        # All three consumers now agree by construction.
        stats = PerfStats()
        stats.add(filter_false_positives=3, filter_negatives=9)
        assert tracker.observed_false_positive_rate == stats.observed_fpr
