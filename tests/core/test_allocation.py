"""Unit tests for memory allocation across Rosetta levels (§2.3-2.4)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.allocation import (
    HYBRID_SMALL_RANGE_CUTOFF,
    STRATEGIES,
    allocate,
)
from repro.core.bloom import fpr_for_bits
from repro.errors import AllocationError

N = 10_000
M = 22 * N


class TestCommonInvariants:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_budget_respected(self, strategy):
        alloc = allocate(strategy, num_keys=N, total_bits=M, max_height=6)
        assert alloc.num_levels == 7
        assert all(bits >= 0 for bits in alloc.bits_per_level)
        assert alloc.total_bits == pytest.approx(M, rel=0.001)

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_zero_budget(self, strategy):
        alloc = allocate(strategy, num_keys=N, total_bits=0, max_height=4)
        assert alloc.total_bits == 0

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_zero_keys(self, strategy):
        alloc = allocate(strategy, num_keys=0, total_bits=M, max_height=4)
        assert alloc.total_bits == 0

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_single_level_tree(self, strategy):
        alloc = allocate(strategy, num_keys=N, total_bits=M, max_height=0)
        assert alloc.num_levels == 1
        assert alloc.bits_per_level[0] == pytest.approx(M, rel=0.001)

    def test_unknown_strategy(self):
        with pytest.raises(AllocationError):
            allocate("nope", num_keys=N, total_bits=M, max_height=3)

    def test_invalid_arguments(self):
        with pytest.raises(AllocationError):
            allocate("uniform", num_keys=-1, total_bits=M, max_height=3)
        with pytest.raises(AllocationError):
            allocate("uniform", num_keys=N, total_bits=-1, max_height=3)
        with pytest.raises(AllocationError):
            allocate("uniform", num_keys=N, total_bits=M, max_height=-1)


class TestUniform:
    def test_equal_split(self):
        alloc = allocate("uniform", num_keys=N, total_bits=70_000, max_height=6)
        assert max(alloc.bits_per_level) - min(alloc.bits_per_level) <= 7


class TestSingle:
    def test_everything_at_leaf(self):
        alloc = allocate("single", num_keys=N, total_bits=M, max_height=6)
        assert alloc.bits_per_level[0] == M
        assert all(bits == 0 for bits in alloc.bits_per_level[1:])


class TestEquilibrium:
    def test_upper_levels_equal(self):
        alloc = allocate("equilibrium", num_keys=N, total_bits=M, max_height=6)
        upper = alloc.bits_per_level[1:]
        assert max(upper) - min(upper) <= 1
        assert alloc.bits_per_level[0] > upper[0]

    def test_stationary_fpr_identity(self):
        """phi*(2 - eps) ~= 1 for the solved allocation (§2.3)."""
        alloc = allocate("equilibrium", num_keys=N, total_bits=M, max_height=6)
        eps = fpr_for_bits(N, alloc.bits_per_level[0])
        phi = fpr_for_bits(N, alloc.bits_per_level[1])
        # The exact identity holds pre-rounding/rescaling; allow slack.
        assert phi * (2 - eps) == pytest.approx(1.0, rel=0.15)

    def test_large_budget_gives_tiny_leaf_fpr(self):
        alloc = allocate("equilibrium", num_keys=N, total_bits=64 * N, max_height=4)
        assert fpr_for_bits(N, alloc.bits_per_level[0]) < 1e-6


class TestOptimized:
    def test_leaf_gets_most(self):
        alloc = allocate("optimized", num_keys=N, total_bits=M, max_height=6)
        assert alloc.bits_per_level[0] == max(alloc.bits_per_level)

    def test_monotone_in_height(self):
        alloc = allocate("optimized", num_keys=N, total_bits=M, max_height=6)
        bits = alloc.bits_per_level
        assert all(a >= b for a, b in zip(bits, bits[1:]))

    def test_tight_budget_zeroes_top_levels(self):
        alloc = allocate("optimized", num_keys=N, total_bits=4 * N, max_height=8)
        assert alloc.bits_per_level[-1] == 0
        assert alloc.bits_per_level[0] > 0

    def test_histogram_shifts_allocation(self):
        small = allocate(
            "optimized", num_keys=N, total_bits=M, max_height=6,
            range_size_histogram={2: 100},
        )
        large = allocate(
            "optimized", num_keys=N, total_bits=M, max_height=6,
            range_size_histogram={64: 100},
        )
        # A small-range workload never probes high levels: they get nothing.
        assert small.bits_per_level[0] > large.bits_per_level[0]
        assert small.bits_per_level[6] == 0


class TestVariable:
    def test_pushes_bits_below_optimized(self):
        optimized = allocate("optimized", num_keys=N, total_bits=M, max_height=6)
        variable = allocate("variable", num_keys=N, total_bits=M, max_height=6)
        assert variable.bits_per_level[0] >= optimized.bits_per_level[0]
        assert variable.bits_per_level[-1] <= optimized.bits_per_level[-1]

    def test_can_empty_upper_levels(self):
        alloc = allocate("variable", num_keys=N, total_bits=6 * N, max_height=8)
        assert alloc.bits_per_level[-1] == 0


class TestHybrid:
    def test_small_ranges_resolve_to_single(self):
        alloc = allocate(
            "hybrid", num_keys=N, total_bits=M, max_height=6,
            range_size_histogram={8: 90, 64: 10},
        )
        assert alloc.strategy == "single"

    def test_large_ranges_resolve_to_variable(self):
        alloc = allocate(
            "hybrid", num_keys=N, total_bits=M, max_height=6,
            range_size_histogram={64: 90, 8: 10},
        )
        assert alloc.strategy == "variable"

    def test_cutoff_boundary(self):
        at_cutoff = allocate(
            "hybrid", num_keys=N, total_bits=M, max_height=6,
            range_size_histogram={HYBRID_SMALL_RANGE_CUTOFF: 1},
        )
        above_cutoff = allocate(
            "hybrid", num_keys=N, total_bits=M, max_height=6,
            range_size_histogram={HYBRID_SMALL_RANGE_CUTOFF + 1: 1},
        )
        assert at_cutoff.strategy == "single"
        assert above_cutoff.strategy == "variable"

    def test_no_histogram_defaults_to_variable(self):
        alloc = allocate("hybrid", num_keys=N, total_bits=M, max_height=6)
        assert alloc.strategy == "variable"


@settings(max_examples=60)
@given(
    strategy=st.sampled_from(STRATEGIES),
    num_keys=st.integers(min_value=1, max_value=100_000),
    bits_per_key=st.floats(min_value=0.5, max_value=64),
    max_height=st.integers(min_value=0, max_value=10),
)
def test_property_allocation_feasible(strategy, num_keys, bits_per_key, max_height):
    """Any strategy: non-negative levels summing (almost) to the budget."""
    total_bits = int(bits_per_key * num_keys)
    alloc = allocate(
        strategy, num_keys=num_keys, total_bits=total_bits, max_height=max_height
    )
    assert len(alloc.bits_per_level) == max_height + 1
    assert all(bits >= 0 for bits in alloc.bits_per_level)
    assert abs(alloc.total_bits - total_bits) <= max(8, 0.01 * total_bits)
