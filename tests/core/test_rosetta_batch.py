"""Tests for Rosetta's vectorized batch point lookups and describe()."""

import numpy as np
import pytest

from repro.core.rosetta import Rosetta
from repro.errors import FilterQueryError


@pytest.fixture
def filt(small_keys):
    return Rosetta.build(small_keys, key_bits=32, bits_per_key=14, max_range=32)


class TestBatchPointLookups:
    def test_matches_scalar(self, filt, rng):
        probes = [rng.randrange(1 << 32) for _ in range(2000)]
        batch = filt.may_contain_batch(probes)
        for probe, verdict in zip(probes, batch):
            assert verdict == filt.may_contain(probe)

    def test_no_false_negatives(self, filt, small_keys):
        assert filt.may_contain_batch(small_keys).all()

    def test_empty_batch(self, filt):
        assert filt.may_contain_batch([]).tolist() == []

    def test_empty_filter(self):
        filt = Rosetta.build([], key_bits=16, bits_per_key=10)
        assert not filt.may_contain_batch([1, 2, 3]).any()

    def test_stats_counted(self, filt):
        filt.stats.reset()
        filt.may_contain_batch(np.arange(100, dtype=np.uint64))
        assert filt.stats.point_queries == 100
        assert filt.stats.bloom_probes == 100

    def test_domain_validation(self, filt):
        with pytest.raises(FilterQueryError):
            filt.may_contain_batch([1 << 33])

    def test_wide_domain_rejected(self):
        filt = Rosetta.build([1 << 70], key_bits=96, bits_per_key=12)
        with pytest.raises(FilterQueryError):
            filt.may_contain_batch([1])

    def test_throughput_advantage(self, filt, rng):
        """The batch path must actually be faster than the scalar loop."""
        import time

        probes = np.asarray(
            [rng.randrange(1 << 32) for _ in range(5000)], dtype=np.uint64
        )
        start = time.perf_counter()
        filt.may_contain_batch(probes)
        batch_time = time.perf_counter() - start
        start = time.perf_counter()
        for probe in probes[:500]:
            filt.may_contain(int(probe))
        scalar_time = (time.perf_counter() - start) * 10  # extrapolate
        assert batch_time < scalar_time


class TestDescribe:
    def test_mentions_every_level(self, filt):
        text = filt.describe()
        assert f"{filt.num_levels} levels" in text
        assert len(text.splitlines()) == 2 + filt.num_levels

    def test_empty_levels_marked(self, small_keys):
        filt = Rosetta.build(
            small_keys, key_bits=32, bits_per_key=20, max_range=64,
            strategy="single",
        )
        text = filt.describe()
        assert "empty" in text
        assert "single" in text
