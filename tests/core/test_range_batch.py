"""Tests for vectorized batch range lookups."""

import numpy as np
import pytest

from repro.core.rosetta import Rosetta
from repro.errors import FilterQueryError


def _queries(rng, count, size):
    lows = [rng.randrange((1 << 32) - size) for _ in range(count)]
    return lows, [low + size - 1 for low in lows]


class TestSingleLevelFastPath:
    @pytest.fixture
    def filt(self, small_keys):
        return Rosetta.build(
            small_keys, key_bits=32, bits_per_key=18, max_range=32,
            strategy="single",
        )

    def test_matches_scalar(self, filt, rng):
        lows, highs = _queries(rng, 300, 16)
        batch = filt.may_contain_range_batch(lows, highs)
        for low, high, verdict in zip(lows, highs, batch):
            assert verdict == filt.may_contain_range(low, high)

    def test_no_false_negatives(self, filt, small_keys):
        lows = [max(0, k - 3) for k in small_keys[:300]]
        highs = [k + 3 for k in small_keys[:300]]
        assert filt.may_contain_range_batch(lows, highs).all()

    def test_probe_accounting(self, filt):
        filt.stats.reset()
        filt.may_contain_range_batch([0, 100], [7, 115])
        assert filt.stats.range_queries == 2
        assert filt.stats.bloom_probes == 8 + 16

    def test_high_clamped_to_domain(self, filt):
        result = filt.may_contain_range_batch(
            [(1 << 32) - 4], [(1 << 32) + 100]
        )
        assert len(result) == 1

    def test_invalid_inputs(self, filt):
        with pytest.raises(FilterQueryError):
            filt.may_contain_range_batch([5], [4])
        with pytest.raises(FilterQueryError):
            filt.may_contain_range_batch([1, 2], [3])

    def test_empty_batch(self, filt):
        assert filt.may_contain_range_batch([], []).tolist() == []


class TestMultiLevelFallback:
    def test_matches_scalar(self, small_keys, rng):
        filt = Rosetta.build(
            small_keys, key_bits=32, bits_per_key=18, max_range=32,
            strategy="equilibrium",
        )
        lows, highs = _queries(rng, 200, 16)
        batch = filt.may_contain_range_batch(lows, highs)
        # Scalar replay must agree (probing is deterministic).
        for low, high, verdict in zip(lows, highs, batch):
            assert verdict == filt.may_contain_range(low, high)

    def test_empty_filter(self):
        filt = Rosetta.build([], key_bits=16, bits_per_key=10)
        assert not filt.may_contain_range_batch([0, 5], [3, 9]).any()

    def test_returns_numpy_bool_array(self, small_keys):
        filt = Rosetta.build(small_keys, key_bits=32, bits_per_key=12)
        result = filt.may_contain_range_batch([0], [100])
        assert isinstance(result, np.ndarray)
        assert result.dtype == bool
