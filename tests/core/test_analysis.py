"""Unit tests for the §3 analytical models."""

import random

import pytest

from repro.core import analysis
from repro.core.bloom import fpr_for_bits
from repro.core.rosetta import Rosetta


class TestMemoryBounds:
    def test_rosetta_bound_formula(self):
        # 1.44 * n * log2(R / eps)
        value = analysis.rosetta_memory_bound_bits(1000, 64, 0.01)
        assert value == pytest.approx(1.4427 * 1000 * 12.644, rel=0.01)

    def test_goswami_below_rosetta(self):
        for fpr in (0.1, 0.01, 0.001):
            lower = analysis.goswami_lower_bound_bits(10_000, 64, fpr)
            achieved = analysis.rosetta_memory_bound_bits(10_000, 64, fpr)
            assert lower < achieved
            # "Within a constant factor": the ratio stays below ~2.
            assert achieved / max(lower, 1) < 2.5

    def test_zero_keys(self):
        assert analysis.goswami_lower_bound_bits(0, 64, 0.1) == 0.0
        assert analysis.rosetta_memory_bound_bits(0, 64, 0.1) == 0.0

    def test_equilibrium_filter_respects_bound(self):
        keys = random.Random(3).sample(range(1 << 32), 5000)
        filt = Rosetta.build(
            keys, key_bits=32, bits_per_key=24, max_range=64,
            strategy="equilibrium",
        )
        eps = fpr_for_bits(len(keys), filt.memory_breakdown()[0])
        bound = analysis.rosetta_memory_bound_bits(len(keys), 64, eps)
        # Actual memory should be within ~35% of the 1.44 bound.
        assert filt.size_in_bits() <= bound * 1.35

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            analysis.goswami_lower_bound_bits(10, 64, 0.0)
        with pytest.raises(ValueError):
            analysis.rosetta_memory_bound_bits(10, 0, 0.1)
        with pytest.raises(ValueError):
            analysis.rosetta_memory_bound_bits(-1, 64, 0.1)


class TestCompoundFpr:
    def test_leaf_only(self):
        assert analysis.compound_subtree_fpr([0.1]) == pytest.approx(0.1)

    def test_equilibrium_is_stationary(self):
        """phi = 1/(2 - eps) keeps the subtree FPR at eps (the §2.3 identity)."""
        eps = 0.02
        phi = 1.0 / (2.0 - eps)
        for height in (1, 3, 7):
            fprs = [eps] + [phi] * height
            assert analysis.compound_subtree_fpr(fprs) == pytest.approx(
                eps, rel=1e-9
            )

    def test_compounding_shrinks_fpr(self):
        flat = [0.2] * 6
        assert analysis.compound_subtree_fpr(flat) < 0.2 ** 2

    def test_always_positive_levels(self):
        # Levels at FPR ~1 pass through without changing much.
        assert analysis.compound_subtree_fpr([0.1, 0.999999]) == pytest.approx(
            0.19, rel=0.05
        )

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            analysis.compound_subtree_fpr([])

    def test_invalid_fpr(self):
        with pytest.raises(ValueError):
            analysis.compound_subtree_fpr([1.5])


class TestPredictRangeFpr:
    def test_monotone_in_range_size(self):
        fprs = [0.05] * 7
        assert analysis.predict_range_fpr(fprs, 64) >= analysis.predict_range_fpr(
            fprs, 4
        )

    def test_single_point(self):
        fprs = [0.03, 0.5, 0.5]
        assert analysis.predict_range_fpr(fprs, 1) == pytest.approx(0.03)

    def test_matches_measurement(self):
        """Analytical prediction within 2x of the measured FPR."""
        rng = random.Random(5)
        keys = rng.sample(range(1 << 32), 8000)
        filt = Rosetta.build(
            keys, key_bits=32, bits_per_key=14, max_range=32,
            strategy="uniform",
        )
        level_fprs = [
            min(fpr_for_bits(len(keys), bits), 0.999999)
            for bits in filt.memory_breakdown()
        ]
        key_set = set(keys)
        fp = trials = 0
        while trials < 1000:
            low = rng.randrange((1 << 32) - 16)
            if any(k in key_set for k in range(low, low + 16)):
                continue
            trials += 1
            fp += filt.may_contain_range(low, low + 15)
        measured = fp / trials
        predicted = analysis.predict_range_fpr(level_fprs, 16)
        assert predicted == pytest.approx(measured, rel=1.0, abs=0.02)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            analysis.predict_range_fpr([0.1], 0)
        with pytest.raises(ValueError):
            analysis.predict_range_fpr([0.1], 4, alignment=-1)


class TestProbeCostModel:
    def test_distribution_sums_to_one(self):
        total = sum(analysis.catalan_probe_distribution(0.3, max_terms=500))
        assert total == pytest.approx(1.0, abs=1e-6)

    def test_expected_probes_grow_with_fpr(self):
        assert analysis.expected_probes_per_interval(
            0.45
        ) > analysis.expected_probes_per_interval(0.1)

    def test_low_fpr_expected_probes_near_one(self):
        assert analysis.expected_probes_per_interval(0.001) == pytest.approx(
            1.0, rel=0.02
        )

    def test_range_cost_scales_with_log_range(self):
        small = analysis.expected_range_probe_cost(0.2, 4)
        large = analysis.expected_range_probe_cost(0.2, 256)
        assert large == pytest.approx(small * 4, rel=0.01)  # log ratio 8/2

    def test_bound_dominates_measurement(self):
        """Expected-probe model upper-bounds measured probes on empty ranges."""
        rng = random.Random(6)
        keys = rng.sample(range(1 << 32), 5000)
        filt = Rosetta.build(
            keys, key_bits=32, bits_per_key=10, max_range=64,
            strategy="uniform",
        )
        level_fprs = [
            fpr_for_bits(len(keys), bits) for bits in filt.memory_breakdown()
        ]
        worst = min(max(level_fprs), 0.49)
        key_set = set(keys)
        filt.stats.reset()
        trials = 0
        while trials < 300:
            low = rng.randrange((1 << 32) - 64)
            if any(k in key_set for k in range(low, low + 32)):
                continue
            trials += 1
            filt.may_contain_range(low, low + 31)
        measured = filt.stats.bloom_probes / trials
        bound = analysis.expected_range_probe_cost(worst, 32)
        assert measured <= bound * 1.5

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            analysis.expected_range_probe_cost(0.2, 0)
