"""Unit tests for the hash functions: determinism, agreement, dispersion."""

import numpy as np
import pytest

from repro.core.hashing import (
    bloom_indexes_array,
    double_hash_indexes,
    hash_bytes,
    hash_int,
    splitmix64,
    splitmix64_array,
)


class TestSplitmix:
    def test_deterministic(self):
        assert splitmix64(12345) == splitmix64(12345)

    def test_bijective_on_sample(self):
        outputs = {splitmix64(v) for v in range(10000)}
        assert len(outputs) == 10000

    def test_range(self):
        for value in (0, 1, 2**64 - 1):
            assert 0 <= splitmix64(value) < 2**64

    def test_scalar_matches_vectorized(self):
        values = np.arange(1000, dtype=np.uint64)
        vectorized = splitmix64_array(values)
        for value in (0, 1, 63, 999):
            assert splitmix64(value) == int(vectorized[value])


class TestHashInt:
    def test_seed_changes_output(self):
        assert hash_int(42, seed=1) != hash_int(42, seed=2)

    def test_wide_integers_supported(self):
        wide = (1 << 100) + 17
        assert 0 <= hash_int(wide) < 2**64
        assert hash_int(wide) != hash_int(wide + 1)

    def test_wide_not_equal_to_truncation(self):
        wide = 1 << 70
        assert hash_int(wide) != hash_int(wide & ((1 << 64) - 1))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            hash_int(-1)

    def test_dispersion(self):
        # Hash 10k consecutive ints; bucket into 64 bins; expect rough
        # uniformity (no bin more than 2x the mean).
        counts = [0] * 64
        for value in range(10000):
            counts[hash_int(value) % 64] += 1
        assert max(counts) < 2 * (10000 / 64)


class TestHashBytes:
    def test_deterministic(self):
        assert hash_bytes(b"hello") == hash_bytes(b"hello")

    def test_prefix_independence(self):
        # A string and its extension should not collide trivially.
        assert hash_bytes(b"abc") != hash_bytes(b"abcd")
        assert hash_bytes(b"") != hash_bytes(b"\x00")

    def test_long_input(self):
        payload = bytes(range(256)) * 10
        assert 0 <= hash_bytes(payload) < 2**64

    def test_seed_changes_output(self):
        assert hash_bytes(b"x", seed=1) != hash_bytes(b"x", seed=2)

    def test_single_bit_avalanche(self):
        base = hash_bytes(b"\x00" * 16)
        flipped = hash_bytes(b"\x00" * 15 + b"\x01")
        # At least a quarter of the 64 bits should differ.
        assert bin(base ^ flipped).count("1") > 16


class TestDoubleHashing:
    def test_yields_k_positions(self):
        positions = list(double_hash_indexes(12345, 67890, 7, 1024))
        assert len(positions) == 7
        assert all(0 <= p < 1024 for p in positions)

    def test_never_degenerates(self):
        # Even h2 = 0 must not produce a constant sequence.
        positions = list(double_hash_indexes(5, 0, 8, 64))
        assert len(set(positions)) > 1

    def test_scalar_matches_vectorized(self):
        h1 = np.asarray([111, 222, 333], dtype=np.uint64)
        h2 = np.asarray([444, 555, 666], dtype=np.uint64)
        matrix = bloom_indexes_array(h1, h2, 5, 509)
        for row, (a, b) in enumerate(zip(h1, h2)):
            expected = list(double_hash_indexes(int(a), int(b), 5, 509))
            assert matrix[row].tolist() == expected
