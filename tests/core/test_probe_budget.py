"""Tests for Rosetta's bounded-CPU mode (probe_budget).

The explicit CPU/FPR knob: a query may spend at most N Bloom probes; when
the budget runs out mid-doubt the answer degrades to a (sound) positive.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.rosetta import Rosetta


@pytest.fixture
def filt(small_keys):
    return Rosetta.build(
        small_keys, key_bits=32, bits_per_key=16, max_range=64,
        strategy="equilibrium",
    )


class TestProbeBudget:
    def test_zero_budget_always_positive(self, filt):
        assert filt.may_contain_range(0, 63, probe_budget=0)

    def test_generous_budget_matches_unbounded(self, filt, small_keys):
        rng = random.Random(11)
        for _ in range(100):
            low = rng.randrange((1 << 32) - 64)
            high = low + rng.randrange(0, 64)
            unbounded = filt.may_contain_range(low, high)
            bounded = filt.may_contain_range(low, high, probe_budget=10_000)
            assert bounded == unbounded

    def test_budget_respected(self, filt):
        rng = random.Random(12)
        for budget in (1, 4, 16):
            before = filt.stats.bloom_probes
            filt.may_contain_range(
                rng.randrange(1 << 31), rng.randrange(1 << 31) + (1 << 31),
                probe_budget=budget,
            )
            spent = filt.stats.bloom_probes - before
            assert spent <= budget

    def test_no_false_negatives_under_any_budget(self, filt, small_keys):
        rng = random.Random(13)
        for key in rng.sample(small_keys, 100):
            for budget in (1, 3, 10, 100):
                assert filt.may_contain_range(
                    max(0, key - 10), key + 10, probe_budget=budget
                )

    def test_smaller_budget_higher_fpr(self, small_keys):
        """Less CPU -> more false positives: the tradeoff, quantified."""
        filt = Rosetta.build(
            small_keys, key_bits=32, bits_per_key=18, max_range=64,
            strategy="single",
        )
        key_set = set(small_keys)
        rng = random.Random(14)
        positives = {2: 0, 64: 0}
        trials = 0
        while trials < 300:
            low = rng.randrange((1 << 32) - 64)
            if any(k in key_set for k in range(low, low + 32)):
                continue
            trials += 1
            for budget in positives:
                positives[budget] += filt.may_contain_range(
                    low, low + 31, probe_budget=budget
                )
        assert positives[2] >= positives[64]


@settings(max_examples=80, deadline=None)
@given(
    keys=st.sets(st.integers(min_value=0, max_value=65535), min_size=1,
                 max_size=40),
    low=st.integers(min_value=0, max_value=65535),
    size=st.integers(min_value=1, max_value=64),
    budget=st.integers(min_value=0, max_value=64),
)
def test_property_budgeted_queries_sound(keys, low, size, budget):
    """A budgeted answer may only differ from unbounded as False->True."""
    filt = Rosetta.build(keys, key_bits=16, bits_per_key=12, max_range=32)
    high = min(low + size - 1, 65535)
    if low > high:
        return
    unbounded = filt.may_contain_range(low, high)
    bounded = filt.may_contain_range(low, high, probe_budget=budget)
    if unbounded:
        assert bounded  # can never turn a positive into a negative
