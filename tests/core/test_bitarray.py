"""Unit tests for the NumPy-backed bit array."""

import numpy as np
import pytest

from repro.core.bitarray import BitArray
from repro.errors import SerializationError


class TestBasics:
    def test_new_array_is_all_zero(self):
        bits = BitArray(100)
        assert all(not bits.test(i) for i in range(100))
        assert bits.popcount() == 0

    def test_set_and_test_single_bit(self):
        bits = BitArray(100)
        bits.set(37)
        assert bits.test(37)
        assert not bits.test(36)
        assert not bits.test(38)

    def test_clear_bit(self):
        bits = BitArray(64)
        bits.set(10)
        bits.clear(10)
        assert not bits.test(10)

    def test_set_is_idempotent(self):
        bits = BitArray(64)
        bits.set(5)
        bits.set(5)
        assert bits.popcount() == 1

    def test_word_boundary_bits(self):
        bits = BitArray(256)
        for index in (0, 63, 64, 127, 128, 255):
            bits.set(index)
        for index in (0, 63, 64, 127, 128, 255):
            assert bits.test(index)
        assert bits.popcount() == 6

    def test_len_and_num_bits(self):
        bits = BitArray(77)
        assert len(bits) == 77
        assert bits.num_bits == 77

    def test_zero_size_array(self):
        bits = BitArray(0)
        assert len(bits) == 0
        assert bits.popcount() == 0
        assert bits.fill_ratio() == 0.0

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            BitArray(-1)

    def test_index_out_of_range(self):
        bits = BitArray(10)
        with pytest.raises(IndexError):
            bits.test(10)
        with pytest.raises(IndexError):
            bits.set(-1)

    def test_getitem_setitem(self):
        bits = BitArray(8)
        bits[3] = True
        assert bits[3]
        bits[3] = False
        assert not bits[3]


class TestBulkOps:
    def test_set_many_matches_scalar(self):
        scalar = BitArray(1000)
        bulk = BitArray(1000)
        indexes = [0, 5, 64, 64, 999, 313]  # includes a duplicate
        for index in indexes:
            scalar.set(index)
        bulk.set_many(np.asarray(indexes, dtype=np.uint64))
        assert scalar == bulk

    def test_set_many_duplicate_words(self):
        bits = BitArray(128)
        bits.set_many(np.asarray([1, 2, 3, 4, 5], dtype=np.uint64))
        assert bits.popcount() == 5

    def test_test_many(self):
        bits = BitArray(200)
        bits.set(17)
        bits.set(150)
        result = bits.test_many(np.asarray([17, 18, 150, 0], dtype=np.uint64))
        assert result.tolist() == [True, False, True, False]

    def test_empty_bulk_ops(self):
        bits = BitArray(64)
        bits.set_many(np.asarray([], dtype=np.uint64))
        assert bits.test_many(np.asarray([], dtype=np.uint64)).tolist() == []

    def test_fill_ratio(self):
        bits = BitArray(100)
        for index in range(25):
            bits.set(index)
        assert bits.fill_ratio() == pytest.approx(0.25)

    def test_union_with(self):
        a = BitArray(64)
        b = BitArray(64)
        a.set(1)
        b.set(2)
        a.union_with(b)
        assert a.test(1) and a.test(2)
        assert not b.test(1)

    def test_union_size_mismatch(self):
        with pytest.raises(ValueError):
            BitArray(64).union_with(BitArray(128))


class TestSerialization:
    def test_roundtrip(self):
        bits = BitArray(300)
        for index in (0, 1, 64, 299):
            bits.set(index)
        restored = BitArray.from_bytes(bits.to_bytes())
        assert restored == bits

    def test_roundtrip_empty(self):
        assert BitArray.from_bytes(BitArray(0).to_bytes()) == BitArray(0)

    def test_truncated_header_rejected(self):
        with pytest.raises(SerializationError):
            BitArray.from_bytes(b"\x01\x02")

    def test_truncated_body_rejected(self):
        payload = BitArray(128).to_bytes()
        with pytest.raises(SerializationError):
            BitArray.from_bytes(payload[:-3])

    def test_equality_semantics(self):
        a, b = BitArray(10), BitArray(10)
        assert a == b
        a.set(3)
        assert a != b
        assert a != "not a bitarray"
