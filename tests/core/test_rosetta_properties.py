"""Property-based tests for Rosetta's core guarantee: no false negatives.

A range filter may err only one way — claiming a possibly-empty range is
non-empty.  These hypothesis suites hammer that invariant across random key
sets, domains, budgets, strategies, and query shapes, and cross-check the
filter against an exact oracle.
"""

import bisect

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.allocation import STRATEGIES
from repro.core.rosetta import Rosetta

_key_sets = st.lists(
    st.integers(min_value=0, max_value=(1 << 16) - 1),
    min_size=1,
    max_size=60,
    unique=True,
)


def _oracle_nonempty(sorted_keys: list[int], low: int, high: int) -> bool:
    idx = bisect.bisect_left(sorted_keys, low)
    return idx < len(sorted_keys) and sorted_keys[idx] <= high


@settings(max_examples=150, deadline=None)
@given(
    keys=_key_sets,
    strategy=st.sampled_from(STRATEGIES),
    bits_per_key=st.floats(min_value=2, max_value=40),
    low=st.integers(min_value=0, max_value=(1 << 16) - 1),
    size=st.integers(min_value=1, max_value=200),
)
def test_never_false_negative_on_ranges(keys, strategy, bits_per_key, low, size):
    filt = Rosetta.build(
        keys, key_bits=16, bits_per_key=bits_per_key, max_range=64,
        strategy=strategy,
    )
    high = min(low + size - 1, (1 << 16) - 1)
    if low > high:
        return
    if _oracle_nonempty(sorted(keys), low, high):
        assert filt.may_contain_range(low, high)


@settings(max_examples=150, deadline=None)
@given(
    keys=_key_sets,
    strategy=st.sampled_from(STRATEGIES),
    probe=st.integers(min_value=0, max_value=(1 << 16) - 1),
)
def test_never_false_negative_on_points(keys, strategy, probe):
    filt = Rosetta.build(
        keys, key_bits=16, bits_per_key=12, max_range=32, strategy=strategy
    )
    if probe in set(keys):
        assert filt.may_contain(probe)


@settings(max_examples=100, deadline=None)
@given(
    keys=_key_sets,
    low=st.integers(min_value=0, max_value=(1 << 16) - 1),
    size=st.integers(min_value=1, max_value=128),
)
def test_tightened_range_is_sound(keys, low, size):
    """Tightening must keep every truly-present key inside the window."""
    filt = Rosetta.build(keys, key_bits=16, bits_per_key=16, max_range=64)
    high = min(low + size - 1, (1 << 16) - 1)
    if low > high:
        return
    result = filt.tightened_range(low, high)
    inside = [k for k in keys if low <= k <= high]
    if inside:
        assert result is not None
        eff_low, eff_high = result
        assert eff_low <= min(inside)
        assert eff_high >= max(inside)
        assert low <= eff_low and eff_high <= high


@settings(max_examples=80, deadline=None)
@given(keys=_key_sets, strategy=st.sampled_from(STRATEGIES))
def test_serialization_roundtrip_equivalence(keys, strategy):
    """A deserialized filter answers identically to the original."""
    filt = Rosetta.build(
        keys, key_bits=16, bits_per_key=8, max_range=16, strategy=strategy
    )
    restored = Rosetta.from_bytes(filt.to_bytes())
    for probe in list(keys)[:10] + [0, (1 << 16) - 1, 777]:
        assert restored.may_contain(probe) == filt.may_contain(probe)
    for low in (0, 100, 60000):
        assert restored.may_contain_range(low, low + 15) == filt.may_contain_range(
            low, low + 15
        )


@settings(max_examples=80, deadline=None)
@given(
    keys=_key_sets,
    bits_per_key=st.floats(min_value=4, max_value=32),
)
def test_memory_budget_respected(keys, bits_per_key):
    filt = Rosetta.build(keys, key_bits=16, bits_per_key=bits_per_key)
    budget = bits_per_key * len(set(keys))
    assert abs(filt.size_in_bits() - budget) <= max(16, budget * 0.01)
