"""Unit tests for Monkey-style cross-run filter memory allocation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.monkey import (
    MonkeyBudgetPolicy,
    allocate_run_budgets,
    expected_false_positive_ios,
)
from repro.errors import AllocationError


class TestAllocateRunBudgets:
    def test_budget_respected(self):
        budgets = allocate_run_budgets([1000, 10_000, 100_000], 1_000_000)
        assert sum(budgets) == 1_000_000
        assert all(b >= 0 for b in budgets)

    def test_smaller_runs_get_more_bits_per_key(self):
        sizes = [1000, 100_000]
        budgets = allocate_run_budgets(sizes, 10 * sum(sizes))
        assert budgets[0] / sizes[0] > budgets[1] / sizes[1]

    def test_equal_runs_split_equally(self):
        budgets = allocate_run_budgets([5000, 5000], 100_000)
        assert abs(budgets[0] - budgets[1]) <= 1

    def test_zero_size_runs_get_nothing(self):
        budgets = allocate_run_budgets([0, 1000, 0], 10_000)
        assert budgets[0] == 0
        assert budgets[2] == 0
        assert budgets[1] == 10_000

    def test_zero_budget(self):
        assert allocate_run_budgets([100, 200], 0) == [0, 0]

    def test_tiny_budget_prefers_small_run(self):
        # With almost no memory, all of it goes to the cheapest-to-protect
        # (smallest) run.
        budgets = allocate_run_budgets([100, 1_000_000], 1000)
        assert budgets[0] > budgets[1]

    def test_invalid_arguments(self):
        with pytest.raises(AllocationError):
            allocate_run_budgets([100], -1)
        with pytest.raises(AllocationError):
            allocate_run_budgets([-5], 100)


class TestExpectedFalsePositiveIos:
    def test_matches_bloom_formula(self):
        # One run, 10 bits/key: exp(-10 * ln2^2) ~= 0.00819.
        cost = expected_false_positive_ios([1000], [10_000])
        assert cost == pytest.approx(0.00819, rel=0.01)

    def test_sums_over_runs(self):
        single = expected_false_positive_ios([1000], [10_000])
        double = expected_false_positive_ios([1000, 1000], [10_000, 10_000])
        assert double == pytest.approx(2 * single)

    def test_mismatched_lengths(self):
        with pytest.raises(AllocationError):
            expected_false_positive_ios([1], [1, 2])


class TestMonkeyBudgetPolicy:
    def test_skewed_layout_beats_uniform(self):
        policy = MonkeyBudgetPolicy(total_bits_per_key=10)
        improvement = policy.improvement_over_uniform([1000, 10_000, 100_000])
        assert improvement > 1.5

    def test_balanced_layout_no_gain(self):
        policy = MonkeyBudgetPolicy(total_bits_per_key=10)
        assert policy.improvement_over_uniform([5000, 5000]) == pytest.approx(
            1.0, abs=0.01
        )

    def test_budgets_for_layout_shape(self):
        policy = MonkeyBudgetPolicy(total_bits_per_key=12)
        per_run = policy.budgets_for_layout([1000, 100_000])
        assert per_run[0] > per_run[1] > 0
        # Weighted mean equals the global budget.
        total = per_run[0] * 1000 + per_run[1] * 100_000
        assert total / 101_000 == pytest.approx(12, rel=0.01)

    def test_empty_layout(self):
        policy = MonkeyBudgetPolicy()
        assert policy.improvement_over_uniform([]) == 1.0


@settings(max_examples=80)
@given(
    sizes=st.lists(st.integers(min_value=1, max_value=10**6), min_size=1,
                   max_size=8),
    bits_per_key=st.floats(min_value=1, max_value=30),
)
def test_property_monkey_never_worse_than_uniform(sizes, bits_per_key):
    """The optimal allocation can never lose to the uniform one."""
    pool = int(bits_per_key * sum(sizes))
    tuned = allocate_run_budgets(sizes, pool)
    assert sum(tuned) == pool
    uniform = [int(pool * size / sum(sizes)) for size in sizes]
    tuned_cost = expected_false_positive_ios(sizes, tuned)
    uniform_cost = expected_false_positive_ios(sizes, uniform)
    assert tuned_cost <= uniform_cost * 1.001
