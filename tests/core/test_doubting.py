"""Equivalence properties of the frontier doubting engine.

The engine (:mod:`repro.core.doubting`) replaces the reference recursion
behind every Rosetta range-query path; these tests pin its contract:

* ``may_contain_range`` (engine, exact mode), ``may_contain_range_batch``
  with ``dedup=False``, and ``may_contain_range_recursive`` (the pre-change
  path) agree on every verdict *and* on ``ProbeStats.bloom_probes``;
* ``dedup=True`` batches agree on verdicts;
* ``probe_budget`` semantics (deadline, budget-exhausted positive) are
  identical across all three;
* ``tightened_range`` returns the same bounds as the recursive scan;
* edge cases: empty filter, zero-bit (always-positive) levels,
  ``max_range=1``, domain clamping.

Randomization is seeded; the combined strategy sweep covers well over the
1000 queries the acceptance bar asks for.
"""

import numpy as np
import pytest

from repro.core import doubting
from repro.core.bloom import BloomFilter
from repro.core.rosetta import Rosetta

STRATEGIES = ("optimized", "single", "equilibrium", "uniform")

KEY_BITS = 32
MAX_RANGE = 32
QUERIES_PER_STRATEGY = 300


def _build(keys, strategy, bits_per_key=16, max_range=MAX_RANGE):
    return Rosetta.build(
        keys,
        key_bits=KEY_BITS,
        bits_per_key=bits_per_key,
        max_range=max_range,
        strategy=strategy,
    )


def _mixed_ranges(rng, keys, count, max_range=MAX_RANGE):
    """Ranges of every size class, half of them hugging stored keys."""
    domain_max = (1 << KEY_BITS) - 1
    lows, highs = [], []
    for i in range(count):
        size = rng.choice((1, 2, 3, max(1, max_range // 2), max_range))
        if i % 2 == 0:
            anchor = rng.choice(keys)
            low = max(0, anchor - rng.randrange(size + 2))
        else:
            low = rng.randrange(domain_max - size)
        lows.append(low)
        highs.append(min(low + size - 1, domain_max))
    return lows, highs


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_batch_scalar_recursive_agree(strategy, small_keys, rng):
    """Verdicts and probe counts match across all three paths."""
    filt = _build(small_keys, strategy)
    lows, highs = _mixed_ranges(rng, small_keys, QUERIES_PER_STRATEGY)

    reference = []
    per_query_probes = []
    for low, high in zip(lows, highs):
        before = filt.stats.bloom_probes
        reference.append(filt.may_contain_range_recursive(low, high))
        per_query_probes.append(filt.stats.bloom_probes - before)

    for low, high, want, probes in zip(lows, highs, reference, per_query_probes):
        before = filt.stats.bloom_probes
        assert filt.may_contain_range(low, high) == want
        assert filt.stats.bloom_probes - before == probes

    filt.stats.reset()
    exact = filt.may_contain_range_batch(lows, highs, dedup=False)
    assert exact.tolist() == reference
    assert filt.stats.bloom_probes == sum(per_query_probes)
    assert filt.stats.range_queries == len(lows)

    deduped = filt.may_contain_range_batch(lows, highs)
    assert deduped.tolist() == reference


@pytest.mark.parametrize("strategy", ("optimized", "single"))
def test_probe_budget_equivalence(strategy, small_keys, rng):
    """Budgeted answers and charges match the recursive deadline exactly."""
    filt = _build(small_keys, strategy)
    lows, highs = _mixed_ranges(rng, small_keys, 120)
    for budget in (1, 2, 4, 16):
        reference = []
        per_query_probes = []
        for low, high in zip(lows, highs):
            filt.stats.reset()
            reference.append(
                filt.may_contain_range_recursive(low, high, probe_budget=budget)
            )
            per_query_probes.append(filt.stats.bloom_probes)
        for low, high, want, probes in zip(
            lows, highs, reference, per_query_probes
        ):
            filt.stats.reset()
            assert filt.may_contain_range(low, high, probe_budget=budget) == want
            assert filt.stats.bloom_probes == probes
        filt.stats.reset()
        batch = filt.may_contain_range_batch(lows, highs, probe_budget=budget)
        assert batch.tolist() == reference
        assert filt.stats.bloom_probes == sum(per_query_probes)


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_tightened_range_matches_recursive(strategy, small_keys, rng):
    """Engine-extracted bounds equal the recursive left/right scans."""
    filt = _build(small_keys, strategy)
    lows, highs = _mixed_ranges(rng, small_keys, 150)
    for low, high in zip(lows, highs):
        assert filt.tightened_range(low, high) == filt.tightened_range_recursive(
            low, high
        )


def test_no_false_negatives(small_keys, rng):
    """Every range containing a stored key answers True in every mode."""
    filt = _build(small_keys, "optimized")
    lows = [max(0, k - 2) for k in small_keys[:200]]
    highs = [k + 2 for k in small_keys[:200]]
    assert filt.may_contain_range_batch(lows, highs).all()
    assert filt.may_contain_range_batch(lows, highs, dedup=False).all()
    for low, high in zip(lows[:50], highs[:50]):
        assert filt.tightened_range(low, high) is not None


def test_empty_filter():
    filt = Rosetta.build([], key_bits=16, bits_per_key=10)
    assert not filt.may_contain_range(0, 9)
    assert not filt.may_contain_range_batch([0, 5], [3, 9]).any()
    assert filt.tightened_range(0, 9) is None


def test_max_range_one(small_keys, rng):
    """max_range=1 degenerates to point probes; all paths still agree."""
    filt = _build(small_keys, "optimized", max_range=1)
    assert filt.num_levels == 1
    lows, highs = _mixed_ranges(rng, small_keys, 200, max_range=1)
    reference = [
        filt.may_contain_range_recursive(lo, hi) for lo, hi in zip(lows, highs)
    ]
    assert filt.may_contain_range_batch(lows, highs).tolist() == reference
    assert (
        filt.may_contain_range_batch(lows, highs, dedup=False).tolist()
        == reference
    )


def test_zero_bit_levels_probe_free(small_keys):
    """'single' zeroes every non-leaf level; those doubts cost no probes."""
    filt = _build(small_keys, "single")
    assert any(level.is_always_positive for level in filt.levels)
    filt.stats.reset()
    filt.may_contain_range_batch([0, 100], [7, 115])
    # Only leaf probes are charged: one per key of each range.
    assert filt.stats.bloom_probes == 8 + 16


def test_domain_clamp(small_keys):
    filt = _build(small_keys, "optimized")
    domain_max = (1 << KEY_BITS) - 1
    batch = filt.may_contain_range_batch([domain_max - 3], [domain_max + 100])
    assert batch.tolist() == [filt.may_contain_range(domain_max - 3, domain_max)]


def test_tighten_across_stacks_matches_scalar(small_keys, rng):
    """The multi-stack sweep equals per-filter scalar tightening."""
    filters = [
        _build(rng.sample(small_keys, 500), strategy)
        for strategy in ("optimized", "single", "equilibrium")
    ]
    for _ in range(40):
        low = rng.randrange((1 << KEY_BITS) - MAX_RANGE)
        high = low + rng.randrange(MAX_RANGE)
        tightened, outcome = doubting.tighten_across_stacks(
            [f.levels for f in filters],
            [f.key_bits for f in filters],
            low,
            high,
        )
        for filt, got in zip(filters, tightened):
            assert got == filt.tightened_range_recursive(low, high)
        assert outcome.bulk_probe_calls > 0


def test_survivor_indexes_match_bulk_probe(small_keys):
    """BloomFilter.survivor_indexes == nonzero(may_contain_many_ints)."""
    filt = BloomFilter(num_bits=4096, num_hashes=4)
    filt.add_many_ints(np.asarray(small_keys[:500], dtype=np.uint64))
    probe = np.asarray(small_keys[:1000], dtype=np.uint64)
    survivors = filt.survivor_indexes(probe)
    expected = np.nonzero(filt.may_contain_many_ints(probe))[0]
    assert np.array_equal(survivors, expected)


# ---------------------------------------------------------------------------
# Closed-form dyadic decomposition parity (vs. the scalar greedy walk)
# ---------------------------------------------------------------------------

_U64_TOP = (1 << 64) - 1


def _parity_case(lo, hi, max_height, budget):
    got = doubting._decompose_chunk_closed(lo, hi, max_height, budget)
    want = doubting._decompose_chunk_reference(lo, hi, max_height, budget)
    assert got == want, (lo, hi, max_height, budget)


def test_decompose_closed_matches_reference_exhaustive():
    """Every (cursor, high, height, budget) over a small domain agrees."""
    for max_height in range(5):
        for lo in range(24):
            for hi in range(lo, 24):
                for budget in (1, 2, 5, 100):
                    _parity_case(lo, hi, max_height, budget)


def test_decompose_closed_matches_reference_random(rng):
    for _ in range(2000):
        bits = rng.choice([8, 16, 32, 48, 63, 64])
        max_height = rng.choice([0, 1, bits // 2, bits, bits + 3])
        hi = rng.randrange(1 << bits)
        lo = rng.randrange(hi + 1)
        budget = rng.choice([1, 10, 1 << 8, 1 << 16, 1 << 40])
        _parity_case(lo, hi, max_height, budget)


def test_decompose_closed_uint64_edges():
    """The 2**64 - 1 bound and full-domain cover never overflow."""
    top = _U64_TOP
    for lo in (0, 1, top - 1, top, 1 << 63):
        for hi in (1 << 63, top - 1, top):
            if lo > hi:
                continue
            for max_height in (0, 1, 32, 64, 65, 80):
                for budget in (1, 1 << 16, 1 << 70):
                    _parity_case(lo, hi, max_height, budget)
    # Full domain under a taller-than-64 tree: exactly one height-64 block.
    segments, cursor, leaves = doubting._decompose_chunk_closed(
        0, top, 66, 1 << 70
    )
    assert segments == [(64, 0, 1)]
    assert cursor == 1 << 64 and leaves == 1 << 64


def test_decompose_batch_matches_reference(rng):
    """The batched closed form returns each query's full scalar cover."""
    for _ in range(200):
        cursors, highs, tops = [], [], []
        for _ in range(rng.randrange(1, 40)):
            bits = rng.choice([4, 8, 16, 32, 48, 63, 64])
            hi = rng.randrange(1 << bits)
            lo = rng.randrange(hi + 1)
            cursors.append(lo)
            highs.append(hi)
            tops.append(rng.choice([0, 1, 2, bits // 2, min(bits, 63)]))
        covers = doubting._decompose_batch(cursors, highs, tops)
        for lo, hi, top, got in zip(cursors, highs, tops, covers):
            span = hi - lo + 1
            want = doubting._decompose_chunk_reference(lo, hi, top, span)[0]
            assert got == want, (lo, hi, top)


def test_decompose_batch_uint64_edges():
    cursors = [0, _U64_TOP - 1, _U64_TOP, 0, 7]
    highs = [_U64_TOP, _U64_TOP, _U64_TOP, 1 << 63, _U64_TOP]
    tops = [63, 63, 0, 40, 0]
    covers = doubting._decompose_batch(cursors, highs, tops)
    for lo, hi, top, got in zip(cursors, highs, tops, covers):
        span = hi - lo + 1
        want = doubting._decompose_chunk_reference(lo, hi, top, span)[0]
        assert got == want, (lo, hi, top)


def test_decompose_dispatcher_budget_and_progress():
    """The dispatcher front door keeps the walk's budget semantics."""
    # Budget-cut call: exactly the scalar result, cursor mid-range.
    segments, cursor, leaves = doubting._decompose_chunk(3, 1 << 20, 8, 64)
    assert segments == doubting._decompose_chunk_reference(3, 1 << 20, 8, 64)[0]
    assert cursor <= (1 << 20) and leaves >= 64
    # Degenerate calls make no progress and emit nothing.
    assert doubting._decompose_chunk(5, 4, 3, 10) == ([], 5, 0)
    assert doubting._decompose_chunk_closed(5, 4, 3, 10) == ([], 5, 0)
    assert doubting._decompose_chunk_closed(0, 100, 4, 0) == ([], 0, 0)
