"""Tests for filter union (merge without rebuild) and self-prediction."""

import random

import pytest

from repro.core import analysis
from repro.core.bloom import BloomFilter
from repro.core.rosetta import Rosetta
from repro.errors import FilterBuildError


class TestBloomUnion:
    def test_union_covers_both_inputs(self):
        a = BloomFilter.from_keys_and_bits(range(0, 100), num_bits=4096)
        b = BloomFilter.from_keys_and_bits(range(100, 200), num_bits=4096,
                                           num_hashes=a.num_hashes)
        merged = a.union(b)
        assert all(merged.may_contain(k) for k in range(200))
        assert merged.num_items == a.num_items + b.num_items

    def test_union_equals_joint_build(self):
        """Same geometry + same hashes => union is bit-identical to a
        filter built over the concatenated keys."""
        a = BloomFilter(2048, 4)
        b = BloomFilter(2048, 4)
        joint = BloomFilter(2048, 4)
        for key in range(0, 300, 2):
            a.add(key)
            joint.add(key)
        for key in range(1, 300, 2):
            b.add(key)
            joint.add(key)
        merged = a.union(b)
        for probe in range(1000):
            assert merged.may_contain(probe) == joint.may_contain(probe)

    def test_geometry_mismatch_rejected(self):
        with pytest.raises(FilterBuildError):
            BloomFilter(100, 2).union(BloomFilter(200, 2))
        with pytest.raises(FilterBuildError):
            BloomFilter(100, 2).union(BloomFilter(100, 3))


class TestRosettaUnion:
    def _pair(self, rng):
        keys_a = rng.sample(range(1 << 24), 2000)
        keys_b = rng.sample(range(1 << 24), 2000)
        # Identical geometry: same n and budget -> same per-level sizes.
        a = Rosetta.build(keys_a, key_bits=24, total_bits=40_000,
                          max_range=32, strategy="uniform")
        b = Rosetta.build(keys_b, key_bits=24, total_bits=40_000,
                          max_range=32, strategy="uniform")
        return keys_a, keys_b, a, b

    def test_union_has_no_false_negatives(self, rng):
        keys_a, keys_b, a, b = self._pair(rng)
        merged = a.union(b)
        for key in keys_a[:200] + keys_b[:200]:
            assert merged.may_contain(key)
            assert merged.may_contain_range(max(0, key - 3), key + 3)

    def test_union_key_count(self, rng):
        _, _, a, b = self._pair(rng)
        assert a.union(b).num_keys == a.num_keys + b.num_keys

    def test_union_fpr_worse_than_fresh_build(self, rng):
        """The documented tradeoff: union >= rebuild FPR at equal memory."""
        keys_a, keys_b, a, b = self._pair(rng)
        merged = a.union(b)
        rebuilt = Rosetta.build(
            keys_a + keys_b, key_bits=24, total_bits=80_000,
            max_range=32, strategy="uniform",
        )
        key_set = set(keys_a) | set(keys_b)
        union_fp = rebuilt_fp = trials = 0
        while trials < 800:
            low = rng.randrange((1 << 24) - 8)
            if any(k in key_set for k in range(low, low + 8)):
                continue
            trials += 1
            union_fp += merged.may_contain_range(low, low + 7)
            rebuilt_fp += rebuilt.may_contain_range(low, low + 7)
        assert union_fp >= rebuilt_fp

    def test_geometry_mismatch_rejected(self, rng):
        keys = rng.sample(range(1 << 24), 100)
        a = Rosetta.build(keys, key_bits=24, bits_per_key=10, max_range=32)
        b = Rosetta.build(keys, key_bits=24, bits_per_key=10, max_range=8)
        with pytest.raises(FilterBuildError):
            a.union(b)


class TestSelfPrediction:
    def test_prediction_close_to_measurement(self, small_keys):
        filt = Rosetta.build(small_keys, key_bits=32, bits_per_key=14,
                             max_range=32, strategy="uniform")
        predicted = filt.predicted_range_fpr(16)
        key_set = set(small_keys)
        rng = random.Random(23)
        fp = trials = 0
        while trials < 1500:
            low = rng.randrange((1 << 32) - 16)
            if any(k in key_set for k in range(low, low + 16)):
                continue
            trials += 1
            fp += filt.may_contain_range(low, low + 15)
        measured = fp / trials
        assert predicted == pytest.approx(measured, rel=0.8, abs=0.02)

    def test_prediction_monotone_in_range(self, small_keys):
        filt = Rosetta.build(small_keys, key_bits=32, bits_per_key=14)
        assert filt.predicted_range_fpr(64) >= filt.predicted_range_fpr(2)


class TestNonUniformTheory:
    def test_theta_prime_formula(self):
        theta = analysis.nonuniform_theta([0.1, 0.2])
        assert theta == pytest.approx((0.25 - 0.2 * 0.9) ** 0.5)

    def test_supercritical_rejected(self):
        with pytest.raises(ValueError):
            analysis.nonuniform_theta([0.01, 0.45])  # 0.45*0.99 > 1/4

    def test_nonuniform_bound_dominates_uniform(self):
        """Equal FPRs: the non-uniform bound reduces to the uniform one."""
        uniform = analysis.expected_range_probe_cost(0.2, 32)
        via_nonuniform = analysis.expected_range_probe_cost_nonuniform(
            [0.2, 0.2, 0.2], 32
        )
        assert via_nonuniform == pytest.approx(uniform, rel=1e-6)

    def test_nonuniform_bound_covers_measurement(self, small_keys):
        from repro.core.bloom import fpr_for_bits

        # Uniform at 18 bits/key keeps every level subcritical
        # (p ~= 0.24, p_max*(1-p_min) ~= 0.18 < 1/4).
        filt = Rosetta.build(small_keys, key_bits=32, bits_per_key=18,
                             max_range=32, strategy="uniform")
        level_fprs = [
            min(max(fpr_for_bits(len(set(small_keys)), bits), 1e-6), 0.49)
            for bits in filt.memory_breakdown()
        ]
        bound = analysis.expected_range_probe_cost_nonuniform(level_fprs, 32)
        key_set = set(small_keys)
        rng = random.Random(24)
        filt.stats.reset()
        trials = 0
        while trials < 200:
            low = rng.randrange((1 << 32) - 32)
            if any(k in key_set for k in range(low, low + 32)):
                continue
            trials += 1
            filt.may_contain_range(low, low + 31)
        measured = filt.stats.bloom_probes / trials
        assert measured <= bound * 1.5
