"""Unit tests for workload tracking and the §2.4 auto-tuner."""

import pytest

from repro.core.tuning import AutoTuner, TuningDecision, WorkloadTracker


class TestWorkloadTracker:
    def test_range_histogram(self):
        tracker = WorkloadTracker()
        for _ in range(3):
            tracker.record_range_query(8)
        tracker.record_range_query(64)
        assert tracker.range_size_histogram == {8: 3, 64: 1}
        assert tracker.num_range_queries == 4

    def test_point_counting(self):
        tracker = WorkloadTracker()
        tracker.record_point_query()
        tracker.record_point_query()
        assert tracker.num_point_queries == 2

    def test_invalid_range_size(self):
        with pytest.raises(ValueError):
            WorkloadTracker().record_range_query(0)

    def test_fpr_accounting(self):
        tracker = WorkloadTracker()
        tracker.record_filter_outcome(True, True)    # true positive
        tracker.record_filter_outcome(True, False)   # false positive
        tracker.record_filter_outcome(False, False)  # negative
        tracker.record_filter_outcome(False, False)
        # Rejectable-query convention: FP / (FP + negatives); the true
        # positive does not enter the denominator.
        assert tracker.observed_false_positive_rate == pytest.approx(1 / 3)

    def test_fpr_with_no_data(self):
        assert WorkloadTracker().observed_false_positive_rate == 0.0

    def test_merge(self):
        a, b = WorkloadTracker(), WorkloadTracker()
        a.record_range_query(4)
        b.record_range_query(4)
        b.record_range_query(32)
        b.record_point_query()
        a.merge(b)
        assert a.range_size_histogram == {4: 2, 32: 1}
        assert a.num_point_queries == 1

    def test_reset(self):
        tracker = WorkloadTracker()
        tracker.record_range_query(4)
        tracker.record_point_query()
        tracker.reset()
        assert tracker.num_range_queries == 0
        assert tracker.num_point_queries == 0

    def test_dominant_small_ranges(self):
        tracker = WorkloadTracker()
        for _ in range(60):
            tracker.record_range_query(8)
        for _ in range(40):
            tracker.record_range_query(128)
        assert tracker.dominant_small_ranges()

    def test_dominant_small_ranges_negative(self):
        tracker = WorkloadTracker()
        for _ in range(40):
            tracker.record_range_query(8)
        for _ in range(60):
            tracker.record_range_query(128)
        assert not tracker.dominant_small_ranges()

    def test_dominant_small_ranges_empty(self):
        assert not WorkloadTracker().dominant_small_ranges()

    def test_percentile(self):
        tracker = WorkloadTracker()
        for size in (2, 2, 2, 2, 2, 2, 2, 2, 2, 100):
            tracker.record_range_query(size)
        assert tracker.percentile_range_size(0.5) == 2
        assert tracker.percentile_range_size(1.0) == 100

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            WorkloadTracker().percentile_range_size(0.0)
        assert WorkloadTracker().percentile_range_size(0.9) == 1


class TestAutoTuner:
    def test_small_range_workload_goes_single(self):
        tracker = WorkloadTracker()
        for _ in range(100):
            tracker.record_range_query(8)
        decision = AutoTuner().recommend(tracker)
        assert decision.strategy == "single"
        assert decision.max_range == 8

    def test_large_range_workload_goes_variable(self):
        tracker = WorkloadTracker()
        for _ in range(100):
            tracker.record_range_query(100)
        decision = AutoTuner().recommend(tracker)
        assert decision.strategy == "variable"
        assert decision.max_range == 128  # next power of two

    def test_point_only_workload_goes_single_level_one(self):
        tracker = WorkloadTracker()
        for _ in range(50):
            tracker.record_point_query()
        decision = AutoTuner().recommend(tracker)
        assert decision.strategy == "single"
        assert decision.max_range == 1

    def test_no_data_uses_default(self):
        decision = AutoTuner().recommend(WorkloadTracker(), default_max_range=256)
        assert decision.strategy == "optimized"
        assert decision.max_range == 256

    def test_range_cap(self):
        tracker = WorkloadTracker()
        tracker.record_range_query(10**6)
        decision = AutoTuner(range_cap=512).recommend(tracker)
        assert decision.max_range == 512

    def test_coverage_quantile_ignores_outliers(self):
        tracker = WorkloadTracker()
        for _ in range(99):
            tracker.record_range_query(16)
        tracker.record_range_query(10**6)
        decision = AutoTuner(coverage=0.95).recommend(tracker)
        assert decision.max_range == 16

    def test_build_kwargs_shape(self):
        decision = TuningDecision(
            strategy="variable", max_range=64, range_size_histogram={32: 5}
        )
        kwargs = decision.build_kwargs()
        assert kwargs == {
            "strategy": "variable",
            "max_range": 64,
            "range_size_histogram": {32: 5},
        }

    def test_build_kwargs_empty_histogram_becomes_none(self):
        decision = TuningDecision(strategy="single", max_range=8)
        assert decision.build_kwargs()["range_size_histogram"] is None

    def test_invalid_tuner_parameters(self):
        with pytest.raises(ValueError):
            AutoTuner(coverage=0.0)
        with pytest.raises(ValueError):
            AutoTuner(range_cap=0)
