"""Unit tests for dyadic decomposition, including hypothesis properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dyadic import DyadicInterval, decompose, max_intervals_for_range


class TestDyadicInterval:
    def test_bounds(self):
        block = DyadicInterval(prefix=2, height=3)
        assert block.low() == 16
        assert block.high() == 23
        assert block.size == 8

    def test_leaf_block(self):
        block = DyadicInterval(prefix=42, height=0)
        assert block.low() == block.high() == 42
        assert block.size == 1


class TestDecompose:
    def test_paper_example(self):
        # range(8, 12) -> [8, 11] (prefix 10*, height 2) and [12, 12]
        # (the Fig. 3 example in a 4-bit domain).
        blocks = list(decompose(8, 12, max_height=4))
        assert blocks == [
            DyadicInterval(prefix=2, height=2),
            DyadicInterval(prefix=12, height=0),
        ]

    def test_single_point(self):
        assert list(decompose(5, 5, 10)) == [DyadicInterval(5, 0)]

    def test_aligned_power_of_two(self):
        assert list(decompose(16, 31, 10)) == [DyadicInterval(1, 4)]

    def test_fully_misaligned(self):
        blocks = list(decompose(1, 14, 10))
        # [1] [2,3] [4,7] [8,11] [12,13] [14]
        assert [b.size for b in blocks] == [1, 2, 4, 4, 2, 1]

    def test_covers_exactly(self):
        blocks = list(decompose(100, 227, 10))
        covered = []
        for block in blocks:
            covered.extend(range(block.low(), block.high() + 1))
        assert covered == list(range(100, 228))

    def test_max_height_cap(self):
        blocks = list(decompose(0, 63, max_height=2))
        assert all(b.height <= 2 for b in blocks)
        assert sum(b.size for b in blocks) == 64

    def test_height_zero_cap_gives_single_points(self):
        blocks = list(decompose(10, 14, max_height=0))
        assert len(blocks) == 5
        assert all(b.height == 0 for b in blocks)

    def test_invalid_ranges(self):
        with pytest.raises(ValueError):
            list(decompose(5, 4, 3))
        with pytest.raises(ValueError):
            list(decompose(-1, 4, 3))
        with pytest.raises(ValueError):
            list(decompose(0, 4, -1))

    def test_zero_start(self):
        blocks = list(decompose(0, 6, 10))
        assert [b.size for b in blocks] == [4, 2, 1]


class TestIntervalBound:
    def test_bound_values(self):
        assert max_intervals_for_range(1) == 1
        assert max_intervals_for_range(2) == 2
        assert max_intervals_for_range(64) == 12

    def test_invalid(self):
        with pytest.raises(ValueError):
            max_intervals_for_range(0)


@settings(max_examples=300)
@given(
    low=st.integers(min_value=0, max_value=2**32),
    size=st.integers(min_value=1, max_value=4096),
    cap=st.integers(min_value=0, max_value=16),
)
def test_property_partition(low, size, cap):
    """Blocks are non-overlapping, ordered, within cap, and cover exactly."""
    high = low + size - 1
    blocks = list(decompose(low, high, cap))
    cursor = low
    for block in blocks:
        assert block.height <= cap
        assert block.low() == cursor  # contiguous, ordered, no overlap
        cursor = block.high() + 1
    assert cursor == high + 1


@settings(max_examples=200)
@given(
    low=st.integers(min_value=0, max_value=2**40),
    size=st.integers(min_value=1, max_value=2**16),
)
def test_property_block_count_bound(low, size):
    """At most 2*ceil(log2(size)) maximal blocks when the cap allows."""
    blocks = list(decompose(low, low + size - 1, max_height=64))
    assert len(blocks) <= max_intervals_for_range(size)


@settings(max_examples=200)
@given(
    low=st.integers(min_value=0, max_value=2**20),
    size=st.integers(min_value=1, max_value=512),
)
def test_property_prefix_identity(low, size):
    """Every block's prefix shifted back reproduces its low bound."""
    for block in decompose(low, low + size - 1, max_height=32):
        assert block.prefix << block.height == block.low()
