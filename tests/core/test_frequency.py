"""Unit tests for the access-frequency model g(r) (Eq. 1-2) and weights."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.frequency import (
    access_frequencies,
    cumulative_weights,
    expected_probe_bound,
    floor_log2,
    single_level_term,
    weighted_frequencies,
)


class TestFloorLog2:
    def test_values(self):
        assert floor_log2(1) == 0
        assert floor_log2(2) == 1
        assert floor_log2(3) == 1
        assert floor_log2(64) == 6
        assert floor_log2(65) == 6

    def test_invalid(self):
        with pytest.raises(ValueError):
            floor_log2(0)


class TestSingleLevelTerm:
    def test_below_top_is_one(self):
        # floor(log2 64) = 6; levels 0..5 contribute 1 each.
        for level in range(6):
            assert single_level_term(level, 64) == 1.0

    def test_at_top_power_of_two(self):
        # x == log2(R), R power of 2: (R - 2^x + 1) / 2^x = 1/2^x ... for
        # R=64, x=6: (64-64+1)/64 = 1/64.
        assert single_level_term(6, 64) == pytest.approx(1 / 64)

    def test_at_top_non_power(self):
        # R=100, top=6: (100-64+1)/64 = 37/64.
        assert single_level_term(6, 100) == pytest.approx(37 / 64)

    def test_above_top_is_zero(self):
        assert single_level_term(7, 64) == 0.0

    def test_invalid_level(self):
        with pytest.raises(ValueError):
            single_level_term(-1, 8)


class TestAccessFrequencies:
    def test_length(self):
        assert len(access_frequencies(64)) == 7
        assert len(access_frequencies(1)) == 1

    def test_monotone_decreasing_in_height(self):
        g = access_frequencies(512)
        assert all(a >= b for a, b in zip(g, g[1:]))

    def test_leaf_has_highest_frequency(self):
        g = access_frequencies(64)
        # g(0) = 6 + 1/64 (paper closed form for power-of-two R).
        assert g[0] == pytest.approx(6 + 1 / 64)
        assert g[6] == pytest.approx(1 / 64)

    def test_range_one(self):
        assert access_frequencies(1) == [1.0]

    def test_invalid(self):
        with pytest.raises(ValueError):
            access_frequencies(0)


class TestCumulativeWeights:
    def test_suffix_sums(self):
        assert cumulative_weights([3.0, 2.0, 1.0]) == [6.0, 3.0, 1.0]

    def test_single(self):
        assert cumulative_weights([5.0]) == [5.0]

    def test_weights_dominate_frequencies(self):
        g = access_frequencies(128)
        w = cumulative_weights(g)
        assert all(wi >= gi for wi, gi in zip(w, g))


class TestWeightedFrequencies:
    def test_single_size_histogram_matches_g(self):
        histogram = {32: 10}
        averaged = weighted_frequencies(histogram, max_height=5)
        g = access_frequencies(32)
        assert averaged[: len(g)] == pytest.approx(g)

    def test_empty_histogram_gives_uniform(self):
        assert weighted_frequencies({}, max_height=3) == [1.0] * 4

    def test_mixture_is_convex_combination(self):
        h1 = weighted_frequencies({8: 1}, 3)
        h2 = weighted_frequencies({16: 1}, 3)
        mixed = weighted_frequencies({8: 1, 16: 1}, 3)
        for a, b, m in zip(h1, h2, mixed):
            assert m == pytest.approx((a + b) / 2)

    def test_oversized_ranges_clamped(self):
        capped = weighted_frequencies({1024: 1}, max_height=3)
        direct = weighted_frequencies({8: 1}, max_height=3)
        assert capped == pytest.approx(direct)

    def test_invalid_entries(self):
        with pytest.raises(ValueError):
            weighted_frequencies({0: 1}, 3)
        with pytest.raises(ValueError):
            weighted_frequencies({4: -1}, 3)
        with pytest.raises(ValueError):
            weighted_frequencies({4: 1}, -1)


class TestExpectedProbeBound:
    def test_grows_with_range(self):
        assert expected_probe_bound(256, 0.25) > expected_probe_bound(4, 0.25)

    def test_shrinks_with_theta(self):
        assert expected_probe_bound(64, 0.4) < expected_probe_bound(64, 0.1)

    def test_invalid_theta(self):
        with pytest.raises(ValueError):
            expected_probe_bound(64, 0.0)
        with pytest.raises(ValueError):
            expected_probe_bound(64, 0.5)


@given(range_size=st.integers(min_value=1, max_value=1 << 20))
def test_property_g_nonnegative_and_decreasing(range_size):
    g = access_frequencies(range_size)
    assert all(value >= 0 for value in g)
    assert all(a >= b for a, b in zip(g, g[1:]))
