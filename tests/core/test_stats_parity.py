"""Scalar/batch accounting parity and range-validation edge cases.

Regression suite for two paper-fidelity bugs:

* A batch holding a single (live) query used to charge the bulk frontier's
  level-synchronous probe counts (8 probes / 2 intervals for ``[8, 12]`` on
  the Fig. 2 example) where the scalar path charged the sequential
  recursion's (3 / 1).  ``ProbeStats`` must not depend on which entry point
  issued a query.
* The engine internally skips queries whose clamped range is empty
  (``low > high``).  That skip must never leak out as a silent ``False``
  for *publicly inverted* ranges — every entry point raises
  :exc:`FilterQueryError` first.
"""

import pytest

from repro.core.allocation import STRATEGIES
from repro.core.rosetta import Rosetta
from repro.errors import FilterQueryError
from repro.filters.rosetta_adapter import RosettaFilter

TINY_KEYS = [3, 6, 7, 8, 9, 11]  # the paper's running example (Fig. 2)


def _tiny():
    return Rosetta.build(
        TINY_KEYS, key_bits=4, bits_per_key=24.0, max_range=8
    )


def _charges(rosetta, issue):
    """(verdict, bloom_probes, dyadic_intervals) deltas for one query."""
    probes, intervals = rosetta.stats.bloom_probes, rosetta.stats.dyadic_intervals
    verdict = issue(rosetta)
    return (
        verdict,
        rosetta.stats.bloom_probes - probes,
        rosetta.stats.dyadic_intervals - intervals,
    )


class TestSingleQueryParity:
    def test_tiny_example_pinned_charges(self):
        """[8, 12] on Fig. 2: 1 dyadic interval, 3 probes, on every path."""
        scalar = _charges(_tiny(), lambda r: r.may_contain_range(8, 12))
        recursive = _charges(
            _tiny(), lambda r: r.may_contain_range_recursive(8, 12)
        )
        batch = _charges(
            _tiny(), lambda r: bool(r.may_contain_range_batch([8], [12])[0])
        )
        assert scalar == recursive == batch == (True, 3, 1)

    def test_true_batches_keep_bulk_accounting(self):
        """Two live queries charge deduped frontier probes, not a replay."""
        first = _charges(_tiny(), lambda r: r.may_contain_range(8, 12))
        second = _charges(_tiny(), lambda r: r.may_contain_range(3, 7))
        rosetta = _tiny()
        verdicts = rosetta.may_contain_range_batch([8, 3], [12, 7])
        assert [bool(v) for v in verdicts] == [first[0], second[0]]
        # Bulk accounting: the level-synchronous frontier probes every
        # level's survivors (no per-interval early exit), so its charges
        # differ from the two sequential recursions' sum.
        scalar_probes = first[1] + second[1]
        scalar_intervals = first[2] + second[2]
        assert (rosetta.stats.bloom_probes, rosetta.stats.dyadic_intervals) != (
            scalar_probes,
            scalar_intervals,
        )

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_random_single_query_parity(self, strategy, rng, small_keys):
        rosetta = Rosetta.build(
            small_keys,
            key_bits=32,
            bits_per_key=14.0,
            max_range=64,
            strategy=strategy,
        )
        batch = Rosetta.from_bytes(rosetta.to_bytes())
        for _ in range(50):
            low = rng.randrange((1 << 32) - 64)
            high = low + rng.randrange(64)
            want = _charges(
                rosetta, lambda r: r.may_contain_range(low, high)
            )
            got = _charges(
                batch,
                lambda r: bool(r.may_contain_range_batch([low], [high])[0]),
            )
            assert got == want, (low, high)

    def test_batch_of_one_dead_query_among_live(self, small_keys):
        """Domain clamping may kill all but one query; parity still holds."""
        rosetta = Rosetta.build(
            small_keys, key_bits=32, bits_per_key=14.0, max_range=64
        )
        beyond = 1 << 40  # clamps to an empty range, skipped internally
        scalar = _charges(
            rosetta, lambda r: r.may_contain_range(small_keys[0], small_keys[0])
        )
        batched = _charges(
            rosetta,
            lambda r: r.may_contain_range_batch(
                [small_keys[0], beyond], [small_keys[0], beyond]
            ),
        )
        assert batched[0][0] and not batched[0][1]
        assert batched[1:] == scalar[1:]


class TestRangeValidation:
    """Inverted ranges raise; boundary ranges answer soundly."""

    def test_inverted_range_raises_everywhere(self):
        rosetta = _tiny()
        adapter = RosettaFilter(key_bits=4, bits_per_key=24.0, max_range=8)
        adapter.populate(TINY_KEYS)
        entry_points = [
            lambda: rosetta.may_contain_range(9, 5),
            lambda: rosetta.may_contain_range_recursive(9, 5),
            lambda: rosetta.tightened_range(9, 5),
            lambda: rosetta.tightened_range_recursive(9, 5),
            lambda: rosetta.may_contain_range_batch([9], [5]),
            lambda: adapter.may_contain_range(9, 5),
            lambda: adapter.tightened_range(9, 5),
            lambda: adapter.may_contain_range_batch([9], [5]),
        ]
        for issue in entry_points:
            with pytest.raises(FilterQueryError):
                issue()

    def test_inverted_pair_inside_live_batch_raises(self):
        """One bad pair poisons the whole batch — never a silent False."""
        rosetta = _tiny()
        with pytest.raises(FilterQueryError):
            rosetta.may_contain_range_batch([8, 9, 3], [12, 5, 7])

    def test_single_key_range(self):
        rosetta = _tiny()
        for key in TINY_KEYS:
            assert rosetta.may_contain_range(key, key)
            assert rosetta.may_contain_range_batch([key], [key])[0]
        # 5 is absent from the example keys and 4 is a dyadic boundary.
        assert not rosetta.may_contain_range(5, 5)
        assert not rosetta.may_contain_range_batch([5], [5])[0]

    def test_full_domain_range_clamps(self):
        """Out-of-domain endpoints clamp (not raise) when low <= high."""
        rosetta = _tiny()
        assert rosetta.may_contain_range(0, (1 << 4) - 1)
        assert rosetta.may_contain_range(0, 10**9)  # clamped to domain max
        assert list(
            rosetta.may_contain_range_batch([0], [10**9])
        ) == [True]
