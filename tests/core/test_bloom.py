"""Unit tests for the Bloom filter: no false negatives, FPR, sizing math."""

import math
import random

import numpy as np
import pytest

from repro.core.bloom import (
    BloomFilter,
    bits_for_fpr,
    fpr_for_bits,
    optimal_num_hashes,
)
from repro.errors import FilterBuildError, SerializationError


class TestSizingMath:
    def test_optimal_hashes_standard_points(self):
        assert optimal_num_hashes(10) == 7  # 10 ln2 = 6.93
        assert optimal_num_hashes(14.4) == 10
        assert optimal_num_hashes(1) == 1
        assert optimal_num_hashes(0) == 1

    def test_bits_for_fpr_matches_formula(self):
        n, p = 1000, 0.01
        expected = math.ceil(-n * math.log(p) / math.log(2) ** 2)
        assert bits_for_fpr(n, p) == expected

    def test_bits_for_fpr_edge_cases(self):
        assert bits_for_fpr(0, 0.5) == 0
        assert bits_for_fpr(100, 1.0) == 0
        with pytest.raises(ValueError):
            bits_for_fpr(100, 0.0)
        with pytest.raises(ValueError):
            bits_for_fpr(-1, 0.5)

    def test_fpr_for_bits_inverts_bits_for_fpr(self):
        n = 5000
        for target in (0.1, 0.01, 0.001):
            bits = bits_for_fpr(n, target)
            assert fpr_for_bits(n, bits) == pytest.approx(target, rel=0.02)

    def test_fpr_for_bits_degenerate(self):
        assert fpr_for_bits(0, 100) == 0.0
        assert fpr_for_bits(100, 0) == 1.0


class TestMembership:
    def test_no_false_negatives_ints(self):
        keys = random.Random(1).sample(range(10**9), 5000)
        bf = BloomFilter.from_keys_and_bits(keys, num_bits=50000)
        assert all(bf.may_contain(k) for k in keys)

    def test_no_false_negatives_bytes(self):
        keys = [f"key-{i}".encode() for i in range(1000)]
        bf = BloomFilter.from_keys_and_bits(keys, num_bits=10000)
        assert all(bf.may_contain(k) for k in keys)

    def test_empirical_fpr_close_to_theory(self):
        rng = random.Random(2)
        keys = rng.sample(range(10**12), 10000)
        bits = 10 * len(keys)
        bf = BloomFilter.from_keys_and_bits(keys, num_bits=bits)
        key_set = set(keys)
        trials = 20000
        fp = sum(
            bf.may_contain(k)
            for k in (rng.randrange(10**12) for _ in range(trials))
            if k not in key_set
        )
        measured = fp / trials
        theoretical = fpr_for_bits(len(keys), bits)  # ~0.0082
        assert measured == pytest.approx(theoretical, rel=0.5)

    def test_contains_dunder(self):
        bf = BloomFilter.from_keys_and_bits([1, 2, 3], num_bits=100)
        assert 2 in bf

    def test_rejects_unknown_types(self):
        bf = BloomFilter(100, 2)
        with pytest.raises(TypeError):
            bf.add(3.14)
        with pytest.raises(TypeError):
            bf.may_contain(["list"])

    def test_int_and_bytes_are_distinct_namespaces(self):
        bf = BloomFilter(10000, 4)
        bf.add(65)
        # The byte b"A" (ASCII 65) should not automatically be present.
        # (Not guaranteed absent — it's probabilistic — but hashes differ.)
        h_int = bf._base_hashes(65)
        h_bytes = bf._base_hashes(b"A")
        assert h_int != h_bytes


class TestZeroBitFilter:
    def test_always_positive(self):
        bf = BloomFilter(0, 1)
        assert bf.is_always_positive
        assert bf.may_contain(12345)
        bf.add(1)  # no-op, no crash
        assert bf.may_contain(99999)

    def test_vectorized_always_positive(self):
        bf = BloomFilter(0, 1)
        result = bf.may_contain_many_ints(np.asarray([1, 2, 3], dtype=np.uint64))
        assert result.all()

    def test_expected_fpr_is_one(self):
        assert BloomFilter(0, 1).expected_fpr() == 1.0


class TestVectorizedPaths:
    def test_bulk_add_matches_scalar_add(self):
        keys = list(range(0, 5000, 7))
        scalar = BloomFilter(4096, 5)
        bulk = BloomFilter(4096, 5)
        for key in keys:
            scalar.add(key)
        bulk.add_many_ints(np.asarray(keys, dtype=np.uint64))
        probes = list(range(10000))
        for p in probes:
            assert scalar.may_contain(p) == bulk.may_contain(p)

    def test_bulk_probe_matches_scalar_probe(self):
        keys = list(range(100))
        bf = BloomFilter.from_keys_and_bits(keys, num_bits=2048)
        probes = np.arange(500, dtype=np.uint64)
        bulk = bf.may_contain_many_ints(probes)
        for i, p in enumerate(probes):
            assert bulk[i] == bf.may_contain(int(p))

    def test_contains_batch_matches_scalar_probe(self):
        keys = list(range(0, 300, 3))
        bf = BloomFilter.from_keys_and_bits(keys, num_bits=4096)
        probes = np.arange(400, dtype=np.uint64)
        verdicts = bf.contains_batch(probes)
        for i, p in enumerate(probes):
            assert verdicts[i] == bf.may_contain(int(p))

    def test_contains_batch_duplicates_and_empty(self):
        bf = BloomFilter.from_keys_and_bits(range(50), num_bits=2048)
        dup = np.asarray([7, 7, 7, 9999, 7, 9999], dtype=np.uint64)
        verdicts = bf.contains_batch(dup)
        assert list(verdicts) == [bf.may_contain(int(v)) for v in dup]
        assert len(bf.contains_batch(np.zeros(0, dtype=np.uint64))) == 0

    def test_contains_batch_always_positive_filter(self):
        bf = BloomFilter(0, 1)  # zero bits -> degenerate always-positive
        assert bf.is_always_positive
        assert bf.contains_batch(np.arange(5, dtype=np.uint64)).all()

    def test_bulk_ops_on_64bit_extremes(self):
        keys = np.asarray([0, 2**63, 2**64 - 1], dtype=np.uint64)
        bf = BloomFilter(1024, 3)
        bf.add_many_ints(keys)
        assert bf.may_contain(0)
        assert bf.may_contain(2**63)
        assert bf.may_contain(2**64 - 1)


class TestConstructionAndSerialization:
    def test_from_fpr_produces_target(self):
        bf = BloomFilter.from_fpr(1000, 0.01)
        assert bf.num_bits == bits_for_fpr(1000, 0.01)
        assert bf.num_hashes == optimal_num_hashes(bf.num_bits / 1000)

    def test_invalid_num_hashes(self):
        with pytest.raises(FilterBuildError):
            BloomFilter(100, 0)

    def test_roundtrip(self):
        bf = BloomFilter.from_keys_and_bits(range(100), num_bits=2000)
        restored = BloomFilter.from_bytes(bf.to_bytes())
        assert restored.num_bits == bf.num_bits
        assert restored.num_hashes == bf.num_hashes
        assert restored.num_items == bf.num_items
        assert all(restored.may_contain(k) for k in range(100))

    def test_bad_magic_rejected(self):
        with pytest.raises(SerializationError):
            BloomFilter.from_bytes(b"XXXX" + b"\x00" * 32)

    def test_expected_fpr_tracks_fill(self):
        bf = BloomFilter(1000, 3)
        assert bf.expected_fpr() == 0.0
        for key in range(200):
            bf.add(key)
        assert 0.0 < bf.expected_fpr() < 1.0
