"""The lock-discipline lint catches what it claims to catch.

``tools/lint_locks.py`` runs in CI against the real db.py / compaction.py;
these tests pin its semantics with synthetic sources (a violation is
flagged, the documented escapes are honored) and assert the real tree is
currently clean — so a lock-discipline regression fails the test suite
even before CI runs the lint step.
"""

import importlib.util
import pathlib
import sys

_REPO = pathlib.Path(__file__).resolve().parents[2]
_spec = importlib.util.spec_from_file_location(
    "lint_locks", _REPO / "tools" / "lint_locks.py"
)
lint_locks = importlib.util.module_from_spec(_spec)
sys.modules["lint_locks"] = lint_locks  # dataclasses resolves via sys.modules
_spec.loader.exec_module(lint_locks)

Rule = lint_locks.Rule
check_source = lint_locks.check_source

_RULES = {
    "DB": {
        "_super": Rule(
            locks=frozenset({"_sv_lock"}), methods=frozenset({"__init__"})
        ),
        "_zombies": Rule(locks=frozenset({"_sv_lock"})),
    }
}


def test_unlocked_assignment_is_flagged():
    source = (
        "class DB:\n"
        "    def bad(self):\n"
        "        self._super = object()\n"
    )
    violations = check_source(source, rules=_RULES)
    assert len(violations) == 1
    violation = violations[0]
    assert (violation.cls, violation.method, violation.attr, violation.kind) == (
        "DB", "bad", "_super", "assign"
    )
    assert "_sv_lock" in str(violation)


def test_assignment_under_documented_lock_passes():
    source = (
        "class DB:\n"
        "    def good(self):\n"
        "        with self._sv_lock:\n"
        "            self._super = object()\n"
    )
    assert check_source(source, rules=_RULES) == []


def test_wrong_lock_does_not_count():
    source = (
        "class DB:\n"
        "    def sneaky(self):\n"
        "        with self._mutex:\n"
        "            self._super = object()\n"
    )
    assert len(check_source(source, rules=_RULES)) == 1


def test_lock_scope_ends_with_the_with_block():
    source = (
        "class DB:\n"
        "    def late(self):\n"
        "        with self._sv_lock:\n"
        "            pass\n"
        "        self._super = object()\n"
    )
    assert len(check_source(source, rules=_RULES)) == 1


def test_allowlisted_method_passes():
    source = (
        "class DB:\n"
        "    def __init__(self):\n"
        "        self._super = None\n"
    )
    assert check_source(source, rules=_RULES) == []


def test_in_place_mutation_is_flagged():
    source = (
        "class DB:\n"
        "    def bad(self):\n"
        "        self._zombies.append(1)\n"
    )
    violations = check_source(source, rules=_RULES)
    assert len(violations) == 1
    assert violations[0].kind == "mutate"


def test_other_classes_and_attrs_are_ignored():
    source = (
        "class Other:\n"
        "    def fine(self):\n"
        "        self._super = object()\n"
        "class DB:\n"
        "    def fine(self):\n"
        "        self._unrelated = object()\n"
    )
    assert check_source(source, rules=_RULES) == []


def test_closure_inherits_enclosing_method_allowlist():
    source = (
        "class DB:\n"
        "    def __init__(self):\n"
        "        def setup():\n"
        "            self._super = object()\n"
        "        setup()\n"
    )
    assert check_source(source, rules=_RULES) == []


def test_real_tree_is_clean():
    for relative in (
        "src/repro/lsm/db.py",
        "src/repro/lsm/compaction.py",
    ):
        violations = lint_locks.check_file(str(_REPO / relative))
        assert violations == [], "\n".join(str(v) for v in violations)
