"""Tests for tiered compaction, the scan iterator, and multi_get."""

import random

import pytest

from repro.bench.factories import make_factory
from repro.errors import InvalidOptionsError
from repro.lsm.db import DB
from repro.lsm.options import DBOptions


def _tiered_options(**overrides) -> DBOptions:
    options = DBOptions(
        key_bits=32,
        memtable_size_bytes=4 << 10,
        sst_size_bytes=16 << 10,
        max_bytes_for_level_base=64 << 10,
        block_size_bytes=1024,
        level_size_ratio=3,
        compaction_style="tiered",
    )
    for field, value in overrides.items():
        setattr(options, field, value)
    return options


class TestTieredCompaction:
    def test_style_validated(self):
        with pytest.raises(InvalidOptionsError):
            DBOptions(compaction_style="lazy").validate()
        DBOptions(compaction_style="tiered").validate()

    def test_multiple_groups_accumulate(self, tmp_path):
        db = DB(str(tmp_path / "tiered"), _tiered_options())
        for i in range(2000):
            db.put(i, bytes(16))
        db.flush()
        # Tiered never merges into existing groups; groups accumulate at a
        # level until the ratio trigger cascades them down.
        total_groups = sum(
            db.version.num_groups(level) for level in range(1, 7)
        )
        assert total_groups >= 1
        assert db.get(100) == bytes(16)
        db.close()

    def test_reads_correct_across_groups(self, tmp_path):
        db = DB(str(tmp_path / "tiered-reads"), _tiered_options())
        rng = random.Random(7)
        model = {}
        for i in range(6000):
            key = rng.randrange(1 << 16)
            value = f"v{i}".encode()
            db.put(key, value)
            model[key] = value
        sample = rng.sample(sorted(model), 400)
        for key in sample:
            assert db.get(key) == model[key], key
        db.close()

    def test_newest_group_shadows_older(self, tmp_path):
        db = DB(str(tmp_path / "tiered-shadow"), _tiered_options())
        # Fill enough to push a group containing key 1 to L1.
        db.put(1, b"old")
        for i in range(2000):
            db.put(10_000 + i, bytes(16))
        db.compact()
        db.put(1, b"new")
        db.compact()  # second group, newer, also holds key 1
        assert db.get(1) == b"new"
        assert db.range_query(1, 1) == [(1, b"new")]
        db.close()

    def test_tombstones_survive_until_bottom(self, tmp_path):
        db = DB(str(tmp_path / "tiered-del"), _tiered_options())
        db.put(42, b"v")
        db.compact()  # group 1 at L1 holds the put
        db.delete(42)
        db.compact()  # group 2 at L1 holds the tombstone
        assert db.get(42) is None
        assert db.range_query(40, 44) == []
        db.close()

    def test_range_queries_match_model(self, tmp_path):
        import bisect

        options = _tiered_options()
        options.filter_factory = make_factory("rosetta", 32, 16, max_range=64)
        db = DB(str(tmp_path / "tiered-range"), options)
        rng = random.Random(8)
        model = {}
        for i in range(4000):
            key = rng.randrange(1 << 18)
            model[key] = f"x{i}".encode()
            db.put(key, model[key])
        sorted_keys = sorted(model)
        for _ in range(150):
            low = rng.randrange(1 << 18)
            high = low + rng.randrange(0, 64)
            expected = []
            idx = bisect.bisect_left(sorted_keys, low)
            while idx < len(sorted_keys) and sorted_keys[idx] <= high:
                expected.append((sorted_keys[idx], model[sorted_keys[idx]]))
                idx += 1
            assert db.range_query(low, high) == expected
        db.close()

    def test_level_merges_down_at_ratio(self, tmp_path):
        db = DB(str(tmp_path / "tiered-cascade"), _tiered_options())
        for batch in range(8):
            for i in range(800):
                db.put(batch * 100_000 + i, bytes(16))
            db.compact()
        # With ratio 3, L1 must have spilled into L2 at least once.
        assert db.version.num_groups(2) >= 1
        assert db.version.num_groups(1) < 3 + 1
        db.close()

    def test_recovery_preserves_groups(self, tmp_path):
        path = str(tmp_path / "tiered-recover")
        db = DB(path, _tiered_options())
        db.put(1, b"old")
        db.compact()
        db.put(1, b"new")
        db.compact()
        groups_before = db.version.num_groups(1)
        db.close()
        db2 = DB(path, _tiered_options())
        assert db2.version.num_groups(1) == groups_before
        assert db2.get(1) == b"new"
        db2.close()

    def test_write_amplification_lower_than_leveled(self, tmp_path):
        """The point of tiering: less compaction I/O for the same inserts.

        The workload scatters keys across the space so every flush
        overlaps the whole tree — leveled merges must rewrite their
        target-level overlap closure each time, while tiered just stacks
        groups.  (Sequential inserts would not discriminate: per-file
        leveled picking finds empty closures and rewrites almost
        nothing.)
        """
        payload = bytes(24)
        rng = random.Random(7)
        keys = [rng.randrange(0, 1 << 20) for _ in range(8000)]
        results = {}
        for style in ("leveled", "tiered"):
            options = _tiered_options(compaction_style=style)
            db = DB(str(tmp_path / f"wa-{style}"), options)
            for key in keys:
                db.put(key, payload)
            db.flush()
            results[style] = db.stats.compaction_bytes_written
            db.close()
        assert results["tiered"] <= results["leveled"]


class TestIteratorAndMultiGet:
    @pytest.fixture
    def loaded_db(self, tmp_path, small_db_options):
        db = DB(str(tmp_path / "scan"), small_db_options)
        for i in range(0, 3000, 3):
            db.put(i, str(i).encode())
        db.flush()
        db.put(1500, b"overwritten")  # in-memtable shadow
        db.delete(3)
        yield db
        db.close()

    def test_full_scan_ordered(self, loaded_db):
        scanned = list(loaded_db.iterator())
        keys = [k for k, _ in scanned]
        assert keys == sorted(keys)
        assert len(keys) == 999  # 1000 puts, one deleted

    def test_scan_sees_memtable_shadow(self, loaded_db):
        result = dict(loaded_db.iterator(start=1500, end=1500))
        assert result == {1500: b"overwritten"}

    def test_scan_excludes_tombstones(self, loaded_db):
        assert 3 not in dict(loaded_db.iterator(end=10))

    def test_bounded_scan(self, loaded_db):
        scanned = list(loaded_db.iterator(start=30, end=60))
        assert [k for k, _ in scanned] == [30, 33, 36, 39, 42, 45, 48, 51,
                                           54, 57, 60]

    def test_scan_start_beyond_data(self, loaded_db):
        assert list(loaded_db.iterator(start=10**6)) == []

    def test_multi_get(self, loaded_db):
        result = loaded_db.multi_get([0, 3, 6, 7])
        assert result == {0: b"0", 3: None, 6: b"6", 7: None}
