"""Tier-1 slice of the concurrent-maintenance torture matrix.

The full matrix lives in ``benchmarks/torture.py``; this keeps a small
seeded corner of it in the regular test run: every crash point of a few
workload seeds under multiple deterministic scheduler seeds — power cuts
landing mid-flush, mid-compaction, and mid-superversion-install on a
worker thread — plus the interleaving-equivalence check (background
maintenance may change *when* work happens, never what the store
answers).
"""

from repro.lsm.torture import (
    TortureConfig,
    concurrent_torture_seed,
    run_concurrent_crash_point,
    schedule_equivalence,
)

_SMALL = TortureConfig(num_ops=16, key_space=48)
# Nearly every put seals (values ~0.6 KiB against the 1 KiB memtable
# floor), so a flush gets queued while the previous flush's compaction is
# still in flight — this is the config that actually exercises two jobs
# installing concurrently.  Background jobs only yield at durable writes,
# so smaller values never hand the writer enough turns to seal mid-job.
_OVERLAP = TortureConfig(
    num_ops=20, key_space=48, value_repeat=96, put_bias=0.9
)
# Wider key space + single-run compaction windows: an oversize level
# splinters into several leveled jobs with disjoint key footprints, so the
# conflict table gets to admit two leveled compactions into the *same*
# level pair concurrently (counted by ``leveled_range_admissions``).
_RANGE = TortureConfig(
    num_ops=32,
    key_space=512,
    value_repeat=96,
    put_bias=0.95,
    max_compaction_input_files=1,
)


class TestConcurrentCrashSweep:
    def test_every_crash_point_recovers_clean(self, tmp_path):
        for seed in (1, 2):
            report = concurrent_torture_seed(
                str(tmp_path), seed, _SMALL, sched_seeds=(0, 1)
            )
            assert report.crash_points > 0, "sweep never crashed — misconfigured"
            assert report.recoveries == report.crash_points
            assert report.ok, "\n".join(report.violations)

    def test_single_crash_point_result_shape(self, tmp_path):
        result = run_concurrent_crash_point(str(tmp_path), 3, 0, 5, _SMALL)
        assert result.crash_point == 5
        assert result.crashed           # op 5 lands well inside the schedule
        assert result.durable_ops >= 1
        assert result.violations == []

    def test_crash_points_land_mid_overlap(self, tmp_path):
        """Power cuts while two jobs are genuinely in flight recover clean.

        The sweep must observe overlapping jobs (otherwise it silently
        degenerates into the inline matrix), every recovery must verify
        against the model, and the zombie-run check inside
        ``_verify_recovery`` must find no leaked ``.sst`` or ``.tmp``
        files — a botched refcount on a run cancelled mid-install would
        show up here.
        """
        report = concurrent_torture_seed(
            str(tmp_path), 7, _OVERLAP, sched_seeds=(0,)
        )
        assert report.crash_points > 0
        assert report.max_jobs_in_flight >= 2
        assert report.overlapped_crash_points > 0
        assert report.ok, "\n".join(report.violations)

    def test_crash_points_land_mid_range_admission(self, tmp_path):
        """Power cuts during same-level-pair leveled parallelism recover.

        The sweep must witness range-disjoint admissions — cuts landing
        between one window job's install and its sibling's mean the
        union-merge install path and zombie GC run under partial-level
        concurrency, exactly the shape per-file picking introduced.
        """
        report = concurrent_torture_seed(
            str(tmp_path), 7, _RANGE, sched_seeds=(0,)
        )
        assert report.crash_points > 0
        assert report.max_jobs_in_flight >= 2
        assert report.leveled_range_admissions > 0
        assert report.ok, "\n".join(report.violations)

    def test_crash_point_past_schedule_never_fires(self, tmp_path):
        result = run_concurrent_crash_point(
            str(tmp_path), 3, 0, 1_000_000, _SMALL
        )
        assert not result.crashed
        assert result.acked_ops == _SMALL.num_ops
        assert result.violations == []


class TestScheduleEquivalence:
    def test_interleavings_answer_identically(self, tmp_path):
        for seed in (1, 4):
            outcome = schedule_equivalence(
                str(tmp_path), seed, _SMALL, sched_seeds=(0, 1, 2)
            )
            assert outcome["interleavings"] == 4  # inline + 3 scheduler seeds
            assert outcome["equivalent"], outcome["mismatches"]

    def test_overlapping_interleavings_answer_identically(self, tmp_path):
        """Answers stay fixed even when jobs demonstrably overlap."""
        outcome = schedule_equivalence(
            str(tmp_path), 7, _OVERLAP, sched_seeds=(0, 1)
        )
        assert outcome["equivalent"], outcome["mismatches"]
        assert outcome["jobs_overlapped"] > 0
        assert outcome["max_jobs_in_flight"] >= 2

    def test_same_level_pair_parallelism_answers_identically(self, tmp_path):
        """Two leveled jobs in one level pair never change the answers.

        The sweep must actually witness a range-disjoint admission
        (``leveled_range_admissions > 0``) — otherwise the conflict table
        quietly serialized everything and this test degenerates into the
        plain overlap check.
        """
        outcome = schedule_equivalence(
            str(tmp_path), 7, _RANGE, sched_seeds=(0, 1)
        )
        assert outcome["equivalent"], outcome["mismatches"]
        assert outcome["max_jobs_in_flight"] >= 2
        assert outcome["leveled_range_admissions"] > 0
