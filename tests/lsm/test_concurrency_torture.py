"""Tier-1 slice of the concurrent-maintenance torture matrix.

The full matrix lives in ``benchmarks/torture.py``; this keeps a small
seeded corner of it in the regular test run: every crash point of a few
workload seeds under multiple deterministic scheduler seeds — power cuts
landing mid-flush, mid-compaction, and mid-superversion-install on a
worker thread — plus the interleaving-equivalence check (background
maintenance may change *when* work happens, never what the store
answers).
"""

from repro.lsm.torture import (
    TortureConfig,
    concurrent_torture_seed,
    run_concurrent_crash_point,
    schedule_equivalence,
)

_SMALL = TortureConfig(num_ops=16, key_space=48)


class TestConcurrentCrashSweep:
    def test_every_crash_point_recovers_clean(self, tmp_path):
        for seed in (1, 2):
            report = concurrent_torture_seed(
                str(tmp_path), seed, _SMALL, sched_seeds=(0, 1)
            )
            assert report.crash_points > 0, "sweep never crashed — misconfigured"
            assert report.recoveries == report.crash_points
            assert report.ok, "\n".join(report.violations)

    def test_single_crash_point_result_shape(self, tmp_path):
        result = run_concurrent_crash_point(str(tmp_path), 3, 0, 5, _SMALL)
        assert result.crash_point == 5
        assert result.crashed           # op 5 lands well inside the schedule
        assert result.durable_ops >= 1
        assert result.violations == []

    def test_crash_point_past_schedule_never_fires(self, tmp_path):
        result = run_concurrent_crash_point(
            str(tmp_path), 3, 0, 1_000_000, _SMALL
        )
        assert not result.crashed
        assert result.acked_ops == _SMALL.num_ops
        assert result.violations == []


class TestScheduleEquivalence:
    def test_interleavings_answer_identically(self, tmp_path):
        for seed in (1, 4):
            outcome = schedule_equivalence(
                str(tmp_path), seed, _SMALL, sched_seeds=(0, 1, 2)
            )
            assert outcome["interleavings"] == 4  # inline + 3 scheduler seeds
            assert outcome["equivalent"], outcome["mismatches"]
