"""Tests for per-query performance contexts (db.last_query)."""

import pytest

from repro.bench.factories import make_factory
from repro.lsm.db import DB
from repro.lsm.options import DBOptions


@pytest.fixture
def db(tmp_path, small_db_options):
    small_db_options.filter_factory = make_factory(
        "rosetta", 32, 16, max_range=32
    )
    database = DB(str(tmp_path / "ctx"), small_db_options)
    for i in range(3000):
        database.put(i * 7, f"v{i}".encode())
    database.flush()
    yield database
    database.close()


class TestPointContext:
    def test_present_key(self, db):
        assert db.get(7) == b"v1"
        ctx = db.last_query
        assert ctx.kind == "point"
        assert ctx.low == 7
        assert ctx.results == 1
        assert ctx.runs_considered >= 1
        assert "point(7)" in ctx.summary()

    def test_memtable_hit_short_circuits(self, db):
        db.put(999_999, b"fresh")
        db.get(999_999)
        ctx = db.last_query
        assert ctx.memtable_hit
        assert ctx.runs_considered == 0
        assert ctx.blocks_read == 0

    def test_filtered_absent_key_reads_nothing(self, db):
        db.get(8)  # absent, inside the key span
        ctx = db.last_query
        assert ctx.results == 0
        assert ctx.filters_probed >= 1
        if ctx.filter_negatives == ctx.filters_probed:
            assert ctx.iterators_created == 0

    def test_out_of_span_key_considers_no_runs(self, db):
        db.get((1 << 32) - 1)
        assert db.last_query.runs_considered == 0


class TestRangeContext:
    def test_occupied_range(self, db):
        results = db.range_query(0, 70)
        ctx = db.last_query
        assert ctx.kind == "range"
        assert ctx.results == len(results) == 11
        assert ctx.iterators_created >= 1

    def test_filtered_empty_range_creates_no_iterators(self, db):
        db.range_query(1, 6)  # first probe may lazily load filter blocks
        db.range_query(1, 6)  # between multiples of 7, definitely empty
        ctx = db.last_query
        assert ctx.results == 0
        if ctx.filter_negatives == ctx.filters_probed and ctx.filters_probed:
            assert ctx.iterators_created == 0
            assert ctx.blocks_read == 0

    def test_runs_pruned_property(self, db):
        db.range_query(1, 6)
        ctx = db.last_query
        assert ctx.runs_pruned_by_filters == ctx.filter_negatives

    def test_context_replaced_per_query(self, db):
        db.range_query(0, 10)
        first = db.last_query
        db.get(7)
        assert db.last_query is not first
        assert db.last_query.kind == "point"

    def test_iterator_count_tracks_positive_runs(self, db):
        """§4: one child iterator per positive run (plus the memtable)."""
        db.put(50_000_000, b"live-memtable")
        db.range_query(0, 70)
        ctx = db.last_query
        positives = ctx.filters_probed - ctx.filter_negatives
        no_filter_runs = ctx.runs_considered - ctx.filters_probed
        assert ctx.iterators_created == positives + no_filter_runs + 1
