"""``DB.health()`` self-consistency under concurrent maintenance.

The old implementation read ``_super``, ``_background_error``, and the
degraded-filter set as separate unsynchronized loads, so a concurrent
superversion swap could pair, e.g., a ``healthy`` mode with a stale
``level0_runs`` count or a ``degraded`` mode whose ``background_error``
was ``None``.  The fixed report pins one superversion and reads the
error/stall fields under ``_mutex`` in the same critical section; these
tests drive maintenance through the deterministic scheduler (many
interleavings) and through real worker threads and assert the invariant
pair-wise consistency on every observed report.
"""

from __future__ import annotations

import threading

import pytest

from repro.lsm.db import DB
from repro.lsm.faults import FaultInjectionEnv
from repro.lsm.options import DBOptions
from repro.lsm.scheduler import DeterministicScheduler


def _options(**overrides) -> DBOptions:
    base = dict(
        key_bits=32,
        memtable_size_bytes=1024,
        sst_size_bytes=4096,
        block_size_bytes=512,
        block_cache_bytes=0,
        level0_file_num_compaction_trigger=2,
        max_bytes_for_level_base=8192,
    )
    base.update(overrides)
    return DBOptions(**base)


def _assert_consistent(report) -> None:
    """The pairings a torn read could break."""
    assert (report.mode == "degraded") == (
        report.background_error is not None
    ), report
    assert report.ok == (
        report.mode == "healthy" and not report.degraded_filters
    )
    assert report.pending_immutables >= 0
    assert report.level0_runs >= 0
    assert report.jobs_in_flight >= 0
    assert report.stall_state in ("none", "slowdown", "stopped")


class TestDeterministicInterleavings:
    @pytest.mark.parametrize("seed", range(6))
    def test_health_consistent_at_every_step(self, tmp_path, seed):
        db = DB(
            str(tmp_path / "db"),
            _options(
                max_background_jobs=1,
                scheduler_factory=lambda _o: DeterministicScheduler(
                    seed=seed
                ),
            ),
        )
        # Writes continuously seal memtables and schedule flushes and
        # compactions; health() taken between every write must always be
        # self-consistent regardless of how the scheduler interleaves the
        # superversion installs.
        for key in range(120):
            db.put(key, b"h" * 96)
            _assert_consistent(db.health())
        db.wait_idle()
        final = db.health()
        _assert_consistent(final)
        assert final.mode == "healthy"
        db.close()


class TestDegradedTransition:
    def test_mode_and_error_flip_together(self, tmp_path):
        holder = {}

        def factory(root, device, stats):
            env = FaultInjectionEnv(root, device, stats, seed=0)
            holder["env"] = env
            return env

        db = DB(
            str(tmp_path / "db"),
            _options(env_factory=factory, max_background_jobs=1),
        )
        db.put(1, b"buffered")
        _assert_consistent(db.health())
        holder["env"].fail_next_writes(1)
        db.flush()  # worker flush fails -> degraded
        degraded = db.health()
        _assert_consistent(degraded)
        assert degraded.mode == "degraded"
        assert "flush" in degraded.background_error
        assert db.resume()
        recovered = db.health()
        _assert_consistent(recovered)
        assert recovered.mode == "healthy"
        db.close()


class TestThreadedObservers:
    def test_health_never_tears_under_worker_churn(self, tmp_path):
        db = DB(
            str(tmp_path / "db"),
            _options(max_background_jobs=2, max_immutable_memtables=4),
        )
        stop = threading.Event()
        failures: list[AssertionError] = []

        def observer() -> None:
            while not stop.is_set():
                try:
                    _assert_consistent(db.health())
                except AssertionError as exc:
                    failures.append(exc)
                    return

        watchers = [threading.Thread(target=observer) for _ in range(3)]
        for watcher in watchers:
            watcher.start()
        for key in range(400):
            db.put(key, b"churn" * 24)
        db.wait_idle()
        stop.set()
        for watcher in watchers:
            watcher.join()
        assert not failures
        db.close()
