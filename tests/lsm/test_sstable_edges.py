"""Edge-case tests for SST files: boundaries, sizes, unusual shapes."""

import pytest

from repro.lsm.block_cache import BlockCache
from repro.lsm.env import StorageEnv
from repro.lsm.format import ValueTag
from repro.lsm.options import DBOptions
from repro.lsm.sstable import SSTReader, SSTWriter


def _write(env, entries, block_size=512, restart=16, name="edge.sst"):
    options = DBOptions(
        key_bits=32, block_size_bytes=block_size,
        block_restart_interval=restart,
    )
    writer = SSTWriter(env, name, options)
    for key, tag, value in entries:
        writer.add(key, tag, value)
    meta = writer.finish()
    return SSTReader(env, meta, options, BlockCache(1 << 20)), meta


def _entries(n, stride=1, value_size=8):
    return [
        ((i * stride).to_bytes(4, "big"), ValueTag.PUT, bytes(value_size))
        for i in range(n)
    ]


class TestShapes:
    def test_single_entry_sst(self, tmp_path):
        env = StorageEnv(str(tmp_path))
        reader, meta = _write(env, _entries(1))
        assert meta.num_entries == 1
        assert reader.get((0).to_bytes(4, "big")) is not None
        assert reader.num_data_blocks() == 1

    def test_value_larger_than_block_size(self, tmp_path):
        env = StorageEnv(str(tmp_path))
        big = [(b"\x00\x00\x00\x01", ValueTag.PUT, bytes(4096))]
        reader, _ = _write(env, big, block_size=512)
        tag, value = reader.get(b"\x00\x00\x00\x01")
        assert len(value) == 4096

    def test_many_blocks_every_key_findable(self, tmp_path):
        env = StorageEnv(str(tmp_path))
        entries = _entries(3000, stride=2)
        reader, _ = _write(env, entries, block_size=256)
        assert reader.num_data_blocks() > 20
        for key, _, _ in entries[::97]:
            assert reader.get(key) is not None

    def test_restart_interval_extremes(self, tmp_path):
        env = StorageEnv(str(tmp_path))
        for restart, name in ((1, "r1.sst"), (1000, "r1000.sst")):
            reader, _ = _write(
                env, _entries(500), restart=restart, name=name
            )
            scanned = list(reader.iterate_from(b""))
            assert len(scanned) == 500


class TestIterationBoundaries:
    @pytest.fixture
    def reader(self, tmp_path):
        env = StorageEnv(str(tmp_path))
        reader, _ = _write(env, _entries(1000, stride=3), block_size=256)
        return reader

    def test_seek_to_exact_block_boundary_key(self, reader):
        # The last key of some block, then the first key of the next, must
        # both be reachable with no gap or duplication.
        fence_keys = reader._fence_keys  # noqa: SLF001
        boundary = fence_keys[0]
        scanned = [k for k, _, _ in reader.iterate_from(boundary)]
        assert scanned[0] == boundary
        following = [k for k, _, _ in reader.iterate_from(
            (int.from_bytes(boundary, "big") + 1).to_bytes(4, "big")
        )]
        assert following[0] > boundary
        assert len(scanned) == len(following) + 1

    def test_seek_past_end_is_empty(self, reader):
        assert list(reader.iterate_from(b"\xff\xff\xff\xff")) == []

    def test_full_scan_matches_entry_count(self, reader):
        assert len(list(reader.iterate_from(b""))) == 1000

    def test_approximate_sizes_partition_roughly(self, reader):
        whole = reader.approximate_bytes_in_range(
            b"\x00\x00\x00\x00", b"\xff\xff\xff\xff"
        )
        half_point = (1500).to_bytes(4, "big")
        left = reader.approximate_bytes_in_range(b"\x00\x00\x00\x00", half_point)
        right = reader.approximate_bytes_in_range(half_point, b"\xff\xff\xff\xff")
        # Halves overlap by at most one block.
        assert whole <= left + right
        assert left + right <= whole * 1.2

    def test_approximate_size_empty_outside_span(self, reader):
        assert reader.approximate_bytes_in_range(
            b"\xff\xff\xff\x00", b"\xff\xff\xff\xff"
        ) == 0


class TestCacheInteraction:
    def test_cached_reads_skip_device(self, tmp_path):
        env = StorageEnv(str(tmp_path), device="ssd")
        reader, _ = _write(env, _entries(100))
        key = (50).to_bytes(4, "big")
        reader.get(key)
        io_after_first = env.stats.block_read_time_ns
        for _ in range(10):
            reader.get(key)
        assert env.stats.block_read_time_ns == io_after_first

    def test_uncached_store_rereads(self, tmp_path):
        env = StorageEnv(str(tmp_path))
        options = DBOptions(key_bits=32, block_size_bytes=512,
                            block_cache_bytes=0)
        writer = SSTWriter(env, "nc.sst", options)
        for key, tag, value in _entries(100):
            writer.add(key, tag, value)
        meta = writer.finish()
        reader = SSTReader(env, meta, options, BlockCache(0))
        key = (50).to_bytes(4, "big")
        reader.get(key)
        first = env.stats.block_reads
        reader.get(key)
        assert env.stats.block_reads > first
