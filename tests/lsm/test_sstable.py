"""Unit tests for SST writer/reader."""

import pytest

from repro.errors import FilterBuildError
from repro.filters.base import FilterFactory
from repro.filters.bloom_point import BloomPointFilter
from repro.lsm.block_cache import BlockCache
from repro.lsm.env import StorageEnv
from repro.lsm.format import ValueTag
from repro.lsm.options import DBOptions
from repro.lsm.sstable import SSTReader, SSTWriter


def _options() -> DBOptions:
    return DBOptions(key_bits=32, block_size_bytes=512)


def _bloom_factory() -> FilterFactory:
    def build(keys):
        filt = BloomPointFilter(key_bits=32, bits_per_key=10)
        filt.populate(keys)
        return filt

    return FilterFactory("bloom", build)


def _write_sst(env, name="test.sst", n=500, factory=None, options=None):
    options = options or _options()
    writer = SSTWriter(env, name, options, filter_factory=factory)
    entries = []
    for i in range(n):
        key = (i * 7).to_bytes(4, "big")
        value = f"value-{i}".encode()
        writer.add(key, ValueTag.PUT, value)
        entries.append((key, value))
    return writer.finish(), entries, options


class TestWriter:
    def test_meta_summarises_file(self, tmp_path):
        env = StorageEnv(str(tmp_path))
        meta, entries, _ = _write_sst(env)
        assert meta.num_entries == 500
        assert meta.min_key == entries[0][0]
        assert meta.max_key == entries[-1][0]
        assert meta.file_size == env.file_size(meta.name)

    def test_unsorted_keys_rejected(self, tmp_path):
        env = StorageEnv(str(tmp_path))
        writer = SSTWriter(env, "x.sst", _options())
        writer.add(b"\x00\x00\x00\x05", ValueTag.PUT, b"")
        with pytest.raises(FilterBuildError):
            writer.add(b"\x00\x00\x00\x04", ValueTag.PUT, b"")

    def test_empty_sst_rejected(self, tmp_path):
        env = StorageEnv(str(tmp_path))
        with pytest.raises(FilterBuildError):
            SSTWriter(env, "x.sst", _options()).finish()

    def test_filter_construction_charged(self, tmp_path):
        env = StorageEnv(str(tmp_path))
        _write_sst(env, factory=_bloom_factory())
        assert env.stats.filters_built == 1
        assert env.stats.filter_construction_ns > 0
        assert env.stats.serialize_ns > 0

    def test_overlaps(self, tmp_path):
        env = StorageEnv(str(tmp_path))
        meta, entries, _ = _write_sst(env, n=10)
        assert meta.overlaps(entries[0][0], entries[-1][0])
        assert meta.overlaps(b"\x00\x00\x00\x00", b"\xff\xff\xff\xff")
        assert not meta.overlaps(b"\xff\x00\x00\x00", b"\xff\xff\xff\xff")


class TestReader:
    def test_get_every_key(self, tmp_path):
        env = StorageEnv(str(tmp_path))
        meta, entries, options = _write_sst(env)
        reader = SSTReader(env, meta, options, BlockCache(1 << 20))
        for key, value in entries:
            assert reader.get(key) == (ValueTag.PUT, value)

    def test_get_absent_keys(self, tmp_path):
        env = StorageEnv(str(tmp_path))
        meta, entries, options = _write_sst(env)
        reader = SSTReader(env, meta, options, BlockCache(1 << 20))
        assert reader.get((1).to_bytes(4, "big")) is None  # in a gap
        assert reader.get(b"\xff\xff\xff\xff") is None  # beyond max

    def test_multiple_data_blocks(self, tmp_path):
        env = StorageEnv(str(tmp_path))
        meta, _, options = _write_sst(env, n=2000)
        reader = SSTReader(env, meta, options, BlockCache(1 << 20))
        assert reader.num_data_blocks() > 1

    def test_iterate_from_start(self, tmp_path):
        env = StorageEnv(str(tmp_path))
        meta, entries, options = _write_sst(env)
        reader = SSTReader(env, meta, options, BlockCache(1 << 20))
        scanned = [(k, v) for k, _, v in reader.iterate_from(b"")]
        assert scanned == entries

    def test_iterate_from_midpoint(self, tmp_path):
        env = StorageEnv(str(tmp_path))
        meta, entries, options = _write_sst(env)
        reader = SSTReader(env, meta, options, BlockCache(1 << 20))
        mid_key = entries[250][0]
        scanned = list(reader.iterate_from(mid_key))
        assert scanned[0][0] == mid_key
        assert len(scanned) == 250

    def test_iterate_from_between_keys(self, tmp_path):
        env = StorageEnv(str(tmp_path))
        meta, entries, options = _write_sst(env)
        reader = SSTReader(env, meta, options, BlockCache(1 << 20))
        probe = (7 * 100 + 1).to_bytes(4, "big")  # just above key 100
        scanned = list(reader.iterate_from(probe))
        assert scanned[0][0] == entries[101][0]

    def test_block_cache_serves_repeat_reads(self, tmp_path):
        env = StorageEnv(str(tmp_path))
        meta, entries, options = _write_sst(env)
        cache = BlockCache(1 << 20)
        reader = SSTReader(env, meta, options, cache, is_level0=True)
        reads_before = env.stats.block_reads
        reader.get(entries[0][0])
        first_read = env.stats.block_reads - reads_before
        reader.get(entries[0][0])
        assert env.stats.block_reads - reads_before == first_read  # cached

    def test_filter_block_roundtrip(self, tmp_path):
        env = StorageEnv(str(tmp_path))
        meta, entries, options = _write_sst(env, factory=_bloom_factory())
        reader = SSTReader(env, meta, options, BlockCache(1 << 20))
        from repro.filters.base import deserialize_filter

        filt = deserialize_filter(reader.filter_block_bytes())
        assert isinstance(filt, BloomPointFilter)
        for key, _ in entries[:50]:
            assert filt.may_contain(int.from_bytes(key, "big"))

    def test_no_filter_block_when_factory_absent(self, tmp_path):
        env = StorageEnv(str(tmp_path))
        meta, _, options = _write_sst(env, factory=None)
        reader = SSTReader(env, meta, options, BlockCache(1 << 20))
        assert reader.filter_block_bytes() == b""

    def test_corrupt_footer_detected(self, tmp_path):
        env = StorageEnv(str(tmp_path))
        meta, _, options = _write_sst(env)
        path = env.path(meta.name)
        with open(path, "r+b") as handle:
            handle.seek(meta.file_size - 2)
            handle.write(b"\x00\x00")  # clobber the magic
        from repro.errors import CorruptionError

        with pytest.raises(CorruptionError):
            SSTReader(env, meta, options, BlockCache(0))

    def test_tombstones_preserved(self, tmp_path):
        env = StorageEnv(str(tmp_path))
        options = _options()
        writer = SSTWriter(env, "t.sst", options)
        writer.add(b"\x00\x00\x00\x01", ValueTag.DELETE, b"")
        writer.add(b"\x00\x00\x00\x02", ValueTag.PUT, b"live")
        meta = writer.finish()
        reader = SSTReader(env, meta, options, BlockCache(0))
        assert reader.get(b"\x00\x00\x00\x01") == (ValueTag.DELETE, b"")
        assert reader.get(b"\x00\x00\x00\x02") == (ValueTag.PUT, b"live")
