"""Integration tests for the DB: write path, reads, compaction, recovery."""

import bisect
import random

import pytest

from repro.bench.factories import make_factory
from repro.errors import ClosedStoreError, FilterQueryError, StoreError
from repro.lsm.db import DB
from repro.lsm.options import DBOptions


@pytest.fixture
def db(tmp_path, small_db_options):
    database = DB(str(tmp_path / "db"), small_db_options)
    yield database
    if not database._closed:  # noqa: SLF001
        database.close()


def _filtered_options(base: DBOptions) -> DBOptions:
    base.filter_factory = make_factory("rosetta", base.key_bits, 18, max_range=64)
    return base


class TestPointOperations:
    def test_put_get(self, db):
        db.put(42, b"answer")
        assert db.get(42) == b"answer"

    def test_get_missing(self, db):
        assert db.get(7) is None

    def test_overwrite_in_memtable(self, db):
        db.put(1, b"a")
        db.put(1, b"b")
        assert db.get(1) == b"b"

    def test_overwrite_across_flush(self, db):
        db.put(1, b"old")
        db.flush()
        db.put(1, b"new")
        assert db.get(1) == b"new"
        db.flush()
        assert db.get(1) == b"new"

    def test_delete_in_memtable(self, db):
        db.put(5, b"v")
        db.delete(5)
        assert db.get(5) is None

    def test_delete_shadows_flushed_value(self, db):
        db.put(5, b"v")
        db.flush()
        db.delete(5)
        assert db.get(5) is None
        db.flush()
        assert db.get(5) is None

    def test_key_domain_enforced(self, db):
        with pytest.raises(FilterQueryError):
            db.put(1 << 33, b"too big")
        with pytest.raises(FilterQueryError):
            db.get(-1)


class TestRangeQueries:
    def test_basic_range(self, db):
        for key in (10, 20, 30):
            db.put(key, str(key).encode())
        assert db.range_query(15, 30) == [(20, b"20"), (30, b"30")]

    def test_empty_range(self, db):
        db.put(10, b"x")
        assert db.range_query(11, 20) == []

    def test_range_spans_memtable_and_ssts(self, db):
        db.put(1, b"flushed")
        db.flush()
        db.put(2, b"buffered")
        assert db.range_query(0, 5) == [(1, b"flushed"), (2, b"buffered")]

    def test_range_respects_tombstones(self, db):
        for key in range(10):
            db.put(key, b"v")
        db.flush()
        db.delete(5)
        result = dict(db.range_query(0, 9))
        assert 5 not in result
        assert len(result) == 9

    def test_range_newest_value_wins(self, db):
        db.put(7, b"v1")
        db.flush()
        db.put(7, b"v2")
        db.flush()
        assert db.range_query(7, 7) == [(7, b"v2")]

    def test_invalid_range(self, db):
        with pytest.raises(FilterQueryError):
            db.range_query(5, 4)

    def test_large_workload_matches_oracle(self, tmp_path, small_db_options):
        options = _filtered_options(small_db_options)
        db = DB(str(tmp_path / "oracle-db"), options)
        rng = random.Random(21)
        model: dict[int, bytes] = {}
        for i in range(4000):
            key = rng.randrange(1 << 20)
            value = f"v{i}".encode()
            db.put(key, value)
            model[key] = value
        sorted_keys = sorted(model)
        for _ in range(300):
            low = rng.randrange(1 << 20)
            high = low + rng.randrange(0, 64)
            expected = []
            idx = bisect.bisect_left(sorted_keys, low)
            while idx < len(sorted_keys) and sorted_keys[idx] <= high:
                expected.append((sorted_keys[idx], model[sorted_keys[idx]]))
                idx += 1
            assert db.range_query(low, high) == expected
        db.close()


class TestFlushAndCompaction:
    def test_flush_creates_l0_file(self, db):
        for key in range(100):
            db.put(key, b"x" * 10)
        db.flush()
        assert len(db.version.level0) >= 1

    def test_l0_trigger_compacts(self, tmp_path, small_db_options):
        db = DB(str(tmp_path / "trigger-db"), small_db_options)
        # Push enough data through the write path to exceed the L0 trigger.
        for i in range(6000):
            db.put(i, b"payload-" + bytes(24))
        db.flush()
        assert len(db.version.level0) < small_db_options.level0_file_num_compaction_trigger
        assert db.stats.compactions >= 1
        db.close()

    def test_compaction_preserves_data(self, tmp_path, small_db_options):
        db = DB(str(tmp_path / "preserve-db"), small_db_options)
        items = {i: f"value-{i}".encode() for i in range(3000)}
        for key, value in items.items():
            db.put(key, value)
        db.compact()
        sample = random.Random(1).sample(sorted(items), 300)
        for key in sample:
            assert db.get(key) == items[key]
        db.close()

    def test_full_compaction_single_level(self, tmp_path, small_db_options):
        db = DB(str(tmp_path / "full-db"), small_db_options)
        for i in range(3000):
            db.put(i, bytes(16))
        db.force_full_compaction()
        assert db.version.level0 == []
        populated = [lvl for lvl, runs in db.version.levels.items() if runs]
        assert len(populated) == 1
        assert db.get(1500) == bytes(16)
        db.close()

    def test_compaction_drops_tombstones_at_bottom(self, tmp_path, small_db_options):
        db = DB(str(tmp_path / "tombstone-db"), small_db_options)
        for i in range(500):
            db.put(i, bytes(8))
        for i in range(0, 500, 2):
            db.delete(i)
        db.force_full_compaction()
        total_entries = sum(
            run.reader.meta.num_entries
            for runs in db.version.levels.values()
            for run in runs
        )
        assert total_entries == 250  # tombstones gone
        assert db.get(0) is None
        assert db.get(1) == bytes(8)
        db.close()

    def test_compaction_deletes_old_files(self, tmp_path, small_db_options):
        db = DB(str(tmp_path / "cleanup-db"), small_db_options)
        for i in range(5000):
            db.put(i, bytes(24))
        db.force_full_compaction()
        live = {run.name for runs in db.version.levels.values() for run in runs}
        on_disk = {
            name
            for name in db._env.list_files()  # noqa: SLF001
            if name.endswith(".sst")
        }
        assert on_disk == live
        db.close()


class TestIngest:
    def test_ingest_bulk_load(self, tmp_path, small_db_options):
        db = DB(str(tmp_path / "ingest-db"), small_db_options)
        items = [(i * 3, f"v{i}".encode()) for i in range(2000)]
        db.ingest(items)
        assert db.get(3) == b"v1"
        assert db.get(4) is None
        assert db.range_query(0, 9) == [(0, b"v0"), (3, b"v1"), (6, b"v2"), (9, b"v3")]
        db.close()

    def test_ingest_into_occupied_level_rejected(self, tmp_path, small_db_options):
        db = DB(str(tmp_path / "ingest2-db"), small_db_options)
        db.ingest([(1, b"a")], level=1)
        with pytest.raises(StoreError):
            db.ingest([(2, b"b")], level=1)
        db.close()

    def test_ingest_then_writes_shadow(self, tmp_path, small_db_options):
        db = DB(str(tmp_path / "ingest3-db"), small_db_options)
        db.ingest([(5, b"old")])
        db.put(5, b"new")
        assert db.get(5) == b"new"
        db.flush()
        assert db.get(5) == b"new"
        db.close()


class TestRecovery:
    def test_reopen_recovers_ssts(self, tmp_path, small_db_options):
        path = str(tmp_path / "reopen-db")
        db = DB(path, small_db_options)
        for i in range(2000):
            db.put(i, f"v{i}".encode())
        db.close()
        db2 = DB(path, small_db_options)
        assert db2.get(123) == b"v123"
        assert db2.range_query(10, 12) == [
            (10, b"v10"), (11, b"v11"), (12, b"v12"),
        ]
        db2.close()

    def test_wal_replay_recovers_unflushed(self, tmp_path, small_db_options):
        path = str(tmp_path / "wal-db")
        db = DB(path, small_db_options)
        db.put(1, b"one")
        db.put(2, b"two")
        db.delete(1)
        # Simulate a crash: no close(), no flush.
        db._env.close()  # noqa: SLF001
        db2 = DB(path, small_db_options)
        assert db2.get(1) is None
        assert db2.get(2) == b"two"
        db2.close()

    def test_closed_db_rejects_operations(self, tmp_path, small_db_options):
        db = DB(str(tmp_path / "closed-db"), small_db_options)
        db.close()
        with pytest.raises(ClosedStoreError):
            db.put(1, b"x")
        with pytest.raises(ClosedStoreError):
            db.get(1)
        db.close()  # idempotent

    def test_context_manager(self, tmp_path, small_db_options):
        with DB(str(tmp_path / "ctx-db"), small_db_options) as db:
            db.put(1, b"x")
        with pytest.raises(ClosedStoreError):
            db.get(1)


class TestFilterIntegration:
    def test_filters_prune_empty_point_queries(self, tmp_path, small_db_options):
        options = _filtered_options(small_db_options)
        db = DB(str(tmp_path / "filter-db"), options)
        rng = random.Random(3)
        keys = rng.sample(range(1 << 30), 3000)
        for key in keys:
            db.put(key, bytes(16))
        db.flush()
        key_set = set(keys)
        # Absent keys inside the data's key span, so fence pointers cannot
        # prune them and only the filters stand between query and I/O.
        low, high = min(key_set) + 1, max(key_set)
        absent = [
            k for k in range(low, low + 500_000, 1009) if k not in key_set
        ][:200]
        before = db.stats.snapshot()
        for key in absent:
            assert db.get(key) is None
        delta = db.stats.diff(before)
        assert delta.filter_negatives > 0
        # With filters, almost no data-block reads for absent keys.
        assert delta.block_reads < len(absent)

    def test_range_filter_verdicts_recorded(self, tmp_path, small_db_options):
        options = _filtered_options(small_db_options)
        db = DB(str(tmp_path / "verdict-db"), options)
        for i in range(0, 3000, 3):
            db.put(i, bytes(8))
        db.flush()
        db.range_query(1, 2)  # empty (multiples of 3 only)
        db.range_query(0, 10)  # non-empty
        stats = db.stats
        assert stats.filter_probes > 0
        assert stats.filter_true_positives > 0
        assert stats.range_queries == 2
        assert db.tracker.num_range_queries == 2

    def test_stats_observed_fpr_consistent(self, tmp_path, small_db_options):
        options = _filtered_options(small_db_options)
        db = DB(str(tmp_path / "fpr-db"), options)
        rng = random.Random(5)
        keys = rng.sample(range(1 << 30), 2000)
        for key in keys:
            db.put(key, bytes(8))
        db.flush()
        key_set = set(keys)
        trials = 0
        while trials < 150:
            low = rng.randrange((1 << 30) - 16)
            if any(k in key_set for k in range(low, low + 16)):
                continue
            trials += 1
            db.range_query(low, low + 15)
        assert 0.0 <= db.stats.observed_fpr < 0.2
        db.close()

    def test_retune_filters_decision(self, tmp_path, small_db_options):
        options = _filtered_options(small_db_options)
        db = DB(str(tmp_path / "tune-db"), options)
        for i in range(500):
            db.put(i, bytes(8))
        db.flush()
        for _ in range(50):
            db.range_query(1000, 1007)
        decision = db.retune_filters()
        assert decision.strategy == "single"
        assert decision.max_range == 8
        # New flushes use the tuned factory.
        for i in range(500, 1000):
            db.put(i, bytes(8))
        db.flush()
        newest = db.version.all_runs_newest_first()[0]
        filt = db._filter_dictionary.get_filter(newest.reader, db.stats)  # noqa: SLF001
        assert filt is not None
        db.close()
