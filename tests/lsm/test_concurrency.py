"""Concurrent background maintenance: schedulers, backpressure, failures.

Covers the pieces the crash-recovery torture harness composes:

* the scheduler implementations themselves (inline / thread pool /
  deterministic token passing, plus the cooperative lock);
* write backpressure — the slowdown trigger charges modeled delay, the
  stop trigger genuinely blocks and then resumes with nothing lost, and
  a wedged configuration fails with ``WriteStallTimeoutError`` instead of
  hanging;
* a flush failing *on a worker thread* parks the store in degraded
  read-only mode exactly like the inline failure path — same health
  report, same counters — and ``resume()`` retries it on a worker;
* reads are superversion-pinned: an open iterator survives a full
  compaction deleting every file it is reading;
* scalar and batch write paths agree on answers and ``PerfStats``
  accounting with workers enabled.
"""

import threading
import time

import pytest

from repro.errors import (
    PowerCutError,
    ReadOnlyStoreError,
    StoreError,
    WriteStallTimeoutError,
)
from repro.lsm.compaction import CompactionJob, Compactor
from repro.lsm.db import DB
from repro.lsm.faults import FaultInjectionEnv
from repro.lsm.options import DBOptions
from repro.lsm.scheduler import (
    CooperativeLock,
    DeterministicScheduler,
    InlineScheduler,
    JobHandle,
    ThreadPoolScheduler,
)


def _options(**overrides) -> DBOptions:
    base = dict(
        key_bits=32,
        memtable_size_bytes=1024,
        sst_size_bytes=4096,
        block_size_bytes=512,
        block_cache_bytes=0,
        level0_file_num_compaction_trigger=2,
        max_bytes_for_level_base=8192,
    )
    base.update(overrides)
    return DBOptions(**base)


def _faulty_db(path: str, **overrides):
    holder = {}

    def factory(root, device, stats):
        env = FaultInjectionEnv(root, device, stats, seed=0)
        holder["env"] = env
        return env

    db = DB(path, _options(env_factory=factory, **overrides))
    return db, holder["env"]


# ----------------------------------------------------------------------
# Scheduler unit tests
# ----------------------------------------------------------------------
class TestInlineScheduler:
    def test_submit_runs_on_caller_before_returning(self):
        sched = InlineScheduler()
        ran = []
        handle = sched.submit("job", lambda: ran.append(1) or "result")
        assert ran == [1]
        assert handle.done and handle.error is None
        assert handle.result == "result"
        assert sched.wait_for(lambda: True) is True
        assert sched.wait_for(lambda: False) is False
        sched.close()


class TestThreadPoolScheduler:
    def test_jobs_run_on_workers_and_errors_are_recorded(self):
        sched = ThreadPoolScheduler(num_workers=2)
        main = threading.get_ident()
        seen = []
        ok = sched.submit("ok", lambda: seen.append(threading.get_ident()))
        boom = sched.submit("boom", lambda: 1 / 0)
        assert sched.wait_for(lambda: ok.done and boom.done, 10.0)
        assert seen and seen[0] != main
        assert ok.error is None
        assert isinstance(boom.error, ZeroDivisionError)
        sched.close()
        sched.close()  # idempotent


class TestDeterministicScheduler:
    @staticmethod
    def _run_interleaving(seed: int) -> list[tuple[str, int]]:
        sched = DeterministicScheduler(seed=seed)
        order: list[tuple[str, int]] = []

        def job(tag):
            def body():
                for step in range(3):
                    order.append((tag, step))
                    sched.sync_point("step")
            return body

        handles = [sched.submit(tag, job(tag)) for tag in ("a", "b", "c")]
        assert sched.wait_for(lambda: all(h.done for h in handles))
        sched.close()
        return order

    def test_same_seed_replays_the_same_interleaving(self):
        first = self._run_interleaving(42)
        second = self._run_interleaving(42)
        assert first == second
        assert sorted(first) == [
            (tag, step) for tag in "abc" for step in range(3)
        ]

    def test_seed_space_produces_multiple_interleavings(self):
        distinct = {tuple(self._run_interleaving(seed)) for seed in range(8)}
        assert len(distinct) > 1

    def test_close_unwinds_parked_jobs_with_power_cut(self):
        sched = DeterministicScheduler(seed=0)
        entered = []

        def body():
            entered.append(True)
            while True:
                sched.sync_point("spin")

        handle = sched.submit("spinner", body)
        assert sched.wait_for(lambda: bool(entered))  # job got the token once
        sched.close()
        assert handle.done
        assert isinstance(handle.error, PowerCutError)
        assert sched.crashed


class TestCooperativeLock:
    def test_reentrant_acquire_release(self):
        lock = CooperativeLock(DeterministicScheduler(seed=0))
        with lock:
            with lock:
                pass
        with lock:
            pass

    def test_release_by_non_owner_raises(self):
        lock = CooperativeLock(DeterministicScheduler(seed=0))
        lock.acquire()
        errors = []

        def stranger():
            try:
                lock.release()
            except RuntimeError as exc:
                errors.append(exc)

        thread = threading.Thread(target=stranger)
        thread.start()
        thread.join()
        assert len(errors) == 1
        lock.release()


# ----------------------------------------------------------------------
# Write backpressure
# ----------------------------------------------------------------------
class _StuckScheduler:
    """Concurrent-shaped scheduler that never runs its jobs (a wedge)."""

    concurrent = True
    crashed = False

    def submit(self, name, fn):
        return JobHandle(name)  # accepted, never executed

    def sync_point(self, tag=""):
        return None

    def wait_for(self, predicate, timeout_s=None):
        deadline = time.monotonic() + (timeout_s or 0.0)
        while time.monotonic() < deadline:
            if predicate():
                return True
            time.sleep(0.002)
        return bool(predicate())

    def notify(self):
        return None

    def make_lock(self):
        return threading.RLock()

    def close(self, force=False):
        return None


class TestBackpressure:
    def test_slowdown_charges_modeled_delay(self, tmp_path):
        db = DB(
            str(tmp_path / "db"),
            _options(
                max_background_jobs=1,
                max_immutable_memtables=2,  # slowdown at 1 sealed memtable
                scheduler_factory=lambda _o: DeterministicScheduler(seed=3),
            ),
        )
        for key in range(40):
            db.put(key, b"v" * 200)
        stats = db.stats
        assert stats.memtable_seals > 0
        # The put immediately after a seal observes the backlog before any
        # yield can drain it, so at least one slowdown is guaranteed.
        assert stats.write_slowdowns > 0
        assert stats.write_delay_time_ns > 0
        assert stats.write_stall_timeouts == 0
        db.wait_idle()
        assert db.health().stall_state in ("none", "slowdown")
        for key in range(40):
            assert db.get(key) == b"v" * 200
        db.close()

    def test_stop_trigger_stalls_then_resumes_without_loss(self, tmp_path):
        db = DB(
            str(tmp_path / "db"),
            _options(
                max_background_jobs=1,
                max_immutable_memtables=1,  # every seal is a stop condition
                level0_slowdown_writes_trigger=3,
                level0_stop_writes_trigger=4,
                scheduler_factory=lambda _o: DeterministicScheduler(seed=5),
            ),
        )
        values = {key: b"stall" * 60 + b"#%d" % key for key in range(50)}
        for key, value in values.items():
            db.put(key, value)  # acked in submission order
        stats = db.stats
        assert stats.write_stops > 0        # the stop trigger really fired
        assert stats.write_stall_time_ns >= 0
        assert stats.write_stall_timeouts == 0
        db.wait_idle()
        health = db.health()
        assert health.pending_immutables == 0
        assert health.write_stops == stats.write_stops
        # No acked write lost or reordered: last write per key wins.
        for key, value in values.items():
            assert db.get(key) == value
        db.close()

    def test_wedged_store_raises_write_stall_timeout(self, tmp_path):
        db = DB(
            str(tmp_path / "db"),
            _options(
                max_background_jobs=1,
                max_immutable_memtables=1,
                write_stall_timeout_s=0.05,
                scheduler_factory=lambda _o: _StuckScheduler(),
            ),
        )
        with pytest.raises(WriteStallTimeoutError):
            for key in range(50):
                db.put(key, b"w" * 200)
        assert db.stats.write_stall_timeouts == 1
        assert db.health().stall_state == "stopped"
        db.kill()  # close() would wait out the drain on a wedged scheduler

    def test_inline_mode_never_stops(self, tmp_path):
        db = DB(str(tmp_path / "db"), _options())
        for key in range(60):
            db.put(key, b"v" * 200)
        assert db.stats.write_stops == 0
        assert db.stats.write_stall_timeouts == 0
        db.close()


# ----------------------------------------------------------------------
# Background failure parity with the inline path
# ----------------------------------------------------------------------
class TestWorkerFlushFailure:
    def test_worker_flush_failure_parks_readonly(self, tmp_path):
        db, env = _faulty_db(
            str(tmp_path / "db"),
            memtable_size_bytes=8 << 10,
            max_background_jobs=1,
        )
        db.put(7, b"buffered")
        env.fail_next_writes(1)
        db.flush()  # flush runs on the worker, fails, degrades the store
        health = db.health()
        assert health.mode == "degraded"
        assert not health.ok
        assert "flush" in health.background_error
        assert health.background_errors == 1
        assert env.injected["write_errors"] == 1
        # Reads still serve the buffered write that never reached an SST.
        assert db.get(7) == b"buffered"
        with pytest.raises(ReadOnlyStoreError):
            db.put(1, b"nope")
        with pytest.raises(ReadOnlyStoreError):
            db.delete(1)
        # Device healed: resume retries the flush (on the worker) and the
        # store is writable again, nothing lost.
        assert db.resume()
        assert db.health().ok
        db.put(8, b"post-resume")
        db.close()
        reopened = DB(str(tmp_path / "db"), _options())
        assert reopened.get(7) == b"buffered"
        assert reopened.get(8) == b"post-resume"
        reopened.close()

    def test_worker_failure_counters_match_inline_path(self, tmp_path):
        reports = {}
        for label, jobs in (("inline", 0), ("workers", 2)):
            db, env = _faulty_db(
                str(tmp_path / label),
                memtable_size_bytes=8 << 10,
                max_background_jobs=jobs,
            )
            db.put(7, b"buffered")
            env.fail_next_writes(1)
            db.flush()
            degraded = db.health()
            resumed = db.resume()
            healthy = db.health()
            reports[label] = (
                degraded.mode,
                degraded.background_errors,
                "flush" in (degraded.background_error or ""),
                env.injected["write_errors"],
                resumed,
                healthy.mode,
                db.get(7),
            )
            db.close()
        assert reports["inline"] == reports["workers"]


# ----------------------------------------------------------------------
# Superversion-pinned reads
# ----------------------------------------------------------------------
class TestSuperversionReads:
    def test_iterator_survives_full_compaction(self, tmp_path):
        db = DB(str(tmp_path / "db"), _options(max_background_jobs=1))
        values = {key: b"x" * 100 + b"#%d" % key for key in range(64)}
        for key, value in values.items():
            db.put(key, value)
        db.flush()
        iterator = db.iterator()
        head = [next(iterator) for _ in range(5)]
        # Rewrites every file the iterator is positioned over; the pinned
        # superversion keeps the old runs alive until the iterator closes.
        db.force_full_compaction()
        tail = list(iterator)
        scanned = dict(head + tail)
        assert scanned == values
        assert dict(db.iterator()) == values  # and the new view agrees
        db.close()

    def test_reads_see_consistent_data_during_maintenance(self, tmp_path):
        db = DB(
            str(tmp_path / "db"),
            _options(
                max_background_jobs=2,
                scheduler_factory=lambda _o: DeterministicScheduler(seed=11),
            ),
        )
        for key in range(80):
            db.put(key, b"gen0-%d" % key)
            if key % 3 == 0:
                db.put(key, b"gen1-%d" % key)
            # Read back mid-maintenance: must always see the latest ack.
            expected = b"gen1-%d" % key if key % 3 == 0 else b"gen0-%d" % key
            assert db.get(key) == expected
        db.wait_idle()
        report = db.verify()
        assert report.ok
        db.close()


# ----------------------------------------------------------------------
# Scalar / batch parity with workers enabled
# ----------------------------------------------------------------------
class TestParityWithWorkers:
    def test_scalar_and_batch_paths_agree_under_workers(self, tmp_path):
        items = [(key, b"p" * 50 + b"#%d" % key) for key in range(90)]
        answers = {}
        writes = {}
        for label in ("scalar", "batch"):
            db = DB(
                str(tmp_path / label), _options(max_background_jobs=2)
            )
            if label == "scalar":
                for key, value in items:
                    db.put(key, value)
            else:
                for start in range(0, len(items), 9):
                    batch = db.batch()
                    for key, value in items[start:start + 9]:
                        batch.put_int(key, value)
                    db.write(batch)
            db.wait_idle()
            answers[label] = {key: db.get(key) for key, _ in items}
            writes[label] = db.stats.writes
            db.close()
        assert answers["scalar"] == answers["batch"] == dict(items)
        assert writes["scalar"] == writes["batch"] == len(items)

    def test_workers_match_inline_answers(self, tmp_path):
        final = {}
        for label, jobs in (("inline", 0), ("workers", 2)):
            db = DB(str(tmp_path / label), _options(max_background_jobs=jobs))
            for key in range(120):
                db.put(key % 40, b"round-%d" % key)
                if key % 7 == 0:
                    db.delete((key + 3) % 40)
            db.wait_idle()
            final[label] = {key: db.get(key) for key in range(40)}
            db.close()
        assert final["inline"] == final["workers"]


# ----------------------------------------------------------------------
# Health surface
# ----------------------------------------------------------------------
class TestHealthSurface:
    def test_health_reports_backpressure_fields(self, tmp_path):
        db = DB(str(tmp_path / "db"), _options(max_background_jobs=3))
        for key in range(30):
            db.put(key, b"h" * 150)
        health = db.health()
        assert health.workers == 3
        assert health.stall_state in ("none", "slowdown", "stopped")
        assert health.pending_immutables >= 0
        assert health.level0_runs >= 0
        db.wait_idle()
        assert db.health().pending_immutables == 0
        db.close()


# ----------------------------------------------------------------------
# Compactor conflict table
# ----------------------------------------------------------------------
def _fake_job(kind, names, source, output, low=None, high=None):
    from types import SimpleNamespace

    return CompactionJob(
        kind=kind,
        inputs=[SimpleNamespace(name=name) for name in names],
        output_level=output,
        drop_tombstones=False,
        source_level=source,
        range_low=low,
        range_high=high,
    )


def _bare_compactor():
    # begin/finish/conflicts touch only the conflict table; the storage
    # collaborators are never consulted.
    return Compactor(None, DBOptions(key_bits=32), None, None)


class TestConflictTable:
    def test_shared_input_run_conflicts(self):
        compactor = _bare_compactor()
        first = _fake_job("tiered-level", ["000001.sst", "000002.sst"], 1, 2)
        compactor.begin(first)
        overlapping = _fake_job("tiered-level", ["000002.sst"], 3, 4)
        assert compactor.conflicts(overlapping)
        with pytest.raises(StoreError):
            compactor.begin(overlapping)
        # finish() releases the inputs; the same job is then admissible.
        compactor.finish(first)
        compactor.begin(overlapping)
        assert compactor.inflight_jobs() == 1

    def test_unbounded_leveled_jobs_never_share_a_level(self):
        compactor = _bare_compactor()
        compactor.begin(_fake_job("leveled-level", ["000001.sst"], 1, 2))
        # Disjoint inputs but touching L2 with no range footprint: an
        # unbounded range overlaps everything, so this must be refused.
        blocked = _fake_job("leveled-level", ["000009.sst"], 2, 3)
        assert compactor.conflicts(blocked)
        disjoint = _fake_job("leveled-level", ["000009.sst"], 3, 4)
        assert not compactor.conflicts(disjoint)
        compactor.begin(disjoint)
        assert compactor.inflight_jobs() == 2

    def test_disjoint_ranges_admit_leveled_jobs_in_one_level_pair(self):
        compactor = _bare_compactor()
        compactor.begin(
            _fake_job(
                "leveled-level", ["000001.sst"], 1, 2, low=b"aa", high=b"ff"
            )
        )
        # Same L1->L2 pair, disjoint key footprint: admissible.
        disjoint = _fake_job(
            "leveled-level", ["000002.sst"], 1, 2, low=b"gg", high=b"pp"
        )
        assert not compactor.conflicts(disjoint)
        compactor.begin(disjoint)
        assert compactor.inflight_jobs() == 2
        # Touching either footprint (inclusive bounds) conflicts...
        overlapping = _fake_job(
            "leveled-level", ["000003.sst"], 1, 2, low=b"ff", high=b"gg"
        )
        assert compactor.conflicts(overlapping)
        # ...as does an unbounded job on the pair, and a full compaction.
        assert compactor.conflicts(
            _fake_job("leveled-level", ["000004.sst"], 1, 2)
        )
        assert compactor.conflicts(
            _fake_job("full", ["000005.sst"], 0, 2)
        )
        # A third disjoint window still fits.
        compactor.begin(
            _fake_job(
                "leveled-level", ["000006.sst"], 1, 2, low=b"qq", high=b"zz"
            )
        )
        assert compactor.inflight_jobs() == 3

    def test_ranged_leveled_vs_tiered_on_shared_level_conflicts(self):
        compactor = _bare_compactor()
        compactor.begin(
            _fake_job(
                "leveled-level", ["000001.sst"], 1, 2, low=b"aa", high=b"bb"
            )
        )
        # Tiered jobs carry ranges too, but mixed styles on one level are
        # never admitted: a tiered prepend would break the leveled
        # install's non-overlap reasoning.
        assert compactor.conflicts(
            _fake_job(
                "tiered-level", ["000002.sst"], 2, 3, low=b"yy", high=b"zz"
            )
        )

    def test_tiered_jobs_may_share_a_level(self):
        compactor = _bare_compactor()
        compactor.begin(_fake_job("tiered-level", ["000001.sst"], 1, 2))
        # Tiered installs only prepend a group / remove inputs by name,
        # so a disjoint-input job targeting the same level is safe.
        neighbor = _fake_job("tiered-level", ["000005.sst"], 2, 3)
        assert not compactor.conflicts(neighbor)
        # ...but a leveled job on those levels still conflicts.
        assert compactor.conflicts(
            _fake_job("leveled-level", ["000007.sst"], 2, 3)
        )

    def test_finish_is_idempotent(self):
        compactor = _bare_compactor()
        job = _fake_job("leveled-l0", ["000001.sst"], 0, 1)
        compactor.begin(job)
        compactor.finish(job)
        compactor.finish(job)
        assert compactor.inflight_jobs() == 0
        assert not compactor.conflicts(job)


# ----------------------------------------------------------------------
# Overlap accounting
# ----------------------------------------------------------------------
class TestJobOverlap:
    def test_deterministic_run_overlaps_jobs(self, tmp_path):
        """With 2 job slots and per-put seals, jobs genuinely overlap.

        Values nearly fill the memtable so every put seals, queueing a
        flush while the previous flush's compaction is still in flight.
        The deterministic scheduler makes the interleaving replayable, so
        this pins ``jobs_overlapped``/``max_jobs_in_flight`` rather than
        hoping thread timing cooperates.
        """
        db = DB(
            str(tmp_path / "db"),
            _options(
                max_background_jobs=2,
                scheduler_factory=lambda _opts: DeterministicScheduler(seed=0),
            ),
        )
        for key in range(24):
            db.put(key % 8, b"x" * 960)
        db.wait_idle()
        assert db.stats.max_jobs_in_flight >= 2
        assert db.stats.jobs_overlapped > 0
        answers = {key: db.get(key) for key in range(8)}
        db.close()
        assert all(value == b"x" * 960 for value in answers.values())

    def test_two_leveled_jobs_in_flight_in_one_level_pair(self, tmp_path):
        """Per-file picking admits disjoint leveled jobs into one pair.

        Single-run windows (``max_compaction_input_files=1``) over a
        scattered key space produce several L1->L2 candidates with
        disjoint footprints; with two job slots the conflict table must
        admit a second one while the first is still in flight —
        ``leveled_range_admissions`` counts exactly those admissions.
        The deterministic scheduler makes the interleaving replayable.
        """
        values = {}
        db = DB(
            str(tmp_path / "db"),
            _options(
                sst_size_bytes=2048,
                max_bytes_for_level_base=4096,
                max_background_jobs=2,
                max_compaction_input_files=1,
                scheduler_factory=lambda _opts: DeterministicScheduler(seed=0),
            ),
        )
        for i in range(400):
            key = (i * 7919) % 4096  # coprime stride scatters the space
            values[key] = (b"r%d" % i).ljust(120, b"x")
            db.put(key, values[key])
        db.wait_idle()
        assert db.stats.max_jobs_in_flight >= 2
        assert db.stats.leveled_range_admissions > 0
        # Nothing lost under same-pair parallelism: last write per key wins.
        for key, value in values.items():
            assert db.get(key) == value
        report = db.verify()
        assert report.ok
        db.close()
