"""Serving-layer fault tolerance: deadlines, shedding, breaker, crashes.

The contract under test: every way a request can fail is *typed*, *fast*,
and *accounted* — deadlines are enforced at dequeue and bound the
coalescing linger; a full queue sheds or blocks (bounded by the
deadline) per ``queue_policy``; a degraded shard trips its circuit
breaker (writes fail fast, reads pass, the supervisor heals it); a
crashed drain worker strands nothing (satellite regression: blocked
submitters used to hang forever) and is restarted within its budget; and
``close()`` reports a stuck worker instead of silently leaking it.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import (
    ClosedStoreError,
    DeadlineExceededError,
    InvalidOptionsError,
    QueueFullError,
    ShardUnavailableError,
    WorkerCrashedError,
)
from repro.lsm.faults import FaultInjectionEnv
from repro.lsm.options import DBOptions
from repro.lsm.serving import ServingOptions, ShardedServer

KEY_BITS = 16
DOMAIN = 1 << KEY_BITS


def _db_options(**overrides) -> DBOptions:
    base = dict(
        key_bits=KEY_BITS,
        memtable_size_bytes=4 << 10,
        sst_size_bytes=8 << 10,
        block_size_bytes=512,
        max_bytes_for_level_base=32 << 10,
    )
    base.update(overrides)
    return DBOptions(**base)


def _server(tmp_path, db_overrides=None, **serving_overrides) -> ShardedServer:
    serving = dict(
        num_shards=2,
        coalescing_window_s=0.0,
        supervisor_poll_s=0.005,
        breaker_backoff_initial_s=0.01,
        breaker_backoff_max_s=0.05,
    )
    serving.update(serving_overrides)
    return ShardedServer(
        str(tmp_path / "srv"),
        _db_options(**(db_overrides or {})),
        ServingOptions(**serving),
    )


class _BlockedWorker:
    """Wedges one shard's worker inside ``db.multi_get`` until released."""

    def __init__(self, shard) -> None:
        self.entered = threading.Event()
        self.release = threading.Event()

        def blocked(keys):
            self.entered.set()
            self.release.wait(timeout=30.0)
            return {key: None for key in keys}

        shard.db.multi_get = blocked


def _wedge(server: ShardedServer, shard_index: int) -> _BlockedWorker:
    """Park the shard's worker in an in-flight batch; returns the latch."""
    shard = server._shards[shard_index]
    blocker = _BlockedWorker(shard)
    shard.submit_probe = server.get_async(
        _key_on(server, shard_index)
    )  # first request: drained and stuck in _execute
    assert blocker.entered.wait(timeout=5.0)
    return blocker


def _key_on(server: ShardedServer, shard_index: int) -> int:
    for key in range(DOMAIN):
        if server.router.shard_of(key) == shard_index:
            return key
    raise AssertionError("no key maps to shard")


# ---------------------------------------------------------------------------
# Options validation
# ---------------------------------------------------------------------------
class TestOptionValidation:
    @pytest.mark.parametrize(
        "bad",
        [
            dict(queue_policy="drop"),
            dict(default_deadline_s=0.0),
            dict(default_deadline_s=-1.0),
            dict(breaker_backoff_initial_s=0.0),
            dict(breaker_backoff_initial_s=2.0, breaker_backoff_max_s=1.0),
            dict(max_worker_restarts=-1),
            dict(supervisor_poll_s=0.0),
            dict(worker_join_timeout_s=0.0),
        ],
    )
    def test_bad_options_rejected(self, bad) -> None:
        with pytest.raises(InvalidOptionsError):
            ServingOptions(**bad).validate()

    def test_bad_request_deadline_rejected(self, tmp_path) -> None:
        with _server(tmp_path) as server:
            with pytest.raises(InvalidOptionsError):
                server.get(1, deadline_s=0.0)


# ---------------------------------------------------------------------------
# Deadlines
# ---------------------------------------------------------------------------
class TestDeadlines:
    def test_expired_in_queue_fails_at_dequeue(self, tmp_path) -> None:
        """A request whose deadline passes while queued behind a stuck
        batch fails with DeadlineExceededError instead of executing."""
        server = _server(tmp_path)
        blocker = None
        try:
            blocker = _wedge(server, 0)
            queued = server.get_async(_key_on(server, 0), deadline_s=0.05)
            time.sleep(0.15)  # let the deadline lapse while queued
            blocker.release.set()
            with pytest.raises(DeadlineExceededError):
                queued.result(timeout=5.0)
            assert server.stats().deadline_misses == 1
        finally:
            if blocker is not None:
                blocker.release.set()
            server.close()

    def test_linger_bounded_by_earliest_deadline(self, tmp_path) -> None:
        """With a 5s coalescing window, a 0.3s-deadline request is still
        served within its deadline — the linger stops early."""
        server = _server(tmp_path, coalescing_window_s=5.0)
        try:
            server.put(7, b"v")
            started = time.monotonic()
            assert server.get(7, deadline_s=0.3) == b"v"
            elapsed = time.monotonic() - started
            assert elapsed < 2.0  # nowhere near the 5s window
            assert server.stats().deadline_misses == 0
        finally:
            server.close()

    def test_default_deadline_applies(self, tmp_path) -> None:
        server = _server(tmp_path, default_deadline_s=0.05)
        blocker = None
        try:
            blocker = _wedge(server, 0)
            queued = server.get_async(_key_on(server, 0))
            time.sleep(0.15)
            blocker.release.set()
            with pytest.raises(DeadlineExceededError):
                queued.result(timeout=5.0)
        finally:
            if blocker is not None:
                blocker.release.set()
            server.close()


# ---------------------------------------------------------------------------
# Load shedding
# ---------------------------------------------------------------------------
class TestShedding:
    def test_shed_rejects_over_depth(self, tmp_path) -> None:
        server = _server(tmp_path, queue_policy="shed", max_queue_depth=2)
        blocker = None
        try:
            blocker = _wedge(server, 0)
            key = _key_on(server, 0)
            pending = [server.get_async(key) for _ in range(2)]  # fills queue
            with pytest.raises(QueueFullError):
                server.get(key)
            assert server.stats().sheds == 1
            blocker.release.set()
            for future in pending:
                future.result(timeout=5.0)
        finally:
            if blocker is not None:
                blocker.release.set()
            server.close()

    def test_blocked_submit_honors_deadline(self, tmp_path) -> None:
        server = _server(tmp_path, queue_policy="block", max_queue_depth=1)
        blocker = None
        try:
            blocker = _wedge(server, 0)
            key = _key_on(server, 0)
            server.get_async(key)  # fills the 1-deep queue
            with pytest.raises(DeadlineExceededError):
                server.get(key, deadline_s=0.05)
            assert server.stats().deadline_misses == 1
        finally:
            if blocker is not None:
                blocker.release.set()
            server.close()


# ---------------------------------------------------------------------------
# Worker crash containment (satellite 1 regression) + restarts
# ---------------------------------------------------------------------------
class TestWorkerCrash:
    def test_crash_wakes_blocked_submitters(self, tmp_path) -> None:
        """Regression: submitters blocked on a full queue whose worker
        died used to wait forever on the Condition."""
        server = _server(
            tmp_path,
            queue_policy="block",
            max_queue_depth=1,
            breaker_enabled=False,
        )
        blocker = None
        try:
            blocker = _wedge(server, 0)
            key = _key_on(server, 0)
            queued = server.get_async(key)  # fills the queue
            submit_errors: list[BaseException] = []

            def blocked_submit() -> None:
                try:
                    server.get(key)
                except BaseException as exc:  # noqa: BLE001 - asserted below
                    submit_errors.append(exc)

            submitters = [
                threading.Thread(target=blocked_submit) for _ in range(3)
            ]
            for thread in submitters:
                thread.start()
            time.sleep(0.1)  # let them block on the full queue
            server._shards[0].inject_worker_fault(
                RuntimeError("injected crash")
            )
            blocker.release.set()  # batch finishes; next dequeue raises
            for thread in submitters:
                thread.join(timeout=5.0)
                assert not thread.is_alive(), "submitter hung on dead worker"
            assert len(submit_errors) == 3
            assert all(
                isinstance(exc, ShardUnavailableError)
                for exc in submit_errors
            )
            with pytest.raises(WorkerCrashedError):
                queued.result(timeout=5.0)
            stats = server.stats()
            assert stats.worker_crashes == 1
            assert stats.worker_restarts == 0  # breaker (supervisor) off
        finally:
            if blocker is not None:
                blocker.release.set()
            server.close()

    def test_supervisor_restarts_worker(self, tmp_path) -> None:
        server = _server(tmp_path, max_worker_restarts=1)
        try:
            server.put(3, b"x")
            server._shards[0].inject_worker_fault(RuntimeError("boom"))
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if server.stats().worker_restarts == 1:
                    break
                time.sleep(0.01)
            assert server.stats().worker_restarts == 1
            assert server.get(3) == b"x"  # restarted worker serves again

            # Second crash exhausts the budget: permanently failed.
            server._shards[0].inject_worker_fault(RuntimeError("boom 2"))
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if server._shards[0].breaker_state() == "failed":
                    break
                time.sleep(0.01)
            assert server._shards[0].breaker_state() == "failed"
            with pytest.raises(ShardUnavailableError):
                server.get(_key_on(server, 0))
            with pytest.raises(ShardUnavailableError):
                server.put(_key_on(server, 0), b"nope")
            assert server.stats().write_rejections >= 1
            health = server.health()
            assert health.mode == "degraded"
            assert not health.ok
            assert "s0=failed" in health.summary()
        finally:
            server.close()


# ---------------------------------------------------------------------------
# Circuit breaker lifecycle on a degraded shard DB
# ---------------------------------------------------------------------------
class TestBreakerLifecycle:
    def test_trip_fastfail_heal(self, tmp_path) -> None:
        envs: list[FaultInjectionEnv] = []

        def env_factory(root, device, stats):
            env = FaultInjectionEnv(root, device, stats, seed=7)
            envs.append(env)
            return env

        server = _server(tmp_path, db_overrides=dict(env_factory=env_factory))
        try:
            key0 = _key_on(server, 0)
            key1 = _key_on(server, 1)
            server.put(key0, b"a")
            server.put(key1, b"b")
            server.flush()
            server.put(key0, b"a2")

            # Next write on shard 0 is the flush's SST write: it fails,
            # the shard parks degraded (flush itself does not raise).
            envs[0].fail_next_writes(1)
            server._shards[0].db.flush()
            assert server._shards[0].db.background_error is not None

            # Writes to shard 0 fast-fail typed; shard 1 is untouched;
            # reads on the degraded shard still pass through.
            with pytest.raises(ShardUnavailableError):
                deadline = time.monotonic() + 5.0
                while time.monotonic() < deadline:
                    server.put(key0, b"a3")
                    time.sleep(0.005)
                pytest.fail("breaker never tripped")
            server.put(key1, b"b2")
            assert server.get(key0) == b"a2"

            # The supervisor heals it: breaker closed, writes flow again.
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if server._shards[0].breaker_state() == "closed":
                    break
                time.sleep(0.01)
            assert server._shards[0].breaker_state() == "closed"
            server.put(key0, b"a4")
            assert server.get(key0) == b"a4"
            stats = server.stats()
            assert stats.breaker_trips >= 1
            assert stats.breaker_recoveries >= 1
            assert server.health().ok
        finally:
            server.close()


# ---------------------------------------------------------------------------
# close() with a stuck worker (satellite 2 regression)
# ---------------------------------------------------------------------------
class TestCloseStuckWorker:
    def test_close_reports_leak_and_fails_futures(self, tmp_path) -> None:
        server = _server(tmp_path, worker_join_timeout_s=0.2)
        blocker = _wedge(server, 0)
        stuck = server._shards[0].submit_probe  # in-flight on the wedge
        queued = server.get_async(_key_on(server, 0))
        leaked = server.close()
        assert leaked == [0]
        assert server.leaked_workers == (0,)
        with pytest.raises(ClosedStoreError):
            stuck.result(timeout=5.0)
        with pytest.raises(ClosedStoreError):
            queued.result(timeout=5.0)
        assert server.stats().worker_leaks == 1
        assert server.close() == [0]  # idempotent, same report
        blocker.release.set()  # unwedge; late resolve must be harmless

    def test_clean_close_reports_no_leak(self, tmp_path) -> None:
        server = _server(tmp_path)
        server.put(1, b"v")
        assert server.close() == []
        assert server.leaked_workers == ()


# ---------------------------------------------------------------------------
# Health gauges + queue accounting (satellite 3)
# ---------------------------------------------------------------------------
class TestHealthAndQueueAccounting:
    def test_summary_and_gauges_healthy(self, tmp_path) -> None:
        with _server(tmp_path) as server:
            health = server.health()
            assert health.ok
            assert health.mode == "healthy"
            assert health.breaker_states == ("closed", "closed")
            assert health.workers_alive == (True, True)
            summary = health.summary()
            assert "mode=healthy" in summary
            assert "2 shards" in summary
            assert "breakers" not in summary
            assert "workers_down" not in summary

    def test_summary_reports_dead_worker(self, tmp_path) -> None:
        server = _server(tmp_path, breaker_enabled=False)
        try:
            server._shards[0].inject_worker_fault(RuntimeError("dead"))
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if not server.health().workers_alive[0]:
                    break
                time.sleep(0.01)
            health = server.health()
            assert health.mode == "degraded"
            assert not health.ok
            assert health.workers_alive[0] is False
            assert "workers_down=[0]" in health.summary()
        finally:
            server.close()

    def test_queue_waits_and_depth_under_blocked_submitters(
        self, tmp_path
    ) -> None:
        server = _server(tmp_path, queue_policy="block", max_queue_depth=2)
        blocker = None
        try:
            blocker = _wedge(server, 0)
            key = _key_on(server, 0)
            pending = [server.get_async(key) for _ in range(2)]  # queue full
            assert server.health().queue_depths[0] == 2

            barrier = threading.Barrier(4)
            results: list[bytes | None] = []

            def blocked_submit() -> None:
                barrier.wait()
                results.append(server.get(key))

            submitters = [
                threading.Thread(target=blocked_submit) for _ in range(3)
            ]
            for thread in submitters:
                thread.start()
            barrier.wait()
            time.sleep(0.1)  # all three now blocked on the full queue
            assert server.stats().queue_waits == 3
            blocker.release.set()
            for thread in submitters:
                thread.join(timeout=5.0)
                assert not thread.is_alive()
            for future in pending:
                future.result(timeout=5.0)
            assert len(results) == 3
            stats = server.stats()
            # One blocking submit = one queue_wait, regardless of how
            # many times the condition wait woke spuriously.
            assert stats.queue_waits == 3
            assert stats.max_queue_depth == 2
        finally:
            if blocker is not None:
                blocker.release.set()
            server.close()
