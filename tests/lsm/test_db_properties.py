"""Property-based test: the DB behaves exactly like a dict + sorted scan.

Randomized operation sequences (put/delete/flush/compact) are replayed
against a plain-dict model; every point and range read must agree.  This is
the whole-store correctness oracle.
"""

import bisect

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bench.factories import make_factory
from repro.lsm.db import DB
from repro.lsm.options import DBOptions

_operations = st.lists(
    st.one_of(
        st.tuples(
            st.just("put"),
            st.integers(min_value=0, max_value=4095),
            st.binary(min_size=1, max_size=16),
        ),
        st.tuples(
            st.just("delete"),
            st.integers(min_value=0, max_value=4095),
            st.just(b""),
        ),
        st.tuples(st.just("flush"), st.just(0), st.just(b"")),
        st.tuples(st.just("compact"), st.just(0), st.just(b"")),
    ),
    max_size=60,
)


def _make_db(tmp_path_factory, name: str, with_filter: bool) -> DB:
    options = DBOptions(
        key_bits=16,
        memtable_size_bytes=2048,
        sst_size_bytes=4096,
        max_bytes_for_level_base=16 << 10,
        block_size_bytes=512,
    )
    if with_filter:
        options.filter_factory = make_factory("rosetta", 16, 14, max_range=32)
    return DB(str(tmp_path_factory / name), options)


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(operations=_operations, with_filter=st.booleans())
def test_db_matches_dict_model(tmp_path, operations, with_filter):
    import uuid

    db = _make_db(tmp_path, f"db-{uuid.uuid4().hex}", with_filter)
    model: dict[int, bytes] = {}
    try:
        for op, key, value in operations:
            if op == "put":
                db.put(key, value)
                model[key] = value
            elif op == "delete":
                db.delete(key)
                model.pop(key, None)
            elif op == "flush":
                db.flush()
            else:
                db.compact()

        # Point reads.
        for key in list(model)[:30]:
            assert db.get(key) == model[key]
        for key in (0, 1, 4095, 2222):
            assert db.get(key) == model.get(key)

        # Range reads.
        sorted_keys = sorted(model)
        for low in (0, 100, 1000, 4000):
            high = low + 128
            expected = []
            idx = bisect.bisect_left(sorted_keys, low)
            while idx < len(sorted_keys) and sorted_keys[idx] <= high:
                expected.append((sorted_keys[idx], model[sorted_keys[idx]]))
                idx += 1
            assert db.range_query(low, high) == expected
    finally:
        db.close()


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    keys=st.sets(st.integers(min_value=0, max_value=4095), min_size=1, max_size=200)
)
def test_reopen_preserves_model(tmp_path, keys):
    import uuid

    name = f"db-{uuid.uuid4().hex}"
    db = _make_db(tmp_path, name, with_filter=True)
    for key in keys:
        db.put(key, key.to_bytes(2, "big"))
    db.close()

    db2 = _make_db(tmp_path, name, with_filter=True)
    try:
        for key in list(keys)[:50]:
            assert db2.get(key) == key.to_bytes(2, "big")
        assert [k for k, _ in db2.range_query(0, 4095)] == sorted(keys)
    finally:
        db2.close()
