"""``DB.multi_get`` equivalence with the per-key ``get`` loop.

The batched point path must be observationally identical to issuing one
``get`` per distinct key: same values, same filter verdict counters, same
recency semantics (a newer run's value or tombstone shadows older runs).
Only the aggregation differs — one ``multi_point`` QueryContext, duplicate
keys resolved once.
"""

import pytest

from repro.bench.factories import make_factory
from repro.errors import FilterQueryError
from repro.lsm.db import DB

_VERDICT_FIELDS = (
    "filter_probes",
    "filter_negatives",
    "filter_true_positives",
    "filter_false_positives",
    "point_queries",
)


@pytest.fixture
def layered_db(tmp_path, small_db_options, rng):
    """Multiple overlapping L0 runs + a live memtable, Rosetta-filtered."""
    small_db_options.filter_factory = make_factory(
        "rosetta", small_db_options.key_bits, 18, max_range=64
    )
    database = DB(str(tmp_path / "db"), small_db_options)
    keys = rng.sample(range(1 << 28), 900)
    for chunk_start in range(0, 600, 200):
        for key in keys[chunk_start : chunk_start + 200]:
            database.put(key, b"sst-%d" % key)
        database.flush()
    # Tombstones for some flushed keys, persisted into their own run.
    for key in keys[:40]:
        database.delete(key)
    database.flush()
    # Memtable-only state: fresh values, an overwrite, and a deletion.
    for key in keys[600:650]:
        database.put(key, b"mem-%d" % key)
    database.put(keys[100], b"overwritten")
    database.delete(keys[101])
    yield database, keys
    if not database._closed:  # noqa: SLF001
        database.close()


def _mixed_batch(keys, rng):
    """Memtable hits, SST hits, tombstoned, absent, and duplicate keys."""
    absent = []
    resident = set(keys)
    while len(absent) < 120:
        key = rng.randrange(1 << 28)
        if key not in resident:
            absent.append(key)
    batch = (
        keys[:60]            # tombstoned (first 40) + oldest-run survivors
        + keys[250:320]      # middle/newest runs (L0 overlap ordering)
        + keys[600:640]      # memtable values
        + [keys[100], keys[101]]  # memtable overwrite + memtable delete
        + absent
        + [keys[300], keys[300], keys[620]]  # duplicates
    )
    rng.shuffle(batch)
    return batch


def _scalar_reference(db, batch):
    """Per-key gets over the deduplicated batch, with counter deltas."""
    distinct = list(dict.fromkeys(batch))
    before = db.stats.snapshot()
    values = {key: db.get(key) for key in distinct}
    return values, db.stats.diff(before)


class TestEquivalence:
    def test_values_match_per_key_gets(self, layered_db, rng):
        db, keys = layered_db
        batch = _mixed_batch(keys, rng)
        # Warm the filter dictionary so both passes see deserialized filters.
        db.multi_get(batch)
        scalar, _ = _scalar_reference(db, batch)
        assert db.multi_get(batch) == scalar

    def test_filter_counters_match_per_key_gets(self, layered_db, rng):
        """TP/FP/negative/probe deltas equal the scalar loop's, exactly."""
        db, keys = layered_db
        batch = _mixed_batch(keys, rng)
        db.multi_get(batch)  # warm filters and block cache
        _, scalar_delta = _scalar_reference(db, batch)
        before = db.stats.snapshot()
        db.multi_get(batch)
        batch_delta = db.stats.diff(before)
        for field in _VERDICT_FIELDS:
            assert getattr(batch_delta, field) == getattr(scalar_delta, field), field
        assert batch_delta.multi_point_queries == 1
        assert batch_delta.filter_batch_probes >= 2  # one bulk probe per run

    def test_recency_tombstone_shadows_older_value(self, layered_db):
        db, keys = layered_db
        # keys[:40] have a value in an old run and a tombstone in a newer one.
        result = db.multi_get(keys[:40])
        assert all(value is None for value in result.values())

    def test_memtable_hits_never_reach_filters(self, layered_db):
        db, keys = layered_db
        before = db.stats.snapshot()
        result = db.multi_get(keys[600:640])
        delta = db.stats.diff(before)
        assert result == {k: b"mem-%d" % k for k in keys[600:640]}
        assert delta.filter_probes == 0
        assert db.last_query.memtable_hits == 40


class TestAggregatedContext:
    def test_last_query_is_one_multi_point_context(self, layered_db, rng):
        db, keys = layered_db
        batch = _mixed_batch(keys, rng)
        db.multi_get(batch)
        ctx = db.last_query
        assert ctx.kind == "multi_point"
        assert ctx.keys_requested == len(batch)
        assert ctx.distinct_keys == len(set(batch))
        assert ctx.low == min(batch) and ctx.high == max(batch)
        assert ctx.runs_considered >= 2
        assert "multi_point" in ctx.summary()

    def test_duplicates_resolved_once(self, layered_db):
        db, keys = layered_db
        before = db.stats.snapshot()
        result = db.multi_get([keys[250], keys[250], keys[250], keys[601]])
        delta = db.stats.diff(before)
        assert set(result) == {keys[250], keys[601]}
        assert delta.point_queries == 2  # distinct lookups, not requests
        assert db.last_query.keys_requested == 4
        assert db.last_query.distinct_keys == 2

    def test_empty_batch(self, layered_db):
        db, _ = layered_db
        sentinel = db.last_query
        assert db.multi_get([]) == {}
        assert db.last_query is sentinel  # no context churn for a no-op

    def test_out_of_domain_key_rejected(self, layered_db):
        db, keys = layered_db
        with pytest.raises(FilterQueryError):
            db.multi_get([keys[0], 1 << db.options.key_bits])
