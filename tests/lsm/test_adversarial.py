"""Adversarial hardening at the store level.

Three defenses land together and these tests pin their contracts:

* **Per-SST salting** — ``filter_salt_seed`` re-keys every flushed and
  compacted filter with a per-file salt; the salted envelope round-trips
  through the SST filter block, pre-salting (unsalted) envelopes keep
  loading under a salted configuration, and a corrupt salt field rides
  the existing degrade-corrupt-filters path (the envelope CRC catches
  it) rather than serving a silently mis-keyed filter.
* **FP-feedback quarantine** — a run whose observed FPR blows past a
  multiple of its design FPR is flagged in ``DB.health()``, compaction
  prioritizes rebuilding it, and the rebuilt (re-salted, bonus-bits)
  run is unflagged.
* **The attack generator itself** — learns genuinely-absent FP keys and
  replays them with a deterministic 100% hit rate against an undefended
  store, which is the baseline the defenses are measured against.
"""

from __future__ import annotations

import random

import pytest

from repro.bench.factories import make_factory
from repro.errors import SerializationError, WorkloadError
from repro.filters.base import deserialize_filter
from repro.lsm.db import DB
from repro.lsm.filter_integration import FilterDictionary
from repro.lsm.options import DBOptions
from repro.lsm.serving import ServingHealth, ServingOptions, ShardedServer
from repro.workloads.adversarial import AdversarialAttacker, AttackReport

KEY_BITS = 20
DOMAIN = 1 << KEY_BITS
SALT_SEED = 0x5EED_0F_A77AC
STORED = sorted(random.Random(11).sample(range(DOMAIN), 1200))


def _options(**overrides) -> DBOptions:
    """A small store with a deliberately weak point filter (8 bits/key):

    frequent-enough false positives that an attacker can learn a set and
    a quarantine detector has something to see, while probes stay cheap.
    """
    base = dict(
        key_bits=KEY_BITS,
        memtable_size_bytes=8 << 10,
        sst_size_bytes=1 << 20,
        block_size_bytes=1024,
        block_cache_bytes=0,  # every FP costs a visible device read
        filter_factory=make_factory("bloom", KEY_BITS, 8.0),
    )
    base.update(overrides)
    return DBOptions(**base)


def _loaded_db(path, **overrides) -> DB:
    db = DB(str(path), _options(**overrides))
    for key in STORED:
        db.put(key, b"v%d" % key)
    db.flush()
    db.force_full_compaction()  # exactly one run, one filter
    return db


def _single_run(db: DB):
    runs = db.version.all_runs_newest_first()
    assert len(runs) == 1
    return runs[0]


def _flip_byte(path: str, offset: int) -> None:
    with open(path, "r+b") as handle:
        handle.seek(offset)
        byte = handle.read(1)
        handle.seek(offset)
        handle.write(bytes([byte[0] ^ 0xFF]))


def _sst_path(db: DB, run) -> str:
    return db._env.path(run.name)  # noqa: SLF001


# ----------------------------------------------------------------------
# Salted filter envelopes in SST files
# ----------------------------------------------------------------------
class TestSaltedEnvelope:
    def test_salted_envelope_roundtrip(self, tmp_path):
        db = _loaded_db(tmp_path / "db", filter_salt_seed=SALT_SEED)
        run = _single_run(db)
        filt = deserialize_filter(run.reader.filter_block_bytes())
        assert filt.salt != 0
        # The salted payload is the versioned (RBF2) Bloom layout.
        assert b"RBF2" in run.reader.filter_block_bytes()[:16]
        assert all(db.get(k) is not None for k in STORED[:50])
        db.close()

    def test_unsalted_store_writes_legacy_envelope(self, tmp_path):
        db = _loaded_db(tmp_path / "db")  # filter_salt_seed=0 default
        run = _single_run(db)
        block = run.reader.filter_block_bytes()
        assert b"RBF1" in block[:16]
        assert b"RBF2" not in block
        assert deserialize_filter(block).salt == 0
        db.close()

    def test_pre_salting_store_reopens_under_salted_config(self, tmp_path):
        """Envelope versioning: old unsalted runs serve alongside new
        salted ones after the operator turns the seed on."""
        path = tmp_path / "db"
        db = _loaded_db(path)
        db.close()
        db = DB(str(path), _options(filter_salt_seed=SALT_SEED))
        old_run = _single_run(db)
        assert deserialize_filter(old_run.reader.filter_block_bytes()).salt == 0
        assert db.get(STORED[0]) is not None
        # New writes flush with a fresh per-file salt.
        fresh = (DOMAIN - 1) if (DOMAIN - 1) not in STORED else (DOMAIN - 2)
        db.put(fresh, b"new")
        db.flush()
        new_run = db.version.all_runs_newest_first()[0]
        assert new_run.name != old_run.name
        assert deserialize_filter(new_run.reader.filter_block_bytes()).salt != 0
        assert db.get(fresh) == b"new"
        # A full compaction re-keys everything.
        db.force_full_compaction()
        merged = _single_run(db)
        assert deserialize_filter(merged.reader.filter_block_bytes()).salt != 0
        assert db.get(STORED[0]) is not None
        db.close()

    def test_distinct_files_get_distinct_salts(self, tmp_path):
        db = DB(str(tmp_path / "db"), _options(filter_salt_seed=SALT_SEED))
        for key in STORED:
            db.put(key, b"x")
            if key % 400 == 0:
                db.flush()
        db.flush()
        salts = {
            deserialize_filter(run.reader.filter_block_bytes()).salt
            for run in db.version.all_runs_newest_first()
        }
        assert len(salts) >= 2
        assert 0 not in salts
        db.close()

    def test_corrupt_salt_field_degrades_run(self, tmp_path):
        """Bit rot inside the salt takes the degrade path, never a
        silently mis-keyed filter: the envelope CRC covers the salt."""
        db = _loaded_db(tmp_path / "db", filter_salt_seed=SALT_SEED)
        run = _single_run(db)
        handle = run.reader._filter_handle  # noqa: SLF001
        # envelope = [tag_len][tag][crc4][payload]; the RBF2 salt field
        # sits at payload offset 16.
        tag_len = 1 + len(b"bloom") + 4
        _flip_byte(_sst_path(db, run), handle.offset + tag_len + 16 + 3)
        # An absent key inside the run's span, so the filter is consulted.
        absent = next(
            k for k in range(STORED[0], STORED[-1]) if k not in set(STORED)
        )
        assert db.get(absent) is None  # correct answer, filter-less
        assert db.stats.filters_degraded == 1
        assert run.name in db.health().degraded_filters
        db.close()

    def test_corrupt_salt_raises_when_degradation_off(self, tmp_path):
        db = _loaded_db(
            tmp_path / "db",
            filter_salt_seed=SALT_SEED,
            degrade_corrupt_filters=False,
        )
        run = _single_run(db)
        handle = run.reader._filter_handle  # noqa: SLF001
        tag_len = 1 + len(b"bloom") + 4
        _flip_byte(_sst_path(db, run), handle.offset + tag_len + 16 + 3)
        # An absent key inside the run's span, so the filter is consulted.
        absent = next(
            k for k in range(STORED[0], STORED[-1]) if k not in set(STORED)
        )
        with pytest.raises(SerializationError):
            db.get(absent)
        db.close()

    def test_scalar_batch_parity_with_nonzero_salt(self, tmp_path):
        db = _loaded_db(tmp_path / "db", filter_salt_seed=SALT_SEED)
        rng = random.Random(12)
        probes = STORED[:200] + [rng.randrange(DOMAIN) for _ in range(400)]
        rng.shuffle(probes)
        scalar = {k: db.get(k) for k in probes}
        assert db.multi_get(probes) == scalar
        db.close()

    def test_salted_store_recovers_after_reopen(self, tmp_path):
        path = tmp_path / "db"
        db = _loaded_db(path, filter_salt_seed=SALT_SEED)
        db.close()
        reopened = DB(str(path), _options(filter_salt_seed=SALT_SEED))
        assert deserialize_filter(
            _single_run(reopened).reader.filter_block_bytes()
        ).salt != 0
        for key in STORED[::40]:
            assert reopened.get(key) is not None
        reopened.close()


# ----------------------------------------------------------------------
# The attack generator
# ----------------------------------------------------------------------
class TestAttacker:
    def test_unknown_mode_rejected(self, tmp_path):
        db = _loaded_db(tmp_path / "db")
        with pytest.raises(WorkloadError):
            AdversarialAttacker(db, mode="psychic")
        db.close()

    def test_oracle_learns_and_replays_deterministically(self, tmp_path):
        db = _loaded_db(tmp_path / "db")
        attacker = AdversarialAttacker(db, seed=1, avoid=STORED)
        report = attacker.run(
            point_probes=1500, range_probes=0, replay_rounds=2,
            replay_pressure=2, max_replay_probes=2000,
        )
        assert isinstance(report, AttackReport)
        assert report.learned > 0
        # Every learned key is genuinely absent (avoid= respected) …
        stored = set(STORED)
        assert all(k not in stored for k in report.learned_points)
        # … and deterministic: the undefended filter re-admits each one
        # on every replay.
        assert report.replay_probes > 0
        assert report.replay_fpr == 1.0
        db.close()

    def test_learned_fps_go_stale_after_salted_rebuild(self, tmp_path):
        """The end-to-end point of the PR in one test."""
        db = _loaded_db(tmp_path / "db", filter_salt_seed=SALT_SEED)
        attacker = AdversarialAttacker(db, seed=2, avoid=STORED)
        attacker.learn_points(1500)
        assert attacker.learned_points
        db.force_full_compaction()  # fresh file number -> fresh salt
        _, hits = attacker.replay(rounds=1)
        survivors = hits / max(1, len(attacker.learned_points))
        assert survivors < 0.5  # each survives only at design FPR
        db.close()

    def test_blackbox_calibration_then_classification(self, tmp_path):
        db = _loaded_db(tmp_path / "db")
        attacker = AdversarialAttacker(
            db, mode="blackbox", blackbox_calibration_probes=4,
            blackbox_threshold_factor=4.0,
        )
        # First four empty probes only calibrate (classified negative).
        for latency in (100, 120, 80, 100):
            assert attacker._classify_latency(latency) is False  # noqa: SLF001
        # Threshold is now 4 x median(100) = 400ns.
        assert attacker._classify_latency(399) is False  # noqa: SLF001
        assert attacker._classify_latency(401) is True  # noqa: SLF001
        db.close()

    def test_replay_argument_validation(self, tmp_path):
        db = _loaded_db(tmp_path / "db")
        attacker = AdversarialAttacker(db)
        with pytest.raises(WorkloadError):
            attacker.replay(rounds=-1)
        with pytest.raises(WorkloadError):
            attacker.replay(pressure=0)
        with pytest.raises(WorkloadError):
            attacker.learn_ranges(-1)
        db.close()


# ----------------------------------------------------------------------
# FP-feedback quarantine
# ----------------------------------------------------------------------
class TestQuarantine:
    def test_attack_flags_run_and_compaction_heals(self, tmp_path):
        db = _loaded_db(tmp_path / "db", **dict(
            filter_salt_seed=SALT_SEED,
            quarantine_filters=True,
            quarantine_fpr_multiple=2.0,
            quarantine_min_probes=40,
        ))
        victim = _single_run(db).name
        attacker = AdversarialAttacker(db, seed=3, avoid=STORED)
        attacker.learn_points(800)
        assert attacker.learned_points
        attacker.replay(rounds=3, pressure=3, max_probes=3000)
        flagged = db.health()
        assert flagged.filters_under_attack >= 1
        assert victim in flagged.attacked_filters
        assert not flagged.ok
        assert "filters_under_attack" in flagged.summary()
        assert db.stats.filters_quarantined >= 1
        # The quarantine feeds compaction: one compact() call rebuilds
        # the flagged run (fresh salt + bonus bits) and clears the flag.
        db.compact()
        db.wait_idle()
        healed = db.health()
        assert healed.filters_under_attack == 0
        assert healed.attacked_filters == ()
        assert _single_run(db).name != victim
        # The learned set is stale against the re-keyed filter.
        _, hits = attacker.replay(rounds=1)
        assert hits / max(1, len(attacker.learned_points)) < 0.5
        db.close()

    def test_benign_traffic_never_flags(self, tmp_path):
        db = _loaded_db(tmp_path / "db", **dict(
            filter_salt_seed=SALT_SEED,
            quarantine_filters=True,
            quarantine_fpr_multiple=8.0,
            quarantine_min_probes=40,
        ))
        rng = random.Random(13)
        for _ in range(2000):
            db.get(rng.randrange(DOMAIN))
        health = db.health()
        assert health.filters_under_attack == 0
        assert health.attacked_filters == ()
        assert db.stats.filters_quarantined == 0
        db.close()

    def test_quarantine_disabled_by_default(self, tmp_path):
        db = _loaded_db(tmp_path / "db")
        attacker = AdversarialAttacker(db, seed=4, avoid=STORED)
        attacker.learn_points(600)
        attacker.replay(rounds=2, pressure=4, max_probes=2000)
        assert db.health().filters_under_attack == 0
        db.close()


class TestFilterDictionaryDetector:
    """Unit-level pinning of the flag threshold and lifecycle."""

    def _armed(self) -> FilterDictionary:
        fd = FilterDictionary(
            quarantine=True, quarantine_fpr_multiple=4.0,
            quarantine_min_probes=10,
        )
        fd._design_fpr["run"] = 0.01  # noqa: SLF001
        return fd

    def test_below_min_probes_never_flags(self):
        fd = self._armed()
        assert not fd.record_outcome("run", false_positives=9)
        assert fd.under_attack_snapshot() == ()

    def test_flags_once_past_threshold(self):
        fd = self._armed()
        # 10 probes, all FPs: observed 1.0 > 4 x 0.01.
        assert fd.record_outcome("run", negatives=0, false_positives=10)
        assert fd.under_attack_snapshot() == ("run",)
        # Sticky, not re-announced.
        assert not fd.record_outcome("run", false_positives=5)

    def test_fpr_at_threshold_does_not_flag(self):
        fd = self._armed()
        # observed 4/100 = 0.04 == 4 x 0.01: boundary stays unflagged.
        assert not fd.record_outcome(
            "run", negatives=96, false_positives=4
        )
        assert fd.under_attack_snapshot() == ()

    def test_unknown_design_fpr_never_flags(self):
        fd = self._armed()
        assert not fd.record_outcome("mystery", false_positives=100)
        assert fd.under_attack_snapshot() == ()

    def test_drop_run_clears_flag_and_counters(self):
        fd = self._armed()
        fd.record_outcome("run", false_positives=10)
        fd.drop_run("run")
        assert fd.under_attack_snapshot() == ()

    def test_quarantine_off_is_inert(self):
        fd = FilterDictionary(quarantine=False)
        assert not fd.record_outcome("run", false_positives=1000)
        assert fd.under_attack_snapshot() == ()


# ----------------------------------------------------------------------
# Serving-layer aggregation
# ----------------------------------------------------------------------
class TestServingGauges:
    def test_healthy_fleet_reports_zero_gauges(self, tmp_path):
        server = ShardedServer(
            str(tmp_path / "server"),
            _options(
                filter_salt_seed=SALT_SEED,
                quarantine_filters=True,
            ),
            ServingOptions(num_shards=2, coalescing_window_s=0.0),
        )
        server.put(1, b"a")
        server.put(DOMAIN - 2, b"b")
        health = server.health()
        assert health.filters_degraded == 0
        assert health.filters_under_attack == 0
        assert "filters_under_attack" not in health.summary()
        server.close()

    def test_attacked_shard_rolls_up(self, tmp_path):
        server = ShardedServer(
            str(tmp_path / "server"),
            _options(
                filter_salt_seed=SALT_SEED,
                quarantine_filters=True,
                quarantine_fpr_multiple=2.0,
                quarantine_min_probes=40,
            ),
            ServingOptions(num_shards=2, coalescing_window_s=0.0),
        )
        # Load shard 0's key span and flush it to a filtered run.
        span = server.router.span(0)
        rng = random.Random(14)
        stored = sorted(
            rng.sample(range(span[0], span[1] + 1), 800)
        )
        for key in stored:
            server.put(key, b"v")
        shard_db = server._shards[0].db  # noqa: SLF001
        shard_db.flush()
        shard_db.force_full_compaction()
        # Attack through the serving front-end: the shard's own stats
        # and quarantine detector see the probes.
        attacker = AdversarialAttacker(
            shard_db, key_bits=KEY_BITS, seed=5, avoid=stored
        )
        attacker.learn_points(800)
        assert attacker.learned_points
        attacker.replay(rounds=3, pressure=3, max_probes=3000)
        health = server.health()
        assert health.filters_under_attack >= 1
        assert health.shards[0].filters_under_attack >= 1
        assert health.shards[1].filters_under_attack == 0
        assert "shards [0]" in health.summary()
        server.close()

    def test_summary_formatting_pinned(self):
        from repro.lsm.db import HealthReport

        base = dict(
            mode="healthy", background_error=None, degraded_filters=(),
            io_transient_errors=0, io_retries=0, filters_degraded=0,
            background_errors=0,
        )
        clean = HealthReport(**base)
        attacked = HealthReport(
            **base,
            attacked_filters=("sst_1_7.sst",), filters_under_attack=1,
        )
        health = ServingHealth(
            mode="healthy", shards=(clean, attacked), queue_depths=(0, 0),
            filters_degraded=0, filters_under_attack=1,
        )
        assert "filters_under_attack=1 (shards [1])" in health.summary()
        assert not health.ok  # an attacked shard is not ok
