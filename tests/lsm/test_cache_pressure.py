"""Block-cache behaviour under pressure, through the whole store.

The paper pins filter/index blocks precisely because a scan-heavy workload
would otherwise evict them and every query would re-fetch metadata.  These
tests squeeze the cache and check the priority machinery end to end.
"""

import pytest

from repro.bench.factories import make_factory
from repro.lsm.db import DB
from repro.lsm.options import DBOptions


def _options(cache_bytes: int, **overrides) -> DBOptions:
    options = DBOptions(
        key_bits=32,
        memtable_size_bytes=16 << 10,
        sst_size_bytes=64 << 10,
        block_size_bytes=1024,
        block_cache_bytes=cache_bytes,
        filter_factory=make_factory("rosetta", 32, 14, max_range=32),
    )
    for field, value in overrides.items():
        setattr(options, field, value)
    return options


def _load(db: DB, n: int = 4000) -> None:
    for i in range(n):
        db.put(i * 3, bytes(24))
    db.flush()


class TestPressure:
    def test_tiny_cache_still_correct(self, tmp_path):
        db = DB(str(tmp_path / "tiny"), _options(cache_bytes=4096))
        _load(db)
        for probe in range(0, 12000, 601):
            expected = bytes(24) if probe % 3 == 0 else None
            assert db.get(probe) == expected
        db.close()

    def test_scan_churn_does_not_evict_pinned_metadata(self, tmp_path):
        db = DB(str(tmp_path / "pin"), _options(cache_bytes=16 << 10))
        _load(db)
        # Warm the metadata (filters/index pinned for L0, high-prio else).
        db.get(3)
        # Churn data blocks far larger than the cache.
        for _ in range(3):
            list(db.iterator())
        # Metadata reads for a fresh point query should still hit cache
        # (the filter dictionary plus pinned/high-priority index blocks).
        before = db.stats.snapshot()
        db.get(9)
        delta = db.stats.diff(before)
        # At most the one data block comes from the device.
        assert delta.block_reads <= 1
        db.close()

    def test_priority_beats_lru_order(self, tmp_path):
        """Data blocks churned *after* metadata still evict first."""
        db = DB(str(tmp_path / "prio"), _options(cache_bytes=8 << 10))
        _load(db, n=2000)
        db.get(3)  # loads metadata + one data block
        cache = db._cache  # noqa: SLF001
        high_and_pinned = len(cache._high) + len(cache._pinned)  # noqa: SLF001
        assert high_and_pinned > 0
        for _ in range(2):
            list(db.iterator())  # flood with data blocks
        assert len(cache._high) + len(cache._pinned) >= high_and_pinned  # noqa: SLF001
        db.close()

    def test_disabled_cache_counts_every_read(self, tmp_path):
        db = DB(str(tmp_path / "none"), _options(cache_bytes=0))
        _load(db, n=1000)
        db.get(3)
        db.get(3)
        assert db.stats.block_cache_hits == 0
        assert db.stats.block_reads >= 2
        db.close()

    def test_unpinned_config_still_correct(self, tmp_path):
        options = _options(
            cache_bytes=8 << 10,
            pin_l0_filter_and_index_blocks_in_cache=False,
            cache_index_and_filter_blocks_with_high_priority=False,
        )
        db = DB(str(tmp_path / "unpinned"), options)
        _load(db, n=1500)
        for probe in (3, 6, 4500, 1):
            expected = bytes(24) if probe % 3 == 0 and probe < 4500 else None
            assert db.get(probe) == expected
        db.close()
