"""Tests for the SST inspection tool."""

import os

import pytest

from repro.bench.factories import make_factory
from repro.lsm.db import DB
from repro.lsm.options import DBOptions
from repro.lsm.sst_dump import dump_sst, summarize_sst


@pytest.fixture
def store(tmp_path):
    options = DBOptions(
        key_bits=32,
        memtable_size_bytes=16 << 10,
        sst_size_bytes=64 << 10,
        block_size_bytes=1024,
        filter_factory=make_factory("rosetta", 32, 16, max_range=32),
    )
    path = str(tmp_path / "dumpdb")
    db = DB(path, options)
    for i in range(2000):
        db.put(i * 3, bytes(20))
    db.delete(0)
    db.flush()
    name = db.version.all_runs_newest_first()[-1].name
    db.close()
    return path, name, options


class TestSummarize:
    def test_counts(self, store):
        path, name, options = store
        summary = summarize_sst(path, name, options)
        assert summary.num_entries > 0
        assert summary.num_data_blocks == len(summary.block_entry_counts)
        assert sum(summary.block_entry_counts) == summary.num_entries
        assert summary.file_size == os.path.getsize(os.path.join(path, name))

    def test_filter_identified(self, store):
        path, name, options = store
        summary = summarize_sst(path, name, options)
        assert summary.filter_kind == "rosetta"
        assert summary.filter_bytes > 0
        assert summary.filter_bits_per_key > 8

    def test_key_span_ordered(self, store):
        path, name, options = store
        summary = summarize_sst(path, name, options)
        assert summary.min_key <= summary.max_key

    def test_metadata_overhead_sane(self, store):
        path, name, options = store
        summary = summarize_sst(path, name, options)
        assert 0.0 < summary.metadata_overhead < 0.9

    def test_no_filter_store(self, tmp_path):
        options = DBOptions(key_bits=32, memtable_size_bytes=8 << 10,
                            block_size_bytes=1024)
        path = str(tmp_path / "nofilter")
        db = DB(path, options)
        for i in range(300):
            db.put(i, bytes(8))
        db.flush()
        name = db.version.all_runs_newest_first()[0].name
        db.close()
        summary = summarize_sst(path, name, options)
        assert summary.filter_kind == "none"
        assert summary.filter_bytes == 0


class TestDump:
    def test_report_mentions_key_facts(self, store):
        path, name, options = store
        report = dump_sst(path, name, options)
        assert name in report
        assert "rosetta" in report
        assert "data blocks" in report
        assert "tombstones" in report

    def test_show_entries(self, store):
        path, name, options = store
        report = dump_sst(path, name, options, show_entries=5)
        assert report.count("PUT ") + report.count("DEL ") == 5
        assert "..." in report

    def test_tombstone_rendered(self, store):
        path, name, options = store
        # Key 0's tombstone lives in the newest L0 run; dump that one.
        db = DB(path, options)
        newest = db.version.all_runs_newest_first()[0].name
        db.close()
        report = dump_sst(path, newest, options, show_entries=3)
        assert "DEL" in report
