"""Tests for the store integrity checker (DB.verify)."""

import pytest

from repro.bench.factories import make_factory
from repro.lsm.db import DB
from repro.lsm.options import DBOptions


def _db(tmp_path, name="vdb", with_filter=True) -> DB:
    options = DBOptions(
        key_bits=32,
        memtable_size_bytes=8 << 10,
        sst_size_bytes=32 << 10,
        block_size_bytes=1024,
        block_cache_bytes=0,
        filter_factory=(
            make_factory("rosetta", 32, 14, max_range=32) if with_filter
            else None
        ),
    )
    db = DB(str(tmp_path / name), options)
    for i in range(2000):
        db.put(i * 11, f"v{i}".encode())
    db.flush()
    return db


def _flip(path: str, offset: int) -> None:
    with open(path, "r+b") as handle:
        handle.seek(offset)
        byte = handle.read(1)
        handle.seek(offset)
        handle.write(bytes([byte[0] ^ 0xFF]))


class TestVerify:
    def test_clean_store_passes(self, tmp_path):
        db = _db(tmp_path)
        report = db.verify()
        assert report.ok, report.summary()
        assert report.files_checked == db.num_live_files()
        assert report.entries_checked == 2000
        assert report.filters_checked == report.files_checked
        assert "OK" in report.summary()
        db.close()

    def test_no_filter_store_passes(self, tmp_path):
        db = _db(tmp_path, with_filter=False)
        report = db.verify()
        assert report.ok
        assert report.filters_checked == 0
        db.close()

    def test_detects_data_corruption(self, tmp_path):
        db = _db(tmp_path)
        run = db.version.all_runs_newest_first()[0]
        _flip(db._env.path(run.name), 10)  # noqa: SLF001
        report = db.verify()
        assert not report.ok
        assert any("checksum" in e or "block" in e for e in report.errors)
        assert "ERROR" in report.summary()
        db.close()

    def test_detects_filter_corruption(self, tmp_path):
        db = _db(tmp_path)
        run = db.version.all_runs_newest_first()[0]
        handle = run.reader._filter_handle  # noqa: SLF001
        # Corrupt a byte in the middle of the filter payload.
        _flip(db._env.path(run.name), handle.offset + handle.size // 2)  # noqa: SLF001
        report = db.verify()
        assert not report.ok
        assert any("filter" in error for error in report.errors)
        db.close()

    def test_verify_after_compaction(self, tmp_path):
        db = _db(tmp_path)
        db.force_full_compaction()
        assert db.verify().ok
        db.close()

    def test_verify_tiered_store(self, tmp_path):
        options = DBOptions(
            key_bits=32,
            memtable_size_bytes=4 << 10,
            sst_size_bytes=16 << 10,
            block_size_bytes=1024,
            level_size_ratio=3,
            compaction_style="tiered",
        )
        db = DB(str(tmp_path / "tiered"), options)
        for i in range(4000):
            db.put(i, bytes(16))
        db.flush()
        report = db.verify()
        assert report.ok, report.summary()
        db.close()

    def test_verify_counts_blocks(self, tmp_path):
        db = _db(tmp_path)
        report = db.verify()
        expected_blocks = sum(
            run.reader.num_data_blocks()
            for run in db.version.all_runs_newest_first()
        )
        assert report.blocks_checked == expected_blocks
        db.close()
