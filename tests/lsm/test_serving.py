"""Serving layer: shard routing, equivalence with direct DB calls, coalescing.

The contract under test: a :class:`~repro.lsm.serving.ShardedServer` is
*observationally identical* to one DB holding the same data — every
``get`` / ``multi_get`` / ``range_query`` / ``range_iter`` answer is
byte-identical on randomized mixed workloads (including ranges that
straddle shard boundaries) — while the front-end's own counters account
for every request and the shard DBs' counters stay in scalar/batch
parity with the equivalent direct calls.
"""

from __future__ import annotations

import threading

import pytest

from repro.bench.factories import make_factory
from repro.errors import ClosedStoreError, FilterQueryError, InvalidOptionsError
from repro.lsm.db import DB
from repro.lsm.options import DBOptions
from repro.lsm.serving import ServingOptions, ShardedServer
from repro.lsm.shard import ShardRouter

KEY_BITS = 16
DOMAIN = 1 << KEY_BITS


def _db_options(**overrides) -> DBOptions:
    base = dict(
        key_bits=KEY_BITS,
        memtable_size_bytes=4 << 10,
        sst_size_bytes=8 << 10,
        block_size_bytes=512,
        max_bytes_for_level_base=32 << 10,
        filter_factory=make_factory("rosetta", KEY_BITS, 14, max_range=32),
    )
    base.update(overrides)
    return DBOptions(**base)


def _server(tmp_path, **serving_overrides) -> ShardedServer:
    serving = dict(num_shards=4, coalescing_window_s=0.0)
    serving.update(serving_overrides)
    return ShardedServer(
        str(tmp_path / "server"), _db_options(), ServingOptions(**serving)
    )


# ----------------------------------------------------------------------
# ShardRouter unit behavior
# ----------------------------------------------------------------------
class TestShardRouter:
    def test_default_boundaries_cover_domain_contiguously(self):
        router = ShardRouter(KEY_BITS, 4)
        assert router.span(0)[0] == 0
        assert router.span(3)[1] == DOMAIN - 1
        for shard in range(3):
            assert router.span(shard)[1] + 1 == router.span(shard + 1)[0]

    def test_shard_of_matches_spans(self, rng):
        router = ShardRouter(KEY_BITS, 5)
        for key in rng.sample(range(DOMAIN), 500):
            shard = router.shard_of(key)
            low, high = router.span(shard)
            assert low <= key <= high

    def test_out_of_domain_key_raises(self):
        router = ShardRouter(KEY_BITS, 4)
        with pytest.raises(FilterQueryError):
            router.shard_of(-1)
        with pytest.raises(FilterQueryError):
            router.shard_of(DOMAIN)

    def test_split_range_reassembles_exactly(self, rng):
        router = ShardRouter(KEY_BITS, 4)
        for _ in range(200):
            low = rng.randrange(DOMAIN)
            high = rng.randrange(low, DOMAIN)
            pieces = router.split_range(low, high)
            assert pieces[0][1] == low and pieces[-1][2] == high
            for (_, _, prev_high), (_, next_low, _) in zip(
                pieces, pieces[1:]
            ):
                assert next_low == prev_high + 1
            assert [p[0] for p in pieces] == sorted({p[0] for p in pieces})

    def test_split_range_inverted_raises(self):
        with pytest.raises(FilterQueryError):
            ShardRouter(KEY_BITS, 4).split_range(10, 9)

    def test_group_keys_preserves_order_and_duplicates(self):
        router = ShardRouter(KEY_BITS, 2)
        half = DOMAIN // 2
        groups = router.group_keys([1, half + 1, 2, 1, half + 2])
        assert groups == {0: [1, 2, 1], 1: [half + 1, half + 2]}

    def test_explicit_boundaries_validated(self):
        assert ShardRouter(KEY_BITS, 3, (100, 200)).span(1) == (100, 199)
        with pytest.raises(InvalidOptionsError):
            ShardRouter(KEY_BITS, 3, (100,))  # wrong count
        with pytest.raises(InvalidOptionsError):
            ShardRouter(KEY_BITS, 3, (200, 100))  # not increasing
        with pytest.raises(InvalidOptionsError):
            ShardRouter(KEY_BITS, 3, (0, 100))  # not interior


class TestServingOptions:
    @pytest.mark.parametrize(
        "overrides",
        [
            {"num_shards": 0},
            {"coalescing_window_s": -1.0},
            {"max_batch_keys": 0},
            {"max_batch_requests": 0},
            {"max_queue_depth": 0},
        ],
    )
    def test_validate_rejects(self, overrides):
        with pytest.raises(InvalidOptionsError):
            ServingOptions(**overrides).validate()


# ----------------------------------------------------------------------
# Equivalence with direct DB calls (byte-identical, counter parity)
# ----------------------------------------------------------------------
class TestEquivalence:
    def _load_both(self, tmp_path, rng, num_keys=3000):
        reference = DB(str(tmp_path / "reference"), _db_options())
        server = _server(tmp_path)
        data = {}
        for key in rng.sample(range(DOMAIN), num_keys):
            value = b"serve-%d" % key
            data[key] = value
            reference.put(key, value)
            server.put(key, value)
        reference.flush()
        server.flush()
        return reference, server, data

    def test_randomized_mixed_workload_is_byte_identical(
        self, tmp_path, rng
    ):
        reference, server, data = self._load_both(tmp_path, rng)
        for _ in range(150):
            roll = rng.random()
            if roll < 0.40:
                key = rng.randrange(DOMAIN)
                assert server.get(key) == reference.get(key)
            elif roll < 0.70:
                keys = [rng.randrange(DOMAIN) for _ in range(11)]
                assert server.multi_get(keys) == reference.multi_get(keys)
            elif roll < 0.90:
                low = rng.randrange(DOMAIN)
                high = min(DOMAIN - 1, low + rng.randrange(1, DOMAIN // 4))
                assert server.range_query(low, high) == (
                    reference.range_query(low, high)
                )
            else:
                key, value = rng.randrange(DOMAIN), b"upd-%d" % rng.random()
                server.put(key, value)
                reference.put(key, value)
        assert server.range_query(0, DOMAIN - 1) == (
            reference.range_query(0, DOMAIN - 1)
        )
        server.close()
        reference.close()

    def test_shard_straddling_range(self, tmp_path, rng):
        reference, server, data = self._load_both(tmp_path, rng)
        boundary = server.router.span(1)[1]  # shard 1 / shard 2 edge
        low, high = boundary - 500, boundary + 500
        pieces = server.router.split_range(low, high)
        assert len(pieces) >= 2, "range must straddle a shard boundary"
        expected = reference.range_query(low, high)
        assert server.range_query(low, high) == expected
        assert list(server.range_iter(low, high)) == expected
        server.close()
        reference.close()

    def test_scalar_batch_counter_parity(self, tmp_path, rng):
        """The same lookups cost the same point_queries either way.

        ``multi_get`` dedups per call on both sides and the shard split
        never changes the distinct-key count, so the shard DBs' summed
        ``point_queries`` (and writes) must match the reference DB's.
        """
        reference, server, data = self._load_both(tmp_path, rng)
        ref_before = reference.stats.snapshot()
        srv_before = server.perf_totals()
        gets = [rng.randrange(DOMAIN) for _ in range(60)]
        multis = [
            [rng.randrange(DOMAIN) for _ in range(9)] for _ in range(30)
        ]
        for key in gets:
            assert server.get(key) == reference.get(key)
        for keys in multis:
            assert server.multi_get(keys) == reference.multi_get(keys)
        ref_delta = reference.stats.diff(ref_before)
        srv_totals = server.perf_totals()
        srv_points = srv_totals.point_queries - srv_before.point_queries
        assert srv_points == ref_delta.point_queries
        # The front-end accounted for every request it saw.
        stats = server.stats()
        assert stats.point_requests == len(gets)
        assert stats.multi_requests >= len(multis)
        assert stats.batches > 0
        assert stats.batched_keys == srv_points
        server.close()
        reference.close()

    def test_batched_path_really_engaged(self, tmp_path, rng):
        reference, server, data = self._load_both(tmp_path, rng, 1500)
        server.multi_get([rng.randrange(DOMAIN) for _ in range(16)])
        totals = server.perf_totals()
        assert totals.multi_point_queries > 0
        assert totals.filter_batch_probes > 0
        server.close()
        reference.close()


# ----------------------------------------------------------------------
# Coalescing, health, lifecycle
# ----------------------------------------------------------------------
class TestCoalescing:
    def test_concurrent_points_coalesce_into_one_batch(self, tmp_path, rng):
        server = _server(
            tmp_path, num_shards=2, coalescing_window_s=0.05
        )
        keys = rng.sample(range(DOMAIN), 400)
        for key in keys:
            server.put(key, b"v-%d" % key)
        server.flush()
        # Async submits from one thread: all in flight inside one window.
        lookups = rng.sample(keys, 64)
        futures = [server.get_async(key) for key in lookups]
        for key, future in zip(lookups, futures):
            assert future.result(timeout=30) == b"v-%d" % key
        stats = server.stats()
        assert stats.coalesced_batches >= 1
        assert stats.coalesced_requests >= 2
        assert stats.batches < len(lookups)  # strictly fewer than 1:1
        assert stats.max_batch_requests >= 2
        server.close()

    def test_multi_threaded_clients_get_correct_answers(self, tmp_path, rng):
        server = _server(tmp_path, coalescing_window_s=0.002)
        data = {}
        for key in rng.sample(range(DOMAIN), 1000):
            data[key] = b"mt-%d" % key
            server.put(key, data[key])
        server.flush()
        errors: list[BaseException] = []

        def client(seed: int) -> None:
            import random as _random

            local = _random.Random(seed)
            try:
                for _ in range(40):
                    keys = [local.randrange(DOMAIN) for _ in range(7)]
                    expected = {k: data.get(k) for k in keys}
                    assert server.multi_get(keys) == expected
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=client, args=(seed,)) for seed in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        server.close()


class TestHealthAndLifecycle:
    def test_health_reports_every_shard_and_queue(self, tmp_path, rng):
        server = _server(tmp_path)
        for key in rng.sample(range(DOMAIN), 200):
            server.put(key, b"h")
        server.flush()
        health = server.health()
        assert health.ok and health.mode == "healthy"
        assert len(health.shards) == 4
        assert health.queue_depths == (0, 0, 0, 0)
        assert "4 shards" in health.summary()

    def test_empty_multi_get(self, tmp_path):
        server = _server(tmp_path)
        assert server.multi_get([]) == {}
        server.close()

    def test_out_of_domain_key_raises_eagerly(self, tmp_path):
        server = _server(tmp_path)
        with pytest.raises(FilterQueryError):
            server.get(DOMAIN)
        with pytest.raises(FilterQueryError):
            server.range_query(5, 1)
        server.close()

    def test_close_semantics(self, tmp_path):
        server = _server(tmp_path)
        server.put(1, b"x")
        server.close()
        server.close()  # idempotent
        with pytest.raises(ClosedStoreError):
            server.get(1)
        with pytest.raises(ClosedStoreError):
            server.put(2, b"y")

    def test_context_manager_closes(self, tmp_path):
        with _server(tmp_path) as server:
            server.put(3, b"z")
            assert server.get(3) == b"z"
        with pytest.raises(ClosedStoreError):
            server.get(3)

    def test_reopen_preserves_data(self, tmp_path):
        with _server(tmp_path) as server:
            server.put(41, b"before")
            server.flush()
        with _server(tmp_path) as reopened:
            assert reopened.get(41) == b"before"
