"""Tests for workload-statistics persistence across store restarts."""

import pytest

from repro.core.tuning import WorkloadTracker
from repro.lsm.db import DB


class TestTrackerSerialization:
    def test_roundtrip(self):
        tracker = WorkloadTracker()
        tracker.record_range_query(8)
        tracker.record_range_query(8)
        tracker.record_range_query(64)
        tracker.record_point_query()
        tracker.record_filter_outcome(True, False)
        tracker.record_filter_outcome(False, False)
        restored = WorkloadTracker.from_dict(tracker.to_dict())
        assert restored.range_size_histogram == {8: 2, 64: 1}
        assert restored.num_point_queries == 1
        assert restored.observed_false_positive_rate == pytest.approx(0.5)

    def test_empty_roundtrip(self):
        restored = WorkloadTracker.from_dict(WorkloadTracker().to_dict())
        assert restored.num_range_queries == 0

    def test_from_partial_dict(self):
        restored = WorkloadTracker.from_dict({"point_queries": 3})
        assert restored.num_point_queries == 3
        assert restored.range_size_histogram == {}


class TestStorePersistence:
    def test_statistics_survive_restart(self, tmp_path, small_db_options):
        path = str(tmp_path / "stats-db")
        db = DB(path, small_db_options)
        for i in range(100):
            db.put(i, bytes(8))
        for _ in range(25):
            db.range_query(5000, 5007)
        db.get(9999)
        db.close()

        db2 = DB(path, small_db_options)
        assert db2.tracker.range_size_histogram == {8: 25}
        assert db2.tracker.num_point_queries == 1
        db2.close()

    def test_restored_statistics_drive_tuning(self, tmp_path, small_db_options):
        """A fresh process can retune from the previous session's workload."""
        path = str(tmp_path / "tune-across-restart")
        db = DB(path, small_db_options)
        db.put(1, b"x")
        for _ in range(50):
            db.range_query(100, 103)  # size-4 ranges dominate
        db.close()

        db2 = DB(path, small_db_options)
        decision = db2.retune_filters()
        assert decision.strategy == "single"
        assert decision.max_range == 4
        db2.close()
