"""Range reads probe all runs' filters through one frontier sweep."""

import pytest

from repro.bench.factories import make_factory
from repro.lsm.db import DB
from repro.lsm.filter_integration import batched_tightened_ranges


@pytest.fixture
def filtered_db(tmp_path, small_db_options, rng):
    small_db_options.filter_factory = make_factory(
        "rosetta", small_db_options.key_bits, 18, max_range=64
    )
    database = DB(str(tmp_path / "db"), small_db_options)
    # Several flushes -> several SSTs, so one range query spans runs.
    keys = rng.sample(range(1 << 28), 600)
    for chunk_start in range(0, 600, 150):
        for key in keys[chunk_start : chunk_start + 150]:
            database.put(key, b"v" * 16)
        database.flush()
    yield database, sorted(keys)
    if not database._closed:  # noqa: SLF001
        database.close()


def test_range_read_uses_batched_probe(filtered_db):
    db, keys = filtered_db
    assert db.stats.filter_batch_probes == 0
    results = db.range_query(keys[10], keys[20])
    assert [k for k, _ in results] == keys[10:21]
    # The seek consulted every overlapping run's filter in one sweep.
    assert db.stats.filter_batch_probes >= 1
    probed_runs = db.stats.filter_probes
    assert probed_runs >= 2  # multiple SSTs actually participated


def test_batched_results_match_scalar_tightening(filtered_db, rng):
    """The helper's verdicts equal each filter's own scalar tightening."""
    db, keys = filtered_db
    runs = db._version.all_runs_newest_first()  # noqa: SLF001
    filters = [
        db._filter_dictionary.get_filter(run.reader, db.stats)  # noqa: SLF001
        for run in runs
    ]
    assert sum(f is not None for f in filters) >= 2
    for _ in range(25):
        low = rng.randrange((1 << 28) - 64)
        high = low + rng.randrange(64)
        batched, sweeps = batched_tightened_ranges(filters, low, high)
        assert sweeps == 1
        for filt, got in zip(filters, batched):
            if filt is None:
                assert got == (low, high)
            else:
                assert got == filt.rosetta.tightened_range_recursive(low, high)


def test_empty_range_still_counts_negatives(filtered_db):
    db, keys = filtered_db
    # A gap between consecutive stored keys is empty by construction.
    gaps = [
        (a + 1, b - 1)
        for a, b in zip(keys, keys[1:])
        if b - a > 2
    ]
    low, high = gaps[len(gaps) // 2]
    high = min(high, low + 63)
    before = db.stats.filter_negatives
    assert db.range_query(low, high) == []
    assert db.stats.filter_batch_probes >= 1
    assert db.stats.filter_negatives >= before
