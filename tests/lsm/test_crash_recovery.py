"""Crash-recovery torture tests — the WAL contract, executed.

A small fixed matrix of the harness in :mod:`repro.lsm.torture` (the full
matrix runs in ``benchmarks/torture.py``), plus pinned regression tests
for specific orderings the torture matrix only covers statistically:

* flush persists the manifest *before* truncating the WAL, so a crash
  between the two recovers from one or the other, never neither;
* a torn WAL tail (partial last append) is dropped on replay without
  disturbing earlier acknowledged records.
"""

from __future__ import annotations

import pytest

from repro.lsm.db import DB
from repro.lsm.faults import FaultInjectionEnv
from repro.lsm.torture import (
    TortureConfig,
    torture_options,
    torture_seed,
)


class RecordingEnv(FaultInjectionEnv):
    """Fault env that also journals every durable operation, in order."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.ops: list[tuple[int, str, str]] = []

    def _record(self, kind: str, name: str) -> None:
        # durable_ops has not been incremented yet; +1 is this op's index.
        self.ops.append((self.durable_ops + 1, kind, name))

    def write_file(self, name, payload, sync=True):
        self._record("write", name)
        super().write_file(name, payload, sync)

    def write_file_atomic(self, name, payload, fsync=False):
        self._record("atomic", name)
        super().write_file_atomic(name, payload, fsync)

    def append_file(self, name, payload):
        self._record("append", name)
        super().append_file(name, payload)

    def sync_file(self, name):
        self._record("sync", name)
        super().sync_file(name)

    def delete_file(self, name):
        self._record("delete", name)
        super().delete_file(name)


def _opened_with(tmp_path, env_cls, config=None, **env_kwargs):
    """Open a torture-shaped DB on ``env_cls``; returns ``(db, env)``."""
    holder = {}

    def factory(root, device, stats):
        env = env_cls(root, device, stats, **env_kwargs)
        holder["env"] = env
        return env

    config = config if config is not None else TortureConfig()
    db = DB(str(tmp_path), torture_options(config, env_factory=factory))
    return db, holder["env"]


class TestTortureMatrix:
    """Crash at every durable op of a seeded schedule; verify recovery."""

    @pytest.mark.parametrize(
        "seed,style",
        [(1, "leveled"), (2, "leveled"), (3, "tiered")],
    )
    def test_no_acknowledged_loss_at_any_crash_point(
        self, tmp_path, seed, style
    ):
        config = TortureConfig(compaction_style=style)
        report = torture_seed(str(tmp_path), seed, config)
        assert report.violations == []
        # Sanity: the sweep actually enumerated a non-trivial matrix.
        assert report.crash_points > 20
        assert report.recoveries == report.crash_points


class TestFlushOrdering:
    """Satellite regression: manifest before WAL truncate, pinned."""

    def _flush_op_indices(self, tmp_path):
        db, env = _opened_with(tmp_path / "probe", RecordingEnv, seed=11)
        for key in range(8):
            db.put(key, b"v%d" % key)
        env.ops.clear()
        db.flush()
        ops = list(env.ops)
        db.close()
        return ops

    def test_manifest_persisted_before_wal_truncate(self, tmp_path):
        ops = self._flush_op_indices(tmp_path)
        sst_writes = [i for i, kind, name in ops
                      if kind == "write" and name.endswith(".sst")]
        manifests = [i for i, kind, name in ops
                     if kind == "atomic" and name == "MANIFEST.json"]
        truncates = [i for i, kind, name in ops
                     if kind == "delete" and name == "wal.log"]
        assert sst_writes and manifests and truncates
        # SST durable, then manifest, then (and only then) the WAL goes.
        assert sst_writes[0] < manifests[0] < truncates[0]

    def test_crash_at_wal_truncate_loses_nothing(self, tmp_path):
        # Locate the WAL-truncate sync point of the flush, deterministically.
        ops = self._flush_op_indices(tmp_path)
        truncate_at = next(i for i, kind, name in ops
                           if kind == "delete" and name == "wal.log")

        path = tmp_path / "crash"
        db, env = _opened_with(path, FaultInjectionEnv, seed=11)
        for key in range(8):
            db.put(key, b"v%d" % key)
        # Recorded indices are absolute; the countdown starts from here.
        env.schedule_crash(truncate_at - env.durable_ops)
        from repro.errors import PowerCutError

        with pytest.raises(PowerCutError):
            db.flush()
        env.crash()

        reopened = DB(str(path), torture_options(TortureConfig()))
        try:
            for key in range(8):
                assert reopened.get(key) == b"v%d" % key
        finally:
            reopened.close()


class TestTornTail:
    def test_torn_last_append_dropped_earlier_records_kept(self, tmp_path):
        db, env = _opened_with(tmp_path, FaultInjectionEnv, seed=5)
        db.put(1, b"first")
        env.tear_next_append()
        db.put(2, b"second")          # frame persists only partially
        assert env.injected["torn_appends"] == 1
        env.crash()                   # power off without flushing

        reopened = DB(str(tmp_path), torture_options(TortureConfig()))
        try:
            assert reopened.get(1) == b"first"     # acked, intact frame
            assert reopened.get(2) is None         # torn tail, dropped
            assert dict(reopened.iterator()) == {1: b"first"}
        finally:
            reopened.close()
