"""Tests for WriteBatch atomicity and approximate_size estimation."""

import os

import pytest

from repro.errors import StoreError
from repro.lsm.db import DB
from repro.lsm.format import ValueTag
from repro.lsm.write_batch import WriteBatch


class TestWriteBatchEncoding:
    def test_roundtrip(self):
        batch = WriteBatch()
        batch.put(b"key-a", b"value-a")
        batch.delete(b"key-b")
        batch.put(b"key-c", b"")
        decoded = WriteBatch.decode(batch.encode())
        assert list(decoded) == [
            (ValueTag.PUT, b"key-a", b"value-a"),
            (ValueTag.DELETE, b"key-b", b""),
            (ValueTag.PUT, b"key-c", b""),
        ]

    def test_empty_roundtrip(self):
        assert len(WriteBatch.decode(WriteBatch().encode())) == 0

    def test_chaining_and_clear(self):
        batch = WriteBatch().put(b"a", b"1").delete(b"b")
        assert len(batch) == 2
        batch.clear()
        assert len(batch) == 0

    def test_approximate_bytes(self):
        batch = WriteBatch().put(b"ab", b"cdef")
        assert batch.approximate_bytes == 7

    def test_corrupt_payload_rejected(self):
        with pytest.raises(StoreError):
            WriteBatch.decode(b"\x05\x00\x00\x00\x01")


class TestBatchWrites:
    def test_batch_applies_in_order(self, tmp_path, small_db_options):
        db = DB(str(tmp_path / "b"), small_db_options)
        batch = db.batch()
        batch.put_int(1, b"first").put_int(1, b"second").delete_int(2)
        db.write(batch)
        assert db.get(1) == b"second"
        assert db.get(2) is None
        assert db.stats.writes == 3
        db.close()

    def test_empty_batch_is_noop(self, tmp_path, small_db_options):
        db = DB(str(tmp_path / "b"), small_db_options)
        db.write(db.batch())
        assert db.stats.writes == 0
        db.close()

    def test_batch_survives_crash_whole(self, tmp_path, small_db_options):
        path = str(tmp_path / "b")
        db = DB(path, small_db_options)
        batch = db.batch().put_int(10, b"x").put_int(11, b"y").delete_int(10)
        db.write(batch)
        db._env.close()  # noqa: SLF001 - simulate crash, no flush
        db2 = DB(path, small_db_options)
        assert db2.get(10) is None
        assert db2.get(11) == b"y"
        db2.close()

    def test_torn_batch_drops_entirely(self, tmp_path, small_db_options):
        path = str(tmp_path / "b")
        db = DB(path, small_db_options)
        db.put(1, b"before")  # separate, intact frame
        db.write(db.batch().put_int(2, b"in-batch").put_int(3, b"also"))
        db._env.close()  # noqa: SLF001
        wal = f"{path}/wal.log"
        with open(wal, "r+b") as handle:
            handle.truncate(os.path.getsize(wal) - 2)  # tear the batch frame
        db2 = DB(path, small_db_options)
        assert db2.get(1) == b"before"
        assert db2.get(2) is None  # all-or-nothing
        assert db2.get(3) is None
        db2.close()

    def test_large_batch_triggers_flush(self, tmp_path, small_db_options):
        db = DB(str(tmp_path / "b"), small_db_options)
        batch = db.batch()
        for i in range(2000):
            batch.put_int(i, bytes(16))
        db.write(batch)
        assert db.num_live_files() >= 1
        assert db.get(1999) == bytes(16)
        db.close()


class TestApproximateSize:
    @pytest.fixture
    def loaded(self, tmp_path, small_db_options):
        db = DB(str(tmp_path / "sz"), small_db_options)
        for i in range(5000):
            db.put(i, bytes(32))
        db.flush()
        yield db
        db.close()

    def test_whole_keyspace_covers_all_files(self, loaded):
        total_files = sum(
            run.file_size
            for run in loaded.version.all_runs_newest_first()
        )
        estimate = loaded.approximate_size(0, (1 << 32) - 1)
        assert 0 < estimate <= total_files

    def test_small_range_much_smaller_than_total(self, loaded):
        whole = loaded.approximate_size(0, (1 << 32) - 1)
        small = loaded.approximate_size(100, 130)
        assert 0 < small < whole / 4

    def test_empty_region_is_zero(self, loaded):
        assert loaded.approximate_size(1 << 30, (1 << 30) + 1000) == 0

    def test_monotone_in_range_width(self, loaded):
        narrow = loaded.approximate_size(1000, 1100)
        wide = loaded.approximate_size(1000, 4000)
        assert wide >= narrow

    def test_invalid_range(self, loaded):
        from repro.errors import FilterQueryError

        with pytest.raises(FilterQueryError):
            loaded.approximate_size(5, 4)
