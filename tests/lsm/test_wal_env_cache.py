"""Unit tests for the WAL, storage environment, and block cache."""

import os

import pytest

from repro.lsm.block_cache import BlockCache
from repro.lsm.env import DEVICE_PRESETS, DeviceModel, StorageEnv
from repro.lsm.format import ValueTag
from repro.lsm.stats import PerfStats
from repro.lsm.wal import WriteAheadLog


class TestStorageEnv:
    def test_write_then_block_read(self, tmp_path):
        env = StorageEnv(str(tmp_path))
        env.write_file("data.bin", b"hello world")
        assert env.read_block("data.bin", 6, 5) == b"world"

    def test_block_reads_charge_device_time(self, tmp_path):
        stats = PerfStats()
        env = StorageEnv(str(tmp_path), device="ssd", stats=stats)
        env.write_file("f", b"x" * 4096)
        env.read_block("f", 0, 4096)
        assert stats.block_reads == 1
        assert stats.block_read_bytes == 4096
        expected = DEVICE_PRESETS["ssd"].block_read_ns(4096)
        assert stats.block_read_time_ns == expected

    def test_device_presets_ordering(self):
        memory = DEVICE_PRESETS["memory"].block_read_ns(4096)
        ssd = DEVICE_PRESETS["ssd"].block_read_ns(4096)
        hdd = DEVICE_PRESETS["hdd"].block_read_ns(4096)
        assert memory < ssd < hdd

    def test_scaled_presets_preserve_ordering(self):
        for name in ("memory", "ssd", "hdd"):
            raw = DEVICE_PRESETS[name].block_read_ns(4096)
            scaled = DEVICE_PRESETS[f"{name}-scaled"].block_read_ns(4096)
            assert scaled > raw

    def test_unknown_device_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            StorageEnv(str(tmp_path), device="floppy")

    def test_custom_device_model(self, tmp_path):
        model = DeviceModel("test", read_seek_ns=5, read_per_byte_ns=1.0,
                            write_per_byte_ns=1.0)
        env = StorageEnv(str(tmp_path), device=model)
        env.write_file("f", b"ab")
        env.read_block("f", 0, 2)
        assert env.stats.block_read_time_ns == 7

    def test_delete_file(self, tmp_path):
        env = StorageEnv(str(tmp_path))
        env.write_file("gone", b"x")
        env.read_block("gone", 0, 1)  # opens a handle
        env.delete_file("gone")
        assert not env.exists("gone")
        env.delete_file("gone")  # idempotent

    def test_list_files_sorted(self, tmp_path):
        env = StorageEnv(str(tmp_path))
        for name in ("b", "a", "c"):
            env.write_file(name, b"")
        assert env.list_files() == ["a", "b", "c"]

    def test_append(self, tmp_path):
        env = StorageEnv(str(tmp_path))
        env.append_file("log", b"one")
        env.append_file("log", b"two")
        assert env.read_file("log") == b"onetwo"


class TestWriteAheadLog:
    def test_replay_in_order(self, tmp_path):
        env = StorageEnv(str(tmp_path))
        wal = WriteAheadLog(env)
        wal.append_put(b"a", b"1")
        wal.append_delete(b"b")
        wal.append_put(b"c", b"3")
        records = list(wal.replay())
        assert records == [
            (ValueTag.PUT, b"a", b"1"),
            (ValueTag.DELETE, b"b", b""),
            (ValueTag.PUT, b"c", b"3"),
        ]

    def test_replay_missing_log_is_empty(self, tmp_path):
        env = StorageEnv(str(tmp_path))
        assert list(WriteAheadLog(env).replay()) == []

    def test_torn_tail_ignored(self, tmp_path):
        env = StorageEnv(str(tmp_path))
        wal = WriteAheadLog(env)
        wal.append_put(b"good", b"v")
        wal.append_put(b"torn", b"v")
        path = env.path(wal.name)
        with open(path, "r+b") as handle:
            handle.truncate(os.path.getsize(path) - 3)
        records = list(wal.replay())
        assert records == [(ValueTag.PUT, b"good", b"v")]

    def test_corrupt_record_stops_replay(self, tmp_path):
        env = StorageEnv(str(tmp_path))
        wal = WriteAheadLog(env)
        wal.append_put(b"first", b"1")
        wal.append_put(b"second", b"2")
        path = env.path(wal.name)
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.seek(size - 2)
            handle.write(b"\xff")
        assert list(wal.replay()) == [(ValueTag.PUT, b"first", b"1")]

    def test_truncate(self, tmp_path):
        env = StorageEnv(str(tmp_path))
        wal = WriteAheadLog(env)
        wal.append_put(b"k", b"v")
        wal.truncate()
        assert list(wal.replay()) == []


class TestBlockCache:
    def test_hit_and_miss(self):
        cache = BlockCache(1024)
        assert cache.get(("f", 0)) is None
        cache.put(("f", 0), b"data")
        assert cache.get(("f", 0)) == b"data"
        assert cache.hits == 1
        assert cache.misses == 1

    def test_lru_eviction(self):
        cache = BlockCache(10)
        cache.put(("f", 0), b"aaaa")
        cache.put(("f", 1), b"bbbb")
        cache.put(("f", 2), b"cccc")  # evicts ("f", 0)
        assert cache.get(("f", 0)) is None
        assert cache.get(("f", 2)) == b"cccc"

    def test_access_refreshes_lru(self):
        cache = BlockCache(8)
        cache.put(("f", 0), b"aaaa")
        cache.put(("f", 1), b"bbbb")
        cache.get(("f", 0))  # refresh
        cache.put(("f", 2), b"cccc")  # evicts ("f", 1), not ("f", 0)
        assert cache.get(("f", 0)) == b"aaaa"
        assert cache.get(("f", 1)) is None

    def test_high_priority_evicts_last(self):
        cache = BlockCache(8)
        cache.put(("filter", 0), b"ffff", high_priority=True)
        cache.put(("data", 0), b"dddd")
        cache.put(("data", 1), b"eeee")  # low pool overflows first
        assert cache.get(("filter", 0)) == b"ffff"
        assert cache.get(("data", 0)) is None

    def test_pinned_never_evicted(self):
        cache = BlockCache(4)
        cache.put(("l0", 0), b"ffff", pinned=True)
        cache.put(("data", 0), b"dddd")
        cache.put(("data", 1), b"eeee")
        assert cache.get(("l0", 0)) == b"ffff"

    def test_oversized_block_not_cached(self):
        cache = BlockCache(4)
        cache.put(("f", 0), b"toolarge")
        assert cache.get(("f", 0)) is None

    def test_zero_capacity_disables(self):
        cache = BlockCache(0)
        cache.put(("f", 0), b"x")
        assert cache.get(("f", 0)) is None

    def test_remove_file_purges_all_entries(self):
        cache = BlockCache(1024)
        cache.put(("a.sst", 0), b"1")
        cache.put(("a.sst", 8), b"2", high_priority=True)
        cache.put(("b.sst", 0), b"3")
        cache.remove_file("a.sst")
        assert cache.get(("a.sst", 0)) is None
        assert cache.get(("a.sst", 8)) is None
        assert cache.get(("b.sst", 0)) == b"3"
        assert cache.used_bytes == 1

    def test_reinsert_same_key_replaces(self):
        cache = BlockCache(1024)
        cache.put(("f", 0), b"old!")
        cache.put(("f", 0), b"new")
        assert cache.get(("f", 0)) == b"new"
        assert cache.used_bytes == 3

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            BlockCache(-1)
