"""Unit tests for the merging iterator and level/run metadata."""

import pytest

from repro.errors import StoreError
from repro.lsm.format import ValueTag
from repro.lsm.iterators import MergingIterator, live_entries
from repro.lsm.version import Version


def _stream(entries):
    return iter(entries)


class TestMergingIterator:
    def test_merges_in_key_order(self):
        merged = MergingIterator(
            [
                (0, _stream([(b"a", 0, b"1"), (b"c", 0, b"3")])),
                (1, _stream([(b"b", 0, b"2"), (b"d", 0, b"4")])),
            ]
        )
        assert [k for k, _, _ in merged] == [b"a", b"b", b"c", b"d"]

    def test_newest_wins_on_ties(self):
        merged = MergingIterator(
            [
                (1, _stream([(b"k", 0, b"old")])),
                (0, _stream([(b"k", 0, b"new")])),
            ]
        )
        assert list(merged) == [(b"k", 0, b"new")]

    def test_three_way_tie(self):
        merged = MergingIterator(
            [
                (2, _stream([(b"k", 0, b"oldest")])),
                (0, _stream([(b"k", 0, b"newest")])),
                (1, _stream([(b"k", 0, b"middle")])),
            ]
        )
        assert list(merged) == [(b"k", 0, b"newest")]

    def test_empty_sources(self):
        assert list(MergingIterator([])) == []
        assert list(MergingIterator([(0, _stream([]))])) == []

    def test_tombstone_shadows_older_put(self):
        merged = MergingIterator(
            [
                (0, _stream([(b"k", ValueTag.DELETE, b"")])),
                (1, _stream([(b"k", ValueTag.PUT, b"v")])),
            ]
        )
        assert list(live_entries(merged)) == []

    def test_live_entries_strips_tombstones_only(self):
        merged = [
            (b"a", ValueTag.PUT, b"1"),
            (b"b", ValueTag.DELETE, b""),
            (b"c", ValueTag.PUT, b"3"),
        ]
        assert list(live_entries(merged)) == [(b"a", b"1"), (b"c", b"3")]

    def test_interleaved_duplicates_across_streams(self):
        merged = MergingIterator(
            [
                (0, _stream([(b"a", 0, b"A0"), (b"b", 0, b"B0")])),
                (1, _stream([(b"a", 0, b"A1"), (b"c", 0, b"C1")])),
            ]
        )
        assert list(merged) == [
            (b"a", 0, b"A0"),
            (b"b", 0, b"B0"),
            (b"c", 0, b"C1"),
        ]


class _FakeMeta:
    def __init__(self, name, min_key, max_key, size=100):
        self.name = name
        self.min_key = min_key
        self.max_key = max_key
        self.file_size = size
        self.num_entries = 1

    def overlaps(self, low, high):
        return self.min_key <= high and self.max_key >= low


class _FakeReader:
    def __init__(self, meta):
        self.meta = meta


def _run(name, min_key, max_key, level=1, size=100):
    from repro.lsm.version import Run

    meta = _FakeMeta(name, min_key, max_key, size)
    run = Run(reader=_FakeReader(meta), level=level)
    return run


class TestVersion:
    def test_level0_ordering_newest_first(self):
        version = Version()
        version.add_level0(_run("old", b"a", b"z", level=0))
        version.add_level0(_run("new", b"a", b"z", level=0))
        assert [r.name for r in version.level0] == ["new", "old"]

    def test_install_level_sorts(self):
        version = Version()
        version.install_level(
            1, [_run("b", b"m", b"p"), _run("a", b"a", b"c")]
        )
        assert [r.name for r in version.levels[1]] == ["a", "b"]

    def test_install_level_rejects_overlap(self):
        version = Version()
        with pytest.raises(StoreError):
            version.install_level(
                1, [_run("a", b"a", b"m"), _run("b", b"l", b"z")]
            )

    def test_install_level_rejects_level0(self):
        with pytest.raises(StoreError):
            Version().install_level(0, [])

    def test_runs_for_range_newest_first(self):
        version = Version()
        version.add_level0(_run("l0-old", b"a", b"z", level=0))
        version.add_level0(_run("l0-new", b"a", b"z", level=0))
        version.install_level(1, [_run("l1", b"a", b"m")])
        version.install_level(2, [_run("l2", b"a", b"z")])
        names = [r.name for r in version.runs_for_range(b"b", b"c")]
        assert names == ["l0-new", "l0-old", "l1", "l2"]

    def test_runs_for_range_prunes_by_span(self):
        version = Version()
        version.install_level(1, [_run("left", b"a", b"c"), _run("right", b"x", b"z")])
        assert [r.name for r in version.runs_for_range(b"y", b"z")] == ["right"]
        assert version.runs_for_range(b"d", b"e") == []

    def test_level_size_accounting(self):
        version = Version()
        version.install_level(1, [_run("a", b"a", b"b", size=100),
                                  _run("b", b"c", b"d", size=250)])
        assert version.level_size_bytes(1) == 350
        assert version.level_size_bytes(3) == 0

    def test_max_populated_level(self):
        version = Version()
        assert version.max_populated_level() == 0
        version.install_level(3, [_run("x", b"a", b"b")])
        assert version.max_populated_level() == 3

    def test_total_files_and_describe(self):
        version = Version()
        version.add_level0(_run("0", b"a", b"b", level=0))
        version.install_level(1, [_run("1", b"c", b"d")])
        assert version.total_files() == 2
        summary = version.describe()
        assert "L0: 1 files" in summary
        assert "L1: 1 files" in summary

    def test_clear_level0(self):
        version = Version()
        version.add_level0(_run("0", b"a", b"b", level=0))
        cleared = version.clear_level0()
        assert len(cleared) == 1
        assert version.level0 == []
