"""Tests for offline store repair."""

import os

import pytest

from repro.bench.factories import make_factory
from repro.errors import StoreError
from repro.lsm.db import DB
from repro.lsm.options import DBOptions
from repro.lsm.repair import repair_store


def _options() -> DBOptions:
    return DBOptions(
        key_bits=32,
        memtable_size_bytes=8 << 10,
        sst_size_bytes=32 << 10,
        block_size_bytes=1024,
        filter_factory=make_factory("rosetta", 32, 14, max_range=32),
    )


def _build_store(path: str) -> dict[int, bytes]:
    db = DB(path, _options())
    model = {}
    for i in range(3000):
        db.put(i * 5, f"v{i}".encode())
        model[i * 5] = f"v{i}".encode()
    db.close()
    return model


def _flip(path: str, offset: int) -> None:
    with open(path, "r+b") as handle:
        handle.seek(offset)
        byte = handle.read(1)
        handle.seek(offset)
        handle.write(bytes([byte[0] ^ 0xFF]))


class TestRepair:
    def test_healthy_store_untouched(self, tmp_path):
        path = str(tmp_path / "db")
        model = _build_store(path)
        outcome = repair_store(path, _options())
        assert outcome.lossless
        assert outcome.salvaged_entries == len(model)
        assert "healthy" in outcome.summary()
        # Store still opens and serves everything.
        db = DB(path, _options())
        assert db.get(0) == model[0]
        db.close()

    def test_corrupt_file_dropped_and_quarantined(self, tmp_path):
        path = str(tmp_path / "db")
        _build_store(path)
        ssts = sorted(
            name for name in os.listdir(path) if name.endswith(".sst")
        )
        victim = ssts[0]
        _flip(os.path.join(path, victim), 10)

        outcome = repair_store(path, _options())
        assert not outcome.lossless
        assert victim in outcome.dropped_files
        assert any(victim in q for q in outcome.quarantined)
        assert os.path.exists(os.path.join(path, victim + ".quarantine"))
        assert "dropped" in outcome.summary()

        # The store opens again; surviving data is readable.
        db = DB(path, _options())
        report = db.verify()
        assert report.ok, report.summary()
        db.close()

    def test_missing_file_dropped(self, tmp_path):
        path = str(tmp_path / "db")
        _build_store(path)
        ssts = [name for name in os.listdir(path) if name.endswith(".sst")]
        os.remove(os.path.join(path, ssts[0]))
        outcome = repair_store(path, _options())
        assert ssts[0] in outcome.dropped_files
        assert not outcome.quarantined  # nothing to rename
        db = DB(path, _options())
        db.verify()
        db.close()

    def test_corrupt_filter_block_drops_file(self, tmp_path):
        path = str(tmp_path / "db")
        _build_store(path)
        db = DB(path, _options())
        run = db.version.all_runs_newest_first()[0]
        handle = run.reader._filter_handle  # noqa: SLF001
        victim = run.name
        db.close()
        _flip(os.path.join(path, victim), handle.offset + handle.size // 2)
        outcome = repair_store(path, _options())
        assert victim in outcome.dropped_files

    def test_no_manifest_rejected(self, tmp_path):
        with pytest.raises(StoreError):
            repair_store(str(tmp_path / "empty"))

    def test_repair_is_idempotent(self, tmp_path):
        path = str(tmp_path / "db")
        _build_store(path)
        ssts = sorted(
            name for name in os.listdir(path) if name.endswith(".sst")
        )
        _flip(os.path.join(path, ssts[0]), 10)
        first = repair_store(path, _options())
        second = repair_store(path, _options())
        assert not first.lossless
        assert second.lossless  # damage already excised
        assert second.salvaged_entries == first.salvaged_entries
