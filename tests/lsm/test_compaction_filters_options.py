"""Unit tests for compaction machinery, filter dictionary, options, stats."""

import pytest

from repro.bench.factories import make_factory
from repro.errors import InvalidOptionsError
from repro.lsm.db import DB
from repro.lsm.filter_integration import FilterDictionary
from repro.lsm.options import DBOptions
from repro.lsm.stats import PerfStats, Stopwatch


class TestOptions:
    def test_defaults_validate(self):
        DBOptions().validate()

    @pytest.mark.parametrize(
        "field,value",
        [
            ("key_bits", 0),
            ("key_bits", 1000),
            ("memtable_size_bytes", 10),
            ("sst_size_bytes", 100),
            ("block_size_bytes", 10),
            ("level0_file_num_compaction_trigger", 0),
            ("level_size_ratio", 1),
            ("num_levels", 1),
            ("block_restart_interval", 0),
        ],
    )
    def test_invalid_rejected(self, field, value):
        options = DBOptions()
        setattr(options, field, value)
        with pytest.raises(InvalidOptionsError):
            options.validate()

    def test_level_targets_grow_by_ratio(self):
        options = DBOptions(max_bytes_for_level_base=1000, level_size_ratio=10)
        assert options.level_target_bytes(1) == 1000
        assert options.level_target_bytes(2) == 10_000
        assert options.level_target_bytes(3) == 100_000
        with pytest.raises(InvalidOptionsError):
            options.level_target_bytes(0)

    def test_key_width(self):
        assert DBOptions(key_bits=64).key_width_bytes == 8
        assert DBOptions(key_bits=20).key_width_bytes == 3


class TestStats:
    def test_snapshot_and_diff(self):
        stats = PerfStats()
        stats.block_reads = 5
        snap = stats.snapshot()
        stats.block_reads = 9
        assert stats.diff(snap).block_reads == 4
        assert snap.block_reads == 5  # snapshot unaffected

    def test_stopwatch_accumulates(self):
        stats = PerfStats()
        with Stopwatch(stats, "filter_probe_ns"):
            pass
        first = stats.filter_probe_ns
        with Stopwatch(stats, "filter_probe_ns"):
            pass
        assert stats.filter_probe_ns >= first

    def test_observed_fpr(self):
        stats = PerfStats()
        assert stats.observed_fpr == 0.0
        stats.filter_negatives = 90
        stats.filter_false_positives = 10
        assert stats.observed_fpr == pytest.approx(0.1)

    def test_compaction_overhead_metric(self):
        stats = PerfStats()
        assert stats.compaction_overhead_us_per_byte() == 0.0
        stats.compaction_bytes_read = 500
        stats.compaction_bytes_written = 500
        stats.compaction_time_ns = 2_000_000  # 2 ms over 1000 bytes
        assert stats.compaction_overhead_us_per_byte() == pytest.approx(2.0)

    def test_reset(self):
        stats = PerfStats()
        stats.block_reads = 3
        stats.reset()
        assert stats.block_reads == 0

    def test_cpu_ns_sums_subcosts(self):
        stats = PerfStats()
        stats.filter_probe_ns = 1
        stats.serialize_ns = 2
        stats.deserialize_ns = 3
        stats.residual_seek_ns = 4
        assert stats.cpu_ns == 10


class TestFilterDictionary:
    def _db_with_filter(self, tmp_path, enabled: bool) -> DB:
        options = DBOptions(
            key_bits=32,
            memtable_size_bytes=8 << 10,
            sst_size_bytes=32 << 10,
            block_size_bytes=1024,
            use_filter_dictionary=enabled,
            filter_factory=make_factory("bloom", 32, 10),
        )
        db = DB(str(tmp_path / f"dict-{enabled}"), options)
        for i in range(500):
            db.put(i * 17, bytes(8))
        db.flush()
        return db

    def test_dictionary_deserializes_once(self, tmp_path):
        db = self._db_with_filter(tmp_path, enabled=True)
        # Absent keys *inside* the run's key span, so fences cannot prune
        # and the filter is actually consulted.
        for _ in range(20):
            db.get(18)
        first = db.stats.deserialize_ns
        assert first > 0
        for _ in range(20):
            db.get(35)
        assert db.stats.deserialize_ns == first  # cached, no new work
        db.close()

    def test_disabled_dictionary_deserializes_every_query(self, tmp_path):
        db = self._db_with_filter(tmp_path, enabled=False)
        db.get(18)
        first = db.stats.deserialize_ns
        assert first > 0
        db.get(35)
        assert db.stats.deserialize_ns > first
        db.close()

    def test_drop_run(self):
        dictionary = FilterDictionary()
        dictionary._filters["x.sst"] = object()  # noqa: SLF001
        assert len(dictionary) == 1
        dictionary.drop_run("x.sst")
        assert len(dictionary) == 0
        dictionary.drop_run("x.sst")  # idempotent


class TestCompactionFilters:
    def test_compaction_rebuilds_filters(self, tmp_path):
        options = DBOptions(
            key_bits=32,
            memtable_size_bytes=4 << 10,
            sst_size_bytes=16 << 10,
            max_bytes_for_level_base=32 << 10,
            block_size_bytes=1024,
            filter_factory=make_factory("rosetta", 32, 16, max_range=32),
        )
        db = DB(str(tmp_path / "rebuild"), options)
        for i in range(4000):
            db.put(i, bytes(16))
        built_before = db.stats.filters_built
        db.force_full_compaction()
        assert db.stats.filters_built > built_before
        # Old filters were dropped from the dictionary along with their runs.
        live = {run.name for runs in db.version.levels.values() for run in runs}
        cached = set(db._filter_dictionary._filters)  # noqa: SLF001
        assert cached <= live
        db.close()

    def test_compaction_bytes_accounting(self, tmp_path):
        options = DBOptions(
            key_bits=32,
            memtable_size_bytes=4 << 10,
            sst_size_bytes=16 << 10,
            block_size_bytes=1024,
        )
        db = DB(str(tmp_path / "bytes"), options)
        for i in range(3000):
            db.put(i, bytes(16))
        db.force_full_compaction()
        assert db.stats.compaction_bytes_read > 0
        assert db.stats.compaction_bytes_written > 0
        assert db.stats.compaction_time_ns > 0
        assert db.stats.compaction_overhead_us_per_byte() > 0
        db.close()
