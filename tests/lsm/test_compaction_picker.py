"""Per-file compaction picking, debt scoring, and begin()-time validation.

Covers the picker-level pieces of the concurrent maintenance design:

* overlap closure — every target-level run intersecting the chosen
  source span is pulled in, and nothing else;
* debt-score ordering — L0 debt (write stalls) always outranks deeper
  bytes-over-target (read amplification), windows within one level drain
  oldest-first;
* ``plan_subcompactions`` edge cases and the partition property of its
  returned ranges;
* conflict-table keying by monotonic ``job_id`` (never ``id(job)``: a
  dropped job object's id can be recycled by a new allocation);
* ``begin()`` re-validation against the *current* version — stale jobs
  whose inputs were retired by a concurrent install are refused, and
  ``drop_tombstones`` is re-derived rather than trusted from plan time.
"""

import random
from types import SimpleNamespace

import pytest

from repro.errors import StoreError
from repro.lsm.compaction import CompactionJob, Compactor
from repro.lsm.options import DBOptions
from repro.lsm.stats import PerfStats
from repro.lsm.version import Run, Version


def _run(name, level, low, high, size=1000):
    """A metadata-only Run: enough for planning, never read."""
    meta = SimpleNamespace(
        name=name, min_key=low, max_key=high, file_size=size
    )
    return Run(reader=SimpleNamespace(meta=meta), level=level)


def _compactor(**overrides):
    options = DBOptions(key_bits=32, **overrides)
    env = SimpleNamespace(stats=PerfStats())
    return Compactor(env, options, None, None)


# ----------------------------------------------------------------------
# Overlap closure
# ----------------------------------------------------------------------
class TestOverlapClosure:
    def _version(self):
        return Version(
            levels={
                2: [
                    _run("sst_2_00000001.sst", 2, b"aa", b"cc"),
                    _run("sst_2_00000002.sst", 2, b"dd", b"ff"),
                    _run("sst_2_00000003.sst", 2, b"gg", b"ii"),
                    _run("sst_2_00000004.sst", 2, b"jj", b"ll"),
                ]
            }
        )

    def test_includes_every_intersecting_run_and_nothing_else(self):
        version = self._version()
        closure = version.overlap_closure(2, b"ee", b"hh")
        assert [r.name for r in closure] == [
            "sst_2_00000002.sst",
            "sst_2_00000003.sst",
        ]

    def test_boundary_touch_counts_as_overlap(self):
        version = self._version()
        # Inclusive bounds: a span ending exactly at a run's min key (or
        # starting at its max key) intersects it.
        closure = version.overlap_closure(2, b"cc", b"dd")
        assert [r.name for r in closure] == [
            "sst_2_00000001.sst",
            "sst_2_00000002.sst",
        ]

    def test_disjoint_span_yields_empty_closure(self):
        version = self._version()
        assert version.overlap_closure(2, b"cd", b"cz") == []
        assert version.overlap_closure(2, b"zz", b"zzz") == []

    def test_unbounded_sides_cover_the_level(self):
        version = self._version()
        assert len(version.overlap_closure(2, None, None)) == 4
        assert [
            r.name for r in version.overlap_closure(2, b"hh", None)
        ] == ["sst_2_00000003.sst", "sst_2_00000004.sst"]

    def test_closure_is_contiguous(self):
        """Closures over a sorted non-overlapping level are run-list slices.

        This contiguity is what makes partial-level installs safe: runs
        outside the closure cannot intersect the merge's key footprint.
        """
        version = self._version()
        names = [r.name for r in version.level_runs(2)]
        rng = random.Random(11)
        for _ in range(50):
            lo = bytes([rng.randrange(ord("a"), ord("m"))]) * 2
            hi = bytes([rng.randrange(ord("a"), ord("m"))]) * 2
            if hi < lo:
                lo, hi = hi, lo
            closure = [r.name for r in version.overlap_closure(2, lo, hi)]
            if closure:
                start = names.index(closure[0])
                assert closure == names[start:start + len(closure)]


# ----------------------------------------------------------------------
# Debt-scored candidate ordering
# ----------------------------------------------------------------------
class TestDebtOrdering:
    def test_l0_debt_outranks_deeper_bytes_over_target(self):
        compactor = _compactor(
            level0_file_num_compaction_trigger=2,
            max_bytes_for_level_base=1000,
            level_size_ratio=2,
        )
        version = Version(
            level0=[
                _run("sst_0_00000009.sst", 0, b"aa", b"zz", size=100),
                _run("sst_0_00000008.sst", 0, b"aa", b"zz", size=100),
            ],
            # L1 is massively over its 1000-byte target — but L0 at its
            # trigger stalls writers, so it must still win.
            levels={1: [_run("sst_1_00000001.sst", 1, b"aa", b"zz", size=50_000)]},
        )
        candidates = list(compactor._candidates(version))
        assert candidates[0].kind == "leveled-l0"
        assert candidates[0].debt_score > candidates[-1].debt_score
        assert any(job.kind == "leveled-level" for job in candidates)

    def test_deeper_levels_ranked_by_overflow_ratio(self):
        compactor = _compactor(
            level0_file_num_compaction_trigger=8,
            max_bytes_for_level_base=1000,
            level_size_ratio=2,
        )
        version = Version(
            levels={
                # L1 target 1000 -> ratio 1.5; L2 target 2000 -> ratio 3.
                1: [_run("sst_1_00000001.sst", 1, b"aa", b"bb", size=1500)],
                2: [_run("sst_2_00000002.sst", 2, b"cc", b"dd", size=6000)],
            }
        )
        candidates = list(compactor._candidates(version))
        assert [job.source_level for job in candidates] == [2, 1]

    def test_windows_within_a_level_drain_oldest_first(self):
        compactor = _compactor(
            level0_file_num_compaction_trigger=8,
            max_bytes_for_level_base=100,
            max_compaction_input_files=2,
        )
        # Sorted by key, but allocation order (the file number) says the
        # middle window is oldest.
        version = Version(
            levels={
                1: [
                    _run("sst_1_00000007.sst", 1, b"aa", b"bb"),
                    _run("sst_1_00000008.sst", 1, b"cc", b"dd"),
                    _run("sst_1_00000001.sst", 1, b"ee", b"ff"),
                    _run("sst_1_00000002.sst", 1, b"gg", b"hh"),
                ]
            }
        )
        candidates = list(compactor._candidates(version))
        assert [job.kind for job in candidates] == ["leveled-level"] * 2
        assert [r.name for r in candidates[0].inputs] == [
            "sst_1_00000001.sst",
            "sst_1_00000002.sst",
        ]
        assert candidates[0].range_low == b"ee"
        assert candidates[0].range_high == b"hh"

    def test_window_pulls_exact_target_closure(self):
        compactor = _compactor(
            level0_file_num_compaction_trigger=8,
            max_bytes_for_level_base=100,
            max_compaction_input_files=1,
        )
        version = Version(
            levels={
                1: [_run("sst_1_00000001.sst", 1, b"cc", b"ff")],
                2: [
                    _run("sst_2_00000002.sst", 2, b"aa", b"bb", size=10),
                    _run("sst_2_00000003.sst", 2, b"cc", b"dd", size=10),
                    _run("sst_2_00000004.sst", 2, b"ee", b"ff", size=10),
                    _run("sst_2_00000005.sst", 2, b"gg", b"hh", size=10),
                ],
            }
        )
        [job] = list(compactor._candidates(version))
        assert [r.name for r in job.inputs] == [
            "sst_1_00000001.sst",
            "sst_2_00000003.sst",
            "sst_2_00000004.sst",
        ]
        assert (job.range_low, job.range_high) == (b"cc", b"ff")
        # Bottom-most populated level is the output: tombstones drop.
        assert job.drop_tombstones

    def test_forced_l0_job_uses_l1_closure(self):
        compactor = _compactor(level0_file_num_compaction_trigger=8)
        version = Version(
            level0=[_run("sst_0_00000009.sst", 0, b"cc", b"dd")],
            levels={
                1: [
                    _run("sst_1_00000001.sst", 1, b"aa", b"bb"),
                    _run("sst_1_00000002.sst", 1, b"cc", b"ee"),
                    _run("sst_1_00000003.sst", 1, b"ff", b"gg"),
                ]
            },
        )
        job = compactor.forced_l0_job(version)
        assert [r.name for r in job.inputs] == [
            "sst_0_00000009.sst",
            "sst_1_00000002.sst",
        ]
        assert (job.range_low, job.range_high) == (b"cc", b"ee")


# ----------------------------------------------------------------------
# plan_subcompactions edge cases
# ----------------------------------------------------------------------
def _slicing_job(fence_key_lists):
    inputs = [
        SimpleNamespace(
            name=f"in-{i}.sst",
            reader=SimpleNamespace(fence_keys=lambda keys=keys: list(keys)),
        )
        for i, keys in enumerate(fence_key_lists)
    ]
    return CompactionJob(
        kind="leveled-level",
        inputs=inputs,
        output_level=2,
        drop_tombstones=False,
        source_level=1,
    )


def _assert_partition(ranges):
    """Half-open [lo, hi) ranges must tile the whole key domain."""
    assert ranges[0][0] is None
    assert ranges[-1][1] is None
    for (lo, hi), (next_lo, _) in zip(ranges, ranges[1:]):
        assert hi == next_lo
        assert hi is not None
    interior = [hi for _, hi in ranges[:-1]]
    assert interior == sorted(set(interior)), "empty or overlapping slice"


class TestPlanSubcompactions:
    def test_all_equal_fence_keys_collapse_to_one_cut(self):
        compactor = _compactor()
        job = _slicing_job([[b"kk", b"kk", b"zz"], [b"kk", b"zz"]])
        ranges = compactor.plan_subcompactions(job, 8)
        assert ranges == [(None, b"kk"), (b"kk", None)]
        _assert_partition(ranges)

    def test_single_block_runs_yield_unbounded_range(self):
        compactor = _compactor()
        # One fence key per run = one block: fence_keys()[:-1] is empty,
        # so there is nothing to cut on.
        job = _slicing_job([[b"mm"], [b"qq"]])
        assert compactor.plan_subcompactions(job, 4) == [(None, None)]

    def test_max_slices_larger_than_candidates(self):
        compactor = _compactor()
        job = _slicing_job([[b"bb", b"dd", b"zz"]])  # 2 usable candidates
        ranges = compactor.plan_subcompactions(job, 16)
        assert len(ranges) == 3
        assert ranges == [(None, b"bb"), (b"bb", b"dd"), (b"dd", None)]

    def test_max_slices_one_never_cuts(self):
        compactor = _compactor()
        job = _slicing_job([[b"bb", b"dd", b"zz"]])
        assert compactor.plan_subcompactions(job, 1) == [(None, None)]

    def test_random_fence_sets_always_partition_the_domain(self):
        compactor = _compactor()
        rng = random.Random(1234)
        for _ in range(100):
            fence_lists = [
                sorted(
                    bytes([rng.randrange(97, 123)]) * 2
                    for _ in range(rng.randrange(1, 9))
                )
                for _ in range(rng.randrange(1, 5))
            ]
            job = _slicing_job(fence_lists)
            max_slices = rng.randrange(2, 10)
            ranges = compactor.plan_subcompactions(job, max_slices)
            assert 1 <= len(ranges) <= max_slices
            _assert_partition(ranges)


# ----------------------------------------------------------------------
# Conflict-table keying (regression: id(job) aliasing)
# ----------------------------------------------------------------------
class TestJobIdKeying:
    def test_job_ids_are_monotonic_and_never_reused(self):
        compactor = _compactor()
        first = CompactionJob("tiered-level", [], 1, False, source_level=1)
        compactor.begin(first)
        compactor.finish(first)
        second = CompactionJob("tiered-level", [], 3, False, source_level=3)
        compactor.begin(second)
        assert first.job_id == 1
        assert second.job_id == 2

    def test_recycled_object_identity_cannot_alias_entries(self):
        """A new job at a dead job's address must not shadow its entry.

        Keyed by ``id(job)``, CPython reusing the freed dataclass
        allocation would overwrite the still-in-flight registration and a
        later ``finish()`` on the new job would silently evict it.
        """
        compactor = _compactor()
        job = CompactionJob("tiered-level", [], 1, False, source_level=1)
        compactor.begin(job)
        stale_id = job.job_id
        del job  # the registration must outlive the object
        # Allocate until the address space demonstrably recycles; every
        # new job must land in its own slot regardless.
        for output in range(3, 9):
            replacement = CompactionJob(
                "tiered-level", [], output, False, source_level=output
            )
            compactor.begin(replacement)
            compactor.finish(replacement)
        assert compactor.inflight_jobs() == 1  # the stale entry survived
        ghost = CompactionJob("tiered-level", [], 1, False, source_level=1)
        ghost.job_id = stale_id
        compactor.finish(ghost)
        assert compactor.inflight_jobs() == 0

    def test_finish_before_begin_is_a_no_op(self):
        compactor = _compactor()
        job = CompactionJob("tiered-level", [], 1, False, source_level=1)
        compactor.finish(job)  # job_id is None: nothing to drop
        assert compactor.inflight_jobs() == 0


# ----------------------------------------------------------------------
# begin()-time revalidation against the current version
# ----------------------------------------------------------------------
class TestBeginRevalidation:
    def _job(self, names, source=1, output=2, drop=False):
        return CompactionJob(
            kind="leveled-level",
            inputs=[
                _run(name, source, b"aa", b"zz") for name in names
            ],
            output_level=output,
            drop_tombstones=drop,
            source_level=source,
        )

    def test_stale_inputs_are_refused_and_counted(self):
        compactor = _compactor()
        job = self._job(["sst_1_00000001.sst", "sst_1_00000002.sst"])
        # Between plan() and dispatch an install retired one input.
        current = Version(
            levels={1: [_run("sst_1_00000001.sst", 1, b"aa", b"mm")]}
        )
        with pytest.raises(StoreError, match="retired"):
            compactor.begin(job, lambda: current)
        assert compactor.inflight_jobs() == 0
        assert compactor._env.stats.stale_jobs_rejected == 1

    def test_live_inputs_admit_and_rederive_drop_tombstones(self):
        compactor = _compactor()
        # Planned when L3 held data: drop_tombstones was False.
        job = self._job(["sst_1_00000001.sst"], drop=False)
        # By dispatch time L3 drained: the output level is now the
        # bottom, so the merge may drop tombstones after all.
        current = Version(
            levels={1: [_run("sst_1_00000001.sst", 1, b"aa", b"zz")]}
        )
        compactor.begin(job, lambda: current)
        assert job.drop_tombstones is True
        assert compactor._env.stats.stale_jobs_rejected == 0

    def test_rederivation_can_also_revoke_tombstone_drop(self):
        compactor = _compactor()
        # Planned when the output was the bottom level; a concurrent
        # install then populated L3, so dropping would resurrect deletes.
        job = self._job(["sst_1_00000001.sst"], drop=True)
        current = Version(
            levels={
                1: [_run("sst_1_00000001.sst", 1, b"aa", b"zz")],
                3: [_run("sst_3_00000009.sst", 3, b"aa", b"zz")],
            }
        )
        compactor.begin(job, lambda: current)
        assert job.drop_tombstones is False

    def test_no_provider_preserves_plan_time_decision(self):
        compactor = _compactor()
        job = self._job(["sst_1_00000001.sst"], drop=True)
        compactor.begin(job)
        assert job.drop_tombstones is True
