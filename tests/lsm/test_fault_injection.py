"""Failure-injection tests: corruption must be detected, never silent.

The store's durability story rests on CRC framing (WAL records, data
blocks, index blocks) and magic numbers (SST footer, filter envelopes).
These tests flip bytes at every layer and assert the right error class
surfaces — wrong data must never be returned as if valid.

On top of detection, the store now *handles* a class of faults online —
transient read errors are retried, corrupt filter envelopes degrade the
run to filter-less, failed background writes park the store in read-only
mode — and every injected fault must be visible in ``PerfStats`` /
``DB.health()`` (counter parity: nothing fails silently).
"""

import pytest

from repro.bench.factories import make_factory
from repro.errors import (
    CorruptionError,
    ReadOnlyStoreError,
    SerializationError,
    TransientIOError,
)
from repro.lsm.db import DB
from repro.lsm.faults import FaultInjectionEnv
from repro.lsm.options import DBOptions


def _loaded_db(path: str, with_filter: bool = False, **option_overrides) -> DB:
    options = DBOptions(
        key_bits=32,
        memtable_size_bytes=8 << 10,
        sst_size_bytes=32 << 10,
        block_size_bytes=1024,
        block_cache_bytes=0,  # force disk reads so corruption is seen
        filter_factory=(
            make_factory("rosetta", 32, 16, max_range=32) if with_filter
            else None
        ),
        **option_overrides,
    )
    db = DB(path, options)
    for i in range(2000):
        db.put(i * 13, f"value-{i}".encode())
    db.flush()
    return db


def _faulty_db(path: str, seed: int = 7, **option_overrides):
    """A loaded DB running on a :class:`FaultInjectionEnv`; returns (db, env)."""
    holder = {}

    def factory(root, device, stats):
        env = FaultInjectionEnv(root, device, stats, seed=seed)
        holder["env"] = env
        return env

    db = _loaded_db(path, env_factory=factory, **option_overrides)
    return db, holder["env"]


def _run_for_key(db: DB, key: int):
    """The newest run whose key span covers ``key``."""
    encoded = db._encode_key(key)  # noqa: SLF001
    return db.version.runs_for_key(encoded)[0]


def _path_of(db: DB, run) -> str:
    return db._env.path(run.name)  # noqa: SLF001


def _flip_byte(path: str, offset: int) -> None:
    with open(path, "r+b") as handle:
        handle.seek(offset)
        byte = handle.read(1)
        handle.seek(offset)
        handle.write(bytes([byte[0] ^ 0xFF]))


class TestDataCorruption:
    def test_corrupt_data_block_detected_on_get(self, tmp_path):
        db = _loaded_db(str(tmp_path / "db"))
        run = _run_for_key(db, 0)  # key 0 sits in this run's first block
        _flip_byte(_path_of(db, run), 10)
        with pytest.raises(CorruptionError):
            db.get(0)
        db.close()

    def test_corrupt_data_block_detected_on_range(self, tmp_path):
        db = _loaded_db(str(tmp_path / "db"))
        run = _run_for_key(db, 0)
        _flip_byte(_path_of(db, run), 10)
        with pytest.raises(CorruptionError):
            db.range_query(0, 100)
        db.close()

    def test_unaffected_blocks_still_readable(self, tmp_path):
        db = _loaded_db(str(tmp_path / "db"))
        db.force_full_compaction()
        run = _run_for_key(db, 0)
        assert run.reader.num_data_blocks() > 1
        _flip_byte(_path_of(db, run), 10)  # first block only
        # A key in the same file's last block decodes fine (per-block CRCs).
        last_key = int.from_bytes(run.reader.meta.max_key, "big")
        assert db.get(last_key) is not None
        db.close()

    def test_corrupt_footer_detected_on_reopen(self, tmp_path):
        path = str(tmp_path / "db")
        db = _loaded_db(path)
        run = db.version.all_runs_newest_first()[0]
        sst = _path_of(db, run)
        size = run.file_size
        db.close()
        _flip_byte(sst, size - 1)  # the footer magic
        with pytest.raises(CorruptionError):
            DB(path, DBOptions(key_bits=32))

    def test_corrupt_filter_envelope_degrades_run(self, tmp_path):
        """Default contract: a corrupt filter costs performance, not answers.

        The probe falls through to the data read (whose per-block CRCs
        still guard correctness), the run is marked degraded exactly once,
        and the health report names it.
        """
        db = _loaded_db(str(tmp_path / "db"), with_filter=True)
        run = _run_for_key(db, 7)  # absent key covered by this run's span
        # Corrupt the filter block's first byte (the envelope tag length).
        handle = run.reader._filter_handle  # noqa: SLF001
        assert handle.size > 0
        _flip_byte(_path_of(db, run), handle.offset)
        assert db.get(7) is None          # absent key: correct, filter-less
        assert db.get(13) == b"value-1"   # present key still served
        assert db.stats.filters_degraded == 1
        health = db.health()
        assert health.mode == "healthy"   # degraded filter != degraded store
        assert run.name in health.degraded_filters
        db.close()

    def test_corrupt_filter_degradation_counted_once(self, tmp_path):
        db = _loaded_db(str(tmp_path / "db"), with_filter=True)
        run = _run_for_key(db, 7)
        handle = run.reader._filter_handle  # noqa: SLF001
        _flip_byte(_path_of(db, run), handle.offset)
        for probe in (7, 20, 33, 46):     # repeated misses, one degradation
            db.get(probe)
        assert db.stats.filters_degraded == 1
        db.close()

    def test_compaction_rebuilds_degraded_filter(self, tmp_path):
        db = _loaded_db(str(tmp_path / "db"), with_filter=True)
        run = _run_for_key(db, 7)
        handle = run.reader._filter_handle  # noqa: SLF001
        _flip_byte(_path_of(db, run), handle.offset)
        db.get(7)
        assert db.health().degraded_filters
        db.force_full_compaction()        # rewrites the run, fresh filter
        assert db.health().degraded_filters == ()
        assert db.get(13) == b"value-1"
        db.close()

    def test_corrupt_filter_envelope_raises_when_degradation_off(self, tmp_path):
        db = _loaded_db(
            str(tmp_path / "db"), with_filter=True,
            degrade_corrupt_filters=False,
        )
        run = _run_for_key(db, 7)
        handle = run.reader._filter_handle  # noqa: SLF001
        _flip_byte(_path_of(db, run), handle.offset)
        with pytest.raises(SerializationError):
            db.get(7)  # filter probe -> deserialization of corrupt bytes
        db.close()


class TestRecoveryRobustness:
    def test_missing_sst_fails_loudly(self, tmp_path):
        path = str(tmp_path / "db")
        db = _loaded_db(path)
        sst = _path_of(db, db.version.all_runs_newest_first()[0])
        db.close()
        import os

        os.remove(sst)
        with pytest.raises(FileNotFoundError):
            DB(path, DBOptions(key_bits=32))

    def test_garbage_manifest_fails_loudly(self, tmp_path):
        path = str(tmp_path / "db")
        db = _loaded_db(path)
        db.close()
        with open(f"{path}/MANIFEST.json", "w") as handle:
            handle.write("{not json")
        import json

        with pytest.raises(json.JSONDecodeError):
            DB(path, DBOptions(key_bits=32))

    def test_cache_disabled_store_works(self, tmp_path):
        """Sanity: with block_cache_bytes=0 every read hits the device."""
        db = _loaded_db(str(tmp_path / "db"))
        assert db.get(13) == b"value-1"
        assert db.stats.block_cache_hits == 0
        db.close()


class TestTransientRetries:
    def test_scripted_transient_faults_are_retried(self, tmp_path):
        db, env = _faulty_db(str(tmp_path / "db"))
        env.fail_next_reads(2)
        assert db.get(13) == b"value-1"   # both faults absorbed by retries
        assert db.stats.io_transient_errors == 2
        assert db.stats.io_retries == 2
        # Counter parity: every injected fault is observable.
        assert env.injected["transient_read_errors"] == db.stats.io_transient_errors
        db.close()

    def test_retries_exhausted_raises_transient_error(self, tmp_path):
        db, env = _faulty_db(str(tmp_path / "db"), io_retry_attempts=1)
        env.fail_next_reads(10)           # more than 1 attempt can absorb
        with pytest.raises(TransientIOError):
            db.get(13)
        # First try + one retry = two observed faults, one retry charged.
        assert db.stats.io_transient_errors == 2
        assert db.stats.io_retries == 1
        db.close()

    def test_retries_disabled_raises_immediately(self, tmp_path):
        db, env = _faulty_db(str(tmp_path / "db"), io_retry_attempts=0)
        env.fail_next_reads(1)
        with pytest.raises(TransientIOError):
            db.get(13)
        assert db.stats.io_transient_errors == 1
        assert db.stats.io_retries == 0
        db.close()

    def test_retry_backoff_charged_to_read_time(self, tmp_path):
        db, env = _faulty_db(
            str(tmp_path / "db"),
            io_retry_attempts=3, io_retry_backoff_ns=1_000_000,
        )
        before = db.stats.block_read_time_ns
        env.fail_next_reads(2)
        db.get(13)
        # Modeled exponential backoff: 1ms + 2ms for the two retries.
        assert db.stats.block_read_time_ns - before >= 3_000_000
        db.close()

    def test_rate_injected_workload_matches_fault_free(self, tmp_path):
        """Acceptance: with retries on, faults change cost, not answers."""
        from repro.lsm.torture import transient_fault_equivalence

        outcome = transient_fault_equivalence(str(tmp_path), seed=4, rate=0.05)
        assert outcome["injected_transient_errors"] > 0  # faults really fired
        assert outcome["answers_match"]
        assert (
            outcome["observed_transient_errors"]
            == outcome["injected_transient_errors"]
        )
        assert outcome["io_retries"] == outcome["observed_transient_errors"]

    def test_permanent_read_error_not_retried(self, tmp_path):
        db, env = _faulty_db(str(tmp_path / "db"))
        run = _run_for_key(db, 13)
        env.fail_file_reads(run.name)
        with pytest.raises(OSError):
            db.get(13)
        assert db.stats.io_retries == 0   # OSError is not a transient fault
        env.heal_file_reads(run.name)
        assert db.get(13) == b"value-1"
        db.close()


class TestBackgroundErrors:
    def test_failed_flush_enters_degraded_readonly(self, tmp_path):
        db, env = _faulty_db(str(tmp_path / "db"))
        db.put(999_999, b"buffered")
        env.fail_next_writes(1)
        db.flush()                        # swallows the OSError, degrades
        health = db.health()
        assert health.mode == "degraded"
        assert not health.ok
        assert "flush" in health.background_error
        assert health.background_errors == 1
        assert env.injected["write_errors"] == 1
        # Reads still work — including the write that never reached an SST.
        assert db.get(999_999) == b"buffered"
        assert db.get(13) == b"value-1"
        # Writes are refused until resume().
        with pytest.raises(ReadOnlyStoreError):
            db.put(1, b"nope")
        with pytest.raises(ReadOnlyStoreError):
            db.delete(1)
        db.close()

    def test_resume_retries_the_pending_flush(self, tmp_path):
        path = str(tmp_path / "db")
        db, env = _faulty_db(path)
        db.put(999_999, b"buffered")
        env.fail_next_writes(1)
        db.flush()
        assert db.health().mode == "degraded"
        assert db.resume()                # device healed: flush succeeds
        assert db.health().ok
        db.put(1_000_000, b"post-resume")
        db.close()
        reopened = DB(path, DBOptions(key_bits=32))
        assert reopened.get(999_999) == b"buffered"
        assert reopened.get(1_000_000) == b"post-resume"
        reopened.close()

    def test_resume_fails_again_on_still_broken_device(self, tmp_path):
        db, env = _faulty_db(str(tmp_path / "db"))
        db.put(999_999, b"buffered")
        env.fail_next_writes(10)
        db.flush()
        assert not db.resume()            # still failing: back to degraded
        assert db.health().mode == "degraded"
        assert db.stats.background_errors == 2
        db.close()

    def test_degraded_close_never_raises_and_loses_nothing(self, tmp_path):
        path = str(tmp_path / "db")
        db, env = _faulty_db(path)
        db.put(999_999, b"buffered")
        env.fail_next_writes(100)         # device stays broken through close
        db.flush()
        assert db.health().mode == "degraded"
        db.close()                        # must not raise despite the device
        # The WAL was never truncated, so reopen recovers everything.
        reopened = DB(path, DBOptions(key_bits=32))
        assert reopened.get(999_999) == b"buffered"
        assert reopened.get(13) == b"value-1"
        reopened.close()

    def test_context_manager_exit_swallows_background_failures(self, tmp_path):
        path = str(tmp_path / "db")
        db, env = _faulty_db(path)
        with db:
            db.put(999_999, b"buffered")
            env.fail_next_writes(100)     # device dies after the ack
        reopened = DB(path, DBOptions(key_bits=32))
        assert reopened.get(999_999) == b"buffered"
        reopened.close()


class TestRepairProperty:
    """repair_store -> reopen never raises, and keeps every healthy run."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_repair_then_reopen_after_seeded_corruption(self, tmp_path, seed):
        import random

        from repro.lsm.repair import repair_store

        path = str(tmp_path / "db")
        db = _loaded_db(path, with_filter=True)
        db.compact()                      # several runs across levels
        runs = db.version.all_runs_newest_first()
        env = FaultInjectionEnv(path, stats=db.stats, seed=seed)
        rng = random.Random(seed)
        victims = rng.sample(runs, k=min(rng.randint(1, 2), len(runs)))
        for victim in victims:
            env.corrupt_file(victim.name, count=rng.randint(1, 4))
        db.close()

        options = DBOptions(key_bits=32, block_cache_bytes=0)
        outcome = repair_store(path, options)
        assert env.injected["bit_flips"] > 0
        # Every run repair kept must be genuinely healthy, every run it
        # dropped must be one we corrupted (bit flips can land in padding
        # or survive CRC windows, so <= rather than ==).
        assert set(outcome.dropped_files) <= {v.name for v in victims}
        healthy = {r.name for r in runs} - set(outcome.dropped_files)
        assert set(outcome.healthy_files) == healthy

        reopened = DB(path, options)      # the property: this never raises
        try:
            surviving = {
                r.name for r in reopened.version.all_runs_newest_first()
            }
            assert surviving == healthy   # healthy runs all retained
            # And the survivors are fully readable end to end.
            for _ in reopened.iterator():
                pass
        finally:
            reopened.close()
