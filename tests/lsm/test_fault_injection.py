"""Failure-injection tests: corruption must be detected, never silent.

The store's durability story rests on CRC framing (WAL records, data
blocks, index blocks) and magic numbers (SST footer, filter envelopes).
These tests flip bytes at every layer and assert the right error class
surfaces — wrong data must never be returned as if valid.
"""

import pytest

from repro.bench.factories import make_factory
from repro.errors import CorruptionError, SerializationError
from repro.lsm.db import DB
from repro.lsm.options import DBOptions


def _loaded_db(path: str, with_filter: bool = False) -> DB:
    options = DBOptions(
        key_bits=32,
        memtable_size_bytes=8 << 10,
        sst_size_bytes=32 << 10,
        block_size_bytes=1024,
        block_cache_bytes=0,  # force disk reads so corruption is seen
        filter_factory=(
            make_factory("rosetta", 32, 16, max_range=32) if with_filter
            else None
        ),
    )
    db = DB(path, options)
    for i in range(2000):
        db.put(i * 13, f"value-{i}".encode())
    db.flush()
    return db


def _run_for_key(db: DB, key: int):
    """The newest run whose key span covers ``key``."""
    encoded = db._encode_key(key)  # noqa: SLF001
    return db.version.runs_for_key(encoded)[0]


def _path_of(db: DB, run) -> str:
    return db._env.path(run.name)  # noqa: SLF001


def _flip_byte(path: str, offset: int) -> None:
    with open(path, "r+b") as handle:
        handle.seek(offset)
        byte = handle.read(1)
        handle.seek(offset)
        handle.write(bytes([byte[0] ^ 0xFF]))


class TestDataCorruption:
    def test_corrupt_data_block_detected_on_get(self, tmp_path):
        db = _loaded_db(str(tmp_path / "db"))
        run = _run_for_key(db, 0)  # key 0 sits in this run's first block
        _flip_byte(_path_of(db, run), 10)
        with pytest.raises(CorruptionError):
            db.get(0)
        db.close()

    def test_corrupt_data_block_detected_on_range(self, tmp_path):
        db = _loaded_db(str(tmp_path / "db"))
        run = _run_for_key(db, 0)
        _flip_byte(_path_of(db, run), 10)
        with pytest.raises(CorruptionError):
            db.range_query(0, 100)
        db.close()

    def test_unaffected_blocks_still_readable(self, tmp_path):
        db = _loaded_db(str(tmp_path / "db"))
        db.force_full_compaction()
        run = _run_for_key(db, 0)
        assert run.reader.num_data_blocks() > 1
        _flip_byte(_path_of(db, run), 10)  # first block only
        # A key in the same file's last block decodes fine (per-block CRCs).
        last_key = int.from_bytes(run.reader.meta.max_key, "big")
        assert db.get(last_key) is not None
        db.close()

    def test_corrupt_footer_detected_on_reopen(self, tmp_path):
        path = str(tmp_path / "db")
        db = _loaded_db(path)
        run = db.version.all_runs_newest_first()[0]
        sst = _path_of(db, run)
        size = run.file_size
        db.close()
        _flip_byte(sst, size - 1)  # the footer magic
        with pytest.raises(CorruptionError):
            DB(path, DBOptions(key_bits=32))

    def test_corrupt_filter_envelope_detected(self, tmp_path):
        db = _loaded_db(str(tmp_path / "db"), with_filter=True)
        run = _run_for_key(db, 7)  # absent key covered by this run's span
        # Corrupt the filter block's first byte (the envelope tag length).
        handle = run.reader._filter_handle  # noqa: SLF001
        assert handle.size > 0
        _flip_byte(_path_of(db, run), handle.offset)
        with pytest.raises(SerializationError):
            db.get(7)  # filter probe -> deserialization of corrupt bytes
        db.close()


class TestRecoveryRobustness:
    def test_missing_sst_fails_loudly(self, tmp_path):
        path = str(tmp_path / "db")
        db = _loaded_db(path)
        sst = _path_of(db, db.version.all_runs_newest_first()[0])
        db.close()
        import os

        os.remove(sst)
        with pytest.raises(FileNotFoundError):
            DB(path, DBOptions(key_bits=32))

    def test_garbage_manifest_fails_loudly(self, tmp_path):
        path = str(tmp_path / "db")
        db = _loaded_db(path)
        db.close()
        with open(f"{path}/MANIFEST.json", "w") as handle:
            handle.write("{not json")
        import json

        with pytest.raises(json.JSONDecodeError):
            DB(path, DBOptions(key_bits=32))

    def test_cache_disabled_store_works(self, tmp_path):
        """Sanity: with block_cache_bytes=0 every read hits the device."""
        db = _loaded_db(str(tmp_path / "db"))
        assert db.get(13) == b"value-1"
        assert db.stats.block_cache_hits == 0
        db.close()
