"""Property test: every single-byte corruption of a block is detected.

CRC32 detects all single-bit and single-byte errors; these properties
hammer the block codecs with random flips and assert no corrupted block
ever decodes silently.
"""

import zlib

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CorruptionError
from repro.lsm.format import (
    DataBlockBuilder,
    ValueTag,
    decode_data_block,
    decode_index_block,
    encode_index_block,
    BlockHandle,
)


def _build_block(entries):
    builder = DataBlockBuilder(restart_interval=4)
    for key, tag, value in entries:
        builder.add(key, tag, value)
    return builder.finish()


_entries = st.lists(
    st.tuples(
        st.binary(min_size=1, max_size=8),
        st.sampled_from([ValueTag.PUT, ValueTag.DELETE]),
        st.binary(max_size=12),
    ),
    min_size=1,
    max_size=20,
    unique_by=lambda e: e[0],
)


@settings(max_examples=120, deadline=None)
@given(entries=_entries, data=st.data())
def test_any_single_byte_flip_detected_or_equal(entries, data):
    """Flipping any byte either raises CorruptionError or (if the flip hit
    padding that CRC covers — impossible here, so always) raises."""
    entries = sorted(entries, key=lambda e: e[0])
    block = bytearray(_build_block(entries))
    position = data.draw(st.integers(min_value=0, max_value=len(block) - 1))
    flip = data.draw(st.integers(min_value=1, max_value=255))
    block[position] ^= flip
    try:
        decoded = decode_data_block(bytes(block))
    except CorruptionError:
        return  # detected, as required
    # CRC32 cannot miss a single-byte change over the covered region; the
    # only un-covered bytes are the CRC itself — flipping those must fail
    # the check too. Reaching here means the decode *matched* the original.
    raise AssertionError(
        f"corruption at byte {position} (xor {flip:#x}) went undetected; "
        f"decoded {len(decoded)} entries"
    )


@settings(max_examples=80, deadline=None)
@given(
    keys=st.lists(st.binary(min_size=1, max_size=6), min_size=1, max_size=10,
                  unique=True),
    data=st.data(),
)
def test_index_block_single_byte_flip_detected(keys, data):
    entries = [
        (key, BlockHandle(index * 100, 100))
        for index, key in enumerate(sorted(keys))
    ]
    payload = bytearray(encode_index_block(entries))
    position = data.draw(st.integers(min_value=0, max_value=len(payload) - 1))
    flip = data.draw(st.integers(min_value=1, max_value=255))
    payload[position] ^= flip
    try:
        decode_index_block(bytes(payload))
    except CorruptionError:
        return
    raise AssertionError("index-block corruption went undetected")


@settings(max_examples=60, deadline=None)
@given(entries=_entries)
def test_crc_matches_reference_implementation(entries):
    """The trailing 4 bytes are exactly zlib.crc32 of the body."""
    entries = sorted(entries, key=lambda e: e[0])
    block = _build_block(entries)
    body, crc = block[:-4], int.from_bytes(block[-4:], "little")
    assert zlib.crc32(body) == crc
