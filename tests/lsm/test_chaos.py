"""Chaos harness end-to-end: no hangs, no wrong answers, typed failures.

Small-scale versions of the runs ``benchmarks/bench_chaos.py`` records:
a faulted run (transient reads + degraded flips + worker crashes under
concurrent mixed traffic) must finish with zero violations, and a benign
run of the same harness must be fully available — which also proves the
harness itself doesn't manufacture failures.
"""

from __future__ import annotations

from dataclasses import replace

from repro.lsm.chaos import ChaosOptions, run_chaos

_BASE = ChaosOptions(
    seed=11,
    clients=3,
    ops_per_client=60,
    num_shards=2,
    preload=150,
    fault_period_s=0.01,
    write_fault_every=3,
    worker_crash_every=5,
)


class TestChaosHarness:
    def test_faulted_run_has_no_violations(self, tmp_path) -> None:
        report = run_chaos(str(tmp_path / "chaos"), _BASE)
        assert report.violations == []
        assert report.ops == _BASE.clients * _BASE.ops_per_client
        assert 0.0 < report.availability <= 1.0
        # The injector actually did something.
        assert report.injected["transient_reads"] >= 1
        # Failures, if any, were all typed (the Counter only ever holds
        # allowlisted names — anything else lands in violations).
        assert report.ok_ops + sum(report.typed_failures.values()) == (
            report.ops
        )

    def test_benign_run_fully_available(self, tmp_path) -> None:
        options = replace(_BASE, inject_faults=False)
        report = run_chaos(str(tmp_path / "benign"), options)
        assert report.violations == []
        assert report.availability == 1.0
        assert report.typed_failures == {}
        assert report.injected == {}

    def test_undefended_run_still_never_hangs(self, tmp_path) -> None:
        """The no-defense config: crashes are permanent, errors raw —
        but containment (wake + fail everything) is not optional."""
        options = replace(
            _BASE,
            queue_policy="block",
            default_deadline_s=None,
            breaker_enabled=False,
            max_worker_restarts=0,
        )
        report = run_chaos(str(tmp_path / "undefended"), options)
        assert report.violations == []
        assert report.ops == _BASE.clients * _BASE.ops_per_client
