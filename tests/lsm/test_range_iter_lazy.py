"""``DB.range_iter`` streaming contract.

Pins the three halves of the lazy-iterator fix:

* **streams** — the first entry comes off the merge before the rest of
  the range has been read (block-read counters prove it);
* **eager validation** — a closed store or inverted range raises at call
  time, not on the first ``next()``, because ``range_iter`` is a plain
  wrapper around the generator;
* **pinning** — the superversion referenced at call time stays pinned
  for the generator's lifetime and is released exactly once on
  exhaustion, ``close()``, or garbage collection, with filter outcomes
  and ``last_query`` recorded for what was actually consumed.
"""

from __future__ import annotations

import gc

import pytest

from repro.bench.factories import make_factory
from repro.errors import ClosedStoreError, FilterQueryError
from repro.lsm.db import DB
from repro.lsm.options import DBOptions

KEY_BITS = 16
DOMAIN = 1 << KEY_BITS


@pytest.fixture
def db(tmp_path):
    database = DB(
        str(tmp_path / "db"),
        DBOptions(
            key_bits=KEY_BITS,
            memtable_size_bytes=4 << 10,
            sst_size_bytes=8 << 10,
            block_size_bytes=512,
            block_cache_bytes=0,  # force block reads so laziness is visible
            max_bytes_for_level_base=32 << 10,
            filter_factory=make_factory(
                "rosetta", KEY_BITS, 14, max_range=64
            ),
        ),
    )
    for key in range(0, DOMAIN, 8):  # 8192 keys across many blocks/SSTs
        database.put(key, b"lazy-%d" % key)
    database.flush()
    yield database
    database.close()


def _sv_refs(database: DB) -> int:
    return database._super.refs  # noqa: SLF001 - pinning is the contract


class TestStreaming:
    def test_first_result_before_full_scan(self, db):
        low, high = 0, DOMAIN - 1
        baseline = db.stats.snapshot()
        iterator = db.range_iter(low, high)
        first = next(iterator)
        after_first = db.stats.diff(baseline)
        assert first == (0, b"lazy-0")
        remainder = list(iterator)
        after_all = db.stats.diff(baseline)
        assert len(remainder) == DOMAIN // 8 - 1
        # Streaming: the first next() paid for a prefix of the range, not
        # the whole thing.
        assert 0 < after_first.block_reads < after_all.block_reads / 4

    def test_iterator_matches_range_query(self, db):
        low, high = 1000, 9000
        assert list(db.range_iter(low, high)) == db.range_query(low, high)

    def test_partial_consumption_records_context(self, db):
        iterator = db.range_iter(0, DOMAIN - 1)
        consumed = [next(iterator) for _ in range(5)]
        iterator.close()
        context = db.last_query
        assert context.kind == "range"
        assert context.results == len(consumed) == 5

    def test_empty_span_short_circuits(self, db):
        # A range between two resident keys: every filter answers
        # negative, so there is nothing to stream and no pin to hold.
        refs_before = _sv_refs(db)
        result = list(db.range_iter(1, 7))
        assert result == []
        assert _sv_refs(db) == refs_before
        assert db.last_query.kind == "range"
        assert db.last_query.results == 0


class TestEagerValidation:
    def test_inverted_range_raises_at_call_time(self, db):
        with pytest.raises(FilterQueryError):
            db.range_iter(10, 9)  # no next() involved

    def test_closed_store_raises_at_call_time(self, tmp_path):
        database = DB(
            str(tmp_path / "closed"), DBOptions(key_bits=KEY_BITS)
        )
        database.close()
        with pytest.raises(ClosedStoreError):
            database.range_iter(0, 10)

    def test_validation_failure_leaves_no_pin(self, db):
        refs_before = _sv_refs(db)
        with pytest.raises(FilterQueryError):
            db.range_iter(10, 9)
        assert _sv_refs(db) == refs_before


class TestSuperversionPinning:
    def test_pin_held_while_iterating_released_on_close(self, db):
        refs_before = _sv_refs(db)
        iterator = db.range_iter(0, DOMAIN - 1)
        next(iterator)
        assert _sv_refs(db) == refs_before + 1
        iterator.close()
        assert _sv_refs(db) == refs_before

    def test_pin_released_on_exhaustion(self, db):
        refs_before = _sv_refs(db)
        iterator = db.range_iter(0, 2000)
        list(iterator)
        assert _sv_refs(db) == refs_before

    def test_pin_released_on_garbage_collection(self, db):
        refs_before = _sv_refs(db)
        iterator = db.range_iter(0, DOMAIN - 1)
        next(iterator)
        del iterator
        gc.collect()
        assert _sv_refs(db) == refs_before

    def test_scan_stable_across_concurrent_flush(self, db):
        """The pinned superversion keeps mid-scan results consistent."""
        iterator = db.range_iter(0, DOMAIN - 1)
        head = [next(iterator) for _ in range(3)]
        # Overwrite a key the iterator has not reached yet, then flush:
        # the pinned view must keep serving the old value.
        db.put(4096, b"overwritten")
        db.flush()
        scanned = dict(head + list(iterator))
        assert scanned[4096] == b"lazy-4096"
        assert db.get(4096) == b"overwritten"
