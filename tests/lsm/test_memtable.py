"""Unit tests for the skip-list memtable."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lsm.format import ValueTag
from repro.lsm.memtable import MemTable


class TestBasics:
    def test_put_get(self):
        table = MemTable()
        table.put(b"key", b"value")
        assert table.get(b"key") == (ValueTag.PUT, b"value")

    def test_missing_key(self):
        assert MemTable().get(b"nope") is None

    def test_overwrite(self):
        table = MemTable()
        table.put(b"k", b"v1")
        table.put(b"k", b"v2")
        assert table.get(b"k") == (ValueTag.PUT, b"v2")
        assert len(table) == 1

    def test_delete_leaves_tombstone(self):
        table = MemTable()
        table.put(b"k", b"v")
        table.delete(b"k")
        assert table.get(b"k") == (ValueTag.DELETE, b"")

    def test_delete_of_absent_key_records_tombstone(self):
        table = MemTable()
        table.delete(b"ghost")
        assert table.get(b"ghost") == (ValueTag.DELETE, b"")
        assert len(table) == 1

    def test_empty_properties(self):
        table = MemTable()
        assert table.is_empty
        assert len(table) == 0
        assert table.min_key() is None
        assert table.max_key() is None


class TestOrdering:
    def test_entries_sorted(self):
        table = MemTable(seed=3)
        keys = [bytes([b]) for b in (9, 1, 200, 73, 40)]
        for key in keys:
            table.put(key, b"")
        assert [k for k, _, _ in table.entries()] == sorted(keys)

    def test_entries_from_seeks(self):
        table = MemTable()
        for i in range(0, 100, 10):
            table.put(f"{i:03d}".encode(), b"")
        result = [k for k, _, _ in table.entries_from(b"045")]
        assert result[0] == b"050"
        assert len(result) == 5

    def test_entries_from_exact_key(self):
        table = MemTable()
        table.put(b"b", b"")
        table.put(b"d", b"")
        assert [k for k, _, _ in table.entries_from(b"b")] == [b"b", b"d"]

    def test_min_max(self):
        table = MemTable()
        for key in (b"m", b"a", b"z", b"q"):
            table.put(key, b"")
        assert table.min_key() == b"a"
        assert table.max_key() == b"z"

    def test_large_insert_stays_sorted(self):
        table = MemTable(seed=1)
        rng = random.Random(2)
        keys = [rng.randrange(10**9).to_bytes(8, "big") for _ in range(5000)]
        for key in keys:
            table.put(key, b"x")
        ordered = [k for k, _, _ in table.entries()]
        assert ordered == sorted(set(keys))


class TestAccounting:
    def test_bytes_grow_with_inserts(self):
        table = MemTable()
        table.put(b"k" * 10, b"v" * 100)
        first = table.approximate_bytes
        table.put(b"j" * 10, b"w" * 100)
        assert table.approximate_bytes > first

    def test_overwrite_adjusts_bytes(self):
        table = MemTable()
        table.put(b"k", b"v" * 100)
        before = table.approximate_bytes
        table.put(b"k", b"v")
        assert table.approximate_bytes == before - 99


@settings(max_examples=100, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.sampled_from(["put", "delete"]),
            st.binary(min_size=1, max_size=6),
            st.binary(max_size=10),
        ),
        max_size=80,
    )
)
def test_property_matches_dict_model(operations):
    """The memtable behaves like a dict of (tag, value)."""
    table = MemTable()
    model: dict[bytes, tuple[int, bytes]] = {}
    for op, key, value in operations:
        if op == "put":
            table.put(key, value)
            model[key] = (ValueTag.PUT, value)
        else:
            table.delete(key)
            model[key] = (ValueTag.DELETE, b"")
    assert len(table) == len(model)
    for key, expected in model.items():
        assert table.get(key) == expected
    assert [k for k, _, _ in table.entries()] == sorted(model)
