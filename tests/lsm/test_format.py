"""Unit tests for on-disk block encodings."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CorruptionError
from repro.lsm.format import (
    BlockHandle,
    DataBlockBuilder,
    ValueTag,
    decode_data_block,
    decode_index_block,
    decode_varint,
    encode_index_block,
    encode_varint,
)


class TestVarint:
    @pytest.mark.parametrize("value", [0, 1, 127, 128, 300, 2**32, 2**63 - 1])
    def test_roundtrip(self, value):
        payload = encode_varint(value)
        decoded, offset = decode_varint(payload, 0)
        assert decoded == value
        assert offset == len(payload)

    def test_compactness(self):
        assert len(encode_varint(0)) == 1
        assert len(encode_varint(127)) == 1
        assert len(encode_varint(128)) == 2

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            encode_varint(-1)

    def test_truncated(self):
        with pytest.raises(CorruptionError):
            decode_varint(b"\x80", 0)

    def test_overlong_rejected(self):
        with pytest.raises(CorruptionError):
            decode_varint(b"\x80" * 12, 0)


class TestDataBlock:
    def _entries(self, n=50):
        return [
            (f"key-{i:05d}".encode(), ValueTag.PUT, f"value-{i}".encode())
            for i in range(n)
        ]

    def test_roundtrip(self):
        builder = DataBlockBuilder(restart_interval=8)
        entries = self._entries()
        for key, tag, value in entries:
            builder.add(key, tag, value)
        decoded = decode_data_block(builder.finish())
        assert decoded == entries

    def test_prefix_compression_saves_space(self):
        shared = DataBlockBuilder(restart_interval=64)
        for key, tag, value in self._entries(200):
            shared.add(key, tag, value)
        compressed_size = len(shared.finish())
        raw_size = sum(len(k) + len(v) + 4 for k, _, v in self._entries(200))
        assert compressed_size < raw_size

    def test_tombstones_roundtrip(self):
        builder = DataBlockBuilder()
        builder.add(b"dead", ValueTag.DELETE, b"")
        builder.add(b"live", ValueTag.PUT, b"v")
        decoded = decode_data_block(builder.finish())
        assert decoded[0] == (b"dead", ValueTag.DELETE, b"")
        assert decoded[1] == (b"live", ValueTag.PUT, b"v")

    def test_out_of_order_rejected(self):
        builder = DataBlockBuilder()
        builder.add(b"b", ValueTag.PUT, b"")
        with pytest.raises(ValueError):
            builder.add(b"a", ValueTag.PUT, b"")
        with pytest.raises(ValueError):
            builder.add(b"b", ValueTag.PUT, b"")  # duplicates too

    def test_checksum_detects_corruption(self):
        builder = DataBlockBuilder()
        builder.add(b"k", ValueTag.PUT, b"v")
        payload = bytearray(builder.finish())
        payload[0] ^= 0xFF
        with pytest.raises(CorruptionError):
            decode_data_block(bytes(payload))

    def test_too_small_rejected(self):
        with pytest.raises(CorruptionError):
            decode_data_block(b"tiny")

    def test_restart_interval_one(self):
        builder = DataBlockBuilder(restart_interval=1)
        entries = self._entries(10)
        for key, tag, value in entries:
            builder.add(key, tag, value)
        assert decode_data_block(builder.finish()) == entries

    def test_size_estimate_tracks_growth(self):
        builder = DataBlockBuilder()
        initial = builder.size_estimate()
        builder.add(b"abcdef", ValueTag.PUT, b"x" * 100)
        assert builder.size_estimate() > initial + 100


class TestIndexBlock:
    def test_roundtrip(self):
        entries = [
            (b"key-a", BlockHandle(0, 100)),
            (b"key-b", BlockHandle(100, 250)),
            (b"key-z", BlockHandle(350, 17)),
        ]
        decoded = decode_index_block(encode_index_block(entries))
        assert decoded == entries

    def test_empty(self):
        assert decode_index_block(encode_index_block([])) == []

    def test_checksum_detects_corruption(self):
        payload = bytearray(encode_index_block([(b"k", BlockHandle(0, 5))]))
        payload[4] ^= 0x01
        with pytest.raises(CorruptionError):
            decode_index_block(bytes(payload))

    def test_block_handle_roundtrip(self):
        handle = BlockHandle(123456789, 987)
        assert BlockHandle.from_bytes(handle.to_bytes()) == handle


@settings(max_examples=100)
@given(
    entries=st.lists(
        st.tuples(
            st.binary(min_size=1, max_size=12),
            st.sampled_from([ValueTag.PUT, ValueTag.DELETE]),
            st.binary(max_size=30),
        ),
        min_size=1,
        max_size=60,
        unique_by=lambda e: e[0],
    ),
    restart=st.integers(min_value=1, max_value=20),
)
def test_property_data_block_roundtrip(entries, restart):
    entries = sorted(entries, key=lambda e: e[0])
    builder = DataBlockBuilder(restart_interval=restart)
    for key, tag, value in entries:
        builder.add(key, tag, value)
    assert decode_data_block(builder.finish()) == entries
