"""Kitchen-sink stress test: every store feature interacting at once.

Tiered compaction + Rosetta filters + atomic batches + deletes + retuning
+ full compaction + verification + recovery, driven against a dict oracle.
If any two features interact badly, this is where it shows.
"""

import bisect
import random

import pytest

from repro.bench.factories import make_factory
from repro.lsm.db import DB
from repro.lsm.options import DBOptions


@pytest.mark.parametrize("style", ["leveled", "tiered"])
def test_everything_at_once(tmp_path, style):
    options = DBOptions(
        key_bits=32,
        memtable_size_bytes=4 << 10,
        sst_size_bytes=16 << 10,
        max_bytes_for_level_base=48 << 10,
        level_size_ratio=3,
        block_size_bytes=512,
        block_cache_bytes=32 << 10,
        compaction_style=style,
        filter_factory=make_factory("rosetta", 32, 16, max_range=64),
    )
    path = str(tmp_path / f"sink-{style}")
    db = DB(path, options)
    rng = random.Random(0xABCDEF)
    model: dict[int, bytes] = {}

    def oracle_range(low, high):
        ordered = sorted(model)
        idx = bisect.bisect_left(ordered, low)
        out = []
        while idx < len(ordered) and ordered[idx] <= high:
            out.append((ordered[idx], model[ordered[idx]]))
            idx += 1
        return out

    # Phase 1: interleaved singles, batches, deletes.
    for round_number in range(6):
        for _ in range(400):
            key = rng.randrange(1 << 18)
            value = f"r{round_number}-{key}".encode()
            db.put(key, value)
            model[key] = value
        batch = db.batch()
        for _ in range(50):
            key = rng.randrange(1 << 18)
            if rng.random() < 0.3 and model:
                victim = rng.choice(sorted(model))
                batch.delete_int(victim)
                model.pop(victim, None)
            else:
                value = f"b{round_number}-{key}".encode()
                batch.put_int(key, value)
                model[key] = value
        db.write(batch)
        # Interleave reads so the tracker learns a short-range workload.
        for _ in range(20):
            low = rng.randrange(1 << 18)
            assert db.range_query(low, low + 7) == oracle_range(low, low + 7)

    # Phase 2: retune from observed statistics, then rebuild everything.
    decision = db.retune_filters()
    assert decision.strategy == "single"  # size-8 ranges dominated
    db.force_full_compaction()
    report = db.verify()
    assert report.ok, report.summary()

    # Phase 3: post-rebuild correctness, point and range.
    sample = rng.sample(sorted(model), 200)
    for key in sample:
        assert db.get(key) == model[key]
    for _ in range(100):
        low = rng.randrange(1 << 18)
        high = low + rng.randrange(0, 64)
        assert db.range_query(low, high) == oracle_range(low, high)

    # Phase 4: crash (no close), recover, re-check including the WAL tail.
    db.put(424242, b"wal-tail")
    model[424242] = b"wal-tail"
    db._env.close()  # noqa: SLF001

    db2 = DB(path, options)
    assert db2.get(424242) == b"wal-tail"
    for key in sample[:50]:
        assert db2.get(key) == model[key]
    assert db2.verify().ok
    # Statistics survived too.
    assert db2.tracker.num_range_queries > 0
    db2.close()
