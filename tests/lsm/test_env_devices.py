"""Unit tests for the device latency models and scaled presets."""

import pytest

from repro.lsm.env import (
    DEVICE_PRESETS,
    PYTHON_CPU_INFLATION,
    DeviceModel,
    StorageEnv,
)


class TestDeviceModel:
    def test_block_read_decomposition(self):
        model = DeviceModel("t", read_seek_ns=1000, read_per_byte_ns=2.0,
                            write_per_byte_ns=3.0)
        assert model.block_read_ns(100) == 1000 + 200
        assert model.write_ns(100) == 300

    def test_zero_byte_read_costs_the_seek(self):
        model = DEVICE_PRESETS["hdd"]
        assert model.block_read_ns(0) == model.read_seek_ns

    def test_hdd_dominated_by_seek(self):
        hdd = DEVICE_PRESETS["hdd"]
        assert hdd.read_seek_ns > 100 * hdd.read_per_byte_ns * 4096

    def test_scaled_presets_exact_multiples(self):
        for name in ("memory", "ssd", "hdd"):
            raw = DEVICE_PRESETS[name]
            scaled = DEVICE_PRESETS[f"{name}-scaled"]
            assert scaled.read_seek_ns == raw.read_seek_ns * PYTHON_CPU_INFLATION
            assert scaled.read_per_byte_ns == pytest.approx(
                raw.read_per_byte_ns * PYTHON_CPU_INFLATION
            )
            assert scaled.name == f"{name}-scaled"

    def test_all_presets_have_positive_costs(self):
        for model in DEVICE_PRESETS.values():
            assert model.read_seek_ns > 0
            assert model.read_per_byte_ns > 0
            assert model.write_per_byte_ns > 0


class TestEnvCharging:
    def test_per_block_charging_additive(self, tmp_path):
        env = StorageEnv(str(tmp_path), device="ssd")
        env.write_file("f", bytes(8192))
        env.read_block("f", 0, 4096)
        one = env.stats.block_read_time_ns
        env.read_block("f", 4096, 4096)
        assert env.stats.block_read_time_ns == 2 * one

    def test_reads_return_exact_ranges(self, tmp_path):
        env = StorageEnv(str(tmp_path))
        payload = bytes(range(256))
        env.write_file("f", payload)
        assert env.read_block("f", 10, 5) == payload[10:15]
        assert env.read_block("f", 250, 100) == payload[250:]  # short read

    def test_write_charging(self, tmp_path):
        env = StorageEnv(str(tmp_path), device="memory")
        env.write_file("a", bytes(100))
        env.append_file("a", bytes(50))
        assert env.stats.bytes_written == 150

    def test_separate_files_separate_handles(self, tmp_path):
        env = StorageEnv(str(tmp_path))
        env.write_file("a", b"AAAA")
        env.write_file("b", b"BBBB")
        assert env.read_block("a", 0, 4) == b"AAAA"
        assert env.read_block("b", 0, 4) == b"BBBB"
        env.close()

    def test_close_is_idempotent(self, tmp_path):
        env = StorageEnv(str(tmp_path))
        env.write_file("f", b"x")
        env.read_block("f", 0, 1)
        env.close()
        env.close()
        # A read after close reopens transparently.
        assert env.read_block("f", 0, 1) == b"x"
