"""Unit tests for the ASCII chart renderer and the CLI chart flag."""

import pytest

from repro.bench.report import ascii_bar_chart
from repro.cli import main as cli_main


class TestAsciiBarChart:
    def test_linear_proportions(self):
        chart = ascii_bar_chart(["full", "half"], [1.0, 0.5], width=10)
        lines = chart.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_title(self):
        chart = ascii_bar_chart(["a"], [1.0], title="FPR")
        assert chart.splitlines()[0] == "FPR"

    def test_log_scale_separates_magnitudes(self):
        chart = ascii_bar_chart(
            ["big", "small"], [0.1, 0.0001], width=40, log_scale=True
        )
        lines = chart.splitlines()
        big = lines[0].count("#")
        small = lines[1].count("#")
        assert big > small > 0

    def test_zero_values_render_empty_bar(self):
        chart = ascii_bar_chart(["zero", "one"], [0.0, 1.0], log_scale=True)
        lines = chart.splitlines()
        assert lines[0].count("#") == 0

    def test_all_zero(self):
        chart = ascii_bar_chart(["a", "b"], [0.0, 0.0])
        assert chart.count("#") == 0

    def test_empty_input(self):
        assert ascii_bar_chart([], [], title="t") == "t"

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            ascii_bar_chart(["a"], [1.0, 2.0])

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            ascii_bar_chart(["a"], [1.0], width=0)

    def test_labels_aligned(self):
        chart = ascii_bar_chart(["x", "longer-label"], [1.0, 1.0])
        lines = chart.splitlines()
        assert lines[0].index("#") == lines[1].index("#")


class TestCliChart:
    def test_chart_flag_renders_fpr_columns(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.1")
        assert cli_main(["theory", "--chart"]) == 0
        # theory has no *fpr* header -> no chart, but no crash either.
        out = capsys.readouterr().out
        assert "Experiment: theory" in out

    def test_chart_on_fpr_table(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.1")
        assert cli_main(["fig4", "--chart"]) == 0
        out = capsys.readouterr().out
        assert "fpr" in out
        assert "#" in out  # some bar was drawn
