"""Tests for the figures-document generator."""

import pytest

from repro.bench.figures import (
    FIGURES,
    _markdown_table,
    generate_figures_document,
    main,
)


class TestMarkdownTable:
    def test_shape(self):
        table = _markdown_table(("a", "b"), [(1, 2.5), ("x", 0.000123)])
        lines = table.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert "0.000123" in lines[3]

    def test_empty_rows(self):
        table = _markdown_table(("only",), [])
        assert len(table.splitlines()) == 2


class TestGeneration:
    def test_subset_document(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.08")
        from repro.bench import experiments

        subset = {
            "Fig. 4": experiments.fig4_allocation,
            "Extension — Monkey budgets": experiments.extension_monkey,
        }
        document = generate_figures_document(subset)
        assert "# Regenerated figures" in document
        assert "## Fig. 4" in document
        assert "## Extension — Monkey budgets" in document
        assert "REPRO_SCALE=0.08" in document
        assert document.count("| range_size |") == 1

    def test_failure_isolated(self):
        def boom():
            raise RuntimeError("intentional")

        from repro.bench import experiments

        document = generate_figures_document(
            {"Broken": boom, "Monkey": experiments.extension_monkey}
        )
        assert "intentional" in document
        assert "fp-I/O improvement" in document  # the next section still ran

    def test_registry_covers_every_paper_figure(self):
        joined = " ".join(FIGURES)
        for figure in ("Fig. 4", "Fig. 5", "Fig. 6", "Fig. 7", "Fig. 8",
                       "Fig. 9", "Fig. 10", "Fig. 11", "§3"):
            assert figure in joined

    def test_main_writes_file(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_SCALE", "0.08")
        import repro.bench.figures as figures_module

        monkeypatch.setattr(
            figures_module, "FIGURES",
            {"Fig. 4": figures_module.FIGURES["Fig. 4 — bits-allocation mechanisms"]},
        )
        path = str(tmp_path / "figures.md")
        assert main([path]) == 0
        with open(path) as handle:
            assert "# Regenerated figures" in handle.read()
        assert "wrote" in capsys.readouterr().out
