"""Tests for the result-set regression comparison tool."""

import pytest

from repro.bench.regression import (
    RegressionReport,
    compare_result_csvs,
    compare_tables,
)
from repro.bench.report import write_csv
from repro.errors import ReproError

HEADERS = ["filter", "range_size", "fpr", "latency_s"]
BASELINE = [
    ["rosetta", "8", "0.001", "0.08"],
    ["rosetta", "32", "0.010", "0.10"],
    ["surf", "8", "0.080", "0.24"],
]


class TestCompareTables:
    def test_identical_match(self):
        report = compare_tables(HEADERS, BASELINE, BASELINE)
        assert report.ok
        assert report.rows_compared == 3
        assert "MATCH" in report.summary()

    def test_within_tolerance(self):
        candidate = [
            ["rosetta", "8", "0.0011", "0.09"],
            ["rosetta", "32", "0.011", "0.11"],
            ["surf", "8", "0.075", "0.22"],
        ]
        assert compare_tables(HEADERS, BASELINE, candidate, tolerance=0.25).ok

    def test_deviation_flagged(self):
        candidate = [row[:] for row in BASELINE]
        candidate[0][2] = "0.5"  # 500x FPR regression
        report = compare_tables(HEADERS, BASELINE, candidate, tolerance=0.25)
        assert not report.ok
        assert any("fpr" in d for d in report.deviations)
        assert "REGRESSION" in report.summary()

    def test_missing_and_extra_rows(self):
        candidate = BASELINE[:2] + [["bloom", "8", "0.01", "0.1"]]
        report = compare_tables(HEADERS, BASELINE, candidate)
        assert not report.ok
        assert any("surf" in row for row in report.missing_rows)
        assert any("bloom" in row for row in report.extra_rows)

    def test_near_zero_values_use_absolute_floor(self):
        baseline = [["rosetta", "8", "0", "0.1"]]
        candidate = [["rosetta", "8", "1e-12", "0.1"]]
        assert compare_tables(HEADERS, baseline, candidate).ok

    def test_non_numeric_changes_rekey_rows(self):
        candidate = [["rosetta-v2", "8", "0.001", "0.08"]]
        report = compare_tables(HEADERS, [BASELINE[0]], candidate)
        assert not report.ok
        assert report.missing_rows and report.extra_rows

    def test_range_size_keys_rows(self):
        # range_size is numeric, so rows key on the filter name only if
        # the numeric cell differs the rows pair differently. Two rows
        # sharing all non-numeric cells would collide; the builder keys on
        # every non-numeric column.
        report = compare_tables(HEADERS, BASELINE, BASELINE)
        assert report.values_compared == 9  # 3 rows x 3 numeric columns

    def test_invalid_tolerance(self):
        with pytest.raises(ReproError):
            compare_tables(HEADERS, BASELINE, BASELINE, tolerance=-1)


class TestCompareCsvFiles:
    def test_roundtrip_files(self, tmp_path):
        old = str(tmp_path / "old.csv")
        new = str(tmp_path / "new.csv")
        write_csv(old, HEADERS, BASELINE)
        write_csv(new, HEADERS, BASELINE)
        assert compare_result_csvs(old, new).ok

    def test_header_mismatch(self, tmp_path):
        old = str(tmp_path / "old.csv")
        new = str(tmp_path / "new.csv")
        write_csv(old, HEADERS, BASELINE)
        write_csv(new, ["a", "b"], [["1", "2"]])
        with pytest.raises(ReproError):
            compare_result_csvs(old, new)

    def test_empty_csv(self, tmp_path):
        empty = tmp_path / "empty.csv"
        empty.write_text("")
        with pytest.raises(ReproError):
            compare_result_csvs(str(empty), str(empty))

    def test_experiment_csv_self_compare(self, tmp_path, monkeypatch):
        """An actual experiment's CSV compares clean against itself."""
        monkeypatch.setenv("REPRO_SCALE", "0.1")
        from repro.cli import main as cli_main

        path = str(tmp_path / "fig4.csv")
        assert cli_main(["fig4", "--csv", path]) == 0
        assert compare_result_csvs(path, path).ok


class TestReportShape:
    def test_default_report_ok(self):
        assert RegressionReport().ok
