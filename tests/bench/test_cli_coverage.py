"""CLI coverage: every registered experiment runs end to end (tiny scale)."""

import pytest

from repro.cli import _EXPERIMENTS, main as cli_main

# Experiments exercised elsewhere at tiny scale are skipped here to keep
# the suite fast; this module covers the remainder so every CLI route has
# at least one end-to-end execution.
_COVERED_ELSEWHERE = {"fig4", "theory", "fig7"}
_REMAINING = sorted(set(_EXPERIMENTS) - _COVERED_ELSEWHERE)


@pytest.mark.parametrize("experiment", _REMAINING)
def test_cli_route_runs(experiment, capsys, monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "0.08")
    assert cli_main([experiment]) == 0
    out = capsys.readouterr().out
    assert f"Experiment: {experiment}" in out
    # A rendered table has a separator row of dashes.
    assert "--" in out


def test_registry_matches_design_doc():
    """Every figure in the paper's evaluation has a CLI route."""
    for required in ("fig4", "fig5", "fig6a", "fig6b", "fig7", "fig8",
                     "fig9", "fig10", "fig11", "theory"):
        assert required in _EXPERIMENTS


def test_workload_flag_routes(capsys, monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "0.08")
    assert cli_main(["fig8", "--workload", "skewed", "--range-size", "8"]) == 0
    out = capsys.readouterr().out
    assert "skewed" in out


def test_filters_flag_routes(capsys, monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "0.08")
    assert cli_main(["fig5", "--filters", "rosetta"]) == 0
    out = capsys.readouterr().out
    assert "rosetta" in out
    assert "surf" not in out.splitlines()[-2]
