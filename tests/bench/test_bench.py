"""Unit tests for the benchmark harness: measurement, factories, reports."""

import os

import pytest

from repro.bench.endtoend import load_database, run_workload, scratch_db
from repro.bench.factories import FILTER_NAMES, make_factory
from repro.bench.harness import end_to_end_latency_model, measure_filter
from repro.bench.report import banner, format_table, write_csv
from repro.errors import WorkloadError
from repro.lsm.options import DBOptions
from repro.workloads.keygen import generate_dataset
from repro.workloads.ycsb import WorkloadBuilder


@pytest.fixture(scope="module")
def dataset():
    return generate_dataset(2000, key_bits=64, seed=1, value_size=32)


@pytest.fixture(scope="module")
def keys(dataset):
    return [int(k) for k in dataset.keys]


@pytest.fixture(scope="module")
def workload(keys):
    return WorkloadBuilder(keys, 64, seed=2).empty_range_queries(60, 16)


class TestFactories:
    @pytest.mark.parametrize("name", FILTER_NAMES)
    def test_every_recipe_builds_and_answers(self, name, keys):
        factory = make_factory(name, 64, 16, max_range=64)
        filt = factory.build(keys[:500])
        assert all(filt.may_contain(k) for k in keys[:50])
        assert filt.size_in_bits() > 0
        assert filt.serialize()

    def test_unknown_recipe_rejected(self):
        with pytest.raises(WorkloadError):
            make_factory("made-up", 64, 10)

    def test_rosetta_strategy_variants_differ(self, keys):
        single = make_factory("rosetta-single", 64, 16, max_range=64).build(keys)
        uniform = make_factory("rosetta-uniform", 64, 16, max_range=64).build(keys)
        assert single.rosetta.allocation.strategy == "single"
        assert uniform.rosetta.allocation.strategy == "uniform"


class TestMeasureFilter:
    def test_measurement_fields(self, keys, workload):
        factory = make_factory("rosetta", 64, 18, max_range=64)
        m = measure_filter(factory.build, keys, workload)
        assert m.num_keys == len(set(keys))
        assert m.queries == len(workload)
        assert 0.0 <= m.fpr <= 1.0
        assert m.bits_per_key == pytest.approx(18, rel=0.02)
        assert m.construction_seconds > 0
        assert m.probe_seconds > 0
        assert m.internal_probes > 0

    def test_fence_measurement(self, keys, workload):
        factory = make_factory("fence", 64, 0)
        m = measure_filter(factory.build, keys, workload, name="fence")
        assert m.filter_name == "fence"
        assert m.fpr > 0.5  # fences can't reject interior empty ranges

    def test_latency_model(self, keys, workload):
        # Use the fence baseline: its FPR is large and stable, so the
        # device term is guaranteed non-zero.
        factory = make_factory("fence", 64, 0)
        m = measure_filter(factory.build, keys, workload)
        model = end_to_end_latency_model(m, device="hdd")
        assert model["total_us"] == pytest.approx(
            model["probe_us"] + model["io_us"]
        )
        memory = end_to_end_latency_model(m, device="memory")
        assert memory["io_us"] < model["io_us"]

    def test_latency_model_unknown_device(self, keys, workload):
        factory = make_factory("bloom", 64, 10)
        m = measure_filter(factory.build, keys, workload)
        with pytest.raises(WorkloadError):
            end_to_end_latency_model(m, device="tape")


class TestEndToEnd:
    def _options(self):
        return DBOptions(
            key_bits=64,
            memtable_size_bytes=16 << 10,
            sst_size_bytes=64 << 10,
            max_bytes_for_level_base=256 << 10,
            block_size_bytes=1024,
        )

    def test_scratch_db_loads_and_cleans_up(self, dataset, workload):
        factory = make_factory("rosetta", 64, 18, max_range=64)
        with scratch_db(dataset, factory, self._options()) as db:
            path = db._env.root  # noqa: SLF001
            assert db.num_live_files() > 0
            result = run_workload(db, workload)
        assert not os.path.exists(path)
        assert result.queries == len(workload)
        assert result.total_seconds > 0
        assert result.filter_probes > 0
        assert 0.0 <= result.fpr <= 1.0

    def test_result_cpu_decomposition(self, dataset, workload):
        factory = make_factory("rosetta", 64, 18, max_range=64)
        with scratch_db(dataset, factory, self._options()) as db:
            result = run_workload(db, workload)
        assert result.cpu_seconds == pytest.approx(
            result.filter_probe_seconds
            + result.deserialize_seconds
            + result.serialize_seconds
            + result.residual_seek_seconds
        )
        assert result.end_to_end_seconds >= result.total_seconds

    def test_no_filter_database(self, dataset, workload):
        with scratch_db(dataset, None, self._options()) as db:
            result = run_workload(db, workload)
        assert result.filter_probes == 0
        assert result.block_reads > 0  # every empty query pays I/O

    def test_write_path_fraction(self, dataset, tmp_path):
        db = load_database(
            str(tmp_path / "frac"), dataset, None, self._options(),
            write_path_fraction=0.5,
        )
        assert db.stats.writes >= len(dataset) * 0.45
        db.close()


class TestReport:
    def test_format_table_alignment(self):
        table = format_table(
            ("name", "value"), [("a", 1.5), ("long-name", 0.000001)],
            title="T",
        )
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert "1e-06" in table or "1.000e-06" in table

    def test_format_empty_table(self):
        table = format_table(("x",), [])
        assert "x" in table

    def test_write_csv(self, tmp_path):
        path = str(tmp_path / "out" / "table.csv")
        write_csv(path, ("a", "b"), [(1, 2), (3, 4)])
        with open(path) as handle:
            content = handle.read()
        assert content.splitlines() == ["a,b", "1,2", "3,4"]

    def test_banner(self):
        assert "hello" in banner("hello")
