"""Smoke tests for the experiment registry and CLI at tiny scales.

Each figure function must run end to end and produce a well-formed table;
shape assertions check the paper's qualitative claims where they are stable
even at tiny scale.
"""

import pytest

from repro.bench import experiments
from repro.cli import main as cli_main

TINY = experiments.Scale(num_keys=1500, num_queries=40)


class TestFig4:
    def test_runs_and_orders_probe_costs(self):
        headers, rows = experiments.fig4_allocation(
            TINY, range_sizes=(8, 64), strategies=("optimized", "single")
        )
        assert len(rows) == 4
        by_key = {(r[0], r[1]): r for r in rows}
        # Single-level probes linearly in range size: strictly more probes
        # than the multi-level mechanism at range 64.
        assert by_key[(64, "single")][3] > by_key[(64, "optimized")][3]


class TestFig5:
    def test_runs_with_breakdown(self):
        headers, rows = experiments.fig5_endtoend(
            TINY, range_sizes=(8,), filters=("rosetta", "fence")
        )
        assert len(rows) == 2
        row = {r[0]: r for r in rows}
        assert row["fence"][9] == 1.0  # fence FPR on empty interior ranges
        assert row["rosetta"][9] < 0.5
        # Fence pays more modeled I/O than Rosetta.
        assert row["fence"][3] > row["rosetta"][3]

    def test_correlated_workload_runs(self):
        headers, rows = experiments.fig5_endtoend(
            TINY, workload="correlated", range_sizes=(8,), filters=("rosetta",)
        )
        assert len(rows) == 1


class TestFig6:
    def test_construction_isolated(self):
        headers, rows = experiments.fig6_construction(
            TINY, sst_sizes=(16 << 10,), filters=("rosetta", "surf")
        )
        assert len(rows) == 2
        for row in rows:
            assert row[3] > 0  # filters were built
            assert row[4] > 0  # construction time recorded

    def test_write_cost(self):
        headers, rows = experiments.fig6_write_cost(
            TINY, filters=("rosetta", "fence")
        )
        by_name = {r[0]: r for r in rows}
        assert by_name["fence"][3] == 0  # no filter construction
        assert by_name["rosetta"][3] > 0
        assert by_name["rosetta"][1] >= 1  # compactions happened


class TestFig7:
    def test_rosetta_matches_bloom(self):
        headers, rows = experiments.fig7_point_queries(
            TINY, filters=("rosetta", "bloom", "surf-hash"),
            bits_per_key_sweep=(14,),
        )
        fpr = {r[0]: r[3] for r in rows}
        assert fpr["rosetta"] <= fpr["surf-hash"] + 0.05
        assert fpr["bloom"] < 0.05


class TestFig8:
    def test_tradeoff_and_decision_map(self):
        headers, rows = experiments.fig8_tradeoff(
            TINY, range_size=16, bits_per_key_sweep=(12, 26),
            filters=("rosetta", "surf"),
        )
        assert len(rows) == 4
        cells = experiments.decision_map(rows)
        assert len(cells) == 2  # one per bits/key
        for cell in cells:
            assert cell[3] in ("rosetta", "surf")

    def test_more_memory_helps_rosetta(self):
        headers, rows = experiments.fig8_tradeoff(
            TINY, range_size=16, bits_per_key_sweep=(10, 30),
            filters=("rosetta",),
        )
        fpr = {r[3]: r[4] for r in rows}
        assert fpr[30] <= fpr[10]


class TestFig9:
    def test_device_ordering(self):
        headers, rows = experiments.fig9_memory_hierarchy(TINY)
        rosetta = {r[1]: r[5] for r in rows if r[0] == "rosetta"}
        assert rosetta["memory-scaled"] <= rosetta["ssd-scaled"] <= rosetta[
            "hdd-scaled"
        ]


class TestFig10:
    def test_surf_has_structural_floor(self):
        headers, rows = experiments.fig10_strings(
            TINY, bits_per_key_sweep=(6, 26)
        )
        low_budget = rows[0]
        # SuRF's actual bits/key stays above the requested 6.
        assert low_budget[5] > 10
        # Rosetta honours the tiny budget exactly.
        assert low_budget[2] == pytest.approx(6, abs=0.5)


class TestTheory:
    def test_metrics_consistent(self):
        headers, rows = experiments.theory_validation(TINY)
        values = dict(rows)
        assert values["goswami_lower_bound_bits"] < values["actual_memory_bits"] * 1.2
        assert values["measured_range_fpr"] <= 1.0
        assert values["predicted_range_fpr"] == pytest.approx(
            values["measured_range_fpr"], abs=0.25
        )


class TestCli:
    def test_list(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig4" in out and "fig10" in out

    def test_unknown_experiment(self, capsys):
        assert cli_main(["nope"]) == 2

    def test_runs_theory_and_writes_csv(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.1")
        csv_path = str(tmp_path / "theory.csv")
        assert cli_main(["theory", "--csv", csv_path]) == 0
        out = capsys.readouterr().out
        assert "Experiment: theory" in out
        with open(csv_path) as handle:
            assert handle.readline().strip() == "metric,value"
