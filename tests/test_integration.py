"""Cross-module integration tests: the full paper pipeline in miniature.

Each test exercises a complete slice of the system the way the paper's
evaluation does — generate a dataset, load the store, run a workload,
check the end-to-end claim — rather than any single module.
"""

import pytest

from repro.bench.endtoend import run_workload, scratch_db
from repro.bench.factories import make_factory
from repro.bench.harness import measure_filter
from repro.lsm.options import DBOptions
from repro.workloads.correlation import correlated_range_queries
from repro.workloads.keygen import generate_dataset
from repro.workloads.strings import StringKeyCodec, generate_wex_titles
from repro.workloads.ycsb import WorkloadBuilder

KEY_BITS = 64
NUM_KEYS = 3000


@pytest.fixture(scope="module")
def dataset():
    return generate_dataset(NUM_KEYS, KEY_BITS, seed=100, value_size=32)


@pytest.fixture(scope="module")
def keys(dataset):
    return [int(k) for k in dataset.keys]


def _options() -> DBOptions:
    return DBOptions(
        key_bits=KEY_BITS,
        memtable_size_bytes=16 << 10,
        sst_size_bytes=64 << 10,
        max_bytes_for_level_base=256 << 10,
        block_size_bytes=1024,
        device="ssd-scaled",
    )


class TestHeadlineClaims:
    """The paper's abstract, condensed into assertions."""

    def test_rosetta_beats_surf_on_short_empty_ranges(self, dataset, keys):
        """Fig. 5(A): lower FPR and less I/O for short ranges at 22 b/key."""
        workload = WorkloadBuilder(keys, KEY_BITS, seed=1).empty_range_queries(
            120, 16
        )
        results = {}
        for name in ("rosetta", "surf"):
            factory = make_factory(
                name, KEY_BITS, 22, max_range=64, range_size_histogram={16: 1}
            )
            with scratch_db(dataset, factory, _options()) as db:
                results[name] = run_workload(db, workload)
        assert results["rosetta"].fpr <= results["surf"].fpr
        assert results["rosetta"].io_seconds <= results["surf"].io_seconds

    def test_rosetta_beats_default_rocksdb_baselines(self, dataset, keys):
        """Fig. 5(D): fence-only and prefix-Bloom stores pay far more I/O."""
        workload = WorkloadBuilder(keys, KEY_BITS, seed=2).empty_range_queries(
            100, 8
        )
        io = {}
        for name in ("rosetta", "prefix-bloom", "fence"):
            factory = (
                None if name == "fence"
                else make_factory(name, KEY_BITS, 22, max_range=64,
                                  range_size_histogram={8: 1})
            )
            with scratch_db(dataset, factory, _options()) as db:
                io[name] = run_workload(db, workload).io_seconds
        assert io["rosetta"] < io["prefix-bloom"] <= io["fence"] * 1.05
        assert io["fence"] / max(io["rosetta"], 1e-9) > 5  # "up to 40x"

    def test_correlated_workload_hurts_surf_not_rosetta(self, keys):
        """Fig. 5(B): θ=1 correlation pushes SuRF's FPR toward 1."""
        workload = correlated_range_queries(
            keys, KEY_BITS, 150, 16, theta=1, seed=3
        )
        fpr = {}
        for name in ("rosetta", "surf"):
            factory = make_factory(
                name, KEY_BITS, 22, max_range=64, range_size_histogram={16: 1}
            )
            m = measure_filter(factory.build, keys, workload, name=name)
            fpr[name] = m.fpr
        assert fpr["surf"] > 0.5
        assert fpr["rosetta"] < fpr["surf"] / 2

    def test_point_queries_not_hurt(self, keys):
        """Fig. 7: Rosetta's point FPR matches a plain Bloom filter."""
        workload = WorkloadBuilder(keys, KEY_BITS, seed=4).empty_point_queries(
            800
        )
        fpr = {}
        for name in ("rosetta", "bloom", "surf-hash"):
            factory = make_factory(
                name, KEY_BITS, 14, max_range=1, range_size_histogram={1: 1}
            )
            fpr[name] = measure_filter(factory.build, keys, workload).fpr
        assert fpr["rosetta"] <= fpr["bloom"] + 0.02

    def test_strings_supported_below_surf_floor(self):
        """Fig. 10: Rosetta accepts budgets below SuRF's structural cost."""
        titles = generate_wex_titles(800, seed=5)
        codec = StringKeyCodec(key_bits=96)
        keys, _ = codec.encode_all(titles)
        keys = sorted(set(keys))
        rosetta = make_factory("rosetta", 96, 8, max_range=128).build(keys)
        surf = make_factory("surf", 96, 8).build(keys)
        assert rosetta.size_in_bits() / len(keys) == pytest.approx(8, abs=0.5)
        assert surf.size_in_bits() / len(keys) > 10  # cannot meet the budget


class TestAdaptivityPipeline:
    def test_track_retune_compact_improves_fpr(self, dataset, keys):
        """§2.4 end to end: observe workload -> retune -> rebuild -> better."""
        workload = WorkloadBuilder(keys, KEY_BITS, seed=6).empty_range_queries(
            150, 4
        )
        generic = make_factory("rosetta-optimized", KEY_BITS, 14, max_range=1024)
        with scratch_db(dataset, generic, _options()) as db:
            before = run_workload(db, workload)
            decision = db.retune_filters()
            assert decision.strategy == "single"
            db.force_full_compaction()
            after = run_workload(db, workload)
        assert after.fpr <= before.fpr

    def test_serialization_survives_store_restart(self, tmp_path, dataset):
        """Filters written into SSTs answer identically after reopen."""
        from repro.bench.endtoend import load_database
        from repro.lsm.db import DB

        options = _options()
        factory = make_factory("rosetta", KEY_BITS, 16, max_range=64)
        path = str(tmp_path / "restart")
        db = load_database(path, dataset, factory, options)
        probe_keys = [int(k) for k in dataset.keys[:50]]
        db.close()

        options2 = _options()
        options2.filter_factory = factory
        db2 = DB(path, options2)
        for key in probe_keys:
            assert db2.get(key) is not None
        assert db2.stats.filter_negatives == 0  # no false negatives possible
        db2.close()
