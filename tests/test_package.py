"""Package-level tests: exports, error hierarchy, version metadata."""

import pytest

import repro
from repro import errors


class TestExports:
    def test_version_present(self):
        assert repro.__version__ == "1.0.0"

    def test_top_level_all_importable(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    @pytest.mark.parametrize(
        "module_name",
        [
            "repro.core",
            "repro.filters",
            "repro.filters.surf",
            "repro.lsm",
            "repro.workloads",
            "repro.bench",
        ],
    )
    def test_subpackage_all_importable(self, module_name):
        import importlib

        module = importlib.import_module(module_name)
        for name in module.__all__:
            assert getattr(module, name) is not None, f"{module_name}.{name}"


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                assert issubclass(obj, errors.ReproError), name

    def test_specific_parentage(self):
        assert issubclass(errors.FilterBuildError, errors.FilterError)
        assert issubclass(errors.CorruptionError, errors.SerializationError)
        assert issubclass(errors.ClosedStoreError, errors.StoreError)
        assert issubclass(errors.InvalidOptionsError, errors.StoreError)

    def test_one_catch_covers_everything(self):
        """API-boundary contract: `except ReproError` is sufficient."""
        from repro.core.rosetta import Rosetta

        with pytest.raises(errors.ReproError):
            Rosetta.build([1], key_bits=4, bits_per_key=10, max_range=0)
        with pytest.raises(errors.ReproError):
            Rosetta.build([999], key_bits=4, bits_per_key=10)


class TestPublicDocstrings:
    @pytest.mark.parametrize(
        "obj_path",
        [
            "repro.core.rosetta.Rosetta",
            "repro.core.rosetta.Rosetta.build",
            "repro.core.rosetta.Rosetta.may_contain_range",
            "repro.core.allocation.allocate",
            "repro.filters.surf.surf.SuRF",
            "repro.lsm.db.DB",
            "repro.lsm.db.DB.range_query",
            "repro.workloads.ycsb.WorkloadBuilder",
            "repro.bench.experiments.fig5_endtoend",
        ],
    )
    def test_key_apis_documented(self, obj_path):
        import importlib

        module_name, _, attr_chain = obj_path.partition(".")
        parts = obj_path.split(".")
        # Walk down from the longest importable module prefix.
        for split in range(len(parts), 0, -1):
            try:
                obj = importlib.import_module(".".join(parts[:split]))
                remainder = parts[split:]
                break
            except ImportError:
                continue
        for attr in remainder:
            obj = getattr(obj, attr)
        assert obj.__doc__ and len(obj.__doc__.strip()) > 20, obj_path
