"""Smoke tests: every example script runs end to end (at reduced size).

Examples are the documentation users actually execute; these tests keep
them from rotting.  ``REPRO_EXAMPLE_KEYS`` shrinks the datasets so the
whole module stays fast.
"""

import os
import subprocess
import sys

import pytest

_EXAMPLES = [
    "quickstart.py",
    "lsm_store.py",
    "adaptive_tuning.py",
    "string_filtering.py",
    "ycsb_mixed_workload.py",
]

_EXAMPLES_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "examples"
)


@pytest.mark.parametrize("script", _EXAMPLES)
def test_example_runs_clean(script):
    env = dict(os.environ)
    env["REPRO_EXAMPLE_KEYS"] = "1200"
    env["REPRO_EXAMPLE_QUERIES"] = "40"
    result = subprocess.run(
        [sys.executable, os.path.join(_EXAMPLES_DIR, script)],
        capture_output=True,
        text=True,
        env=env,
        timeout=600,
    )
    assert result.returncode == 0, (
        f"{script} failed:\nstdout:\n{result.stdout[-2000:]}\n"
        f"stderr:\n{result.stderr[-2000:]}"
    )
    assert result.stdout.strip(), f"{script} produced no output"


def test_examples_directory_complete():
    """Every example on disk is covered by this smoke suite."""
    on_disk = sorted(
        name for name in os.listdir(_EXAMPLES_DIR) if name.endswith(".py")
    )
    assert on_disk == sorted(_EXAMPLES)
