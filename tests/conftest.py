"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.lsm.options import DBOptions


@pytest.fixture
def rng() -> random.Random:
    """A deterministic RNG per test."""
    return random.Random(0xC0FFEE)


@pytest.fixture
def small_keys(rng) -> list[int]:
    """2,000 distinct random 32-bit keys."""
    return rng.sample(range(1 << 32), 2000)


@pytest.fixture
def tiny_keys() -> list[int]:
    """The paper's running example key set (Fig. 2/3), 4-bit domain."""
    return [3, 6, 7, 8, 9, 11]


@pytest.fixture
def small_db_options() -> DBOptions:
    """DB options small enough to exercise flush/compaction quickly."""
    return DBOptions(
        key_bits=32,
        memtable_size_bytes=8 << 10,
        sst_size_bytes=16 << 10,
        max_bytes_for_level_base=64 << 10,
        block_size_bytes=1024,
        block_cache_bytes=1 << 20,
    )
