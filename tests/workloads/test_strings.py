"""Unit tests for the synthetic WEX string corpus and the string codec."""

import pytest

from repro.errors import WorkloadError
from repro.workloads.strings import (
    StringKeyCodec,
    generate_wex_titles,
    string_to_int_key,
)


class TestWexTitles:
    def test_count_distinct_sorted(self):
        titles = generate_wex_titles(500, seed=1)
        assert len(titles) == 500
        assert len(set(titles)) == 500
        assert titles == sorted(titles)

    def test_deterministic(self):
        assert generate_wex_titles(100, seed=2) == generate_wex_titles(100, seed=2)

    def test_variable_lengths(self):
        titles = generate_wex_titles(500, seed=3)
        lengths = {len(t) for t in titles}
        assert len(lengths) > 5  # genuinely variable

    def test_shared_prefix_structure(self):
        """Titles must share prefixes heavily (the property Fig. 10 needs)."""
        titles = generate_wex_titles(2000, seed=4)
        shared = sum(
            1
            for a, b in zip(titles, titles[1:])
            if len(a) >= 4 and a[:4] == b[:4]
        )
        assert shared / len(titles) > 0.2

    def test_namespace_prefixes_appear(self):
        titles = generate_wex_titles(2000, seed=5)
        assert any(t.startswith(b"Category:") for t in titles)

    def test_invalid_count(self):
        with pytest.raises(WorkloadError):
            generate_wex_titles(0)


class TestStringCodec:
    def test_order_preserved(self):
        titles = generate_wex_titles(300, seed=6)
        encoded = [string_to_int_key(t, 96) for t in titles]
        assert encoded == sorted(encoded)

    def test_short_strings_zero_padded(self):
        assert string_to_int_key(b"a", 16) == ord("a") << 8

    def test_long_strings_truncated(self):
        long_key = string_to_int_key(b"abcdefghij", 32)
        assert long_key == int.from_bytes(b"abcd", "big")

    def test_byte_alignment_required(self):
        with pytest.raises(WorkloadError):
            string_to_int_key(b"x", 12)
        with pytest.raises(WorkloadError):
            StringKeyCodec(key_bits=10)

    def test_collision_reporting(self):
        codec = StringKeyCodec(key_bits=16)  # 2 bytes: heavy truncation
        keys, collisions = codec.encode_all([b"abcd", b"abce", b"axxx"])
        assert collisions == 1  # "abcd"/"abce" truncate to "ab"
        assert len(keys) == 3

    def test_wide_codec_no_collisions_on_corpus(self):
        titles = generate_wex_titles(500, seed=7)
        codec = StringKeyCodec(key_bits=128)
        _, collisions = codec.encode_all(titles)
        # Titles sharing a >16-byte prefix collide; that tail is small.
        assert collisions <= len(titles) * 0.10
