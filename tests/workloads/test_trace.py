"""Unit tests for workload trace recording and replay."""

import json

import pytest

from repro.errors import WorkloadError
from repro.workloads.trace import load_trace, replay, save_trace
from repro.workloads.ycsb import Query, Workload, WorkloadBuilder


@pytest.fixture
def workload(rng):
    keys = rng.sample(range(1 << 32), 500)
    return WorkloadBuilder(keys, 32, seed=5).workload_e(60, max_range_size=16)


class TestRoundtrip:
    def test_identical_queries(self, tmp_path, workload):
        path = str(tmp_path / "w.trace")
        save_trace(path, workload, key_bits=32)
        restored = load_trace(path)
        assert restored.queries == workload.queries
        assert restored.description == workload.description

    def test_metadata_preserved(self, tmp_path, workload):
        path = str(tmp_path / "w.trace")
        save_trace(path, workload)
        assert load_trace(path).metadata == workload.metadata

    def test_empty_workload(self, tmp_path):
        path = str(tmp_path / "empty.trace")
        save_trace(path, Workload([], description="nothing"))
        restored = load_trace(path)
        assert len(restored) == 0
        assert restored.description == "nothing"


class TestValidation:
    def test_empty_file(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("")
        with pytest.raises(WorkloadError):
            load_trace(str(path))

    def test_bad_header(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("not json\n")
        with pytest.raises(WorkloadError):
            load_trace(str(path))

    def test_unknown_version(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text(json.dumps({"version": 99}) + "\n")
        with pytest.raises(WorkloadError):
            load_trace(str(path))

    def test_bad_record(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text(
            json.dumps({"version": 1}) + "\n" + '{"k": "range"}\n'
        )
        with pytest.raises(WorkloadError):
            load_trace(str(path))

    def test_unknown_kind(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text(
            json.dumps({"version": 1}) + "\n"
            + json.dumps({"k": "scan", "l": 1, "h": 2}) + "\n"
        )
        with pytest.raises(WorkloadError):
            load_trace(str(path))

    def test_inverted_range(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text(
            json.dumps({"version": 1}) + "\n"
            + json.dumps({"k": "range", "l": 5, "h": 1}) + "\n"
        )
        with pytest.raises(WorkloadError):
            load_trace(str(path))

    def test_count_mismatch(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text(
            json.dumps({"version": 1, "num_queries": 3}) + "\n"
            + json.dumps({"k": "point", "l": 1, "h": 1}) + "\n"
        )
        with pytest.raises(WorkloadError):
            load_trace(str(path))


class TestReplay:
    def test_routes_by_kind(self):
        workload = Workload([
            Query("point", 5, 5),
            Query("range", 1, 9),
            Query("point", 7, 7),
        ])
        results = replay(
            workload,
            point_fn=lambda key: ("point", key),
            range_fn=lambda low, high: ("range", low, high),
        )
        assert results == [("point", 5), ("range", 1, 9), ("point", 7)]

    def test_replay_against_filter(self, tmp_path, rng):
        """End to end: generate, save, load, replay against Rosetta."""
        from repro.core.rosetta import Rosetta

        keys = rng.sample(range(1 << 20), 300)
        builder = WorkloadBuilder(keys, 20, seed=6)
        workload = builder.empty_range_queries(40, 8)
        path = str(tmp_path / "filter.trace")
        save_trace(path, workload, key_bits=20)

        filt = Rosetta.build(keys, key_bits=20, bits_per_key=16, max_range=8)
        results = replay(
            load_trace(path), filt.may_contain, filt.may_contain_range
        )
        assert len(results) == 40
        # Deterministic: replaying twice gives identical verdicts.
        again = replay(
            load_trace(path), filt.may_contain, filt.may_contain_range
        )
        assert results == again
