"""Unit tests for workload generation: emptiness, correlation, mixes."""

import bisect

import pytest

from repro.errors import WorkloadError
from repro.workloads.correlation import correlated_range_queries, correlation_sweep
from repro.workloads.ycsb import Query, Workload, WorkloadBuilder


@pytest.fixture
def keys(rng):
    return sorted(rng.sample(range(1 << 32), 3000))


def _is_empty(sorted_keys, low, high):
    idx = bisect.bisect_left(sorted_keys, low)
    return not (idx < len(sorted_keys) and sorted_keys[idx] <= high)


class TestEmptyRangeQueries:
    def test_all_ranges_are_empty(self, keys):
        builder = WorkloadBuilder(keys, 32, seed=1)
        workload = builder.empty_range_queries(200, 32)
        assert len(workload) == 200
        for query in workload:
            assert query.range_size == 32
            assert _is_empty(keys, query.low, query.high)

    def test_deterministic(self, keys):
        a = WorkloadBuilder(keys, 32, seed=2).empty_range_queries(50, 16)
        b = WorkloadBuilder(keys, 32, seed=2).empty_range_queries(50, 16)
        assert a.queries == b.queries

    def test_range_size_one(self, keys):
        workload = WorkloadBuilder(keys, 32, seed=3).empty_range_queries(50, 1)
        assert all(q.low == q.high for q in workload)

    def test_dense_keyspace_raises(self):
        dense = list(range(200))
        builder = WorkloadBuilder(dense, 8, seed=4)
        with pytest.raises(WorkloadError):
            builder.empty_range_queries(50, 64)

    def test_invalid_range_size(self, keys):
        with pytest.raises(WorkloadError):
            WorkloadBuilder(keys, 32).empty_range_queries(10, 0)

    def test_metadata_recorded(self, keys):
        workload = WorkloadBuilder(keys, 32, seed=5).empty_range_queries(10, 8)
        assert workload.metadata["range_size"] == 8
        assert "empty-range" in workload.description


class TestCorrelatedQueries:
    def test_lower_bound_is_key_plus_theta(self, keys):
        workload = correlated_range_queries(keys, 32, 100, 16, theta=1, seed=6)
        key_set = set(keys)
        for query in workload:
            assert query.low - 1 in key_set
            assert _is_empty(keys, query.low, query.high)

    def test_larger_theta(self, keys):
        workload = correlated_range_queries(keys, 32, 50, 8, theta=7, seed=7)
        key_set = set(keys)
        assert all(q.low - 7 in key_set for q in workload)

    def test_invalid_theta(self, keys):
        with pytest.raises(WorkloadError):
            correlated_range_queries(keys, 32, 10, 8, theta=0)

    def test_sweep_covers_thetas(self, keys):
        sweep = correlation_sweep(keys, 32, 20, 8, thetas=(1, 4))
        assert set(sweep) == {1, 4}
        assert all(len(w) == 20 for w in sweep.values())


class TestPointQueries:
    def test_empty_points_absent(self, keys):
        workload = WorkloadBuilder(keys, 32, seed=8).empty_point_queries(100)
        key_set = set(keys)
        assert all(q.low not in key_set for q in workload)
        assert all(q.kind == "point" for q in workload)

    def test_present_points_exist(self, keys):
        workload = WorkloadBuilder(keys, 32, seed=9).present_point_queries(100)
        key_set = set(keys)
        assert all(q.low in key_set for q in workload)

    def test_present_points_on_empty_set_rejected(self):
        with pytest.raises(WorkloadError):
            WorkloadBuilder([], 32).present_point_queries(5)


class TestWorkloadE:
    def test_mix_proportions(self, keys):
        workload = WorkloadBuilder(keys, 32, seed=10).workload_e(
            200, max_range_size=32, scan_fraction=0.9
        )
        scans = sum(1 for q in workload if q.kind == "range")
        assert scans == 180
        assert len(workload) == 200

    def test_scan_sizes_bounded(self, keys):
        workload = WorkloadBuilder(keys, 32, seed=11).workload_e(
            100, max_range_size=16
        )
        for query in workload:
            if query.kind == "range":
                assert 1 <= query.range_size <= 16

    def test_all_queries_empty(self, keys):
        workload = WorkloadBuilder(keys, 32, seed=12).workload_e(100)
        for query in workload:
            assert _is_empty(keys, query.low, query.high)

    def test_invalid_fraction(self, keys):
        with pytest.raises(WorkloadError):
            WorkloadBuilder(keys, 32).workload_e(10, scan_fraction=1.5)


class TestWideDomain:
    def test_wide_keys_supported(self):
        keys = [1 << 90, (1 << 90) + 100, (1 << 95) + 7]
        builder = WorkloadBuilder(keys, 96, seed=13)
        workload = builder.empty_range_queries(20, 64)
        assert len(workload) == 20
        for query in workload:
            assert query.high < (1 << 96)
            assert _is_empty(keys, query.low, query.high)

    def test_wide_correlated(self):
        keys = [1 << 90, (1 << 91)]
        workload = WorkloadBuilder(keys, 96, seed=14).empty_range_queries(
            10, 8, correlation_offset=1
        )
        key_set = set(keys)
        assert all(q.low - 1 in key_set for q in workload)

    def test_wide_points(self):
        keys = [1 << 90]
        workload = WorkloadBuilder(keys, 96, seed=15).empty_point_queries(10)
        assert all(q.low != keys[0] for q in workload)


class TestQueryDataclass:
    def test_range_size(self):
        assert Query("range", 10, 25).range_size == 16
        assert Query("point", 5, 5).range_size == 1

    def test_workload_iteration(self):
        queries = [Query("point", 1, 1), Query("range", 2, 9)]
        workload = Workload(queries, description="test")
        assert list(workload) == queries
        assert len(workload) == 2


class TestOccupiedRangeQueries:
    def test_every_range_contains_a_key(self, keys):
        builder = WorkloadBuilder(keys, 32, seed=16)
        workload = builder.occupied_range_queries(150, 16)
        assert len(workload) == 150
        for query in workload:
            assert query.range_size <= 16
            assert not _is_empty(keys, query.low, query.high)

    def test_metadata(self, keys):
        workload = WorkloadBuilder(keys, 32, seed=17).occupied_range_queries(
            10, 8
        )
        assert workload.metadata["occupied"] is True

    def test_requires_keys(self):
        with pytest.raises(WorkloadError):
            WorkloadBuilder([], 32).occupied_range_queries(5, 8)

    def test_invalid_size(self, keys):
        with pytest.raises(WorkloadError):
            WorkloadBuilder(keys, 32).occupied_range_queries(5, 0)

    def test_filters_always_positive_on_occupied_ranges(self, keys):
        """No filter may reject an occupied range (soundness end to end)."""
        from repro.bench.factories import make_factory

        workload = WorkloadBuilder(keys, 32, seed=18).occupied_range_queries(
            100, 16
        )
        for name in ("rosetta", "surf"):
            filt = make_factory(name, 32, 16, max_range=16).build(keys)
            for query in workload:
                assert filt.may_contain_range(query.low, query.high), name
