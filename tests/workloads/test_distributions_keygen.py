"""Unit tests for distributions and dataset generation."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads.distributions import (
    normal_keys,
    sample_distinct,
    uniform_keys,
    zipfian_ranks,
)
from repro.workloads.keygen import generate_dataset, synthesize_value


class TestUniform:
    def test_deterministic_given_seed(self):
        a = uniform_keys(100, 32, seed=7)
        b = uniform_keys(100, 32, seed=7)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        assert not np.array_equal(
            uniform_keys(100, 32, seed=1), uniform_keys(100, 32, seed=2)
        )

    def test_in_domain(self):
        keys = uniform_keys(10_000, 20, seed=3)
        assert int(keys.max()) < (1 << 20)

    def test_covers_domain_roughly(self):
        keys = uniform_keys(10_000, 16, seed=4)
        # Quartile occupancy within 2x of each other.
        counts, _ = np.histogram(keys, bins=4, range=(0, 1 << 16))
        assert counts.max() < 2 * counts.min()

    def test_invalid_args(self):
        with pytest.raises(WorkloadError):
            uniform_keys(-1, 32)
        with pytest.raises(WorkloadError):
            uniform_keys(10, 0)


class TestNormal:
    def test_clusters_around_mean(self):
        keys = normal_keys(10_000, 32, seed=5, mean_fraction=0.5,
                           std_fraction=0.05)
        mid = 1 << 31
        within = np.abs(keys.astype(np.float64) - mid) < (1 << 32) * 0.15
        assert within.mean() > 0.95

    def test_clamped_to_domain(self):
        keys = normal_keys(10_000, 16, seed=6, mean_fraction=0.0,
                           std_fraction=0.5)
        assert int(keys.max()) < (1 << 16)

    def test_invalid_std(self):
        with pytest.raises(WorkloadError):
            normal_keys(10, 16, std_fraction=0.0)


class TestZipf:
    def test_skew_concentrates_low_ranks(self):
        ranks = zipfian_ranks(20_000, 1000, theta=0.99, seed=7)
        head_share = (ranks < 10).mean()
        assert head_share > 0.3

    def test_ranks_in_universe(self):
        ranks = zipfian_ranks(5000, 100, seed=8)
        assert int(ranks.max()) < 100

    def test_invalid_args(self):
        with pytest.raises(WorkloadError):
            zipfian_ranks(10, 0)
        with pytest.raises(WorkloadError):
            zipfian_ranks(10, 100, theta=1.5)


class TestSampleDistinct:
    def test_exact_count_distinct_sorted(self):
        keys = sample_distinct(5000, 32, seed=9)
        assert len(keys) == 5000
        assert len(np.unique(keys)) == 5000
        assert np.array_equal(keys, np.sort(keys))

    def test_domain_too_small_rejected(self):
        with pytest.raises(WorkloadError):
            sample_distinct(200, 8)


class TestDataset:
    def test_uniform_dataset(self):
        dataset = generate_dataset(1000, key_bits=32, seed=10)
        assert len(dataset) == 1000
        assert dataset.distribution == "uniform"

    def test_normal_dataset(self):
        dataset = generate_dataset(1000, key_bits=32, distribution="normal",
                                   seed=11)
        assert len(dataset) == 1000
        assert len(np.unique(dataset.keys)) == 1000

    def test_unknown_distribution(self):
        with pytest.raises(WorkloadError):
            generate_dataset(10, distribution="pareto")

    def test_items_yield_values(self):
        dataset = generate_dataset(10, key_bits=32, value_size=64, seed=12)
        items = list(dataset.items())
        assert len(items) == 10
        for key, value in items:
            assert len(value) == 64
            assert int.from_bytes(value[:8], "big") == key

    def test_value_synthesis_verifiable(self):
        value = synthesize_value(12345, 512)
        assert len(value) == 512
        assert int.from_bytes(value[:8], "big") == 12345

    def test_value_too_small_rejected(self):
        with pytest.raises(WorkloadError):
            synthesize_value(1, 4)
