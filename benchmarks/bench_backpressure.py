"""Write throughput and stall behavior: inline vs. background maintenance.

Drives an identical write-heavy workload (small memtable, aggressive L0
triggers — the store is permanently behind on maintenance) through two
configurations:

* ``inline`` — ``max_background_jobs=0``: every flush/compaction runs on
  the writing thread, the historical fully-synchronous semantics;
* ``background`` / ``background-4`` — worker threads (2 and 4 job
  slots) with RocksDB-style backpressure: full memtables seal into the
  immutable queue and writers are admitted, slowed (debt-proportional
  modeled ``delayed_write_ns`` charge), or stopped (a real bounded
  block) depending on maintenance debt.  Flushes overlap compactions
  and compactions split into key-range subcompactions, so the overlap
  counters (``jobs_overlapped``, ``max_jobs_in_flight``,
  ``subcompactions``) must come out non-zero.

Reported per configuration: wall-clock write throughput, the per-put
latency distribution (p50/p90/p99/max — backgrounding moves flush cost
out of the tail), and the stall counters (seals, slowdowns, stops, stall
time, modeled delay).  The answers are cross-checked: both stores must
agree on every key.

Usage::

    PYTHONPATH=src python benchmarks/bench_backpressure.py           # full
    PYTHONPATH=src python benchmarks/bench_backpressure.py --smoke   # CI

Writes ``BENCH_backpressure.json`` at the repo root.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.lsm.db import DB  # noqa: E402
from repro.lsm.options import DBOptions  # noqa: E402

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_backpressure.json"


def _options(jobs: int) -> DBOptions:
    # Level base and SST size are tight and the per-level window narrow so
    # an oversize level splinters into several disjoint leveled jobs even
    # at smoke scale — the workload that exercises range-disjoint
    # same-level-pair admission, not just flush/compaction overlap.
    return DBOptions(
        key_bits=32,
        memtable_size_bytes=4 << 10,
        sst_size_bytes=8 << 10,
        block_size_bytes=1024,
        block_cache_bytes=0,
        level0_file_num_compaction_trigger=2,
        max_bytes_for_level_base=16 << 10,
        max_background_jobs=jobs,
        max_immutable_memtables=2,
        level0_slowdown_writes_trigger=4,
        level0_stop_writes_trigger=8,
        max_compaction_input_files=2,
    )


def _percentile(sorted_ns: list[int], fraction: float) -> int:
    if not sorted_ns:
        return 0
    index = min(len(sorted_ns) - 1, int(fraction * len(sorted_ns)))
    return sorted_ns[index]


def run_config(label: str, jobs: int, num_ops: int, workdir: str) -> dict:
    db = DB(str(Path(workdir) / label), _options(jobs))
    value = b"backpressure-payload-" * 8  # ~170 B/put: frequent seals
    latencies: list[int] = []
    started = time.perf_counter_ns()
    for op in range(num_ops):
        before = time.perf_counter_ns()
        db.put(op % (num_ops // 4), value + b"#%d" % op)
        latencies.append(time.perf_counter_ns() - before)
    db.wait_idle()
    elapsed_ns = time.perf_counter_ns() - started
    stats = db.stats
    answers = {key: db.get(key) for key in range(num_ops // 4)}
    health = db.health()
    db.close()
    latencies.sort()
    return {
        "label": label,
        "max_background_jobs": jobs,
        "num_ops": num_ops,
        "elapsed_seconds": round(elapsed_ns / 1e9, 4),
        "puts_per_second": round(num_ops / (elapsed_ns / 1e9), 1),
        "put_latency_ns": {
            "p50": _percentile(latencies, 0.50),
            "p90": _percentile(latencies, 0.90),
            "p99": _percentile(latencies, 0.99),
            "max": latencies[-1] if latencies else 0,
        },
        "memtable_seals": stats.memtable_seals,
        "flushes": stats.flushes,
        "compactions": stats.compactions,
        "write_slowdowns": stats.write_slowdowns,
        "write_stops": stats.write_stops,
        "write_stall_time_ns": stats.write_stall_time_ns,
        "write_delay_time_ns": stats.write_delay_time_ns,
        "write_stall_timeouts": stats.write_stall_timeouts,
        "subcompactions": stats.subcompactions,
        "jobs_overlapped": stats.jobs_overlapped,
        "max_jobs_in_flight": stats.max_jobs_in_flight,
        "leveled_range_admissions": stats.leveled_range_admissions,
        "stale_jobs_rejected": stats.stale_jobs_rejected,
        "final_stall_state": health.stall_state,
        "_answers": answers,  # stripped before serialization
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--ops", type=int, default=4000,
        help="writes per configuration (default: 4000)",
    )
    parser.add_argument(
        "--smoke", action="store_true", help="CI smoke run: 800 writes"
    )
    parser.add_argument(
        "--check", action="store_true",
        help="fail if background (2 jobs) throughput regresses below "
        "inline, or if no jobs ever overlapped",
    )
    args = parser.parse_args(argv)
    num_ops = 800 if args.smoke else args.ops
    # Full runs interleave three rounds and keep the per-config median:
    # run-to-run machine noise on this workload (~±10%) would otherwise
    # swamp the inline/background comparison.  Smoke stays single-round
    # unless it gates CI (--check), where a single ~0.1 s round is far
    # too noisy to compare throughputs.
    rounds = 1 if args.smoke and not args.check else 3

    configs = (("inline", 0), ("background", 2), ("background-4", 4))
    rounds_by_label: dict[str, list[dict]] = {label: [] for label, _ in configs}
    with tempfile.TemporaryDirectory(prefix="backpressure-") as workdir:
        for round_index in range(rounds):
            for label, jobs in configs:
                record = run_config(
                    f"{label}-r{round_index}", jobs, num_ops, workdir
                )
                record["label"] = label
                rounds_by_label[label].append(record)

    records = []
    for label, _ in configs:
        ordered = sorted(
            rounds_by_label[label], key=lambda r: r["puts_per_second"]
        )
        record = ordered[len(ordered) // 2]
        records.append(record)
        print(
            f"{label:12s}: {record['puts_per_second']:10.1f} puts/s, "
            f"p99 {record['put_latency_ns']['p99'] / 1e3:8.1f} us, "
            f"{record['write_slowdowns']} slowdowns, "
            f"{record['write_stops']} stops, "
            f"stall {record['write_stall_time_ns'] / 1e6:.2f} ms, "
            f"{record['jobs_overlapped']} overlapped"
        )

    baseline = records[0].pop("_answers")
    answers_match = all(
        record.pop("_answers") == baseline for record in records[1:]
    )
    result = {
        "bench": "backpressure",
        "num_ops": num_ops,
        "answers_match": answers_match,
        "configs": records,
    }
    RESULT_PATH.write_text(json.dumps(result, indent=2) + "\n")
    print(f"-> {RESULT_PATH.name} (answers match: {answers_match})")
    if not answers_match:
        return 1
    if args.check:
        inline, background = records[0], records[1]
        # Tolerance: CI machines are noisy and the smoke rounds are short
        # (~0.1 s each, so even the median of three swings ±10%); a real
        # serialization regression loses far more than this.
        factor = 0.85 if args.smoke else 0.9
        floor = factor * inline["puts_per_second"]
        if background["puts_per_second"] < floor:
            print(
                f"CHECK FAILED: background {background['puts_per_second']} "
                f"puts/s below {factor}x inline "
                f"({inline['puts_per_second']})",
                file=sys.stderr,
            )
            return 1
        if background["jobs_overlapped"] == 0:
            print(
                "CHECK FAILED: no background jobs ever overlapped",
                file=sys.stderr,
            )
            return 1
        if background["leveled_range_admissions"] == 0:
            print(
                "CHECK FAILED: no leveled jobs were ever admitted into the "
                "same level pair (range-disjoint admission never fired)",
                file=sys.stderr,
            )
            return 1
        print(
            f"check passed: background >= {factor}x inline, jobs "
            "overlapped, same-level-pair leveled admissions observed"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
