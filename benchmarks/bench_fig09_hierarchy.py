"""Fig. 9 — robustness across the memory hierarchy (RAM / SSD / HDD).

Standalone comparison: Rosetta pays more probe time but, thanks to its
lower FPR, fewer wasted device reads — and the deeper the storage tier,
the larger the win.  Device latencies use the inflation-scaled presets so
the probe:read ratio matches the paper's C++/hardware testbed (see
``repro.lsm.env.PYTHON_CPU_INFLATION``).
"""

from repro.bench.experiments import fig9_memory_hierarchy
from repro.bench.report import emit


def _total(rows, filter_name, device):
    return next(r[5] for r in rows if r[0] == filter_name and r[1] == device)


def test_fig9_regenerate(benchmark, scale):
    headers, rows = benchmark.pedantic(
        fig9_memory_hierarchy, args=(scale,), rounds=1, iterations=1
    )
    emit("Fig. 9 — end-to-end latency across the memory hierarchy",
         headers, rows)

    # Both filters pay probe time; Rosetta pays more (the design tradeoff).
    rosetta_probe = next(r[3] for r in rows if r[0] == "rosetta")
    surf_probe = next(r[3] for r in rows if r[0] == "surf")
    assert rosetta_probe > 0 and surf_probe > 0

    # The FPR advantage dominates once device reads are expensive.
    for device in ("ssd-scaled", "hdd-scaled"):
        assert _total(rows, "rosetta", device) < _total(rows, "surf", device)

    # And the gap widens with device cost.
    ssd_gap = _total(rows, "surf", "ssd-scaled") - _total(
        rows, "rosetta", "ssd-scaled"
    )
    hdd_gap = _total(rows, "surf", "hdd-scaled") - _total(
        rows, "rosetta", "hdd-scaled"
    )
    assert hdd_gap > ssd_gap
