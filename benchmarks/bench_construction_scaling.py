"""§3.2 construction-complexity check: build cost scales ~linearly in n.

"The number of insertions to Bloom filters that we perform is equal to the
size of a binary trie containing the keys, which is upper bounded by
n · L" — i.e. construction is near-linear in the key count.  This bench
builds Rosetta (and SuRF, whose trie build is also linear) at increasing
key counts and asserts the growth stays clearly sub-quadratic.
"""

import time

from repro.bench.factories import make_factory
from repro.bench.report import emit
from repro.workloads.keygen import generate_dataset

_SIZES = (4_000, 8_000, 16_000, 32_000)


def _build_time(name: str, num_keys: int) -> float:
    dataset = generate_dataset(num_keys, 64, seed=411)
    keys = [int(k) for k in dataset.keys]
    factory = make_factory(name, 64, 18, max_range=64)
    start = time.perf_counter()
    factory.build(keys)
    return time.perf_counter() - start


def test_construction_scales_linearly(benchmark):
    def run():
        rows = []
        for name in ("rosetta", "surf"):
            times = [_build_time(name, n) for n in _SIZES]
            for n, seconds in zip(_SIZES, times):
                rows.append((name, n, seconds, seconds * 1e6 / n))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("§3.2 — construction cost vs key count",
         ("filter", "keys", "build_s", "us_per_key"), rows)

    for name in ("rosetta", "surf"):
        series = [(r[1], r[2]) for r in rows if r[0] == name]
        n_small, t_small = series[0]
        n_large, t_large = series[-1]
        growth = t_large / max(t_small, 1e-9)
        size_ratio = n_large / n_small  # 8x
        # Linear would be ~8x; quadratic ~64x. Allow generous slack for
        # constant overheads but reject super-linear blowup.
        assert growth < size_ratio * 3, (
            f"{name} construction grew {growth:.1f}x over a "
            f"{size_ratio:.0f}x size increase"
        )

    # Per-key cost stays the same order of magnitude across sizes.
    for name in ("rosetta", "surf"):
        per_key = [r[3] for r in rows if r[0] == name]
        assert max(per_key) < 10 * max(min(per_key), 1e-9)
