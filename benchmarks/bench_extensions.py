"""Extension benchmarks beyond the paper's figures.

Quantifies the paper's qualitative side-claims and our extensions:

* **Two filters per run** (§1): splitting a budget between a point Bloom
  filter and a SuRF versus Rosetta serving both query types whole;
* **Monkey budgets** ([24], cited in §1): optimal vs uniform cross-run
  filter-memory allocation;
* **Tiered compaction**: write savings vs the extra runs every query (and
  filter) must cover;
* **Correlation sensitivity**: FPR as the query offset θ grows (Fig. 5(B)
  fixes θ=1; here we sweep it).
"""

from repro.bench.experiments import (
    extension_correlation_offsets,
    extension_monkey,
    extension_tiered_vs_leveled,
    extension_two_filters,
)
from repro.bench.report import emit


def test_two_filters_vs_rosetta(benchmark, scale):
    """Rosetta matches the combined filter on both query types at equal
    memory — without paying for two structures."""
    _, rows = benchmark.pedantic(
        extension_two_filters, args=(scale,), rounds=1, iterations=1
    )
    emit("Extension — one filter vs two filters per run (22 bits/key)",
         ("filter", "point_fpr", "range16_fpr", "bits_per_key"), rows)
    cells = {r[0]: r for r in rows}
    assert cells["rosetta"][1] <= cells["bloom+surf"][1] + 0.02
    assert cells["rosetta"][2] <= cells["bloom+surf"][2] + 0.02


def test_monkey_allocation(benchmark):
    """Monkey-style budgets beat uniform whenever run sizes are skewed."""
    _, rows = benchmark.pedantic(
        extension_monkey, rounds=1, iterations=1
    )
    emit("Extension — Monkey vs uniform filter-memory allocation",
         ("run layout", "fp-I/O improvement (x)"), rows)
    improvements = dict(rows)
    assert improvements["balanced (4 equal runs)"] == 1.0
    assert improvements["leveled (ratio 10)"] > 1.5


def test_tiered_vs_leveled(benchmark, scale):
    """Tiered compaction writes less but leaves more runs to filter."""
    _, rows = benchmark.pedantic(
        extension_tiered_vs_leveled, args=(scale,), rounds=1, iterations=1
    )
    emit("Extension — tiered vs leveled compaction",
         ("style", "compaction_bytes_written", "live_runs"), rows)
    cells = {r[0]: r for r in rows}
    assert cells["tiered"][1] <= cells["leveled"][1]  # write savings
    assert cells["tiered"][2] >= cells["leveled"][2]  # more runs to probe


def test_correlation_theta_sweep(benchmark, scale):
    """FPR vs correlation offset θ: SuRF recovers only as θ outgrows the
    culled-prefix granularity; Rosetta is flat (prefix-exact)."""
    _, rows = benchmark.pedantic(
        extension_correlation_offsets, args=(scale,), rounds=1, iterations=1
    )
    emit("Extension — correlation offset sweep (range 16, 22 bits/key)",
         ("theta", "rosetta_fpr", "surf_fpr"), rows)
    for theta, rosetta_fpr, surf_fpr in rows:
        assert rosetta_fpr <= surf_fpr + 0.02
    # SuRF is near-1 at theta=1 (the Fig. 5(B) regime).
    assert rows[0][2] > 0.5
