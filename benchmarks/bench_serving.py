"""Mixed YCSB-style traffic: sharded batch front-end vs. unbatched loop.

Drives identical seeded per-client op streams (point reads on present and
absent keys, 32-key batch reads, short scans, updates) from N client
threads through three configurations holding the same data:

* ``direct-db-loop`` — one ``DB``, every client calls the scalar read
  path directly with no front-end at all; a batch-read op degenerates to
  a per-key ``get`` loop (the pre-serving way an application would issue
  it); reference point for the raw store;
* ``single-shard-unbatched`` — the serving front-end with its features
  ablated: one shard, coalescing window 0, ``max_batch_requests=1``, and
  batch-read ops issued as a per-key ``get`` loop.  This is the
  like-for-like baseline for the acceptance speedup (same architecture,
  batching + sharding off);
* ``sharded-batched`` — a :class:`~repro.lsm.serving.ShardedServer`
  (key-range shards, per-shard worker threads) whose front-end coalesces
  concurrent point lookups arriving within the coalescing window into
  one ``DB.multi_get`` per shard, and splits scans at shard boundaries.

Per configuration: aggregate requests/second and the client-observed
per-op latency distribution (p50/p90/p99).  The serving run also reports
the coalescing observables (batches, coalesced batches, keys per batch,
queue-depth high-water) and the shard DBs' ``multi_point_queries`` so
the CI smoke check can assert batching actually fired.  Final states are
cross-checked byte-for-byte between the two configurations.

Usage::

    PYTHONPATH=src python benchmarks/bench_serving.py            # full
    PYTHONPATH=src python benchmarks/bench_serving.py --smoke --check

Writes ``BENCH_serving.json`` at the repo root.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import tempfile
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.factories import make_factory  # noqa: E402
from repro.lsm.db import DB  # noqa: E402
from repro.lsm.options import DBOptions  # noqa: E402
from repro.lsm.serving import ServingOptions, ShardedServer  # noqa: E402

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_serving.json"

KEY_BITS = 24
BATCH_READ_KEYS = 32
SCAN_SPAN_KEYS = 24


def _db_options() -> DBOptions:
    return DBOptions(
        key_bits=KEY_BITS,
        memtable_size_bytes=64 << 10,
        sst_size_bytes=128 << 10,
        block_size_bytes=2048,
        max_bytes_for_level_base=512 << 10,
        filter_factory=make_factory("rosetta", KEY_BITS, 18, max_range=64),
    )


def _make_ops(
    clients: int,
    ops_per_client: int,
    present: list[int],
    absent: list[int],
    seed: int,
) -> list[list[tuple]]:
    """Identical seeded op streams for both configurations.

    Update keys are sliced per client so the final store state is
    deterministic regardless of cross-client interleaving.
    """
    domain = 1 << KEY_BITS
    span = (domain * SCAN_SPAN_KEYS) // max(1, len(present))
    streams: list[list[tuple]] = []
    slice_width = len(present) // max(1, clients)
    for client in range(clients):
        rng = random.Random(seed * 7919 + client)
        own = present[client * slice_width : (client + 1) * slice_width]
        ops: list[tuple] = []
        for _ in range(ops_per_client):
            roll = rng.random()
            if roll < 0.40:
                pool = present if rng.random() < 0.75 else absent
                ops.append(("read", rng.choice(pool)))
            elif roll < 0.82:
                keys = [
                    rng.choice(present if rng.random() < 0.75 else absent)
                    for _ in range(BATCH_READ_KEYS)
                ]
                ops.append(("batch-read", keys))
            elif roll < 0.90:
                low = rng.randrange(domain - span)
                ops.append(("scan", low, low + span))
            else:
                key = rng.choice(own) if own else rng.randrange(domain)
                ops.append(("update", key, b"upd-%d-%d" % (client, key)))
        streams.append(ops)
    return streams


def _drive(execute, streams: list[list[tuple]]) -> dict:
    """Run every client stream on its own thread; aggregate qps + tails."""
    barrier = threading.Barrier(len(streams) + 1)
    latencies: list[list[int]] = [[] for _ in streams]
    errors: list[BaseException] = []

    def client(index: int) -> None:
        mine = latencies[index]
        try:
            barrier.wait()
            for op in streams[index]:
                before = time.perf_counter_ns()
                execute(op)
                mine.append(time.perf_counter_ns() - before)
        except BaseException as exc:  # noqa: BLE001 - reported below
            errors.append(exc)
            barrier.abort()

    threads = [
        threading.Thread(target=client, args=(i,), daemon=True)
        for i in range(len(streams))
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter_ns()
    for thread in threads:
        thread.join()
    elapsed_ns = time.perf_counter_ns() - started
    if errors:
        raise errors[0]
    merged = sorted(ns for per_client in latencies for ns in per_client)
    total_ops = len(merged)

    def pct(fraction: float) -> int:
        if not merged:
            return 0
        return merged[min(len(merged) - 1, int(fraction * len(merged)))]

    return {
        "ops": total_ops,
        "elapsed_seconds": round(elapsed_ns / 1e9, 4),
        "requests_per_second": round(total_ops / (elapsed_ns / 1e9), 1),
        "op_latency_ns": {
            "p50": pct(0.50),
            "p90": pct(0.90),
            "p99": pct(0.99),
            "max": merged[-1] if merged else 0,
        },
    }


def run_unbatched(
    workdir: str, pairs: list[tuple[int, bytes]], streams
) -> tuple[dict, list[tuple[int, bytes]]]:
    db = DB(str(Path(workdir) / "single"), _db_options())
    for key, value in pairs:
        db.put(key, value)
    db.flush()
    db.compact()

    def execute(op) -> None:
        if op[0] == "read":
            db.get(op[1])
        elif op[0] == "batch-read":
            for key in op[1]:  # the unbatched loop the front-end replaces
                db.get(key)
        elif op[0] == "scan":
            db.range_query(op[1], op[2])
        else:
            db.put(op[1], op[2])

    record = _drive(execute, streams)
    record["label"] = "direct-db-loop"
    final = db.range_query(0, (1 << KEY_BITS) - 1)
    db.close()
    return record, final


def run_single_server(
    workdir: str, pairs: list[tuple[int, bytes]], streams
) -> tuple[dict, list[tuple[int, bytes]]]:
    """The front-end with its features off: 1 shard, no coalescing."""
    server = ShardedServer(
        str(Path(workdir) / "single-server"),
        _db_options(),
        ServingOptions(
            num_shards=1, coalescing_window_s=0.0, max_batch_requests=1
        ),
    )
    server.put_batch(pairs)
    server.flush()
    server.compact()

    def execute(op) -> None:
        if op[0] == "read":
            server.get(op[1])
        elif op[0] == "batch-read":
            for key in op[1]:  # the unbatched loop the front-end replaces
                server.get(key)
        elif op[0] == "scan":
            server.range_query(op[1], op[2])
        else:
            server.put(op[1], op[2])

    record = _drive(execute, streams)
    record["label"] = "single-shard-unbatched"
    final = server.range_query(0, (1 << KEY_BITS) - 1)
    server.close()
    return record, final


def run_sharded(
    workdir: str,
    pairs: list[tuple[int, bytes]],
    streams,
    num_shards: int,
    window_s: float,
) -> tuple[dict, list[tuple[int, bytes]]]:
    server = ShardedServer(
        str(Path(workdir) / "sharded"),
        _db_options(),
        ServingOptions(
            num_shards=num_shards, coalescing_window_s=window_s
        ),
    )
    server.put_batch(pairs)
    server.flush()
    server.compact()

    def execute(op) -> None:
        if op[0] == "read":
            server.get(op[1])
        elif op[0] == "batch-read":
            server.multi_get(op[1])
        elif op[0] == "scan":
            server.range_query(op[1], op[2])
        else:
            server.put(op[1], op[2])

    record = _drive(execute, streams)
    stats = server.stats()
    totals = server.perf_totals()
    record.update(
        label="sharded-batched",
        num_shards=num_shards,
        coalescing_window_s=window_s,
        batches=stats.batches,
        coalesced_batches=stats.coalesced_batches,
        coalesced_requests=stats.coalesced_requests,
        batched_keys=stats.batched_keys,
        keys_per_batch=round(stats.batched_keys / max(1, stats.batches), 2),
        max_batch_requests=stats.max_batch_requests,
        max_queue_depth=stats.max_queue_depth,
        queue_waits=stats.queue_waits,
        multi_point_queries=totals.multi_point_queries,
        filter_batch_probes=totals.filter_batch_probes,
    )
    final = server.range_query(0, (1 << KEY_BITS) - 1)
    server.close()
    return record, final


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--clients", type=int, default=8,
        help="client threads per configuration (default: 8)",
    )
    parser.add_argument(
        "--ops", type=int, default=1500,
        help="ops per client (default: 1500)",
    )
    parser.add_argument(
        "--keys", type=int, default=16000,
        help="preloaded key count (default: 16000)",
    )
    parser.add_argument(
        "--shards", type=int, default=8,
        help="serving shards (default: 8)",
    )
    parser.add_argument(
        "--window-us", type=float, default=300.0,
        help="coalescing window in microseconds (default: 300)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI smoke run: 150 ops/client over 3000 keys",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="fail unless batched coalescing fired (and, in full runs, "
        "the sharded front-end clears 2x the unbatched qps)",
    )
    parser.add_argument("--seed", type=int, default=0xA11CE)
    args = parser.parse_args(argv)
    ops_per_client = 150 if args.smoke else args.ops
    num_keys = 3000 if args.smoke else args.keys

    rng = random.Random(args.seed)
    domain = 1 << KEY_BITS
    present = sorted(rng.sample(range(domain), num_keys))
    resident = set(present)
    absent: list[int] = []
    while len(absent) < num_keys // 4:
        key = rng.randrange(domain)
        if key not in resident:
            absent.append(key)
    pairs = [(key, b"serving-%d" % key) for key in present]
    streams = _make_ops(
        args.clients, ops_per_client, present, absent, args.seed
    )

    with tempfile.TemporaryDirectory(prefix="serving-") as workdir:
        direct, final_direct = run_unbatched(workdir, pairs, streams)
        single, final_single = run_single_server(workdir, pairs, streams)
        sharded, final_sharded = run_sharded(
            workdir, pairs, streams, args.shards, args.window_us / 1e6
        )

    answers_match = final_direct == final_sharded == final_single
    speedup = round(
        sharded["requests_per_second"]
        / max(1e-9, single["requests_per_second"]),
        2,
    )
    speedup_vs_direct = round(
        sharded["requests_per_second"]
        / max(1e-9, direct["requests_per_second"]),
        2,
    )
    for record in (direct, single, sharded):
        print(
            f"{record['label']:22s}: "
            f"{record['requests_per_second']:10.1f} req/s, "
            f"p50 {record['op_latency_ns']['p50'] / 1e3:8.1f} us, "
            f"p99 {record['op_latency_ns']['p99'] / 1e3:8.1f} us"
        )
    print(
        f"speedup {speedup}x vs single-shard-unbatched "
        f"({speedup_vs_direct}x vs direct-db-loop); "
        f"{sharded['coalesced_batches']}/{sharded['batches']} batches "
        f"coalesced, {sharded['keys_per_batch']} keys/batch "
        f"(answers match: {answers_match})"
    )

    result = {
        "bench": "serving",
        "clients": args.clients,
        "ops_per_client": ops_per_client,
        "num_keys": num_keys,
        "speedup": speedup,
        "speedup_vs_direct_db": speedup_vs_direct,
        "answers_match": answers_match,
        "configs": [direct, single, sharded],
    }
    RESULT_PATH.write_text(json.dumps(result, indent=2) + "\n")
    print(f"-> {RESULT_PATH.name}")

    if not answers_match:
        print("CHECK FAILED: final states diverged", file=sys.stderr)
        return 1
    if args.check:
        if sharded["coalesced_batches"] == 0:
            print(
                "CHECK FAILED: batched coalescing never fired (no batch "
                "served >= 2 concurrent point-bearing requests)",
                file=sys.stderr,
            )
            return 1
        if sharded["multi_point_queries"] == 0:
            print(
                "CHECK FAILED: no shard ever saw a batched multi_get",
                file=sys.stderr,
            )
            return 1
        if not args.smoke and speedup < 2.0:
            print(
                f"CHECK FAILED: sharded-batched speedup {speedup}x below "
                f"the 2x acceptance floor",
                file=sys.stderr,
            )
            return 1
        print("check passed: coalescing fired through the batched path")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
