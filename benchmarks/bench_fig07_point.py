"""Fig. 7 — point-query FPR vs bits/key for every filter.

The paper's claim: Rosetta processes worst-case point queries as well as a
point-query-optimized store (its last level indexes full keys, i.e. it *is*
a Bloom filter for points), while SuRF-Hash/SuRF-Real and Prefix Bloom
filters degrade badly — forcing stores that use them to either keep two
filters per run or lose point performance.
"""

from repro.bench.experiments import fig7_point_queries
from repro.bench.factories import make_factory
from repro.bench.report import emit
from repro.workloads.keygen import generate_dataset
from repro.workloads.ycsb import WorkloadBuilder


def _fpr_by_filter(rows, bits_per_key):
    return {r[0]: r[3] for r in rows if r[1] == bits_per_key}


def test_fig7_regenerate(benchmark, scale):
    headers, rows = benchmark.pedantic(
        fig7_point_queries, args=(scale,), rounds=1, iterations=1
    )
    emit("Fig. 7 — point-query FPR vs bits/key", headers, rows)

    # Rosetta matches the plain Bloom filter at every budget.
    for bits_per_key in (10, 14, 18):
        fpr = _fpr_by_filter(rows, bits_per_key)
        assert fpr["rosetta"] <= fpr["bloom"] + 0.02

    # SuRF variants degrade relative to Rosetta at tight budgets.
    fpr = _fpr_by_filter(rows, 10)
    assert fpr["surf-hash"] >= fpr["rosetta"]
    assert fpr["surf-real"] >= fpr["rosetta"]

    # More memory monotonically helps Rosetta.
    rosetta = sorted((r[1], r[3]) for r in rows if r[0] == "rosetta")
    assert rosetta[-1][1] <= rosetta[0][1]


def test_benchmark_rosetta_point_probe(benchmark, scale):
    dataset = generate_dataset(scale.num_keys, 64, seed=171)
    keys = [int(k) for k in dataset.keys]
    filt = make_factory("rosetta", 64, 14, max_range=1,
                        range_size_histogram={1: 1}).build(keys)
    probe = WorkloadBuilder(keys, 64, seed=172).empty_point_queries(1).queries[0]
    benchmark(filt.may_contain, probe.low)


def test_benchmark_bloom_point_probe(benchmark, scale):
    dataset = generate_dataset(scale.num_keys, 64, seed=171)
    keys = [int(k) for k in dataset.keys]
    filt = make_factory("bloom", 64, 14).build(keys)
    probe = WorkloadBuilder(keys, 64, seed=172).empty_point_queries(1).queries[0]
    benchmark(filt.may_contain, probe.low)
