"""Throughput of the batched LSM point-lookup path vs a per-key get loop.

The tentpole number for ``DB.multi_get``: resolve a 10k-key batch against a
multi-run tree (several L0 SSTs behind a Rosetta per run) with

* the scalar reference (one ``db.get`` per key: per-key QueryContext,
  per-key stats snapshot/diff, one scalar filter probe per surviving run),
* the batched path (one memtable pass, one ``may_contain_batch`` per run
  for that run's whole surviving key group, one aggregated context).

The headline regime is filter-bound: mostly-absent keys, where almost every
run answers from its Bloom gather and no block is read.  A mixed batch
(half present) is measured alongside for the value-fetch-bound regime.

Results (throughputs, speedups, verdict agreement) go to
``BENCH_multi_get.json`` at the repo root.  The batched path must clear a
3x speedup over the scalar loop on the mostly-absent batch.

Runs standalone (``python benchmarks/bench_multi_get.py [--smoke]``) and
as a pytest test.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import tempfile
import time
from pathlib import Path

from repro.bench.factories import make_factory
from repro.lsm.db import DB
from repro.lsm.options import DBOptions

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_multi_get.json"

SPEEDUP_FLOOR = 3.0


def _build_db(
    directory: str,
    num_keys: int,
    num_runs: int,
    key_bits: int,
    bits_per_key: float,
    seed: int,
) -> tuple[DB, list[int]]:
    """A tree of ``num_runs`` overlapping L0 runs, compaction disabled."""
    options = DBOptions(
        key_bits=key_bits,
        memtable_size_bytes=64 << 20,
        use_wal=False,
        level0_file_num_compaction_trigger=num_runs + 64,
    )
    options.filter_factory = make_factory(
        "rosetta", key_bits, bits_per_key, max_range=64
    )
    db = DB(directory, options)
    rng = random.Random(seed)
    keys = rng.sample(range(1 << (key_bits - 2)), num_keys)
    per_run = num_keys // num_runs
    for r in range(num_runs):
        for key in keys[r * per_run : (r + 1) * per_run]:
            db.put(key, b"value-%d" % key)
        db.flush()
    return db, keys


def run_benchmark(
    num_keys: int = 40_000,
    num_queries: int = 10_000,
    num_runs: int = 6,
    key_bits: int = 32,
    bits_per_key: float = 24.0,
    seed: int = 613,
) -> dict:
    """Build the tree, run both paths on two batch mixes, return the record."""
    rng = random.Random(seed + 1)
    with tempfile.TemporaryDirectory() as directory:
        db, keys = _build_db(
            directory, num_keys, num_runs, key_bits, bits_per_key, seed
        )
        present = set(keys)
        absent = []
        while len(absent) < num_queries:
            key = rng.randrange(1 << key_bits)
            if key not in present:
                absent.append(key)
        mixed = rng.sample(keys, num_queries // 2) + absent[: num_queries // 2]
        rng.shuffle(mixed)

        record = {
            "num_keys": num_keys,
            "num_queries": num_queries,
            "num_runs": num_runs,
            "bits_per_key": bits_per_key,
            "batches": {},
        }
        for label, batch in (("absent", absent), ("mixed", mixed)):
            # Warm the filter dictionary and block cache so both timed
            # passes measure probe work, not first-touch deserialization.
            db.multi_get(batch[:64])

            start = time.perf_counter()
            scalar = {key: db.get(key) for key in batch}
            scalar_seconds = time.perf_counter() - start

            before = db.stats.snapshot()
            start = time.perf_counter()
            batched = db.multi_get(batch)
            batch_seconds = time.perf_counter() - start
            delta = db.stats.diff(before)

            record["batches"][label] = {
                "results_found": sum(v is not None for v in batched.values()),
                "answers_agree": scalar == batched,
                "scalar": {
                    "seconds": scalar_seconds,
                    "keys_per_second": len(batch) / scalar_seconds,
                },
                "batched": {
                    "seconds": batch_seconds,
                    "keys_per_second": len(batch) / batch_seconds,
                    "filter_batch_probes": delta.filter_batch_probes,
                    "speedup_vs_scalar": scalar_seconds / batch_seconds,
                },
            }
        db.close()
    return record


def _emit(record: dict) -> None:
    RESULT_PATH.write_text(json.dumps(record, indent=2) + "\n")
    lines = [
        f"{record['num_queries']} keys per batch, {record['num_runs']} runs, "
        f"{record['num_keys']} resident keys"
    ]
    for label, batch in record["batches"].items():
        lines.append(
            f"  {label:>6}: scalar {batch['scalar']['keys_per_second']:>9.0f} k/s, "
            f"batched {batch['batched']['keys_per_second']:>9.0f} k/s "
            f"({batch['batched']['speedup_vs_scalar']:.1f}x), "
            f"agree: {batch['answers_agree']}"
        )
    lines.append(f"  -> {RESULT_PATH}")
    print("\n".join(lines))


def test_multi_get_speedup():
    """The acceptance gate: >=3x on the absent batch, results identical."""
    record = run_benchmark()
    _emit(record)
    for batch in record["batches"].values():
        assert batch["answers_agree"]
    assert record["batches"]["absent"]["batched"]["speedup_vs_scalar"] >= SPEEDUP_FLOOR


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small sizes for CI: verifies agreement, skips the 3x gate",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        record = run_benchmark(num_keys=4000, num_queries=500, num_runs=4)
    else:
        record = run_benchmark()
    _emit(record)
    if not all(b["answers_agree"] for b in record["batches"].values()):
        print("FAIL: batched results disagree with per-key gets", file=sys.stderr)
        return 1
    absent = record["batches"]["absent"]["batched"]["speedup_vs_scalar"]
    if not args.smoke and absent < SPEEDUP_FLOOR:
        print(f"FAIL: absent-batch speedup below {SPEEDUP_FLOOR}x", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
