"""Fig. 4 — bits-allocation mechanisms: FPR and probe cost vs range size.

Paper claims regenerated here:

* single-level has the best FPR but probe cost linear in the range size,
  diverging from the multi-level mechanisms from range ~32;
* the variable-level filter overtakes the original (Eq. 3) mechanism's FPR
  for larger ranges while keeping probe cost moderate;
* the §2.4 hybrid rule picks single-level for small-range workloads and
  variable-level otherwise.
"""

from repro.bench.experiments import fig4_allocation
from repro.bench.factories import make_factory
from repro.bench.report import emit
from repro.core.allocation import allocate
from repro.workloads.keygen import generate_dataset
from repro.workloads.ycsb import WorkloadBuilder


def test_fig4_regenerate(benchmark, scale):
    """Regenerate the Fig. 4 table and check the paper's orderings."""
    headers, rows = benchmark.pedantic(
        fig4_allocation, args=(scale,), rounds=1, iterations=1
    )
    emit("Fig. 4 — allocation mechanisms (FPR / probe cost vs range size)",
         headers, rows)
    by_cell = {(r[0], r[1]): r for r in rows}

    # Single-level probe count grows linearly; others logarithmically.
    for range_size in (128, 512):
        assert (
            by_cell[(range_size, "single")][3]
            > 2 * by_cell[(range_size, "optimized")][3]
        )
    # Single-level has the best FPR at small ranges (averaged over the
    # small-range cells; individual cells are noisy at bench scale).
    small_single = sum(by_cell[(r, "single")][2] for r in (2, 8)) / 2
    small_optimized = sum(by_cell[(r, "optimized")][2] for r in (2, 8)) / 2
    assert small_single <= small_optimized + 0.03


def test_hybrid_policy_turning_point(benchmark):
    """§2.4: small ranges -> single; large ranges -> variable."""

    def resolve():
        small = allocate(
            "hybrid", num_keys=1000, total_bits=10_000, max_height=6,
            range_size_histogram={8: 1},
        )
        large = allocate(
            "hybrid", num_keys=1000, total_bits=10_000, max_height=6,
            range_size_histogram={64: 1},
        )
        return small, large

    small, large = benchmark.pedantic(resolve, rounds=1, iterations=1)
    assert small.strategy == "single"
    assert large.strategy == "variable"


def test_benchmark_range_probe_optimized(benchmark, scale):
    """Timing anchor: one size-32 empty-range probe, optimized allocation."""
    dataset = generate_dataset(scale.num_keys, 64, seed=141)
    keys = [int(k) for k in dataset.keys]
    filt = make_factory("rosetta-optimized", 64, 10, max_range=32).build(keys)
    query = WorkloadBuilder(keys, 64, seed=142).empty_range_queries(1, 32).queries[0]
    benchmark(filt.may_contain_range, query.low, query.high)


def test_benchmark_range_probe_single(benchmark, scale):
    """Timing anchor: the same probe against the single-level filter."""
    dataset = generate_dataset(scale.num_keys, 64, seed=141)
    keys = [int(k) for k in dataset.keys]
    filt = make_factory("rosetta-single", 64, 10, max_range=32).build(keys)
    query = WorkloadBuilder(keys, 64, seed=142).empty_range_queries(1, 32).queries[0]
    benchmark(filt.may_contain_range, query.low, query.high)
