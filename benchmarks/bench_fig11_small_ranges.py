"""Fig. 11 — the FPR-memory tradeoff at small range sizes.

Fig. 8 fixes range 64 (Rosetta's worst case); Fig. 11 repeats the sweep at
smaller ranges and finds Rosetta "nearly always better".  We sweep ranges 8
and 16 across memory budgets and assert Rosetta's dominance.
"""

from repro.bench.experiments import Scale, decision_map, fig8_tradeoff
from repro.bench.report import emit

_BPK_SWEEP = (10, 18, 26)


def _small_scale(scale: Scale) -> Scale:
    return Scale(num_keys=max(2000, scale.num_keys // 4),
                 num_queries=max(60, scale.num_queries // 3))


def test_fig11_regenerate(benchmark, scale):
    def sweep_small_ranges():
        all_rows = []
        for range_size in (8, 16):
            _, rows = fig8_tradeoff(
                _small_scale(scale), range_size=range_size,
                bits_per_key_sweep=_BPK_SWEEP,
            )
            all_rows.extend(rows)
        return all_rows

    rows = benchmark.pedantic(sweep_small_ranges, rounds=1, iterations=1)
    headers = ("filter", "workload", "range_size", "bits_per_key",
               "fpr", "end_to_end_s", "io_s")
    for range_size in (8, 16):
        emit(f"Fig. 11 — range size {range_size}", headers,
             [r for r in rows if r[2] == range_size])

    # Rosetta is "nearly always better" on FPR.
    cells = decision_map(rows)
    fpr_wins = sum(1 for c in cells if c[4] == "rosetta")
    assert fpr_wins >= len(cells) - 1

    # At >= 18 bits/key and short ranges, Rosetta's FPR is tiny.
    for row in rows:
        if row[0] == "rosetta" and row[3] >= 18:
            assert row[4] < 0.05

    # Within each cell the lower-FPR filter pays no more I/O.
    grouped = {}
    for row in rows:
        grouped.setdefault((row[2], row[3]), {})[row[0]] = row
    for cell in grouped.values():
        if cell["rosetta"][4] < cell["surf"][4]:
            assert cell["rosetta"][6] <= cell["surf"][6] * 1.05
