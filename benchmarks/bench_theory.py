"""§3 theory validation and design-choice ablations (DESIGN.md §5).

Beyond the figures, the paper makes analytical claims and design choices
that deserve measurement:

* the 1.44-approximation memory bound and the Goswami lower bound (§3.1);
* the Catalan-number probe-cost model (§3.2);
* level pruning by the maximum range size (§3.1, "we may disregard some
  levels");
* construction with unique-prefix deduplication (§3.2);
* §2.2.1 effective-range tightening;
* the §4 deserialized-filter dictionary.
"""

import random

import pytest

from repro.bench.experiments import theory_validation
from repro.bench.report import emit
from repro.core import analysis
from repro.core.bloom import fpr_for_bits
from repro.core.rosetta import Rosetta
from repro.workloads.keygen import generate_dataset
from repro.workloads.ycsb import WorkloadBuilder


@pytest.fixture(scope="module")
def keys(scale):
    dataset = generate_dataset(scale.num_keys, 64, seed=201)
    return [int(k) for k in dataset.keys]


def test_theory_table(benchmark, scale):
    headers, rows = benchmark.pedantic(
        theory_validation, args=(scale,), rounds=1, iterations=1
    )
    emit("§3 — theory vs measurement", headers, rows)
    values = dict(rows)
    assert values["actual_memory_bits"] <= values["rosetta_1.44_bound_bits"] * 1.4
    assert values["measured_probes_per_query"] <= values[
        "expected_probes_upper_bound"
    ]


def test_catalan_probe_model(benchmark, keys, scale):
    """Measured probes per empty range vs the §3.2 Catalan expectation."""

    def measure():
        filt = Rosetta.build(keys, key_bits=64, bits_per_key=12, max_range=64,
                             strategy="uniform")
        level_fprs = [
            fpr_for_bits(len(keys), b) for b in filt.memory_breakdown()
        ]
        worst = min(max(level_fprs), 0.49)
        builder = WorkloadBuilder(keys, 64, seed=202)
        workload = builder.empty_range_queries(scale.num_queries, 32)
        filt.stats.reset()
        for query in workload:
            filt.may_contain_range(query.low, query.high)
        return filt.stats.bloom_probes / len(workload), worst

    measured, worst = benchmark.pedantic(measure, rounds=1, iterations=1)
    bound = analysis.expected_range_probe_cost(worst, 32)
    emit("§3.2 — probe-cost model", ("metric", "value"),
         [("measured_probes_per_query", measured),
          ("catalan_model_bound", bound)])
    assert measured <= bound * 1.5


def test_ablation_level_pruning(benchmark, keys, scale):
    """Keeping only log2(Rmax)+1 levels concentrates memory and wins FPR."""

    def run():
        builder = WorkloadBuilder(keys, 64, seed=203)
        workload = builder.empty_range_queries(scale.num_queries, 32)
        rows = []
        for max_range, label in (
            (64, "pruned (R=64)"), (1 << 16, "deep (R=65536)")
        ):
            filt = Rosetta.build(keys, key_bits=64, bits_per_key=18,
                                 max_range=max_range, strategy="equilibrium")
            positives = sum(
                filt.may_contain_range(q.low, q.high) for q in workload
            )
            rows.append((label, filt.num_levels, positives / len(workload)))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("Ablation — level pruning by max range",
         ("config", "levels", "fpr"), rows)
    assert rows[0][2] <= rows[1][2] + 0.02  # pruning never hurts


def test_ablation_construction_dedup(benchmark, keys):
    """§3.2: sorted construction inserts only unique prefixes (<= n * L)."""
    import numpy as np

    def count():
        arr = np.asarray(sorted(set(keys)), dtype=np.uint64)
        total_unique = sum(
            len(np.unique(arr >> np.uint64(height))) for height in range(7)
        )
        return total_unique, len(arr) * 7

    total_unique, naive = benchmark.pedantic(count, rounds=1, iterations=1)
    emit("Ablation — unique-prefix construction",
         ("metric", "insertions"),
         [("naive (n x levels)", naive), ("deduplicated", total_unique)])
    assert total_unique <= naive


def test_ablation_range_tightening(benchmark, keys):
    """§2.2.1: tightening narrows the I/O window on positive ranges."""

    def run():
        filt = Rosetta.build(keys, key_bits=64, bits_per_key=20, max_range=64,
                             strategy="equilibrium")
        rng = random.Random(204)
        sample = rng.sample(keys, min(200, len(keys)))
        original = tightened = 0
        for key in sample:
            low, high = max(0, key - 30), key + 30
            result = filt.tightened_range(low, high)
            assert result is not None  # contains a real key
            original += high - low + 1
            tightened += result[1] - result[0] + 1
        return original / len(sample), tightened / len(sample)

    original, tightened = benchmark.pedantic(run, rounds=1, iterations=1)
    reduction = 1 - tightened / original
    emit("Ablation — range tightening",
         ("metric", "value"),
         [("mean original width", original),
          ("mean tightened width", tightened),
          ("I/O window reduction", reduction)])
    assert reduction > 0.5  # sparse keys: most of the window is provably empty


def test_ablation_filter_dictionary(benchmark, tmp_path, scale):
    """§4: the dictionary amortizes deserialization to once per run."""
    from repro.bench.factories import make_factory
    from repro.lsm.db import DB
    from repro.lsm.options import DBOptions

    def run():
        rows = []
        for enabled in (True, False):
            options = DBOptions(
                key_bits=64, memtable_size_bytes=32 << 10,
                sst_size_bytes=128 << 10, block_size_bytes=1024,
                use_filter_dictionary=enabled,
                filter_factory=make_factory("rosetta", 64, 16, max_range=64),
            )
            db = DB(str(tmp_path / f"dict-{enabled}"), options)
            for i in range(3000):
                db.put(i * 977, bytes(16))
            db.flush()
            for probe in range(1, 400):
                db.get(probe * 977 + 13)
            rows.append(
                (f"dictionary={'on' if enabled else 'off'}",
                 db.stats.deserialize_ns / 1e6)
            )
            db.close()
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("Ablation — §4 filter dictionary", ("config", "deserialize_ms"), rows)
    assert rows[0][1] < rows[1][1]


def test_benchmark_tightened_vs_plain(benchmark, keys):
    """Timing anchor: tightening costs extra probes per positive query."""
    filt = Rosetta.build(keys, key_bits=64, bits_per_key=20, max_range=64)
    key = keys[len(keys) // 2]
    benchmark(filt.tightened_range, max(0, key - 30), key + 30)
