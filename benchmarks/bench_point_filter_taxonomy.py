"""The §1 point-filter taxonomy, measured.

The paper's introduction positions Rosetta against the hash-based point
filters — Bloom [10], Cuckoo [37], Quotient [9] — none of which can filter
ranges.  This bench measures all of them (plus Rosetta's leaf level, which
*is* its point filter) on the same keys, workload, and memory budget:
FPR, probe latency, construction latency, and actual memory.

The claims checked:

* every hash-based filter achieves a low, memory-bound point FPR;
* Rosetta's point behaviour is exactly Bloom-filter behaviour (§2.2.2);
* none of the point filters can reject an empty *range* — only Rosetta
  (and SuRF) can, which is the gap the paper exists to fill.
"""

from repro.bench.factories import make_factory
from repro.bench.harness import measure_filter
from repro.bench.report import emit
from repro.workloads.keygen import generate_dataset
from repro.workloads.ycsb import WorkloadBuilder

_POINT_FILTERS = ("bloom", "cuckoo", "quotient", "rosetta")
_BITS_PER_KEY = 14


def test_point_filter_taxonomy(benchmark, scale):
    def run():
        dataset = generate_dataset(scale.num_keys, 64, seed=401)
        keys = [int(k) for k in dataset.keys]
        builder = WorkloadBuilder(keys, 64, seed=402)
        points = builder.empty_point_queries(scale.num_queries * 3)
        rows = []
        for name in _POINT_FILTERS:
            factory = make_factory(
                name, 64, _BITS_PER_KEY, max_range=1,
                range_size_histogram={1: 1},
            )
            m = measure_filter(factory.build, keys, points, name=name)
            rows.append(
                (
                    name,
                    m.fpr,
                    m.bits_per_key,
                    m.probe_micros_per_query,
                    m.construction_seconds,
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        f"§1 taxonomy — point filters at {_BITS_PER_KEY} bits/key",
        ("filter", "point_fpr", "bits_per_key", "probe_us", "construction_s"),
        rows,
    )
    cells = {r[0]: r for r in rows}
    # Every hash-based filter: low point FPR at this budget.
    for name in _POINT_FILTERS:
        assert cells[name][1] < 0.06, name
    # Rosetta (max_range=1 == single Bloom level) matches bloom exactly.
    assert cells["rosetta"][1] == cells["bloom"][1]


def test_point_filters_cannot_reject_ranges(benchmark, scale):
    """The motivating gap: point filters pass every multi-key range."""

    def run():
        dataset = generate_dataset(max(2000, scale.num_keys // 4), 64,
                                   seed=403)
        keys = [int(k) for k in dataset.keys]
        builder = WorkloadBuilder(keys, 64, seed=404)
        ranges = builder.empty_range_queries(scale.num_queries // 2, 16)
        rows = []
        for name in ("bloom", "cuckoo", "quotient", "rosetta"):
            factory = make_factory(
                name, 64, _BITS_PER_KEY, max_range=16,
                range_size_histogram={16: 1},
            )
            m = measure_filter(factory.build, keys, ranges, name=name)
            rows.append((name, m.fpr))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("§1 taxonomy — empty size-16 ranges against point filters",
         ("filter", "range_fpr"), rows)
    cells = dict(rows)
    for name in ("bloom", "cuckoo", "quotient"):
        assert cells[name] == 1.0, name  # structurally unable to reject
    assert cells["rosetta"] < 0.5  # the range filter actually filters
