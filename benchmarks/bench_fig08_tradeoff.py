"""Fig. 8 + Fig. 1 — the FPR-memory tradeoff and the positioning maps.

Sweeps bits/key at the paper's worst case for Rosetta (range 64) across
uniform, correlated, and skewed workloads (panels A-C, E-G, I-K), then
derives the decision maps (panels D, H, L) and the Fig. 1 positioning
summary: who wins each (range size x memory budget) cell.
"""

from repro.bench.experiments import Scale, decision_map, fig8_tradeoff
from repro.bench.report import emit

_BPK_SWEEP = (10, 18, 26)


def _small_scale(scale: Scale) -> Scale:
    return Scale(num_keys=max(2000, scale.num_keys // 4),
                 num_queries=max(60, scale.num_queries // 3))


def test_fig8_regenerate(benchmark, scale):
    """Panels A-L: sweeps for all three workloads + the decision maps."""

    def sweep_all():
        all_rows = []
        for workload in ("uniform", "correlated", "skewed"):
            _, rows = fig8_tradeoff(
                _small_scale(scale), workload=workload, range_size=64,
                bits_per_key_sweep=_BPK_SWEEP,
            )
            all_rows.extend(rows)
        return all_rows

    rows = benchmark.pedantic(sweep_all, rounds=1, iterations=1)
    headers = ("filter", "workload", "range_size", "bits_per_key",
               "fpr", "end_to_end_s", "io_s")
    for workload in ("uniform", "correlated", "skewed"):
        emit(f"Fig. 8 — {workload} workload, range 64", headers,
             [r for r in rows if r[1] == workload])

    # Rosetta converts memory into FPR on every workload.
    for workload in ("uniform", "correlated", "skewed"):
        fprs = {
            r[3]: r[4] for r in rows
            if r[0] == "rosetta" and r[1] == workload
        }
        assert fprs[max(_BPK_SWEEP)] <= fprs[min(_BPK_SWEEP)]

    # At 26 bits/key Rosetta's FPR beats SuRF's on every workload.
    for workload in ("uniform", "correlated", "skewed"):
        cells = {
            r[0]: r[4] for r in rows
            if r[1] == workload and r[3] == max(_BPK_SWEEP)
        }
        assert cells["rosetta"] <= cells["surf"] + 0.02

    # Decision maps (panels D, H, L).
    cells = decision_map(rows)
    emit(
        "Fig. 8(D,H,L) — decision map (winner per workload/memory cell)",
        ("workload", "range", "bits/key", "latency_winner", "fpr_winner"),
        cells,
    )
    assert len(cells) == 3 * len(_BPK_SWEEP)
    for workload, range_size, bits_per_key, _, fpr_winner in cells:
        if bits_per_key == max(_BPK_SWEEP):
            assert fpr_winner == "rosetta"


def test_fig1_positioning(benchmark, scale):
    """Fig. 1: across range sizes, Rosetta dominates short/medium ranges."""

    def sweep_ranges():
        rows = []
        for range_size in (8, 64):
            _, sweep = fig8_tradeoff(
                _small_scale(scale), range_size=range_size,
                bits_per_key_sweep=(14, 26),
            )
            rows.extend(sweep)
        return rows

    rows = benchmark.pedantic(sweep_ranges, rounds=1, iterations=1)
    cells = decision_map(rows)
    emit(
        "Fig. 1 — positioning map (range size x memory budget)",
        ("workload", "range", "bits/key", "latency_winner", "fpr_winner"),
        cells,
    )
    short_range_cells = [c for c in cells if c[1] == 8]
    assert all(c[4] == "rosetta" for c in short_range_cells)
