"""§2.2.3 made explicit: the per-query CPU/FPR knob (probe budgets).

"The basic Rosetta design ... intuitively sacrifices CPU cost during probe
time to improve on FPR."  The probe-budget extension turns that sacrifice
into a dial: cap the Bloom probes a query may spend and the filter degrades
gracefully toward always-positive.  This bench sweeps the budget and checks
the curve is the tradeoff the paper describes — monotone FPR improvement
with spent CPU, converging to the unbounded filter's FPR.
"""

from repro.bench.report import emit
from repro.core.rosetta import Rosetta
from repro.workloads.keygen import generate_dataset
from repro.workloads.ycsb import WorkloadBuilder

_BUDGETS = (1, 2, 4, 8, 16, 32, None)  # None = unbounded


def test_probe_budget_tradeoff_curve(benchmark, scale):
    def run():
        dataset = generate_dataset(scale.num_keys, 64, seed=421)
        keys = [int(k) for k in dataset.keys]
        filt = Rosetta.build(keys, key_bits=64, bits_per_key=16,
                             max_range=64, strategy="equilibrium")
        workload = WorkloadBuilder(keys, 64, seed=422).empty_range_queries(
            scale.num_queries, 32
        )
        rows = []
        for budget in _BUDGETS:
            filt.stats.reset()
            positives = sum(
                filt.may_contain_range(q.low, q.high, probe_budget=budget)
                for q in workload
            )
            rows.append(
                (
                    "unbounded" if budget is None else budget,
                    positives / len(workload),
                    filt.stats.bloom_probes / len(workload),
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("§2.2.3 — probe budget vs FPR (range 32, 16 bits/key)",
         ("probe_budget", "fpr", "probes/query"), rows)

    fprs = [row[1] for row in rows]
    probes = [row[2] for row in rows]
    # More CPU -> (weakly) better FPR along the whole curve.
    for earlier, later in zip(fprs, fprs[1:]):
        assert later <= earlier + 0.02
    # The spend actually grows with the allowance.
    assert probes[0] <= probes[-1]
    # Tiny budgets degrade toward always-positive; the unbounded end
    # reaches the filter's native FPR.
    assert fprs[0] > 0.9
    assert fprs[-1] < 0.2
    # Convergence: a 32-probe budget is within noise of unbounded.
    assert abs(fprs[-2] - fprs[-1]) < 0.1
