"""Fig. 10 — string data (synthetic Wikipedia-Extraction corpus).

The paper's headline findings for strings, regenerated:

* SuRF has a structural memory floor (~20 bits/key on WEX; the trie alone
  costs that much) below which it simply cannot operate;
* Rosetta honours *any* memory budget, and converts additional memory into
  lower FPR, keeping end-to-end behaviour robust across budgets;
* at generous budgets both filters are competitive.
"""

import pytest

from repro.bench.experiments import Scale, fig10_strings
from repro.bench.report import emit


def _small_scale(scale: Scale) -> Scale:
    return Scale(num_keys=max(1500, scale.num_keys // 4),
                 num_queries=max(60, scale.num_queries // 3))


def test_fig10_regenerate(benchmark, scale):
    headers, rows = benchmark.pedantic(
        fig10_strings, args=(_small_scale(scale),), rounds=1, iterations=1
    )
    emit("Fig. 10 — string keys: FPR / memory / probe cost", headers, rows)

    # SuRF's actual bits/key never drops to the smallest budgets.
    lowest = min(rows, key=lambda r: r[0])
    assert lowest[0] <= 6
    assert lowest[5] > lowest[0] + 4  # structural floor

    # Rosetta honours any budget, and memory buys FPR.
    for row in rows:
        assert row[2] == pytest.approx(row[0], abs=0.6)
    ordered = sorted(rows, key=lambda r: r[0])
    assert ordered[-1][1] <= ordered[0][1]

    # Competitive at the top budget.
    top = ordered[-1]
    assert top[1] <= top[4] + 0.1
