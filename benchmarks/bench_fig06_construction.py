"""Fig. 6 — filter construction cost and write-path overhead.

* (A) construction cost isolated from compaction (huge L0 trigger),
  varying SST size and hence the number of filter instances — Rosetta's
  dense Bloom arrays build faster than SuRF's trie;
* (B) full write path with live compactions: read/write cost split and the
  ``T/(R+W)`` compaction-overhead metric.
"""

from repro.bench.experiments import Scale, fig6_construction, fig6_write_cost
from repro.bench.factories import make_factory
from repro.bench.report import emit
from repro.workloads.keygen import generate_dataset


def _small_scale(scale: Scale) -> Scale:
    return Scale(num_keys=max(2000, scale.num_keys // 2),
                 num_queries=max(50, scale.num_queries // 3))


def test_fig6_a_construction(benchmark, scale):
    headers, rows = benchmark.pedantic(
        fig6_construction, args=(_small_scale(scale),), rounds=1, iterations=1
    )
    emit("Fig. 6(A) — filter construction cost (no compaction)", headers, rows)

    per_filter = {}
    for row in rows:
        per_filter.setdefault(row[0], []).append(row[4])
    # Rosetta builds faster than SuRF (paper: ~14% cheaper; more in Python).
    assert sum(per_filter["rosetta"]) < sum(per_filter["surf"])

    # Smaller SSTs -> more files (and more filter instances).
    rosetta_rows = [r for r in rows if r[0] == "rosetta"]
    files = [r[2] for r in rosetta_rows]
    assert files == sorted(files, reverse=True)


def test_fig6_b_write_cost(benchmark, scale):
    headers, rows = benchmark.pedantic(
        fig6_write_cost, args=(_small_scale(scale),), rounds=1, iterations=1
    )
    emit("Fig. 6(B) — write path with compactions (T/(R+W) overhead)",
         headers, rows)
    cells = {r[0]: r for r in rows}
    # Fence pointers have zero filter-construction cost but pay in reads.
    assert cells["fence"][3] == 0
    assert cells["fence"][6] == 1.0  # read FPR
    assert cells["rosetta"][3] > 0
    assert cells["rosetta"][6] < cells["fence"][6]
    # Compaction overhead stays the same order of magnitude across filters.
    assert cells["rosetta"][4] < cells["surf"][4] * 3


def test_benchmark_rosetta_construction(benchmark, scale):
    """Timing anchor: build one Rosetta over the dataset."""
    dataset = generate_dataset(_small_scale(scale).num_keys, 64, seed=161)
    keys = [int(k) for k in dataset.keys]
    factory = make_factory("rosetta", 64, 22, max_range=64)
    benchmark.pedantic(factory.build, args=(keys,), rounds=3, iterations=1)


def test_benchmark_surf_construction(benchmark, scale):
    """Timing anchor: build one SuRF over the same dataset."""
    dataset = generate_dataset(_small_scale(scale).num_keys, 64, seed=161)
    keys = [int(k) for k in dataset.keys]
    factory = make_factory("surf", 64, 22)
    benchmark.pedantic(factory.build, args=(keys,), rounds=3, iterations=1)
