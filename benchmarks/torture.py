"""Crash-recovery torture driver — the full acceptance matrix.

Runs the harness in :mod:`repro.lsm.torture` over a seed matrix: for each
seed, a randomized put/delete/batch/flush/compact schedule is replayed
once per crash point (power cut at every durable I/O operation), the store
is recovered cold, and the result is checked against an in-memory model —
zero acknowledged-write loss, zero wrong reads, recovery never raises.
Each seed also runs the transient-fault equivalence check: the same
workload under injected transient read errors (with retries) must produce
exactly the fault-free answers, with every injected fault visible in the
health report.

Usage::

    PYTHONPATH=src python benchmarks/torture.py           # 20 seeds (full)
    PYTHONPATH=src python benchmarks/torture.py --smoke   # 5 seeds (CI)
    PYTHONPATH=src python benchmarks/torture.py --seeds 3 --style tiered

Exits non-zero on any violation; writes ``BENCH_torture.json`` at the repo
root with the per-seed matrix.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.lsm.torture import (  # noqa: E402
    TortureConfig,
    torture_seed,
    transient_fault_equivalence,
)

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_torture.json"


def run_matrix(seeds: int, style: str) -> dict:
    config = TortureConfig(compaction_style=style)
    records = []
    violations: list[str] = []
    total_crash_points = 0
    started = time.time()
    with tempfile.TemporaryDirectory(prefix="torture-") as workdir:
        for seed in range(seeds):
            report = torture_seed(workdir, seed, config)
            equivalence = transient_fault_equivalence(workdir, seed, config)
            total_crash_points += report.crash_points
            violations.extend(report.violations)
            if not equivalence["answers_match"]:
                violations.append(
                    f"seed={seed}: answers diverged under transient faults"
                )
            if (
                equivalence["observed_transient_errors"]
                != equivalence["injected_transient_errors"]
            ):
                violations.append(
                    f"seed={seed}: counter parity broken — injected "
                    f"{equivalence['injected_transient_errors']} transient "
                    f"errors, observed "
                    f"{equivalence['observed_transient_errors']}"
                )
            records.append(
                {
                    "seed": seed,
                    "crash_points": report.crash_points,
                    "recoveries": report.recoveries,
                    "violations": report.violations,
                    "transient_answers_match": equivalence["answers_match"],
                    "injected_transient_errors": equivalence[
                        "injected_transient_errors"
                    ],
                    "io_retries": equivalence["io_retries"],
                }
            )
            print(
                f"seed {seed:3d}: {report.crash_points:4d} crash points, "
                f"{len(report.violations)} violations; transient-equivalence "
                f"{'ok' if equivalence['answers_match'] else 'FAILED'} "
                f"({equivalence['injected_transient_errors']} faults injected)"
            )
    return {
        "bench": "torture",
        "compaction_style": style,
        "seeds": seeds,
        "total_crash_points": total_crash_points,
        "elapsed_seconds": round(time.time() - started, 2),
        "violations": violations,
        "per_seed": records,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--seeds", type=int, default=20,
        help="number of seeds to sweep (default: 20)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI smoke matrix: 5 seeds",
    )
    parser.add_argument(
        "--style", choices=("leveled", "tiered"), default="leveled",
        help="compaction style under test (default: leveled)",
    )
    args = parser.parse_args(argv)
    seeds = 5 if args.smoke else args.seeds

    result = run_matrix(seeds, args.style)
    RESULT_PATH.write_text(json.dumps(result, indent=2) + "\n")
    print(
        f"\n{result['total_crash_points']} crash points across {seeds} seeds "
        f"in {result['elapsed_seconds']}s -> {RESULT_PATH.name}"
    )
    if result["violations"]:
        print(f"{len(result['violations'])} VIOLATIONS:", file=sys.stderr)
        for violation in result["violations"]:
            print(f"  {violation}", file=sys.stderr)
        return 1
    print("durability contract held at every crash point")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
