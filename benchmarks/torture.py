"""Crash-recovery torture driver — the full acceptance matrix.

Runs the harness in :mod:`repro.lsm.torture` over a seed matrix: for each
seed, a randomized put/delete/batch/flush/compact schedule is replayed
once per crash point (power cut at every durable I/O operation), the store
is recovered cold, and the result is checked against an in-memory model —
zero acknowledged-write loss, zero wrong reads, recovery never raises.
Each seed also runs the transient-fault equivalence check: the same
workload under injected transient read errors (with retries) must produce
exactly the fault-free answers, with every injected fault visible in the
health report.

On top of the inline sweep, every seed repeats the full crash-point sweep
with background maintenance workers on a seeded deterministic scheduler
(``--sched-seeds`` interleavings per seed — power cuts land mid-flush,
mid-compaction, and mid-superversion-install on a worker), and checks
interleaving equivalence: inline and every scheduler seed must answer
identically on a crash-free run.

Usage::

    PYTHONPATH=src python benchmarks/torture.py           # 20 seeds (full)
    PYTHONPATH=src python benchmarks/torture.py --smoke   # 5 seeds (CI)
    PYTHONPATH=src python benchmarks/torture.py --seeds 3 --style tiered

Exits non-zero on any violation; writes ``BENCH_torture.json`` at the repo
root with the per-seed matrix.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.lsm.torture import (  # noqa: E402
    TortureConfig,
    concurrent_torture_seed,
    schedule_equivalence,
    torture_seed,
    transient_fault_equivalence,
)

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_torture.json"


def run_matrix(seeds: int, style: str, sched_seeds: int) -> dict:
    config = TortureConfig(compaction_style=style)
    # The default workload's narrow key space never splinters a level, so
    # same-level-pair leveled parallelism gets a dedicated short sweep: a
    # wide-key, single-run-window config where an oversize level yields
    # several disjoint-footprint jobs per pass and the conflict table
    # admits two leveled compactions into one level pair concurrently.
    range_config = TortureConfig(
        num_ops=32,
        key_space=512,
        value_repeat=96,
        put_bias=0.95,
        max_compaction_input_files=1,
        compaction_style=style,
    )
    # Salted filters ride inside the SST envelope, so a power cut at any
    # durable write must recover a store whose surviving runs still probe
    # with the exact per-file hash family they were built with.
    salted_config = TortureConfig(
        compaction_style=style, filter_salt_seed=0x5EED_CAFE
    )
    interleavings = tuple(range(sched_seeds))
    records = []
    violations: list[str] = []
    total_crash_points = 0
    total_concurrent_crash_points = 0
    total_range_admissions = 0
    started = time.time()
    with tempfile.TemporaryDirectory(prefix="torture-") as workdir:
        for seed in range(seeds):
            report = torture_seed(workdir, seed, config)
            equivalence = transient_fault_equivalence(workdir, seed, config)
            concurrent = concurrent_torture_seed(
                workdir, seed, config, sched_seeds=interleavings
            )
            interleaving_eq = schedule_equivalence(
                workdir, seed, config, sched_seeds=interleavings
            )
            total_crash_points += report.crash_points
            total_concurrent_crash_points += concurrent.crash_points
            total_range_admissions += concurrent.leveled_range_admissions
            violations.extend(report.violations)
            violations.extend(concurrent.violations)
            if not interleaving_eq["equivalent"]:
                violations.append(
                    f"seed={seed}: interleavings diverged: "
                    f"{interleaving_eq['mismatches']}"
                )
            if not equivalence["answers_match"]:
                violations.append(
                    f"seed={seed}: answers diverged under transient faults"
                )
            if (
                equivalence["observed_transient_errors"]
                != equivalence["injected_transient_errors"]
            ):
                violations.append(
                    f"seed={seed}: counter parity broken — injected "
                    f"{equivalence['injected_transient_errors']} transient "
                    f"errors, observed "
                    f"{equivalence['observed_transient_errors']}"
                )
            records.append(
                {
                    "seed": seed,
                    "crash_points": report.crash_points,
                    "recoveries": report.recoveries,
                    "violations": report.violations,
                    "transient_answers_match": equivalence["answers_match"],
                    "injected_transient_errors": equivalence[
                        "injected_transient_errors"
                    ],
                    "io_retries": equivalence["io_retries"],
                    "concurrent_crash_points": concurrent.crash_points,
                    "concurrent_recoveries": concurrent.recoveries,
                    "concurrent_violations": concurrent.violations,
                    "leveled_range_admissions": (
                        concurrent.leveled_range_admissions
                    ),
                    "interleavings_equivalent": interleaving_eq["equivalent"],
                }
            )
            print(
                f"seed {seed:3d}: {report.crash_points:4d} inline + "
                f"{concurrent.crash_points:4d} concurrent crash points, "
                f"{len(report.violations) + len(concurrent.violations)} "
                f"violations; transient-equivalence "
                f"{'ok' if equivalence['answers_match'] else 'FAILED'}, "
                f"interleaving-equivalence "
                f"{'ok' if interleaving_eq['equivalent'] else 'FAILED'}"
            )
        range_records = []
        for seed in range(min(3, seeds)):
            concurrent = concurrent_torture_seed(
                workdir, seed, range_config, sched_seeds=interleavings
            )
            total_concurrent_crash_points += concurrent.crash_points
            total_range_admissions += concurrent.leveled_range_admissions
            violations.extend(concurrent.violations)
            range_records.append(
                {
                    "seed": seed,
                    "crash_points": concurrent.crash_points,
                    "recoveries": concurrent.recoveries,
                    "leveled_range_admissions": (
                        concurrent.leveled_range_admissions
                    ),
                    "violations": concurrent.violations,
                }
            )
            print(
                f"range seed {seed:3d}: {concurrent.crash_points:4d} "
                f"concurrent crash points, "
                f"{concurrent.leveled_range_admissions} range admissions, "
                f"{len(concurrent.violations)} violations"
            )
        salted_records = []
        for seed in range(min(3, seeds)):
            report = torture_seed(workdir, seed, salted_config)
            total_crash_points += report.crash_points
            violations.extend(
                f"salted {violation}" for violation in report.violations
            )
            salted_records.append(
                {
                    "seed": seed,
                    "crash_points": report.crash_points,
                    "recoveries": report.recoveries,
                    "violations": report.violations,
                }
            )
            print(
                f"salted seed {seed:3d}: {report.crash_points:4d} inline "
                f"crash points, {len(report.violations)} violations"
            )
    return {
        "bench": "torture",
        "compaction_style": style,
        "seeds": seeds,
        "scheduler_seeds": sched_seeds,
        "total_crash_points": total_crash_points,
        "total_concurrent_crash_points": total_concurrent_crash_points,
        "total_leveled_range_admissions": total_range_admissions,
        "elapsed_seconds": round(time.time() - started, 2),
        "violations": violations,
        "per_seed": records,
        "range_sweep": range_records,
        "salted_sweep": salted_records,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--seeds", type=int, default=20,
        help="number of seeds to sweep (default: 20)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI smoke matrix: 5 seeds",
    )
    parser.add_argument(
        "--style", choices=("leveled", "tiered"), default="leveled",
        help="compaction style under test (default: leveled)",
    )
    parser.add_argument(
        "--sched-seeds", type=int, default=2,
        help="deterministic scheduler seeds per workload seed (default: 2)",
    )
    args = parser.parse_args(argv)
    seeds = 5 if args.smoke else args.seeds

    result = run_matrix(seeds, args.style, args.sched_seeds)
    RESULT_PATH.write_text(json.dumps(result, indent=2) + "\n")
    print(
        f"\n{result['total_crash_points']} inline + "
        f"{result['total_concurrent_crash_points']} concurrent crash points "
        f"across {seeds} seeds in {result['elapsed_seconds']}s "
        f"-> {RESULT_PATH.name}"
    )
    if result["violations"]:
        print(f"{len(result['violations'])} VIOLATIONS:", file=sys.stderr)
        for violation in result["violations"]:
            print(f"  {violation}", file=sys.stderr)
        return 1
    print("durability contract held at every crash point")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
