"""Adversarial FP-attack benchmark — filter hardening under replay pressure.

A deterministic filter leaks its false positives: once an attacker finds a
query the filter fails to reject, that query costs a device read on every
replay, forever.  This benchmark drives the learning attacker from
:mod:`repro.workloads.adversarial` against three configurations of the
same store:

* ``undefended`` — the pre-hardening store (``filter_salt_seed=0``):
  learned FPs survive even a full rebuild, because the rebuilt filter
  hashes identically over the identical key set;
* ``salted`` — per-SST filter salting: a rebuild allocates a fresh file
  number, hence a fresh salt, hence a hash family the attacker has never
  probed — the learned FP set goes stale instantly;
* ``salted+quarantine`` — salting plus the FP-feedback detector: the
  store *notices* the replay (per-run observed FPR exceeds a multiple of
  the filter's design FPR), flags the run in ``health()``, prioritizes
  its compaction, and rebuilds it with bonus bits — no operator in the
  loop, ``db.compact()`` settles the quarantine autonomously.

Reported per config: benign FPR and throughput, FPR under attack, the
attacker's replay hit rate before and after the rebuild, and the
detector's flag/heal cycle.  A black-box section cross-validates the
timing-only classifier against the stats oracle.

Usage::

    PYTHONPATH=src python benchmarks/bench_adversarial.py            # full
    PYTHONPATH=src python benchmarks/bench_adversarial.py --smoke    # CI
    PYTHONPATH=src python benchmarks/bench_adversarial.py --smoke --check

``--check`` exits non-zero unless (a) the attack inflates observed FPR at
least 5x over benign traffic on the undefended config while learned FPs
survive its rebuild, and (b) the defended configs return to within 2x of
the design FPR after rebuild at benign throughput within tolerance of
the undefended baseline.  Writes ``BENCH_adversarial.json``.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.factories import make_factory  # noqa: E402
from repro.filters.bloom_point import BloomPointFilter  # noqa: E402
from repro.lsm import DB, DBOptions  # noqa: E402
from repro.workloads import AdversarialAttacker  # noqa: E402

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_adversarial.json"

KEY_BITS = 24
BITS_PER_KEY = 10.0
SALT_SEED = 0x5EED_F17E


def make_options(salt_seed: int, quarantine: bool) -> DBOptions:
    return DBOptions(
        key_bits=KEY_BITS,
        memtable_size_bytes=1 << 16,
        sst_size_bytes=1 << 22,  # one run holds the whole key set
        block_cache_bytes=0,  # every false positive costs a device read
        filter_factory=make_factory(
            "bloom", key_bits=KEY_BITS, bits_per_key=BITS_PER_KEY
        ),
        filter_salt_seed=salt_seed,
        quarantine_filters=quarantine,
    )


def build_store(path: str, options: DBOptions, stored: list[int]) -> DB:
    db = DB(path, options)
    for key in stored:
        db.put(key, b"v")
    db.flush()
    db.force_full_compaction()  # exactly one run, one filter
    return db


def design_fpr(stored: list[int]) -> float:
    """The FPR the benchmark's filter recipe is designed to deliver."""
    reference = BloomPointFilter(key_bits=KEY_BITS, bits_per_key=BITS_PER_KEY)
    reference.populate(stored)
    return reference.design_fpr() or 0.0


def benign_phase(
    db: DB, stored: list[int], probes: int, seed: int
) -> tuple[float, float]:
    """Mixed benign traffic; returns (observed_fpr, ops_per_second)."""
    rng = random.Random(seed)
    avoid = set(stored)
    absent = []
    while len(absent) < probes:
        key = rng.randrange(1 << KEY_BITS)
        if key not in avoid:
            absent.append(key)
    present = [stored[rng.randrange(len(stored))] for _ in range(probes // 4)]
    queries = absent + present
    rng.shuffle(queries)
    before = db.stats.snapshot()
    started = time.perf_counter()
    for key in queries:
        db.get(key)
    elapsed = time.perf_counter() - started
    delta = db.stats.diff(before)
    return delta.observed_fpr, len(queries) / max(elapsed, 1e-9)


def run_config(
    workdir: str,
    label: str,
    salt_seed: int,
    quarantine: bool,
    stored: list[int],
    sizes: dict,
) -> dict:
    db = build_store(f"{workdir}/{label}", make_options(salt_seed, quarantine), stored)
    try:
        benign_fpr, benign_ops = benign_phase(
            db, stored, sizes["benign_probes"], seed=11
        )

        attacker = AdversarialAttacker(db, mode="oracle", seed=7, avoid=stored)
        before = db.stats.snapshot()
        report = attacker.run(
            point_probes=sizes["learn_probes"],
            range_probes=0,
            replay_rounds=sizes["replay_rounds"],
            replay_pressure=3,
            max_replay_probes=sizes["max_replay_probes"],
        )
        attack_fpr = db.stats.diff(before).observed_fpr
        flagged_during_attack = db.health().filters_under_attack

        # Rebuild: the quarantine config heals itself (compact() settles
        # the detector's prioritized jobs); the others need the operator
        # to force a rewrite — which, undefended, changes nothing the
        # attacker cares about.
        if quarantine:
            db.compact()
        else:
            db.force_full_compaction()
        flagged_after_rebuild = db.health().filters_under_attack

        # Post-rebuild: the attacker replays its learned set amid fresh
        # benign traffic.  Undefended, the learned set still hits 100%;
        # salted, it reverted to the design FPR.
        before = db.stats.snapshot()
        replayed, replay_hits = attacker.replay(rounds=2, pressure=2)
        post_benign_fpr, _ = benign_phase(
            db, stored, sizes["post_probes"], seed=13
        )
        post_fpr = db.stats.diff(before).observed_fpr
        return {
            "config": label,
            "filter_salt_seed": salt_seed,
            "quarantine": quarantine,
            "benign_fpr": benign_fpr,
            "benign_ops_per_s": round(benign_ops, 1),
            "learned_fp_queries": report.learned,
            "attack_fpr": attack_fpr,
            "attack_replay_fpr": report.replay_fpr,
            "filters_under_attack_during_attack": flagged_during_attack,
            "filters_under_attack_after_rebuild": flagged_after_rebuild,
            "filters_quarantined_total": db.stats.filters_quarantined,
            "post_rebuild_replay_fpr": (
                replay_hits / replayed if replayed else 0.0
            ),
            "post_rebuild_fpr": post_fpr,
            "post_rebuild_benign_fpr": post_benign_fpr,
        }
    finally:
        db.close()


def blackbox_section(workdir: str, stored: list[int], sizes: dict) -> dict:
    """Timing-only attacker on the undefended store, oracle-validated."""
    db = build_store(
        f"{workdir}/blackbox", make_options(0, False), stored
    )
    try:
        attacker = AdversarialAttacker(
            db, mode="blackbox", seed=17, avoid=stored
        )
        learned = attacker.learn_points(sizes["learn_probes"])
        genuine = 0
        for key in learned:
            before = db.stats.filter_false_positives
            db.get(key)
            genuine += db.stats.filter_false_positives > before
        replayed, perceived_hits = attacker.replay(rounds=2, pressure=2)
        return {
            "mode": "blackbox",
            "learned": len(learned),
            "oracle_confirmed": genuine,
            "precision": genuine / len(learned) if learned else None,
            "replay_perceived_fpr": (
                perceived_hits / replayed if replayed else 0.0
            ),
        }
    finally:
        db.close()


def run_matrix(smoke: bool) -> dict:
    if smoke:
        sizes = {
            "num_keys": 2000,
            "benign_probes": 1600,
            "learn_probes": 2000,
            "replay_rounds": 4,
            "max_replay_probes": 3000,
            "post_probes": 2000,
        }
    else:
        sizes = {
            "num_keys": 5000,
            "benign_probes": 4000,
            "learn_probes": 5000,
            "replay_rounds": 5,
            "max_replay_probes": 8000,
            "post_probes": 5000,
        }
    rng = random.Random(42)
    stored = sorted(rng.sample(range(1 << KEY_BITS), sizes["num_keys"]))
    started = time.time()
    with tempfile.TemporaryDirectory(prefix="bench-adversarial-") as workdir:
        configs = [
            run_config(workdir, "undefended", 0, False, stored, sizes),
            run_config(workdir, "salted", SALT_SEED, False, stored, sizes),
            run_config(
                workdir, "salted+quarantine", SALT_SEED, True, stored, sizes
            ),
        ]
        blackbox = blackbox_section(workdir, stored, sizes)
    return {
        "bench": "adversarial",
        "smoke": smoke,
        "key_bits": KEY_BITS,
        "bits_per_key": BITS_PER_KEY,
        "num_keys": sizes["num_keys"],
        "design_fpr": design_fpr(stored),
        "configs": configs,
        "blackbox": blackbox,
        "elapsed_seconds": round(time.time() - started, 2),
    }


def check(result: dict, smoke: bool) -> list[str]:
    """Acceptance criteria; returns a list of failure messages."""
    failures: list[str] = []
    design = result["design_fpr"]
    rows = {row["config"]: row for row in result["configs"]}
    undefended = rows["undefended"]
    baseline_ops = undefended["benign_ops_per_s"]

    # (a) the attack is real: observed FPR inflates >= 5x over benign
    # traffic on the undefended config, and the learned set survives the
    # undefended rebuild.
    benign_floor = max(undefended["benign_fpr"], design / 2)
    if undefended["attack_fpr"] < 5 * benign_floor:
        failures.append(
            f"undefended attack FPR {undefended['attack_fpr']:.4f} is not "
            f">= 5x benign {benign_floor:.4f}"
        )
    if undefended["post_rebuild_replay_fpr"] < 0.5:
        failures.append(
            "undefended rebuild should NOT shake the attacker: learned "
            f"replay FPR fell to {undefended['post_rebuild_replay_fpr']:.3f}"
        )

    # (b) the defense works: both defended configs return to within 2x of
    # design FPR after rebuild, at benign throughput within tolerance.
    ops_floor = 0.75 if smoke else 0.95
    for label in ("salted", "salted+quarantine"):
        row = rows[label]
        if row["attack_fpr"] < 5 * max(row["benign_fpr"], design / 2):
            failures.append(
                f"{label}: attack never inflated FPR "
                f"({row['attack_fpr']:.4f}) — nothing to defend against"
            )
        if row["post_rebuild_fpr"] > 2 * design:
            failures.append(
                f"{label}: post-rebuild FPR {row['post_rebuild_fpr']:.4f} "
                f"exceeds 2x design {design:.4f}"
            )
        if row["benign_ops_per_s"] < ops_floor * baseline_ops:
            failures.append(
                f"{label}: benign throughput {row['benign_ops_per_s']} "
                f"below {ops_floor:.0%} of undefended {baseline_ops}"
            )

    quarantine = rows["salted+quarantine"]
    if quarantine["filters_under_attack_during_attack"] < 1:
        failures.append("quarantine detector never flagged the attacked run")
    if quarantine["filters_under_attack_after_rebuild"] != 0:
        failures.append("quarantine flag not cleared by the rebuild")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="small CI matrix"
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit non-zero unless attack and defense criteria hold",
    )
    args = parser.parse_args(argv)

    result = run_matrix(args.smoke)
    RESULT_PATH.write_text(json.dumps(result, indent=2) + "\n")
    for row in result["configs"]:
        print(
            f"{row['config']:>18}: benign fpr {row['benign_fpr']:.4f} "
            f"({row['benign_ops_per_s']:.0f} ops/s), attack fpr "
            f"{row['attack_fpr']:.4f}, post-rebuild replay fpr "
            f"{row['post_rebuild_replay_fpr']:.3f}, post-rebuild fpr "
            f"{row['post_rebuild_fpr']:.4f}, flagged "
            f"{row['filters_under_attack_during_attack']}"
        )
    bb = result["blackbox"]
    print(
        f"          blackbox: learned {bb['learned']} "
        f"(oracle-confirmed {bb['oracle_confirmed']}), perceived replay "
        f"fpr {bb['replay_perceived_fpr']:.3f}"
    )
    print(f"-> {RESULT_PATH.name} in {result['elapsed_seconds']}s")

    if args.check:
        failures = check(result, args.smoke)
        if failures:
            for failure in failures:
                print(f"CHECK FAILED: {failure}", file=sys.stderr)
            return 1
        print("all adversarial hardening checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
