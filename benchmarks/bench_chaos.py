"""Chaos benchmark: availability + tail latency across defense configs.

Runs the chaos harness (:mod:`repro.lsm.chaos`) — concurrent mixed
traffic against :class:`~repro.lsm.serving.ShardedServer` shards whose
storage is a seeded :class:`~repro.lsm.faults.FaultInjectionEnv`, while
an injector thread arms transient read faults, background write faults
(degraded-mode flips), and drain-worker crashes — across four
configurations:

* ``no-defense``    — blocking queue, no deadlines, breaker off: the
  PR 8 behavior (plus the crash-containment bug fixes, which are not a
  feature flag).  A crashed worker stays dead, a degraded shard leaks
  ``ReadOnlyStoreError`` forever.
* ``shedding``      — bounded queue with immediate shed + per-request
  deadlines, breaker still off.
* ``shedding-breaker`` — sheds + deadlines + the per-shard circuit
  breaker and supervisor (worker restarts, ``DB.resume()`` probing with
  capped exponential backoff).
* ``benign``        — shedding-breaker config with fault injection off:
  proves the defenses cost ~nothing on the happy path.  Compared
  against an in-run ``benign-baseline`` (defenses off, no faults) and,
  when present, against ``BENCH_serving.json``'s sharded-batched run.

Every configuration must finish with **zero violations** — no hangs, no
wrong answers, no untyped errors, no stranded futures (typed fast
failures are expected and counted separately).  ``--check`` additionally
gates: shedding-breaker availability >= no-defense availability, benign
availability == 1.0, and (full runs) benign throughput within 5% of the
undefended baseline.

Usage::

    PYTHONPATH=src python benchmarks/bench_chaos.py            # full
    PYTHONPATH=src python benchmarks/bench_chaos.py --smoke --check

Writes ``BENCH_chaos.json`` at the repo root.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from dataclasses import replace
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.lsm.chaos import ChaosOptions, run_chaos  # noqa: E402

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_chaos.json"
SERVING_RESULT_PATH = (
    Path(__file__).resolve().parent.parent / "BENCH_serving.json"
)


def _configs(base: ChaosOptions) -> list[tuple[str, ChaosOptions]]:
    return [
        (
            "no-defense",
            replace(
                base,
                queue_policy="block",
                default_deadline_s=None,
                breaker_enabled=False,
                max_worker_restarts=0,
            ),
        ),
        (
            "shedding",
            replace(base, breaker_enabled=False, max_worker_restarts=0),
        ),
        ("shedding-breaker", base),
        ("benign", replace(base, inject_faults=False)),
        (
            "benign-baseline",
            replace(
                base,
                inject_faults=False,
                queue_policy="block",
                default_deadline_s=None,
                breaker_enabled=False,
                max_worker_restarts=0,
            ),
        ),
    ]


def _record(name: str, report) -> dict:
    return {
        "label": name,
        "ops": report.ops,
        "ok_ops": report.ok_ops,
        "availability": round(report.availability, 4),
        "requests_per_second": round(
            report.ops / report.duration_s, 1
        ) if report.duration_s else 0.0,
        "elapsed_seconds": round(report.duration_s, 4),
        "op_latency_ms": {
            "p50": round(report.latency_percentile(0.50) * 1e3, 3),
            "p99": round(report.latency_percentile(0.99) * 1e3, 3),
        },
        "typed_failures": dict(report.typed_failures),
        "violations": report.violations,
        "faults_injected": dict(report.injected),
        "serving_counters": report.counters,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--clients", type=int, default=8,
        help="client threads per configuration (default: 8)",
    )
    parser.add_argument(
        "--ops", type=int, default=600,
        help="ops per client (default: 600)",
    )
    parser.add_argument(
        "--preload", type=int, default=2000,
        help="stable-region keys preloaded per configuration",
    )
    parser.add_argument(
        "--shards", type=int, default=4,
        help="serving shards (default: 4)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI smoke run: 4 clients x 120 ops over 400 keys",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="fail on any violation or on benign availability < 1.0; "
        "full runs additionally gate shedding-breaker availability >= "
        "no-defense and benign throughput within 5%% of the undefended "
        "baseline",
    )
    parser.add_argument("--seed", type=int, default=0xC4405)
    args = parser.parse_args(argv)

    base = ChaosOptions(
        seed=args.seed,
        clients=4 if args.smoke else args.clients,
        ops_per_client=120 if args.smoke else args.ops,
        preload=400 if args.smoke else args.preload,
        num_shards=args.shards,
        # Full runs last ~10x longer; stretch the crash cadence so the
        # per-shard restart budget is stressed, not trivially exhausted.
        worker_crash_every=6 if args.smoke else 25,
    )

    def _run_once(name: str, options: ChaosOptions) -> dict:
        with tempfile.TemporaryDirectory(
            prefix=f"chaos-{name}-"
        ) as workdir:
            report = run_chaos(workdir, options)
        return _record(name, report)

    def _print_record(rec: dict) -> None:
        print(
            f"{rec['label']:18s}: availability {rec['availability']:6.4f}, "
            f"{rec['requests_per_second']:8.1f} req/s, "
            f"p99 {rec['op_latency_ms']['p99']:8.2f} ms, "
            f"violations {len(rec['violations'])}, "
            f"typed failures {sum(rec['typed_failures'].values())}"
        )
        for violation in rec["violations"][:10]:
            print(f"  ! {violation}", file=sys.stderr)

    configs = dict(_configs(base))
    records: dict[str, dict] = {}
    for name, options in configs.items():
        if name.startswith("benign") and not args.smoke:
            continue  # measured as interleaved pairs below
        records[name] = _run_once(name, options)
        _print_record(records[name])

    # The benign pair exists to measure the *cost* of the defenses, and
    # a single ~1.5s run carries ±10% scheduler noise — well above the
    # 5% acceptance threshold — and the noise *drifts* (a busy minute
    # slows whichever config happens to run then).  Sequential
    # best-of-N can't cancel drift; interleaved pairs can: each trial
    # runs defended and baseline back-to-back (order alternating), the
    # ratio is taken within the pair, and the gate uses the median pair
    # ratio.  Fault runs stay single (availability is their signal).
    pair_ratios: list[float] = []
    if not args.smoke:
        for i in range(3):
            order = ("benign", "benign-baseline")
            if i % 2:
                order = order[::-1]
            pair: dict[str, dict] = {}
            for name in order:
                record = _run_once(name, configs[name])
                pair[name] = record
                prev = records.get(name)
                if (
                    prev is None
                    or record["violations"]
                    or record["requests_per_second"]
                    > prev["requests_per_second"]
                ):
                    records[name] = record
            pair_ratios.append(
                pair["benign"]["requests_per_second"]
                / max(1e-9, pair["benign-baseline"]["requests_per_second"])
            )
        for name in ("benign", "benign-baseline"):
            _print_record(records[name])
        benign_ratio = round(sorted(pair_ratios)[1], 4)
    else:
        benign_ratio = round(
            records["benign"]["requests_per_second"]
            / max(
                1e-9, records["benign-baseline"]["requests_per_second"]
            ),
            4,
        )
    serving_ratio = None
    if SERVING_RESULT_PATH.exists():
        serving = json.loads(SERVING_RESULT_PATH.read_text())
        sharded = next(
            (
                c
                for c in serving.get("configs", [])
                if c.get("label") == "sharded-batched"
            ),
            None,
        )
        if sharded:
            # Cross-bench context only: BENCH_serving uses a different
            # workload mix/scale, so this is not the 5% gate.
            serving_ratio = round(
                records["benign"]["requests_per_second"]
                / max(1e-9, sharded["requests_per_second"]),
                4,
            )
    print(
        f"benign throughput ratio vs undefended baseline: {benign_ratio} "
        f"(vs BENCH_serving sharded-batched: {serving_ratio})"
    )

    result = {
        "bench": "chaos",
        "clients": base.clients,
        "ops_per_client": base.ops_per_client,
        "preload": base.preload,
        "num_shards": base.num_shards,
        "benign_throughput_ratio": benign_ratio,
        "benign_pair_ratios": [round(r, 4) for r in pair_ratios],
        "benign_vs_bench_serving_sharded": serving_ratio,
        "configs": list(records.values()),
    }
    RESULT_PATH.write_text(json.dumps(result, indent=2) + "\n")
    print(f"-> {RESULT_PATH.name}")

    if args.check:
        failed = False
        for name, rec in records.items():
            if rec["violations"]:
                print(
                    f"CHECK FAILED: {name} had "
                    f"{len(rec['violations'])} violation(s)",
                    file=sys.stderr,
                )
                failed = True
        defended = records["shedding-breaker"]["availability"]
        undefended = records["no-defense"]["availability"]
        # Smoke runs last ~0.15s: where a crash lands relative to the end
        # of the run dominates the ratio, so the ordering gate (like
        # bench_serving's speedup floor) applies to full runs only.
        if not args.smoke and defended < undefended:
            print(
                f"CHECK FAILED: shedding-breaker availability {defended} "
                f"below no-defense {undefended}",
                file=sys.stderr,
            )
            failed = True
        if records["benign"]["availability"] < 1.0:
            print(
                "CHECK FAILED: benign run not fully available "
                f"({records['benign']['availability']})",
                file=sys.stderr,
            )
            failed = True
        if not args.smoke and benign_ratio < 0.95:
            print(
                f"CHECK FAILED: benign throughput ratio {benign_ratio} "
                f"below the 0.95 acceptance floor",
                file=sys.stderr,
            )
            failed = True
        if failed:
            return 1
        print(
            "check passed: zero violations; defenses no worse than "
            "no-defense; benign path fully available"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
