"""Shared fixtures and reporting helpers for the figure benchmarks.

Every benchmark module regenerates one of the paper's figures: it prints
the figure's data as a table (the same rows/series the paper reports) and
uses pytest-benchmark to time a representative operation.  Scale with
``REPRO_SCALE=<multiplier>`` (keys and queries scale linearly).
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import Scale


@pytest.fixture(scope="session")
def scale() -> Scale:
    """The session-wide experiment scale (REPRO_SCALE-aware)."""
    return Scale.default()

