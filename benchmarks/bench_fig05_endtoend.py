"""Fig. 5 — end-to-end performance of the filter-integrated store.

Regenerates all four panels:

* (A1) total latency and its I/O / CPU split vs range size (uniform);
* (A2) the CPU sub-costs: filter probe, (de)serialization, residual seek;
* (A3) FPR vs range size, Rosetta vs SuRF;
* (B)  correlated workload (θ = 1);
* (C)  skewed (normal) key distribution;
* (D)  default-RocksDB baselines (Prefix Bloom, fence pointers only).

Shape assertions encode the paper's findings: Rosetta's FPR advantage at
short/medium ranges translates into less I/O and lower end-to-end latency,
and the filter probe cost stays a minority of total cost.
"""

import shutil
import tempfile

from repro.bench.endtoend import load_database
from repro.bench.experiments import Scale, fig5_endtoend
from repro.bench.factories import make_factory
from repro.bench.report import emit
from repro.lsm.options import DBOptions
from repro.workloads.keygen import generate_dataset
from repro.workloads.ycsb import WorkloadBuilder

_RANGE_SIZES = (2, 8, 16, 32, 64)


def _small_scale(scale: Scale) -> Scale:
    # End-to-end runs reload the store per point; keep them affordable.
    return Scale(
        num_keys=max(2000, scale.num_keys // 2),
        num_queries=max(60, scale.num_queries // 2),
    )


def test_fig5_a_uniform(benchmark, scale):
    """Panels A1-A3: uniform workload breakdown + FPR."""
    headers, rows = benchmark.pedantic(
        fig5_endtoend,
        kwargs={"scale": _small_scale(scale), "workload": "uniform",
                "range_sizes": _RANGE_SIZES},
        rounds=1, iterations=1,
    )
    emit("Fig. 5(A1-A3) — uniform workload, end-to-end breakdown",
         headers, rows)
    cells = {(r[0], r[1]): r for r in rows}
    # (A1) Rosetta wins or ties short/medium ranges end to end.
    for range_size in (2, 8, 16):
        assert (
            cells[("rosetta", range_size)][2]
            <= cells[("surf", range_size)][2] * 1.2
        )
    # (A2) probe cost is a strict minority of total end-to-end cost.
    for row in rows:
        if row[0] == "rosetta":
            assert row[5] < row[2]
    # (A3) FPR gap at every range size.
    for range_size in _RANGE_SIZES:
        assert (
            cells[("rosetta", range_size)][9]
            <= cells[("surf", range_size)][9] + 0.02
        )


def test_fig5_b_correlated(benchmark, scale):
    headers, rows = benchmark.pedantic(
        fig5_endtoend,
        kwargs={"scale": _small_scale(scale), "workload": "correlated",
                "range_sizes": (8, 32)},
        rounds=1, iterations=1,
    )
    emit("Fig. 5(B) — correlated workload (theta=1)", headers, rows)
    cells = {(r[0], r[1]): r for r in rows}
    for range_size in (8, 32):
        # SuRF's culled prefixes cannot reject next-key queries.
        assert cells[("surf", range_size)][9] > 0.5
        assert (
            cells[("rosetta", range_size)][9]
            < cells[("surf", range_size)][9]
        )


def test_fig5_c_skewed(benchmark, scale):
    headers, rows = benchmark.pedantic(
        fig5_endtoend,
        kwargs={"scale": _small_scale(scale), "workload": "skewed",
                "range_sizes": (8, 32)},
        rounds=1, iterations=1,
    )
    emit("Fig. 5(C) — skewed (normal) key distribution", headers, rows)
    cells = {(r[0], r[1]): r for r in rows}
    for range_size in (8, 32):
        assert (
            cells[("rosetta", range_size)][9]
            <= cells[("surf", range_size)][9] + 0.02
        )


def test_fig5_d_default_rocksdb_baselines(benchmark, scale):
    headers, rows = benchmark.pedantic(
        fig5_endtoend,
        kwargs={"scale": _small_scale(scale),
                "filters": ("rosetta", "surf", "prefix-bloom", "fence"),
                "range_sizes": (8, 32)},
        rounds=1, iterations=1,
    )
    emit("Fig. 5(D) — vs default RocksDB (Prefix Bloom / fence only)",
         headers, rows)
    cells = {(r[0], r[1]): r for r in rows}
    for range_size in (8, 32):
        rosetta_io = cells[("rosetta", range_size)][3]
        fence_io = cells[("fence", range_size)][3]
        assert fence_io > rosetta_io * 5  # the "up to 40x" direction
        assert cells[("fence", range_size)][9] == 1.0


def test_benchmark_empty_range_query(benchmark, scale):
    """Timing anchor: one empty range query through the full store."""
    dataset = generate_dataset(5000, 64, seed=151, value_size=32)
    keys = [int(k) for k in dataset.keys]
    factory = make_factory("rosetta", 64, 22, max_range=64,
                           range_size_histogram={16: 1})
    options = DBOptions(
        key_bits=64, memtable_size_bytes=32 << 10, sst_size_bytes=128 << 10,
        max_bytes_for_level_base=512 << 10, device="memory",
    )
    path = tempfile.mkdtemp(prefix="repro-bench5-")
    try:
        options.filter_factory = factory
        db = load_database(path, dataset, factory, options)
        query = WorkloadBuilder(keys, 64, seed=152).empty_range_queries(
            1, 16
        ).queries[0]
        benchmark(db.range_query, query.low, query.high)
        # The seek path must have gone through the multi-run frontier
        # sweep, not per-run scalar probes.
        assert db.stats.filter_batch_probes > 0
        db.close()
    finally:
        shutil.rmtree(path, ignore_errors=True)
