"""Throughput of the frontier engine vs the scalar recursive doubting path.

The tentpole number for the vectorized engine: resolve a 10k-query batch of
64-key ranges against a multi-level Rosetta with

* the pre-engine reference (`may_contain_range_recursive`, one Python
  recursion and one scalar Bloom probe per prefix),
* the frontier engine in exact-accounting mode (``dedup=False`` — same
  probe counts as the recursion, bulk execution),
* the frontier engine with positional dedup (``dedup=True`` — the fast
  default).

Results (throughputs, speedups, verdict agreement) go to
``BENCH_batch_range.json`` at the repo root.  The engine must clear a 5x
speedup over the scalar loop in its default mode.

Runs standalone (``python benchmarks/bench_batch_range.py [--smoke]``) and
as a pytest test.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.core.rosetta import Rosetta
from repro.workloads.keygen import generate_dataset
from repro.workloads.ycsb import WorkloadBuilder

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_batch_range.json"

SPEEDUP_FLOOR = 5.0


def run_benchmark(
    num_keys: int = 50_000,
    num_queries: int = 10_000,
    max_range: int = 64,
    key_bits: int = 64,
    bits_per_key: float = 22.0,
    seed: int = 411,
) -> dict:
    """Build the filter, run all three paths, return the result record."""
    dataset = generate_dataset(num_keys, key_bits, seed=seed)
    keys = [int(k) for k in dataset.keys]
    rosetta = Rosetta.build(
        keys,
        key_bits=key_bits,
        bits_per_key=bits_per_key,
        max_range=max_range,
        strategy="optimized",
    )
    workload = WorkloadBuilder(keys, key_bits, seed=seed + 1).empty_range_queries(
        num_queries, max_range
    )
    lows = [q.low for q in workload]
    highs = [q.high for q in workload]

    rosetta.stats.reset()
    start = time.perf_counter()
    scalar = [rosetta.may_contain_range_recursive(lo, hi) for lo, hi in zip(lows, highs)]
    scalar_seconds = time.perf_counter() - start
    scalar_probes = rosetta.stats.bloom_probes

    rosetta.stats.reset()
    start = time.perf_counter()
    exact = rosetta.may_contain_range_batch(lows, highs, dedup=False)
    exact_seconds = time.perf_counter() - start
    exact_probes = rosetta.stats.bloom_probes

    rosetta.stats.reset()
    start = time.perf_counter()
    deduped = rosetta.may_contain_range_batch(lows, highs)
    dedup_seconds = time.perf_counter() - start
    dedup_probes = rosetta.stats.bloom_probes
    bulk_calls = rosetta.stats.bulk_probe_calls

    answers_agree = bool(
        np.array_equal(np.asarray(scalar, dtype=bool), exact)
        and np.array_equal(exact, deduped)
    )
    record = {
        "num_keys": num_keys,
        "num_queries": num_queries,
        "max_range": max_range,
        "bits_per_key": bits_per_key,
        "num_levels": rosetta.num_levels,
        "positives": int(np.count_nonzero(deduped)),
        "answers_agree": answers_agree,
        "probe_counts_match_recursive": exact_probes == scalar_probes,
        "scalar": {
            "seconds": scalar_seconds,
            "queries_per_second": num_queries / scalar_seconds,
            "bloom_probes": scalar_probes,
        },
        "batch_exact": {
            "seconds": exact_seconds,
            "queries_per_second": num_queries / exact_seconds,
            "bloom_probes": exact_probes,
            "speedup_vs_scalar": scalar_seconds / exact_seconds,
        },
        "batch_dedup": {
            "seconds": dedup_seconds,
            "queries_per_second": num_queries / dedup_seconds,
            "bloom_probes": dedup_probes,
            "bulk_probe_calls": bulk_calls,
            "speedup_vs_scalar": scalar_seconds / dedup_seconds,
        },
    }
    return record


def _emit(record: dict) -> None:
    RESULT_PATH.write_text(json.dumps(record, indent=2) + "\n")
    dedup = record["batch_dedup"]
    exact = record["batch_exact"]
    print(
        f"{record['num_queries']} queries x {record['max_range']}-key ranges, "
        f"{record['num_levels']} levels\n"
        f"  scalar recursive : {record['scalar']['queries_per_second']:>10.0f} q/s\n"
        f"  batch (exact)    : {exact['queries_per_second']:>10.0f} q/s "
        f"({exact['speedup_vs_scalar']:.1f}x)\n"
        f"  batch (dedup)    : {dedup['queries_per_second']:>10.0f} q/s "
        f"({dedup['speedup_vs_scalar']:.1f}x)\n"
        f"  answers agree: {record['answers_agree']}, "
        f"exact probe counts match: {record['probe_counts_match_recursive']}\n"
        f"  -> {RESULT_PATH}"
    )


def test_batch_range_speedup():
    """The acceptance gate: >=5x at 10k queries, answers identical."""
    record = run_benchmark()
    _emit(record)
    assert record["answers_agree"]
    assert record["probe_counts_match_recursive"]
    assert record["batch_dedup"]["speedup_vs_scalar"] >= SPEEDUP_FLOOR


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small sizes for CI: verifies agreement, skips the 5x gate",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        record = run_benchmark(num_keys=4000, num_queries=500)
    else:
        record = run_benchmark()
    _emit(record)
    if not record["answers_agree"] or not record["probe_counts_match_recursive"]:
        print("FAIL: engine disagrees with the recursive reference", file=sys.stderr)
        return 1
    if not args.smoke and record["batch_dedup"]["speedup_vs_scalar"] < SPEEDUP_FLOOR:
        print(f"FAIL: speedup below {SPEEDUP_FLOOR}x", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
