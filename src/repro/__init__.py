"""Rosetta: A Robust Space-Time Optimized Range Filter for Key-Value Stores.

Pure-Python reproduction of Luo et al., SIGMOD 2020.  The package bundles:

* :mod:`repro.core` — the Rosetta filter, its memory-allocation strategies,
  adaptive tuning, and the paper's theoretical models;
* :mod:`repro.filters` — every baseline (SuRF, Prefix Bloom, Bloom, fence
  pointers, Cuckoo) behind one master filter template;
* :mod:`repro.lsm` — an LSM-tree key-value store substrate with per-run
  filters, leveled compaction, block cache, and iterator hierarchy;
* :mod:`repro.workloads` — YCSB-style key/query generators (uniform,
  skewed, correlated, string);
* :mod:`repro.bench` — the harness that regenerates the paper's figures.

Quickstart::

    from repro import Rosetta
    filt = Rosetta.build(keys, key_bits=32, bits_per_key=22, max_range=64)
    if filt.may_contain_range(low, high):
        ...  # only now touch storage
"""

from repro.core import BloomFilter, Rosetta, WorkloadTracker
from repro.filters import (
    BloomPointFilter,
    FencePointerFilter,
    KeyFilter,
    PrefixBloomFilter,
    RosettaFilter,
    SuRF,
    SurfFilter,
)

__version__ = "1.0.0"

__all__ = [
    "BloomFilter",
    "BloomPointFilter",
    "FencePointerFilter",
    "KeyFilter",
    "PrefixBloomFilter",
    "Rosetta",
    "RosettaFilter",
    "SuRF",
    "SurfFilter",
    "WorkloadTracker",
    "__version__",
]
