"""Command-line entry point: regenerate any paper figure's data.

Usage::

    repro-bench list                 # show available experiments
    repro-bench fig4                 # Fig. 4 allocation mechanisms
    repro-bench fig5 --workload correlated
    repro-bench fig8 --range-size 16 --csv results/fig11.csv
    REPRO_SCALE=5 repro-bench fig7   # 5x keys and queries
"""

from __future__ import annotations

import argparse
import sys

from repro.bench import experiments
from repro.bench.report import banner, format_table, write_csv

_EXPERIMENTS = {
    "fig4": lambda args: experiments.fig4_allocation(),
    "fig5": lambda args: experiments.fig5_endtoend(
        workload=args.workload,
        filters=tuple(args.filters.split(",")) if args.filters else ("rosetta", "surf"),
    ),
    "fig5d": lambda args: experiments.fig5_endtoend(
        filters=("rosetta", "surf", "prefix-bloom", "fence"),
        range_sizes=(2, 8, 32),
    ),
    "fig6a": lambda args: experiments.fig6_construction(),
    "fig6b": lambda args: experiments.fig6_write_cost(),
    "fig7": lambda args: experiments.fig7_point_queries(),
    "fig8": lambda args: experiments.fig8_tradeoff(
        workload=args.workload, range_size=args.range_size
    ),
    "fig9": lambda args: experiments.fig9_memory_hierarchy(),
    "fig10": lambda args: experiments.fig10_strings(),
    "fig11": lambda args: experiments.fig8_tradeoff(
        workload=args.workload, range_size=min(args.range_size, 16)
    ),
    "theory": lambda args: experiments.theory_validation(),
    "ext-twofilters": lambda args: experiments.extension_two_filters(),
    "ext-monkey": lambda args: experiments.extension_monkey(),
    "ext-correlation": lambda args: experiments.extension_correlation_offsets(),
    "ext-tiered": lambda args: experiments.extension_tiered_vs_leveled(),
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Regenerate figures from the Rosetta paper (SIGMOD 2020).",
    )
    parser.add_argument(
        "experiment",
        help=f"experiment id or 'list'; one of: {', '.join(sorted(_EXPERIMENTS))}",
    )
    parser.add_argument(
        "--workload",
        default="uniform",
        choices=("uniform", "correlated", "skewed"),
        help="workload family for fig5/fig8/fig11",
    )
    parser.add_argument(
        "--range-size", type=int, default=64, help="range size for fig8/fig11"
    )
    parser.add_argument(
        "--filters", default="", help="comma-separated filter recipes for fig5"
    )
    parser.add_argument("--csv", default="", help="also write the table as CSV")
    parser.add_argument(
        "--chart", action="store_true",
        help="also render numeric columns named *fpr* as an ASCII bar chart",
    )
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for name in sorted(_EXPERIMENTS):
            print(name)
        return 0
    runner = _EXPERIMENTS.get(args.experiment)
    if runner is None:
        print(
            f"unknown experiment {args.experiment!r}; "
            f"try one of: {', '.join(sorted(_EXPERIMENTS))}",
            file=sys.stderr,
        )
        return 2

    headers, rows = runner(args)
    print(banner(f"Experiment: {args.experiment}"))
    print(format_table(headers, rows))
    if args.chart:
        _render_charts(headers, rows)
    if args.csv:
        write_csv(args.csv, headers, rows)
        print(f"\nwrote {args.csv}")
    return 0


def _render_charts(headers, rows) -> None:
    """Bar-chart every *fpr* column against the row labels."""
    from repro.bench.report import ascii_bar_chart

    fpr_columns = [
        index for index, header in enumerate(headers)
        if "fpr" in str(header).lower()
    ]
    if not fpr_columns or not rows:
        return
    labels = [
        " ".join(str(v) for v in row[: fpr_columns[0]]) or str(row[0])
        for row in rows
    ]
    for index in fpr_columns:
        values = [float(row[index]) for row in rows]
        print()
        print(ascii_bar_chart(labels, values, title=str(headers[index]),
                              log_scale=True))


if __name__ == "__main__":
    raise SystemExit(main())
