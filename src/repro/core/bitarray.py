"""A compact, NumPy-backed bit array.

This is the storage substrate for every Bloom-filter-like structure in the
library (:mod:`repro.core.bloom`, the SuRF rank/select bit vectors, ...).
Bits are packed into a ``uint64`` NumPy array; single-bit operations are plain
integer arithmetic, and bulk operations (union, popcount) vectorize over the
backing words.

The array has a fixed size chosen at construction; this mirrors how filters in
an LSM-tree are sized once per immutable run and never grow.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SerializationError

_WORD_BITS = 64

__all__ = ["BitArray"]


class BitArray:
    """Fixed-size array of bits packed into 64-bit words.

    Parameters
    ----------
    num_bits:
        Total number of addressable bits.  May be zero (an empty array), which
        is useful for filter levels that were assigned no memory.

    Examples
    --------
    >>> bits = BitArray(128)
    >>> bits.set(17)
    >>> bits.test(17)
    True
    >>> bits.test(18)
    False
    """

    __slots__ = ("_num_bits", "_words")

    def __init__(self, num_bits: int) -> None:
        if num_bits < 0:
            raise ValueError(f"num_bits must be non-negative, got {num_bits}")
        self._num_bits = int(num_bits)
        num_words = (self._num_bits + _WORD_BITS - 1) // _WORD_BITS
        self._words = np.zeros(num_words, dtype=np.uint64)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._num_bits

    @property
    def num_bits(self) -> int:
        """Number of addressable bits."""
        return self._num_bits

    @property
    def size_in_bytes(self) -> int:
        """Size of the backing storage in bytes."""
        return self._words.nbytes

    # ------------------------------------------------------------------
    # Single-bit operations
    # ------------------------------------------------------------------
    def set(self, index: int) -> None:
        """Set the bit at ``index`` to 1."""
        self._check_index(index)
        self._words[index >> 6] |= np.uint64(1 << (index & 63))

    def clear(self, index: int) -> None:
        """Set the bit at ``index`` to 0."""
        self._check_index(index)
        self._words[index >> 6] &= np.uint64(~(1 << (index & 63)) & 0xFFFFFFFFFFFFFFFF)

    def test(self, index: int) -> bool:
        """Return ``True`` iff the bit at ``index`` is 1."""
        self._check_index(index)
        return bool(int(self._words[index >> 6]) >> (index & 63) & 1)

    def __getitem__(self, index: int) -> bool:
        return self.test(index)

    def __setitem__(self, index: int, value: bool) -> None:
        if value:
            self.set(index)
        else:
            self.clear(index)

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self._num_bits:
            raise IndexError(f"bit index {index} out of range [0, {self._num_bits})")

    # ------------------------------------------------------------------
    # Bulk operations
    # ------------------------------------------------------------------
    def set_many(self, indexes: np.ndarray) -> None:
        """Set every bit whose index appears in ``indexes`` (vectorized)."""
        if len(indexes) == 0:
            return
        idx = np.asarray(indexes, dtype=np.uint64)
        words = idx >> np.uint64(6)
        masks = np.uint64(1) << (idx & np.uint64(63))
        # np.bitwise_or.at handles repeated word indexes correctly.
        np.bitwise_or.at(self._words, words, masks)

    def test_many(self, indexes: np.ndarray) -> np.ndarray:
        """Return a boolean array: for each index, whether its bit is set."""
        if len(indexes) == 0:
            return np.zeros(0, dtype=bool)
        idx = np.asarray(indexes, dtype=np.uint64)
        words = self._words[(idx >> np.uint64(6)).astype(np.int64)]
        return ((words >> (idx & np.uint64(63))) & np.uint64(1)).astype(bool)

    def popcount(self) -> int:
        """Return the number of set bits."""
        return int(np.unpackbits(self._words.view(np.uint8)).sum())

    def fill_ratio(self) -> float:
        """Return the fraction of bits set (0.0 for an empty array)."""
        if self._num_bits == 0:
            return 0.0
        return self.popcount() / self._num_bits

    def union_with(self, other: "BitArray") -> None:
        """In-place union (bitwise OR) with another equal-size array."""
        if other.num_bits != self._num_bits:
            raise ValueError(
                f"cannot union bit arrays of different sizes "
                f"({self._num_bits} vs {other.num_bits})"
            )
        np.bitwise_or(self._words, other._words, out=self._words)

    def words(self) -> np.ndarray:
        """Return the backing word array (a view; mutate with care)."""
        return self._words

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Serialize to a compact, versionless byte string.

        The layout is an 8-byte little-endian bit count followed by the raw
        little-endian words.
        """
        header = self._num_bits.to_bytes(8, "little")
        return header + self._words.tobytes()

    @classmethod
    def from_bytes(cls, payload: bytes) -> "BitArray":
        """Reconstruct a :class:`BitArray` from :meth:`to_bytes` output."""
        if len(payload) < 8:
            raise SerializationError("bit array payload too short for header")
        num_bits = int.from_bytes(payload[:8], "little")
        arr = cls(num_bits)
        expected = arr._words.nbytes
        body = payload[8:]
        if len(body) != expected:
            raise SerializationError(
                f"bit array payload has {len(body)} body bytes, expected {expected}"
            )
        if expected:
            arr._words = np.frombuffer(body, dtype=np.uint64).copy()
        return arr

    # ------------------------------------------------------------------
    # Dunder conveniences
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitArray):
            return NotImplemented
        return self._num_bits == other._num_bits and bool(
            np.array_equal(self._words, other._words)
        )

    def __repr__(self) -> str:
        return f"BitArray(num_bits={self._num_bits}, set={self.popcount()})"
