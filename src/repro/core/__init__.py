"""The paper's primary contribution: the Rosetta range filter.

Public surface:

* :class:`~repro.core.rosetta.Rosetta` — the filter (build / point / range /
  tightened-range queries, serialization).
* :func:`~repro.core.allocation.allocate` — memory allocation strategies
  across filter levels (§2.3–2.4).
* :class:`~repro.core.tuning.WorkloadTracker` /
  :class:`~repro.core.tuning.AutoTuner` — workload-adaptive self-tuning.
* :mod:`~repro.core.analysis` — the §3 theoretical models.
* :class:`~repro.core.bloom.BloomFilter` and
  :class:`~repro.core.bitarray.BitArray` — the building blocks, exposed for
  downstream reuse.
"""

from repro.core.allocation import STRATEGIES, LevelAllocation, allocate
from repro.core.bitarray import BitArray
from repro.core.bloom import BloomFilter, bits_for_fpr, fpr_for_bits, optimal_num_hashes
from repro.core.dyadic import DyadicInterval, decompose, max_intervals_for_range
from repro.core.monkey import MonkeyBudgetPolicy, allocate_run_budgets
from repro.core.rosetta import ProbeStats, Rosetta
from repro.core.tuning import AutoTuner, TuningDecision, WorkloadTracker

__all__ = [
    "AutoTuner",
    "BitArray",
    "BloomFilter",
    "DyadicInterval",
    "LevelAllocation",
    "MonkeyBudgetPolicy",
    "ProbeStats",
    "Rosetta",
    "STRATEGIES",
    "TuningDecision",
    "WorkloadTracker",
    "allocate",
    "allocate_run_budgets",
    "bits_for_fpr",
    "decompose",
    "fpr_for_bits",
    "max_intervals_for_range",
    "optimal_num_hashes",
]
