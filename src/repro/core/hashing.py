"""Hash functions used by the probabilistic filters.

All filters in this library hash *byte strings* or *unsigned integers* through
a small family of 64-bit mixers.  Two properties matter:

* **Determinism across processes** — Python's built-in ``hash`` is salted per
  process, so we implement our own mixers (splitmix64 and an FNV-1a/xxhash
  style avalanche) that are stable, seedable, and fast enough in pure Python.
* **Cheap k-fold hashing** — Bloom filters need ``k`` hash values per key.  We
  use the standard Kirsch–Mitzenmacher double-hashing scheme
  ``h_i(x) = h1(x) + i * h2(x) (mod m)``, which preserves the asymptotic FPR
  of k independent hashes while costing only two base hashes.

Vectorized variants operating on NumPy ``uint64`` arrays are provided for the
bulk construction path, where Rosetta inserts millions of prefixes.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

_MASK64 = 0xFFFFFFFFFFFFFFFF

__all__ = [
    "splitmix64",
    "hash_bytes",
    "hash_int",
    "double_hash_indexes",
    "splitmix64_array",
    "bloom_indexes_array",
    "mix_salt",
    "mix_salt_array",
    "derive_filter_salt",
]


def splitmix64(value: int) -> int:
    """Mix a 64-bit integer through the splitmix64 finalizer.

    This is the avalanche function from Vigna's splitmix64 generator; it is a
    bijection on 64-bit integers with excellent diffusion, and is the standard
    cheap mixer for integer-keyed Bloom filters.
    """
    z = (value + 0x9E3779B97F4A7C15) & _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (z ^ (z >> 31)) & _MASK64


def hash_int(value: int, seed: int = 0) -> int:
    """Hash an unsigned integer (any width) to 64 bits with a seed.

    Values wider than 64 bits are folded 64 bits at a time so that arbitrarily
    long binary prefixes (Rosetta hashes prefixes up to the key length) remain
    well distributed.
    """
    h = splitmix64(seed ^ 0x2545F4914F6CDD1D)
    v = value
    if v < 0:
        raise ValueError("hash_int requires a non-negative integer")
    while True:
        h = splitmix64(h ^ (v & _MASK64))
        v >>= 64
        if v == 0:
            return h


def hash_bytes(data: bytes, seed: int = 0) -> int:
    """Hash a byte string to 64 bits using an FNV-1a core + splitmix finalize.

    Stable across processes and platforms, unlike built-in ``hash``.
    """
    h = (0xCBF29CE484222325 ^ splitmix64(seed)) & _MASK64
    for chunk_start in range(0, len(data) - 7, 8):
        word = int.from_bytes(data[chunk_start : chunk_start + 8], "little")
        h = ((h ^ word) * 0x100000001B3) & _MASK64
        h = splitmix64(h)
    tail_start = len(data) - (len(data) % 8)
    for byte in data[tail_start:]:
        h = ((h ^ byte) * 0x100000001B3) & _MASK64
    # Mix in the length so prefixes of each other don't collide trivially.
    return splitmix64(h ^ len(data))


def mix_salt(value: int, salt: int) -> int:
    """Re-key a 64-bit hash with a salt; ``salt == 0`` is the identity.

    Filters apply this *after* their base hash so salted and unsalted
    instances can share one base-hash computation (the batch range engine
    hashes every candidate prefix once across all runs).  Salt 0 reproduces
    the historical unsalted hash bit-for-bit, which keeps pre-salting
    serialized filters loadable and parity suites meaningful.
    """
    if salt == 0:
        return value
    return splitmix64(value ^ salt)


def mix_salt_array(values: np.ndarray, salt: int) -> np.ndarray:
    """Vectorized :func:`mix_salt` over a ``uint64`` array."""
    if salt == 0:
        return values
    return splitmix64_array(values ^ np.uint64(salt))


def derive_filter_salt(seed: int, file_number: int) -> int:
    """Per-SST filter salt from the store seed and the SST file number.

    ``seed == 0`` disables salting entirely (returns 0).  Otherwise the
    salt is a nonzero splitmix64 mix of seed and file number, so every
    compaction output — which always gets a fresh file number — re-keys
    its filters and any false positives an adversary learned go stale.
    """
    if seed == 0:
        return 0
    return splitmix64(splitmix64(seed) ^ (file_number & _MASK64)) or 1


def double_hash_indexes(h1: int, h2: int, k: int, num_bits: int) -> Iterable[int]:
    """Yield ``k`` bit positions via Kirsch–Mitzenmacher double hashing.

    ``h2`` is forced odd so the probe sequence cycles through all ``num_bits``
    residues when ``num_bits`` is a power of two, and never degenerates to a
    single position.
    """
    h2 |= 1
    pos = h1
    for _ in range(k):
        yield pos % num_bits
        pos = (pos + h2) & _MASK64


# ----------------------------------------------------------------------
# Vectorized variants (bulk insert/probe paths)
# ----------------------------------------------------------------------

def splitmix64_array(values: np.ndarray) -> np.ndarray:
    """Vectorized :func:`splitmix64` over a ``uint64`` array."""
    with np.errstate(over="ignore"):
        z = (values + np.uint64(0x9E3779B97F4A7C15)).astype(np.uint64)
        z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
        z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
        return z ^ (z >> np.uint64(31))


def bloom_indexes_array(
    hashes1: np.ndarray, hashes2: np.ndarray, k: int, num_bits: int
) -> np.ndarray:
    """Compute a ``(len(hashes1), k)`` matrix of Bloom bit positions.

    The double-hashing recurrence matches :func:`double_hash_indexes` exactly,
    so scalar and vectorized insert/probe paths agree bit-for-bit.
    """
    h2 = hashes2 | np.uint64(1)
    out = np.empty((len(hashes1), k), dtype=np.uint64)
    pos = hashes1.copy()
    nbits = np.uint64(num_bits)
    with np.errstate(over="ignore"):
        for i in range(k):
            out[:, i] = pos % nbits
            pos = pos + h2
    return out
