"""Standard Bloom filter, the building block of Rosetta.

A Rosetta instance (see :mod:`repro.core.rosetta`) is a stack of these, one
per binary-prefix length.  The filter accepts integer items (binary prefixes
are represented as non-negative Python ints, paired externally with their
length) or byte strings, hashes them with the stable mixers from
:mod:`repro.core.hashing`, and spreads ``k`` probes via double hashing.

A filter constructed with ``num_bits == 0`` is a degenerate *always-positive*
filter.  Rosetta's memory-allocation strategies legitimately assign zero bits
to some levels (Eq. 3 of the paper clamps negative allocations to zero); such
levels must never prune, so membership queries on them return ``True``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.bitarray import BitArray
from repro.core.hashing import (
    bloom_indexes_array,
    double_hash_indexes,
    hash_bytes,
    hash_int,
    mix_salt,
    mix_salt_array,
    splitmix64,
    splitmix64_array,
)
from repro.errors import FilterBuildError, SerializationError

_SEED1 = 0x9AE16A3B2F90404F
_SEED2 = 0xC3A5C85C97CB3127

# Precomputed scalar stages of hash_int for the vectorized path.
_H1_STAGE = splitmix64(_SEED1 ^ 0x2545F4914F6CDD1D)
_H2_STAGE = splitmix64(_SEED2 ^ 0x2545F4914F6CDD1D)

_LN2 = math.log(2.0)

__all__ = [
    "BloomFilter",
    "base_hash_arrays",
    "optimal_num_hashes",
    "bits_for_fpr",
    "fpr_for_bits",
]


def base_hash_arrays(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """The two 64-bit base hashes of each value, vectorized.

    Every :class:`BloomFilter` derives its ``k`` probe positions from the
    same two seeded splitmix64 stages, so these hashes are *filter
    independent*: a batch engine probing many filters (one per LSM run) can
    evaluate them once per distinct prefix and reuse them against every
    filter via :meth:`BloomFilter.survivors_hashed`.
    """
    values = np.asarray(values, dtype=np.uint64)
    return (
        splitmix64_array(values ^ np.uint64(_H1_STAGE)),
        splitmix64_array(values ^ np.uint64(_H2_STAGE)),
    )


def optimal_num_hashes(bits_per_key: float) -> int:
    """Return the FPR-optimal number of hash functions for a bits/key budget.

    The classic result ``k = (m/n) ln 2``, rounded to the nearest positive
    integer.
    """
    if bits_per_key <= 0:
        return 1
    return max(1, round(bits_per_key * _LN2))


def bits_for_fpr(num_keys: int, fpr: float) -> int:
    """Memory (bits) for a Bloom filter over ``num_keys`` keys at target FPR.

    Uses the standard approximation ``m = -n ln(p) / (ln 2)^2``.  An FPR of
    1.0 (or more) needs no memory at all.
    """
    if num_keys < 0:
        raise ValueError(f"num_keys must be non-negative, got {num_keys}")
    if fpr <= 0.0:
        raise ValueError(f"target FPR must be positive, got {fpr}")
    if fpr >= 1.0 or num_keys == 0:
        return 0
    return math.ceil(-num_keys * math.log(fpr) / (_LN2 * _LN2))


def fpr_for_bits(num_keys: int, num_bits: int) -> float:
    """Expected FPR of an optimally-hashed Bloom filter with ``num_bits``."""
    if num_keys <= 0:
        return 0.0
    if num_bits <= 0:
        return 1.0
    return math.exp(-(num_bits / num_keys) * _LN2 * _LN2)


class BloomFilter:
    """A seedable, serializable Bloom filter over ints and byte strings.

    Parameters
    ----------
    num_bits:
        Size of the bit array.  Zero produces an always-positive filter.
    num_hashes:
        Number of double-hashed probes per item (``k``).
    salt:
        Optional 64-bit re-keying salt applied on top of the base hashes
        (:func:`~repro.core.hashing.mix_salt`).  Zero — the default — is
        the identity and reproduces the historical unsalted filter
        bit-for-bit.  Salting defends against adversaries replaying
        learned false positives: rebuilding with a fresh salt re-keys
        every probe position.

    Examples
    --------
    >>> bf = BloomFilter.from_keys_and_bits([3, 6, 7], num_bits=64)
    >>> bf.may_contain(6)
    True
    """

    __slots__ = ("_bits", "_num_hashes", "_num_items", "_salt")

    def __init__(self, num_bits: int, num_hashes: int, salt: int = 0) -> None:
        if num_hashes < 1:
            raise FilterBuildError(f"num_hashes must be >= 1, got {num_hashes}")
        if not 0 <= salt < 1 << 64:
            raise FilterBuildError(f"salt must be a 64-bit value, got {salt}")
        self._bits = BitArray(num_bits)
        self._num_hashes = int(num_hashes)
        self._num_items = 0
        self._salt = int(salt)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_keys_and_bits(
        cls, keys, num_bits: int, num_hashes: int | None = None, salt: int = 0
    ):
        """Build a filter sized at ``num_bits`` holding all of ``keys``."""
        keys = list(keys)
        if num_hashes is None:
            bits_per_key = num_bits / len(keys) if keys else 1.0
            num_hashes = optimal_num_hashes(bits_per_key)
        bf = cls(num_bits, num_hashes, salt=salt)
        for key in keys:
            bf.add(key)
        return bf

    @classmethod
    def from_fpr(cls, num_keys: int, fpr: float) -> "BloomFilter":
        """Build an empty filter sized for ``num_keys`` at target ``fpr``."""
        num_bits = bits_for_fpr(num_keys, fpr)
        bits_per_key = num_bits / num_keys if num_keys else 1.0
        return cls(num_bits, optimal_num_hashes(bits_per_key))

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    @property
    def num_bits(self) -> int:
        """Size of the backing bit array in bits."""
        return self._bits.num_bits

    @property
    def num_hashes(self) -> int:
        """Number of hash probes per item."""
        return self._num_hashes

    @property
    def num_items(self) -> int:
        """Number of items added so far."""
        return self._num_items

    @property
    def salt(self) -> int:
        """The re-keying salt (0 for a legacy unsalted filter)."""
        return self._salt

    @property
    def is_always_positive(self) -> bool:
        """``True`` for a zero-bit filter, which can never prune."""
        return self._bits.num_bits == 0

    def size_in_bits(self) -> int:
        """Memory used by the filter payload, in bits."""
        return self._bits.num_bits

    def expected_fpr(self) -> float:
        """Estimate the FPR from the current fill ratio: ``fill^k``."""
        if self.is_always_positive:
            return 1.0
        return self._bits.fill_ratio() ** self._num_hashes

    def fill_ratio(self) -> float:
        """Actual fraction of set bits (popcount ratio; 0.0 when bit-less)."""
        if self.is_always_positive:
            return 0.0
        return self._bits.fill_ratio()

    # ------------------------------------------------------------------
    # Hashing
    # ------------------------------------------------------------------
    def _base_hashes(self, item) -> tuple[int, int]:
        if isinstance(item, (int, np.integer)):
            h1, h2 = hash_int(int(item), _SEED1), hash_int(int(item), _SEED2)
        elif isinstance(item, (bytes, bytearray, memoryview)):
            data = bytes(item)
            h1, h2 = hash_bytes(data, _SEED1), hash_bytes(data, _SEED2)
        else:
            raise TypeError(
                f"BloomFilter items must be int or bytes, got {type(item)!r}"
            )
        return mix_salt(h1, self._salt), mix_salt(h2, self._salt)

    def _hash_arrays(self, values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        h1 = splitmix64_array(values ^ np.uint64(_H1_STAGE))
        h2 = splitmix64_array(values ^ np.uint64(_H2_STAGE))
        return mix_salt_array(h1, self._salt), mix_salt_array(h2, self._salt)

    # ------------------------------------------------------------------
    # Mutation / queries
    # ------------------------------------------------------------------
    def add(self, item) -> None:
        """Insert an item (int or bytes)."""
        self._num_items += 1
        if self.is_always_positive:
            return
        h1, h2 = self._base_hashes(item)
        for pos in double_hash_indexes(h1, h2, self._num_hashes, self.num_bits):
            self._bits.set(pos)

    def add_many_ints(self, values: np.ndarray) -> None:
        """Vectorized insert of a ``uint64`` array of integer items.

        Must agree bit-for-bit with repeated :meth:`add` calls for values
        below 2**64 (enforced by tests).
        """
        values = np.asarray(values, dtype=np.uint64)
        self._num_items += len(values)
        if self.is_always_positive or len(values) == 0:
            return
        h1, h2 = self._hash_arrays(values)
        indexes = bloom_indexes_array(h1, h2, self._num_hashes, self.num_bits)
        self._bits.set_many(indexes.ravel())

    def may_contain(self, item) -> bool:
        """Return ``False`` only if the item is definitely absent."""
        if self.is_always_positive:
            return True
        h1, h2 = self._base_hashes(item)
        return all(
            self._bits.test(pos)
            for pos in double_hash_indexes(h1, h2, self._num_hashes, self.num_bits)
        )

    def __contains__(self, item) -> bool:
        return self.may_contain(item)

    def may_contain_many_ints(self, values: np.ndarray) -> np.ndarray:
        """Vectorized membership probe for a ``uint64`` array of items."""
        values = np.asarray(values, dtype=np.uint64)
        if self.is_always_positive:
            return np.ones(len(values), dtype=bool)
        if len(values) == 0:
            return np.zeros(0, dtype=bool)
        h1, h2 = self._hash_arrays(values)
        indexes = bloom_indexes_array(h1, h2, self._num_hashes, self.num_bits)
        hits = self._bits.test_many(indexes.ravel()).reshape(indexes.shape)
        return hits.all(axis=1)

    def contains_batch(self, values: np.ndarray) -> np.ndarray:
        """Vectorized membership probe with duplicate values hashed once.

        The batched point-lookup primitive: the distinct values are
        double-hashed in bulk, every probe position across all ``k`` hash
        rounds is materialized at once, and the bit array answers them in a
        single gather; verdicts then scatter back through the inverse map,
        so repeated values cost one hash/probe set instead of one each.
        Agrees with :meth:`may_contain` element-wise.
        """
        values = np.asarray(values, dtype=np.uint64)
        if self.is_always_positive or len(values) == 0:
            return self.may_contain_many_ints(values)
        unique, inverse = np.unique(values, return_inverse=True)
        return self.may_contain_many_ints(unique)[inverse]

    def survivor_indexes(self, values: np.ndarray) -> np.ndarray:
        """Indexes of the values that may be present (vectorized fast path).

        Equivalent to ``np.nonzero(self.may_contain_many_ints(values))[0]``
        but cheaper on mostly-negative batches: the candidate set is narrowed
        after every hash round, so later hash rounds only touch survivors of
        the earlier ones (most items die on the first bit test at typical
        fill ratios).
        """
        h1, h2 = base_hash_arrays(np.asarray(values, dtype=np.uint64))
        return self.survivors_hashed(h1, h2)

    def survivors_hashed(self, h1: np.ndarray, h2: np.ndarray) -> np.ndarray:
        """Survivor indexes for items given by precomputed base hashes.

        ``h1``/``h2`` are the :func:`base_hash_arrays` outputs; the probe
        recurrence matches :func:`~repro.core.hashing.double_hash_indexes`
        bit for bit, so verdicts agree with :meth:`may_contain` exactly.
        The base hashes stay filter independent even under salting: the
        salt is mixed in here, per filter, so a batch engine can still
        hash every candidate once and reuse it against differently-salted
        runs.
        """
        count = len(h1)
        if self.is_always_positive:
            return np.arange(count, dtype=np.int64)
        if count == 0:
            return np.zeros(0, dtype=np.int64)
        if self._salt:
            h1 = mix_salt_array(h1, self._salt)
            h2 = mix_salt_array(h2, self._salt)
        alive = np.arange(count, dtype=np.int64)
        pos = h1.astype(np.uint64, copy=True)
        step = h2 | np.uint64(1)
        num_bits = np.uint64(self.num_bits)
        with np.errstate(over="ignore"):
            for probe in range(self._num_hashes):
                hits = self._bits.test_many(pos % num_bits)
                alive = alive[hits]
                if probe == self._num_hashes - 1 or len(alive) == 0:
                    break
                pos = pos[hits] + step[hits]
                step = step[hits]
        return alive

    # ------------------------------------------------------------------
    # Combination
    # ------------------------------------------------------------------
    def union(self, other: "BloomFilter") -> "BloomFilter":
        """A filter answering positive for anything either input would.

        Bloom filters of identical geometry (size and hash count) union by
        OR-ing their bit arrays; the result behaves exactly like a filter
        built over the combined key sets (same hash positions), at the
        combined fill ratio.
        """
        if (
            other.num_bits != self.num_bits
            or other.num_hashes != self._num_hashes
        ):
            raise FilterBuildError(
                "can only union Bloom filters of identical geometry "
                f"({self.num_bits}/{self._num_hashes} vs "
                f"{other.num_bits}/{other.num_hashes})"
            )
        if other.salt != self._salt:
            raise FilterBuildError(
                "can only union Bloom filters with identical salts "
                f"({self._salt:#x} vs {other.salt:#x}): differently-salted "
                "filters map the same key to different bit positions"
            )
        merged = BloomFilter(self.num_bits, self._num_hashes, salt=self._salt)
        merged._bits.union_with(self._bits)
        merged._bits.union_with(other._bits)
        merged._num_items = self._num_items + other._num_items
        return merged

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    #: Legacy unsalted format; still written when ``salt == 0`` so stores
    #: that never enable salting produce byte-identical filter blocks.
    _MAGIC = b"RBF1"
    #: Salted format: an 8-byte little-endian salt follows the item count.
    _MAGIC_SALTED = b"RBF2"

    def to_bytes(self) -> bytes:
        """Serialize to bytes (magic, k, item count, [salt], bit payload)."""
        header = (
            self._num_hashes.to_bytes(4, "little")
            + self._num_items.to_bytes(8, "little")
        )
        if self._salt == 0:
            return self._MAGIC + header + self._bits.to_bytes()
        return (
            self._MAGIC_SALTED
            + header
            + self._salt.to_bytes(8, "little")
            + self._bits.to_bytes()
        )

    @classmethod
    def from_bytes(cls, payload: bytes) -> "BloomFilter":
        """Reconstruct a filter from :meth:`to_bytes` output.

        Accepts both the legacy unsalted ``RBF1`` layout and the salted
        ``RBF2`` layout, so filter blocks written before salting existed
        keep loading.
        """
        magic = payload[:4]
        if magic not in (cls._MAGIC, cls._MAGIC_SALTED):
            raise SerializationError("bad BloomFilter magic")
        num_hashes = int.from_bytes(payload[4:8], "little")
        num_items = int.from_bytes(payload[8:16], "little")
        offset = 16
        salt = 0
        if magic == cls._MAGIC_SALTED:
            if len(payload) < 24:
                raise SerializationError("truncated salted BloomFilter payload")
            salt = int.from_bytes(payload[16:24], "little")
            if salt == 0:
                raise SerializationError(
                    "salted BloomFilter payload carries a zero salt"
                )
            offset = 24
        bits = BitArray.from_bytes(payload[offset:])
        bf = cls.__new__(cls)
        bf._bits = bits
        bf._num_hashes = num_hashes
        bf._num_items = num_items
        bf._salt = salt
        return bf

    def __repr__(self) -> str:
        return (
            f"BloomFilter(num_bits={self.num_bits}, k={self._num_hashes}, "
            f"items={self._num_items})"
        )
