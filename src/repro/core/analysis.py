"""Analytical models from the paper's theory section (§3).

These functions predict Rosetta's behaviour from first principles; the
``benchmarks/bench_theory.py`` suite compares them against measurements.

* :func:`goswami_lower_bound_bits` — the information-theoretic lower bound of
  Goswami et al. [44] that §3.1 compares against.
* :func:`rosetta_memory_bound_bits` — the ``1.44 * n * log2(R / eps)`` bound
  achieved by the first-cut equilibrium allocation.
* :func:`compound_subtree_fpr` / :func:`predict_range_fpr` — exact doubt-FPR
  recursion over a level-FPR profile, generalising the §2.3 equilibrium
  identity ``phi * (2 - eps) = 1``.
* :func:`catalan_probe_distribution` / :func:`expected_probes_per_interval` —
  the Catalan-number probe-count analysis of §3.2 for empty ranges.
"""

from __future__ import annotations

import math
from typing import Sequence

__all__ = [
    "goswami_lower_bound_bits",
    "rosetta_memory_bound_bits",
    "compound_subtree_fpr",
    "predict_range_fpr",
    "catalan_probe_distribution",
    "expected_probes_per_interval",
    "expected_range_probe_cost",
    "expected_range_probe_cost_nonuniform",
    "nonuniform_theta",
    "achievable_fpr_for_budget",
    "budget_for_target_fpr",
]


def goswami_lower_bound_bits(num_keys: int, max_range: int, fpr: float) -> float:
    """Goswami et al. space lower bound: ``n log(R^(1-O(eps))/eps) - O(n)``.

    We evaluate the dominant term with the ``O(eps)`` exponent correction and
    subtract one bit per key for the ``O(n)`` slack, which makes this a
    conservative (small) bound suitable for "within a constant factor"
    comparisons.
    """
    _check_common(num_keys, max_range, fpr)
    if num_keys == 0:
        return 0.0
    dominant = num_keys * math.log2(max_range ** (1.0 - fpr) / fpr)
    return max(0.0, dominant - num_keys)


def rosetta_memory_bound_bits(num_keys: int, max_range: int, fpr: float) -> float:
    """§3.1's achieved bound: ``log2(e) * n * log2(R / eps) ~= 1.44 n log(R/eps)``."""
    _check_common(num_keys, max_range, fpr)
    if num_keys == 0:
        return 0.0
    return math.log2(math.e) * num_keys * math.log2(max_range / fpr)


def compound_subtree_fpr(level_fprs: Sequence[float]) -> float:
    """Doubt FPR of a subtree whose root sits at the top of ``level_fprs``.

    ``level_fprs[r]`` is the raw Bloom FPR at height ``r`` (leaf first).  For
    an *empty* dyadic range, a doubt at height ``h`` goes positive iff its
    own filter fires AND at least one child subtree doubt survives:

    ``f(0) = p_0``;  ``f(h) = p_h * (1 - (1 - f(h-1))^2)``.

    At the §2.3 equilibrium (``p_h = 1/(2 - eps)`` above a leaf at ``eps``)
    this recursion is stationary: ``f(h) = eps`` at every height.
    """
    if not level_fprs:
        raise ValueError("level_fprs must be non-empty")
    fpr = _checked_fpr(level_fprs[0])
    for raw in level_fprs[1:]:
        p = _checked_fpr(raw)
        fpr = p * (1.0 - (1.0 - fpr) ** 2)
    return fpr


def predict_range_fpr(
    level_fprs: Sequence[float], range_size: int, alignment: int = 1
) -> float:
    """Predicted FPR of an empty range query of ``range_size`` keys.

    Decomposes the concrete range ``[alignment, alignment + range_size - 1]``
    into dyadic intervals (the default ``alignment=1`` is maximally
    misaligned, i.e. the adversarial 2-intervals-per-level case) and
    compounds the per-interval subtree doubt FPRs: ``1 - prod(1 - f_i)``.
    """
    if range_size < 1:
        raise ValueError(f"range_size must be >= 1, got {range_size}")
    if alignment < 0:
        raise ValueError(f"alignment must be >= 0, got {alignment}")
    from repro.core.dyadic import decompose

    max_height = len(level_fprs) - 1
    miss_probability = 1.0
    for interval in decompose(alignment, alignment + range_size - 1, max_height):
        subtree = compound_subtree_fpr(level_fprs[: interval.height + 1])
        miss_probability *= 1.0 - subtree
    return 1.0 - miss_probability


def catalan_probe_distribution(fpr: float, max_terms: int = 256) -> list[float]:
    """``P_i``: probability that a doubt cascade sees exactly ``i`` positives.

    From §3.2: the probes form a binary tree with ``i`` positive internal
    nodes and ``i + 1`` negative leaves, so ``P_i = C_i * p^i * (1-p)^(i+1)``
    with ``C_i`` the i-th Catalan number.  Computed for the idealised
    infinite-depth Rosetta with uniform per-level FPR ``p``.
    """
    p = _checked_fpr(fpr)
    probabilities: list[float] = []
    catalan = 1.0
    for i in range(max_terms):
        probabilities.append(catalan * (p ** i) * ((1.0 - p) ** (i + 1)))
        catalan = catalan * 2 * (2 * i + 1) / (i + 2)
    return probabilities


def expected_probes_per_interval(fpr: float, max_terms: int = 256) -> float:
    """Expected Bloom probes for one dyadic interval of an empty range.

    ``E = sum_i P_i * (2i + 1)``; converges for ``p < 1/2`` and is bounded by
    ``O(1/theta^2)`` with ``p = 0.5 - theta`` (§3.2).
    """
    return sum(
        probability * (2 * i + 1)
        for i, probability in enumerate(catalan_probe_distribution(fpr, max_terms))
    )


def nonuniform_theta(level_fprs: Sequence[float]) -> float:
    """§3.2's θ' for unequal per-level FPRs.

    With ``p_max = max(p_i)`` and ``p_min = min(p_i)``, the doubt cascade
    stays subcritical when ``p_max (1 - p_min) < 1/4``; then
    ``θ' = sqrt(1/4 - p_max (1 - p_min))`` plays the role of θ in the
    ``O(log R / θ'^2)`` probe bound.  Raises when the condition fails
    (the paper's analysis does not apply there).
    """
    if not level_fprs:
        raise ValueError("level_fprs must be non-empty")
    p_max = max(_checked_fpr(p) for p in level_fprs)
    p_min = min(level_fprs)
    product = p_max * (1.0 - p_min)
    if product >= 0.25:
        raise ValueError(
            f"p_max*(1-p_min) = {product:.4f} >= 1/4: the subcritical probe "
            "bound does not apply to this FPR profile"
        )
    return math.sqrt(0.25 - product)


def expected_range_probe_cost_nonuniform(
    level_fprs: Sequence[float], range_size: int, max_terms: int = 256
) -> float:
    """§3.2 non-uniform bound: probes for an empty range, unequal FPRs.

    Uses the paper's substitution ``P_i <= C_i p_max^i (1-p_min)^{i+1}``;
    equivalently the uniform machinery evaluated at the effective
    ``p_eff = 1/2 - θ'`` with θ' from :func:`nonuniform_theta`.
    """
    theta_prime = nonuniform_theta(level_fprs)
    effective_fpr = max(1e-12, 0.5 - theta_prime)
    return expected_range_probe_cost(effective_fpr, range_size, max_terms)


def expected_range_probe_cost(
    fpr: float, range_size: int, max_terms: int = 256
) -> float:
    """Expected total probes for an empty range of ``range_size`` keys.

    Multiplies the per-interval expectation by the maximal dyadic interval
    count ``2 * ceil(log2 R)`` — the §3.2 conclusion that the expected cost
    is ``O(log R / theta^2)``.
    """
    if range_size < 1:
        raise ValueError(f"range_size must be >= 1, got {range_size}")
    intervals = 1 if range_size == 1 else 2 * math.ceil(math.log2(range_size))
    return intervals * expected_probes_per_interval(fpr, max_terms)


def _dyadic_interval_count(max_range: int) -> int:
    if max_range == 1:
        return 1
    return 2 * math.ceil(math.log2(max_range))


def achievable_fpr_for_budget(
    num_keys: int, max_range: int, bits_per_key: float
) -> float:
    """Capacity planning: the whole-query range FPR a budget buys.

    Inverts :func:`budget_for_target_fpr`: the §3.1 bound gives the
    per-subtree FPR ``ε = R · 2^(-bpk/1.44)`` the equilibrium allocation
    achieves; a query decomposes into up to ``2·ceil(log2 R)`` dyadic
    intervals, each an independent chance to fire, so the query-level FPR
    multiplies that count back in.  Clamped to (0, 1].
    """
    if num_keys < 0:
        raise ValueError(f"num_keys must be >= 0, got {num_keys}")
    if max_range < 1:
        raise ValueError(f"max_range must be >= 1, got {max_range}")
    if bits_per_key < 0:
        raise ValueError(f"bits_per_key must be >= 0, got {bits_per_key}")
    epsilon = max_range * 2.0 ** (-bits_per_key / math.log2(math.e))
    return min(1.0, epsilon * _dyadic_interval_count(max_range))


def budget_for_target_fpr(max_range: int, fpr: float) -> float:
    """Capacity planning: bits/key needed for a target *query* FPR.

    §3.1's bound ``1.44 · log2(R/ε)`` prices the per-subtree FPR ``ε``; a
    worst-case query probes up to ``2·ceil(log2 R)`` dyadic subtrees, so
    planning for a whole-query target divides it across the intervals
    first.  Use before provisioning a store's filter memory.

    >>> round(budget_for_target_fpr(64, 0.01), 1)
    23.4
    """
    if max_range < 1:
        raise ValueError(f"max_range must be >= 1, got {max_range}")
    _checked_fpr(fpr)
    per_subtree = fpr / _dyadic_interval_count(max_range)
    return math.log2(math.e) * math.log2(max_range / per_subtree)


def _check_common(num_keys: int, max_range: int, fpr: float) -> None:
    if num_keys < 0:
        raise ValueError(f"num_keys must be >= 0, got {num_keys}")
    if max_range < 1:
        raise ValueError(f"max_range must be >= 1, got {max_range}")
    _checked_fpr(fpr)


def _checked_fpr(fpr: float) -> float:
    if not 0.0 < fpr < 1.0:
        raise ValueError(f"FPR must be in (0, 1), got {fpr}")
    return float(fpr)
