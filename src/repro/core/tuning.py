"""Workload tracking and self-tuning (paper §2.4, last part).

Rosetta "has the ability to track workload patterns and adopt a beneficial
tuning for each individual LSM-tree run".  The key-value store keeps
counters and histograms for query ranges, invoked filter instances, and hit
rates; at compaction time these statistics are reconciled and the
post-compaction Rosetta instances are built with workload-derived weights,
choosing single- vs variable-level allocation per run.

:class:`WorkloadTracker` is the statistics sink (wired into
:mod:`repro.lsm.db` by the filter integration layer) and :class:`AutoTuner`
turns a tracker into a concrete build recipe (:class:`TuningDecision`).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Mapping

from repro.core.allocation import HYBRID_SMALL_RANGE_CUTOFF

__all__ = ["WorkloadTracker", "AutoTuner", "TuningDecision", "observed_fpr"]


def observed_fpr(false_positives: int, negatives: int) -> float:
    """Measured filter FPR under the *rejectable-query* convention.

    ``false_positives / (negatives + false_positives)``: among queries the
    filter could have rejected (the ground truth was empty), the share it
    failed to.  True positives are excluded from the denominator — a
    filter is never wrong on them, so counting them would let a
    positive-heavy workload mask an attack.  This is the single shared
    definition: ``PerfStats.observed_fpr``, the tracker below, and the
    FP-feedback attack detector all call it, so the tuner and the
    detector can never disagree.
    """
    rejectable = negatives + false_positives
    if rejectable == 0:
        return 0.0
    return false_positives / rejectable


class WorkloadTracker:
    """Accumulates the native statistics a key-value store already keeps.

    Thread-unsafe by design (the LSM store serialises stat updates); cheap to
    merge, so per-run trackers can be reconciled at compaction time.
    """

    def __init__(self) -> None:
        self._range_sizes: Counter[int] = Counter()
        self._point_queries = 0
        self._filter_positives = 0
        self._filter_negatives = 0
        self._false_positives = 0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_range_query(self, range_size: int) -> None:
        """Record one range query of ``range_size`` keys."""
        if range_size < 1:
            raise ValueError(f"range_size must be >= 1, got {range_size}")
        self._range_sizes[range_size] += 1

    def record_point_query(self) -> None:
        """Record one point query."""
        self._point_queries += 1

    def record_filter_outcome(self, positive: bool, truly_nonempty: bool) -> None:
        """Record a filter verdict and (after the I/O) the ground truth."""
        if positive:
            self._filter_positives += 1
            if not truly_nonempty:
                self._false_positives += 1
        else:
            self._filter_negatives += 1

    def merge(self, other: "WorkloadTracker") -> None:
        """Fold another tracker's statistics into this one."""
        self._range_sizes.update(other._range_sizes)
        self._point_queries += other._point_queries
        self._filter_positives += other._filter_positives
        self._filter_negatives += other._filter_negatives
        self._false_positives += other._false_positives

    def reset(self) -> None:
        """Clear all statistics (post-compaction reconciliation)."""
        self._range_sizes.clear()
        self._point_queries = 0
        self._filter_positives = 0
        self._filter_negatives = 0
        self._false_positives = 0

    # ------------------------------------------------------------------
    # Persistence (the store checkpoints statistics with its manifest)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-serializable snapshot of all statistics."""
        return {
            "range_sizes": {str(k): v for k, v in self._range_sizes.items()},
            "point_queries": self._point_queries,
            "filter_positives": self._filter_positives,
            "filter_negatives": self._filter_negatives,
            "false_positives": self._false_positives,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "WorkloadTracker":
        """Restore a tracker saved with :meth:`to_dict`."""
        tracker = cls()
        for size, count in payload.get("range_sizes", {}).items():
            tracker._range_sizes[int(size)] = int(count)
        tracker._point_queries = int(payload.get("point_queries", 0))
        tracker._filter_positives = int(payload.get("filter_positives", 0))
        tracker._filter_negatives = int(payload.get("filter_negatives", 0))
        tracker._false_positives = int(payload.get("false_positives", 0))
        return tracker

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def range_size_histogram(self) -> dict[int, int]:
        """Observed range-size counts (size -> queries)."""
        return dict(self._range_sizes)

    @property
    def num_range_queries(self) -> int:
        """Total range queries recorded."""
        return sum(self._range_sizes.values())

    @property
    def num_point_queries(self) -> int:
        """Total point queries recorded."""
        return self._point_queries

    @property
    def observed_false_positive_rate(self) -> float:
        """Measured FPR of filter verdicts (0.0 with no data).

        Shares the rejectable-query convention of :func:`observed_fpr`
        with ``PerfStats.observed_fpr`` and the attack detector.
        """
        return observed_fpr(self._false_positives, self._filter_negatives)

    def dominant_small_ranges(self) -> bool:
        """True when ranges of size <= 16 carry most of the query mass."""
        total = self.num_range_queries
        if total == 0:
            return False
        small = sum(
            count
            for size, count in self._range_sizes.items()
            if size <= HYBRID_SMALL_RANGE_CUTOFF
        )
        return small / total > 0.5

    def percentile_range_size(self, quantile: float) -> int:
        """Smallest range size covering ``quantile`` of the query mass."""
        if not 0.0 < quantile <= 1.0:
            raise ValueError(f"quantile must be in (0, 1], got {quantile}")
        total = self.num_range_queries
        if total == 0:
            return 1
        needed = quantile * total
        running = 0
        for size in sorted(self._range_sizes):
            running += self._range_sizes[size]
            if running >= needed:
                return size
        return max(self._range_sizes)


@dataclass(frozen=True)
class TuningDecision:
    """A concrete recipe for building the next Rosetta instance."""

    strategy: str
    max_range: int
    range_size_histogram: dict[int, int] = field(default_factory=dict)

    def build_kwargs(self) -> dict:
        """Keyword arguments to pass straight to :meth:`Rosetta.build`."""
        return {
            "strategy": self.strategy,
            "max_range": self.max_range,
            "range_size_histogram": self.range_size_histogram or None,
        }


class AutoTuner:
    """Turns workload statistics into a Rosetta build recipe.

    Policy (matching §2.4's hybrid mechanism):

    * Dominantly small ranges (<= 16): ``single``-level filter — best FPR,
      probe cost stays acceptable because ranges are short.
    * Otherwise: ``variable``-level filter with the observed histogram as
      weights.
    * Point-query-only workloads degrade to ``single`` (all memory in the
      full-key level, which is exactly a classic Bloom filter).

    ``max_range`` is sized to the quantile of observed range sizes given by
    ``coverage`` (default P99), rounded up to a power of two and clamped to
    ``range_cap``.

    ``attack_bits_bonus`` is the FP-feedback reallocation knob: when a
    run's filter has been flagged as under a false-positive replay attack,
    its compaction rebuild is granted this many extra bits per key (see
    :meth:`rebuild_bits_per_key`), driving the rebuilt filter's design FPR
    down so the attacker has to re-learn against a harder target.
    """

    def __init__(
        self,
        coverage: float = 0.99,
        range_cap: int = 4096,
        attack_bits_bonus: float = 8.0,
    ) -> None:
        if not 0.0 < coverage <= 1.0:
            raise ValueError(f"coverage must be in (0, 1], got {coverage}")
        if range_cap < 1:
            raise ValueError(f"range_cap must be >= 1, got {range_cap}")
        if attack_bits_bonus < 0:
            raise ValueError(
                f"attack_bits_bonus must be >= 0, got {attack_bits_bonus}"
            )
        self.coverage = coverage
        self.range_cap = range_cap
        self.attack_bits_bonus = attack_bits_bonus

    def rebuild_bits_per_key(
        self, base_bits_per_key: float, under_attack: bool
    ) -> float:
        """Bits/key for a filter rebuild; flagged runs get the bonus."""
        if under_attack:
            return base_bits_per_key + self.attack_bits_bonus
        return base_bits_per_key

    def recommend(
        self, tracker: WorkloadTracker, default_max_range: int = 64
    ) -> TuningDecision:
        """Recommend a build recipe from observed statistics."""
        if tracker.num_range_queries == 0:
            if tracker.num_point_queries > 0:
                return TuningDecision(strategy="single", max_range=1)
            return TuningDecision(strategy="optimized", max_range=default_max_range)

        observed = tracker.percentile_range_size(self.coverage)
        max_range = min(_next_power_of_two(observed), self.range_cap)
        histogram = tracker.range_size_histogram
        if tracker.dominant_small_ranges():
            return TuningDecision(
                strategy="single", max_range=max_range,
                range_size_histogram=histogram,
            )
        return TuningDecision(
            strategy="variable", max_range=max_range,
            range_size_histogram=histogram,
        )


def _next_power_of_two(value: int) -> int:
    if value < 1:
        return 1
    return 1 << (value - 1).bit_length()
