"""Rosetta — the paper's range filter (§2).

A :class:`Rosetta` instance indexes a fixed set of integer keys drawn from a
``2^key_bits`` domain by inserting *every binary prefix* of every key into a
Bloom filter dedicated to that prefix length (Algorithm 1).  The filters form
an implicit segment tree: the Bloom filter at height ``r`` above the leaves
holds the ``(key_bits - r)``-bit prefixes, i.e. the dyadic blocks of size
``2^r``.

Range queries (Algorithm 2) decompose ``[low, high]`` into maximal dyadic
blocks, probe each block's prefix, and on a positive recursively *doubt* the
block by probing its two children, pre-order, until either a full root-to-leaf
positive path survives (range may be non-empty) or every branch dies (range
is definitely empty).

Because the paper bounds the maximum range size ``R``, only the bottom
``floor(log2 R) + 1`` levels are materialised (§3.1) — levels above the
largest dyadic block a query can produce are never probed.  Setting
``max_range = 1`` yields the single-level design of §2.4, where a range query
probes every key in the range against the full-key filter.

Instances are immutable once built, matching their role in an LSM-tree: one
Rosetta per immutable run, rebuilt from scratch at every compaction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.core import doubting, dyadic
from repro.core.allocation import LevelAllocation, allocate
from repro.core.bloom import BloomFilter, optimal_num_hashes
from repro.core.doubting import FrontierResult
from repro.errors import FilterBuildError, FilterQueryError, SerializationError

__all__ = ["Rosetta", "ProbeStats"]


@dataclass
class ProbeStats:
    """Mutable probe-cost counters, accumulated across queries.

    The paper's Fig. 4/5 probe-cost measurements are counts of Bloom-filter
    probes; probes against zero-bit (always-positive) levels are free and not
    counted, which is exactly what makes the variable-level allocation cheap.
    """

    bloom_probes: int = 0
    dyadic_intervals: int = 0
    range_queries: int = 0
    point_queries: int = 0
    #: Vectorized bulk-probe invocations issued by the frontier engine.
    bulk_probe_calls: int = 0

    def reset(self) -> None:
        """Zero all counters."""
        self.bloom_probes = 0
        self.dyadic_intervals = 0
        self.range_queries = 0
        self.point_queries = 0
        self.bulk_probe_calls = 0


class Rosetta:
    """Hierarchical Bloom-filter range filter over integer keys.

    Build with :meth:`build`; query with :meth:`may_contain` (points),
    :meth:`may_contain_range` (range emptiness), or
    :meth:`tightened_range` (range emptiness plus effective-range narrowing,
    §2.2.1).

    Examples
    --------
    >>> filt = Rosetta.build([3, 6, 7, 8, 9, 11], key_bits=4, bits_per_key=16,
    ...                      max_range=8)
    >>> filt.may_contain_range(8, 12)
    True
    >>> filt.may_contain_range(4, 5)
    False
    """

    __slots__ = (
        "_key_bits",
        "_max_height",
        "_filters",
        "_allocation",
        "_num_keys",
        "stats",
    )

    def __init__(
        self,
        key_bits: int,
        filters: Sequence[BloomFilter],
        allocation: LevelAllocation,
        num_keys: int,
    ) -> None:
        """Internal constructor; use :meth:`build` or :meth:`from_bytes`."""
        if key_bits < 1:
            raise FilterBuildError(f"key_bits must be >= 1, got {key_bits}")
        if not filters:
            raise FilterBuildError("Rosetta requires at least one filter level")
        if len(filters) > key_bits + 1:
            raise FilterBuildError(
                f"{len(filters)} levels exceed key domain depth {key_bits}"
            )
        self._key_bits = key_bits
        self._max_height = len(filters) - 1
        self._filters = list(filters)
        self._allocation = allocation
        self._num_keys = num_keys
        self.stats = ProbeStats()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        keys: Iterable[int],
        *,
        key_bits: int = 64,
        bits_per_key: float | None = None,
        total_bits: int | None = None,
        max_range: int = 64,
        strategy: str = "optimized",
        range_size_histogram: Mapping[int, float] | None = None,
        salt: int = 0,
    ) -> "Rosetta":
        """Build a Rosetta over ``keys`` (Algorithm 1 + §2.3/2.4 allocation).

        Parameters
        ----------
        keys:
            Non-negative integers below ``2^key_bits``.  Duplicates are fine.
        key_bits:
            Width of the key domain in bits (the paper's ``L``).
        bits_per_key / total_bits:
            The memory budget ``M``; give exactly one.
        max_range:
            Largest range-query size the filter is optimised for (``R``).
            Only the bottom ``floor(log2 R) + 1`` levels are kept.  Queries
            larger than ``R`` still answer correctly, just with more probes.
        strategy:
            Memory-allocation strategy (see :mod:`repro.core.allocation`).
        range_size_histogram:
            Observed range-size distribution for the workload-aware
            strategies and the ``hybrid`` rule.
        salt:
            Re-keying salt applied by every level's Bloom filter (see
            :class:`~repro.core.bloom.BloomFilter`).  0 (default) keeps
            the historical unsalted hashes.
        """
        unique = cls._validated_unique_keys(keys, key_bits)
        num_keys = len(unique)

        if (bits_per_key is None) == (total_bits is None):
            raise FilterBuildError(
                "give exactly one of bits_per_key or total_bits"
            )
        if total_bits is None:
            total_bits = int(round(bits_per_key * num_keys))
        if total_bits < 0:
            raise FilterBuildError(f"total_bits must be >= 0, got {total_bits}")
        if max_range < 1:
            raise FilterBuildError(f"max_range must be >= 1, got {max_range}")

        max_height = min(max_range.bit_length() - 1, key_bits)
        level_allocation = allocate(
            strategy,
            num_keys=num_keys,
            total_bits=total_bits,
            max_height=max_height,
            range_size_histogram=range_size_histogram,
        )
        filters = cls._build_filters(unique, key_bits, level_allocation, salt)
        return cls(key_bits, filters, level_allocation, num_keys)

    @staticmethod
    def _validated_unique_keys(keys: Iterable[int], key_bits: int):
        """Return sorted unique keys, validating the domain."""
        if key_bits <= 64:
            try:
                arr = np.fromiter((int(k) for k in keys), dtype=np.uint64)
            except (OverflowError, ValueError) as exc:
                raise FilterBuildError(
                    f"keys must lie in [0, 2^{key_bits})"
                ) from exc
            if len(arr) and int(arr.max()) >> key_bits:
                raise FilterBuildError(f"keys must lie in [0, 2^{key_bits})")
            return np.unique(arr)
        unique = sorted(set(int(k) for k in keys))
        if unique and (unique[0] < 0 or unique[-1] >> key_bits):
            raise FilterBuildError(f"keys must lie in [0, 2^{key_bits})")
        return unique

    @staticmethod
    def _build_filters(
        unique_keys,
        key_bits: int,
        level_allocation: LevelAllocation,
        salt: int = 0,
    ) -> list[BloomFilter]:
        """Insert every prefix of every key into its level's Bloom filter.

        Sorted input lets us insert only *unique* prefixes per level (the §3.2
        construction bound: at most ``n * L`` Bloom insertions, usually far
        fewer at shallow levels).
        """
        filters: list[BloomFilter] = []
        vectorized = key_bits <= 64 and isinstance(unique_keys, np.ndarray)
        for height, num_bits in enumerate(level_allocation.bits_per_level):
            if vectorized:
                prefixes = np.unique(unique_keys >> np.uint64(height))
                count = len(prefixes)
            else:
                prefixes = sorted({key >> height for key in unique_keys})
                count = len(prefixes)
            bits_per_item = num_bits / count if count else 1.0
            bloom = BloomFilter(
                num_bits, optimal_num_hashes(bits_per_item), salt=salt
            )
            if not bloom.is_always_positive:
                if vectorized:
                    bloom.add_many_ints(prefixes)
                else:
                    for prefix in prefixes:
                        bloom.add(prefix)
            filters.append(bloom)
        return filters

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    @property
    def key_bits(self) -> int:
        """Width of the key domain in bits (``L``)."""
        return self._key_bits

    @property
    def num_levels(self) -> int:
        """Number of materialised Bloom-filter levels."""
        return self._max_height + 1

    @property
    def max_height(self) -> int:
        """Height of the tallest level (``floor(log2 R)``)."""
        return self._max_height

    @property
    def num_keys(self) -> int:
        """Number of distinct keys indexed."""
        return self._num_keys

    @property
    def salt(self) -> int:
        """The re-keying salt shared by every level (0 when unsalted)."""
        return self._filters[0].salt

    @property
    def levels(self) -> tuple[BloomFilter, ...]:
        """The Bloom-filter stack, leaf level (height 0) first.

        This is the shape :mod:`repro.core.doubting` consumes; exposing it
        lets the LSM read path doubt one range against several runs' stacks
        in a single frontier sweep.
        """
        return tuple(self._filters)

    @property
    def allocation(self) -> LevelAllocation:
        """The memory allocation this filter was built with."""
        return self._allocation

    def size_in_bits(self) -> int:
        """Total filter memory in bits (sum of all levels)."""
        return sum(f.size_in_bits() for f in self._filters)

    def bits_per_key(self) -> float:
        """Memory cost normalised per indexed key."""
        if self._num_keys == 0:
            return 0.0
        return self.size_in_bits() / self._num_keys

    def level_filter(self, height: int) -> BloomFilter:
        """The Bloom filter at ``height`` above the leaves (0 = full keys)."""
        return self._filters[height]

    def memory_breakdown(self) -> list[int]:
        """Bits actually used per level, leaf first."""
        return [f.size_in_bits() for f in self._filters]

    def describe(self) -> str:
        """Human-readable per-level summary (introspection/debugging aid).

        One line per Bloom-filter level: prefix length, memory, hash count,
        items indexed, the *actual* bit-array fill ratio (popcount), the
        FPR-derived fill estimate, and the estimated raw FPR.
        """
        lines = [
            f"Rosetta: {self._num_keys} keys over a 2^{self._key_bits} domain, "
            f"{self.num_levels} levels, strategy={self._allocation.strategy!r}, "
            f"{self.bits_per_key():.2f} bits/key",
            f"{'height':>6}  {'prefix_bits':>11}  {'bits':>10}  {'k':>2}  "
            f"{'items':>9}  {'fill':>6}  {'est_fill':>8}  {'est_fpr':>9}",
        ]
        for height, filt in enumerate(self._filters):
            if filt.is_always_positive:
                fill, est_fill, fpr = "-", "-", "1 (empty)"
            else:
                fill = f"{filt.fill_ratio():.3f}"
                est_fill = f"{filt.expected_fpr() ** (1 / filt.num_hashes):.3f}"
                fpr = f"{filt.expected_fpr():.3e}"
            lines.append(
                f"{height:>6}  {self._key_bits - height:>11}  "
                f"{filt.size_in_bits():>10}  {filt.num_hashes:>2}  "
                f"{filt.num_items:>9}  {fill:>6}  {est_fill:>8}  {fpr:>9}"
            )
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def may_contain(self, key: int) -> bool:
        """Point lookup (§2.2.2): probe only the full-key (leaf) level."""
        self.stats.point_queries += 1
        if self._num_keys == 0:
            return False
        self._check_key(key)
        leaf = self._filters[0]
        if not leaf.is_always_positive:
            self.stats.bloom_probes += 1
        return leaf.may_contain(key)

    def may_contain_batch(self, keys) -> np.ndarray:
        """Vectorized point lookups: one boolean per key.

        Equivalent to mapping :meth:`may_contain`, but the leaf level
        answers the whole batch through one
        :meth:`~repro.core.bloom.BloomFilter.may_contain_many_ints` gather
        (requires ``key_bits <= 64``).  Duplicate keys are hashed and
        probed once; ``bloom_probes`` charges the distinct probes actually
        issued, mirroring the range paths' dedup accounting.
        """
        keys = np.asarray(keys, dtype=np.uint64)
        if self._key_bits > 64:
            raise FilterQueryError(
                "batch point lookups require key_bits <= 64"
            )
        if len(keys) and int(keys.max()) >> self._key_bits:
            raise FilterQueryError(
                f"keys must lie in [0, 2^{self._key_bits})"
            )
        self.stats.point_queries += len(keys)
        if self._num_keys == 0:
            return np.zeros(len(keys), dtype=bool)
        leaf = self._filters[0]
        if leaf.is_always_positive:
            return np.ones(len(keys), dtype=bool)
        unique, inverse = np.unique(keys, return_inverse=True)
        self.stats.bloom_probes += len(unique)
        return leaf.may_contain_many_ints(unique)[inverse]

    def may_contain_range_batch(
        self,
        lows,
        highs,
        *,
        probe_budget: int | None = None,
        dedup: bool = True,
    ) -> np.ndarray:
        """Vectorized range lookups: one boolean per (low, high) pair.

        All queries are resolved by the frontier engine
        (:mod:`repro.core.doubting`) in one level-synchronous sweep: at each
        height the surviving prefixes of *every* query are probed with one
        bulk Bloom operation, and a prefix shared by several queries is
        hashed and probed once (``dedup=True``, the default).  Work is
        chunked so oversized ranges — including the single-level §2.4 design,
        where every key of the range is probed — never materialize huge
        arrays, with an early exit as soon as a query turns positive.

        ``dedup=False`` switches probe accounting (and ``probe_budget``
        semantics) to match the sequential recursion exactly, query by
        query; a ``probe_budget`` forces that mode.  Verdicts agree with
        :meth:`may_contain_range` query-for-query in both modes, and a
        batch holding a single live query takes the scalar path's exact
        accounting either way, so its ``bloom_probes`` /
        ``dyadic_intervals`` charges equal the scalar call's.
        """
        lows = [int(v) for v in lows]
        highs = [int(v) for v in highs]
        if len(lows) != len(highs):
            raise FilterQueryError("lows and highs must align")
        if self._key_bits > 64:
            # Wide domains cannot ride the uint64 frontier; doubt per query.
            return np.fromiter(
                (
                    self.may_contain_range(lo, hi, probe_budget=probe_budget)
                    for lo, hi in zip(lows, highs)
                ),
                dtype=bool,
                count=len(lows),
            )
        clamped = [self._clamp_range(lo, hi) for lo, hi in zip(lows, highs)]
        self.stats.range_queries += len(lows)
        answers = np.zeros(len(lows), dtype=bool)
        if self._num_keys == 0 or not lows:
            return answers
        if probe_budget is not None and probe_budget < 1:
            # Exhausted before the first probe: every query degrades to a
            # (sound) positive, as in the scalar path.
            answers[:] = True
            return answers
        live = [i for i, (lo, hi) in enumerate(clamped) if lo <= hi]
        if not live:
            return answers
        if probe_budget is not None:
            dedup = False
        result = doubting.doubt_batch(
            self._filters,
            [clamped[i][0] for i in live],
            [clamped[i][1] for i in live],
            dedup=dedup,
            probe_budget=probe_budget,
        )
        self._charge(result)
        answers[live] = result.answers
        return answers

    def may_contain_range(
        self, low: int, high: int, probe_budget: int | None = None
    ) -> bool:
        """Range-emptiness lookup (Algorithm 2).

        Returns ``False`` only if ``[low, high]`` definitely holds no key.

        Resolved by the frontier engine as a batch of one, in the exact
        accounting mode: verdicts, :class:`ProbeStats` charges, and
        ``probe_budget`` semantics are identical to the reference recursion
        (:meth:`may_contain_range_recursive`), but each level of the doubt
        is one bulk Bloom probe instead of a Python recursion.

        ``probe_budget`` caps the Bloom probes spent on this query — the
        CPU side of the paper's CPU/FPR tradeoff made explicit.  When the
        budget runs out mid-doubt the filter answers ``True``
        (conservative: bounded CPU can only cost false positives, never
        correctness).
        """
        low, high = self._clamp_range(low, high)
        self.stats.range_queries += 1
        if self._num_keys == 0 or low > high:
            return False
        if probe_budget is not None and probe_budget < 1:
            return True
        if self._key_bits > 64:
            return self._doubt_decomposition(low, high, probe_budget)
        result = doubting.doubt_batch(
            self._filters, [low], [high], dedup=False, probe_budget=probe_budget
        )
        self._charge(result)
        return bool(result.answers[0])

    def may_contain_range_recursive(
        self, low: int, high: int, probe_budget: int | None = None
    ) -> bool:
        """The pre-engine scalar path: per-prefix recursive doubting.

        Kept as the executable reference for Algorithm 2 — the equivalence
        tests pin :meth:`may_contain_range` and
        :meth:`may_contain_range_batch` (dedup off) to its verdicts *and*
        probe counts.  Also the fallback for domains wider than 64 bits.
        """
        low, high = self._clamp_range(low, high)
        self.stats.range_queries += 1
        if self._num_keys == 0 or low > high:
            return False
        if probe_budget is not None and probe_budget < 1:
            return True
        return self._doubt_decomposition(low, high, probe_budget)

    def _doubt_decomposition(
        self, low: int, high: int, probe_budget: int | None
    ) -> bool:
        """Decompose-and-doubt loop shared by the recursive paths."""
        deadline = (
            self.stats.bloom_probes + probe_budget
            if probe_budget is not None
            else None
        )
        for interval in dyadic.decompose(low, high, self._max_height):
            self.stats.dyadic_intervals += 1
            if self._doubt(interval.prefix, interval.height, deadline):
                return True
        return False

    def tightened_range(self, low: int, high: int) -> tuple[int, int] | None:
        """Range lookup with effective-range tightening (§2.2.1).

        Returns ``None`` when the range is definitely empty; otherwise the
        narrowest ``(effective_low, effective_high)`` sub-range that may hold
        keys — storage I/O can then seek the narrower range.

        The frontier engine extracts both bounds in one sweep: the leaf
        level's surviving prefixes are reduced per query to their minimum
        and maximum, so no subtree is walked twice.  Verdicts and bounds
        match :meth:`tightened_range_recursive`; probe charges are the bulk
        probes actually issued (the engine dedups within the sweep, and
        never re-probes shared nodes the way the recursive left/right scans
        do).
        """
        low, high = self._clamp_range(low, high)
        self.stats.range_queries += 1
        if self._num_keys == 0 or low > high:
            return None
        if self._key_bits > 64:
            return self._tightened_scan(low, high)
        result = doubting.doubt_batch(
            self._filters, [low], [high], dedup=True, want_bounds=True
        )
        self._charge(result)
        if not result.answers[0]:
            return None
        effective_low = int(result.effective_lows[0])
        effective_high = int(result.effective_highs[0])
        return (
            max(effective_low, low),
            min(max(effective_high, effective_low), high),
        )

    def tightened_range_recursive(
        self, low: int, high: int
    ) -> tuple[int, int] | None:
        """The pre-engine tightening path (reference; wide-domain fallback)."""
        low, high = self._clamp_range(low, high)
        self.stats.range_queries += 1
        if self._num_keys == 0 or low > high:
            return None
        return self._tightened_scan(low, high)

    def _tightened_scan(self, low: int, high: int) -> tuple[int, int] | None:
        """Left/right recursive survivor scans shared by the legacy paths."""
        intervals = list(dyadic.decompose(low, high, self._max_height))
        self.stats.dyadic_intervals += len(intervals)

        first_idx: int | None = None
        effective_low = 0
        for idx, interval in enumerate(intervals):
            leftmost = self._leftmost_positive(interval.prefix, interval.height)
            if leftmost is not None:
                first_idx, effective_low = idx, leftmost
                break
        if first_idx is None:
            return None

        # Scan from the right down to (and including) the first positive
        # interval; probing is deterministic, so that interval is guaranteed
        # to yield a rightmost value and the loop always terminates with one.
        effective_high = effective_low
        for idx in range(len(intervals) - 1, first_idx - 1, -1):
            interval = intervals[idx]
            rightmost = self._rightmost_positive(interval.prefix, interval.height)
            if rightmost is not None:
                effective_high = rightmost
                break
        return max(effective_low, low), min(max(effective_high, effective_low), high)

    def _charge(self, result: FrontierResult) -> None:
        """Fold a frontier-engine result into this instance's counters."""
        self.stats.bloom_probes += result.probes
        self.stats.dyadic_intervals += result.intervals
        self.stats.bulk_probe_calls += result.bulk_probe_calls

    # ------------------------------------------------------------------
    # Doubting (Algorithm 2 core, recursive reference)
    # ------------------------------------------------------------------
    def _probe(self, prefix: int, height: int) -> bool:
        filt = self._filters[height]
        if filt.is_always_positive:
            return True
        self.stats.bloom_probes += 1
        return filt.may_contain(prefix)

    def _doubt(
        self, prefix: int, height: int, deadline: int | None = None
    ) -> bool:
        """Pre-order descent: does any root-to-leaf positive path survive?

        ``deadline`` is an absolute probe-counter value; once reached, the
        doubt gives up and answers positive (bounded-CPU mode).
        """
        if deadline is not None and self.stats.bloom_probes >= deadline:
            return True
        if not self._probe(prefix, height):
            return False
        if height == 0:
            return True
        left = prefix << 1
        if self._doubt(left, height - 1, deadline):
            return True
        return self._doubt(left | 1, height - 1, deadline)

    def _leftmost_positive(self, prefix: int, height: int) -> int | None:
        """Smallest leaf value with a surviving positive path, if any."""
        if not self._probe(prefix, height):
            return None
        if height == 0:
            return prefix
        left = prefix << 1
        found = self._leftmost_positive(left, height - 1)
        if found is not None:
            return found
        return self._leftmost_positive(left | 1, height - 1)

    def _rightmost_positive(self, prefix: int, height: int) -> int | None:
        """Largest leaf value with a surviving positive path, if any."""
        if not self._probe(prefix, height):
            return None
        if height == 0:
            return prefix
        right = (prefix << 1) | 1
        found = self._rightmost_positive(right, height - 1)
        if found is not None:
            return found
        return self._rightmost_positive(prefix << 1, height - 1)

    # ------------------------------------------------------------------
    # Prediction / combination
    # ------------------------------------------------------------------
    def predicted_range_fpr(self, range_size: int, alignment: int = 1) -> float:
        """This instance's analytically predicted empty-range FPR.

        Feeds the per-level fill-ratio FPR estimates into the §3 doubt
        recursion (:func:`repro.core.analysis.predict_range_fpr`).  Useful
        for sanity-checking a built filter without running a workload.
        """
        from repro.core.analysis import predict_range_fpr

        level_fprs = [
            min(max(filt.expected_fpr(), 1e-12), 1.0 - 1e-12)
            for filt in self._filters
        ]
        return predict_range_fpr(level_fprs, range_size, alignment)

    def union(self, other: "Rosetta") -> "Rosetta":
        """Merge two same-geometry instances without rebuilding (OR levels).

        The result answers positive wherever either input would — sound
        for a merged run's key set, at the *combined* fill ratio (so FPR
        degrades versus a fresh rebuild, which is why the paper rebuilds
        at compaction; the union is the cheap alternative when compaction
        throughput matters more than FPR).
        """
        if (
            other._key_bits != self._key_bits
            or other.num_levels != self.num_levels
        ):
            raise FilterBuildError(
                "can only union Rosetta instances with identical geometry"
            )
        merged_filters = [
            mine.union(theirs)
            for mine, theirs in zip(self._filters, other._filters)
        ]
        allocation = LevelAllocation(
            bits_per_level=tuple(f.size_in_bits() for f in merged_filters),
            strategy="union",
        )
        return Rosetta(
            self._key_bits,
            merged_filters,
            allocation,
            self._num_keys + other._num_keys,
        )

    # ------------------------------------------------------------------
    # Validation helpers
    # ------------------------------------------------------------------
    def _domain_max(self) -> int:
        return (1 << self._key_bits) - 1

    def _check_key(self, key: int) -> None:
        if not 0 <= key <= self._domain_max():
            raise FilterQueryError(
                f"key {key} outside domain [0, 2^{self._key_bits})"
            )

    def _clamp_range(self, low: int, high: int) -> tuple[int, int]:
        if low > high:
            raise FilterQueryError(f"invalid range: low={low} > high={high}")
        if low < 0:
            low = 0
        return low, min(high, self._domain_max())

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    _MAGIC = b"ROSETTA2"

    def to_bytes(self) -> bytes:
        """Serialize the full filter (all levels) to bytes."""
        parts = [
            self._MAGIC,
            self._key_bits.to_bytes(2, "little"),
            self.num_levels.to_bytes(2, "little"),
            self._num_keys.to_bytes(8, "little"),
        ]
        for filt in self._filters:
            payload = filt.to_bytes()
            parts.append(len(payload).to_bytes(8, "little"))
            parts.append(payload)
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, payload: bytes) -> "Rosetta":
        """Reconstruct a filter from :meth:`to_bytes` output."""
        if payload[:8] != cls._MAGIC:
            raise SerializationError("bad Rosetta magic")
        key_bits = int.from_bytes(payload[8:10], "little")
        num_levels = int.from_bytes(payload[10:12], "little")
        num_keys = int.from_bytes(payload[12:20], "little")
        offset = 20
        filters: list[BloomFilter] = []
        for _ in range(num_levels):
            if offset + 8 > len(payload):
                raise SerializationError("truncated Rosetta level header")
            length = int.from_bytes(payload[offset : offset + 8], "little")
            offset += 8
            if offset + length > len(payload):
                raise SerializationError("truncated Rosetta level payload")
            filters.append(BloomFilter.from_bytes(payload[offset : offset + length]))
            offset += length
        allocation = LevelAllocation(
            bits_per_level=tuple(f.size_in_bits() for f in filters),
            strategy="deserialized",
        )
        return cls(key_bits, filters, allocation, num_keys)

    def __repr__(self) -> str:
        return (
            f"Rosetta(key_bits={self._key_bits}, levels={self.num_levels}, "
            f"keys={self._num_keys}, bits={self.size_in_bits()}, "
            f"strategy={self._allocation.strategy!r})"
        )
