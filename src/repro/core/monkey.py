"""Monkey-style filter-memory allocation across LSM-tree levels.

The paper's memory budget is always quoted per key, uniformly across runs.
Its citation [24] (Dayan et al., "Monkey: Optimal Navigable Key-Value
Store") shows that for *point* queries the optimal split of a global filter
memory budget across LSM levels is non-uniform: smaller (younger) runs
deserve exponentially more bits per key, because every lookup probes every
run but the cost of a false positive is one I/O regardless of run size.

This module ports that result to the per-run filter budgets of this store:
minimize the expected number of false-positive I/Os per point lookup,

    sum_i  r_i * exp(-(M_i / n_i) * ln(2)^2),

subject to ``sum_i M_i = M``, where ``n_i`` is the number of keys in run
``i`` and ``r_i`` how often the run is probed (1 for every run on the read
path).  The KKT solution is the same water-filling shape as the paper's
Eq. 3 with weights ``n_i`` — runs with fewer keys end up with *more* bits
per key.

Use :func:`allocate_run_budgets` to derive per-run bits/key, and
:class:`MonkeyBudgetPolicy` to plug it into a store: the policy observes
run sizes and hands each new filter build its budget.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.errors import AllocationError

_BETA = math.log(2.0) ** 2

__all__ = ["allocate_run_budgets", "expected_false_positive_ios",
           "MonkeyBudgetPolicy"]


def allocate_run_budgets(
    run_sizes: Sequence[int], total_bits: int
) -> list[int]:
    """Split ``total_bits`` of filter memory across runs of given sizes.

    Returns one bit budget per run, minimizing the summed per-run FPR
    (Monkey's objective).  Degenerate runs (0 keys) receive 0 bits.

    >>> small, large = allocate_run_budgets([1_000, 100_000], 1_010_000)
    >>> small / 1_000 > large / 100_000   # smaller run: more bits/key
    True
    """
    if total_bits < 0:
        raise AllocationError(f"total_bits must be >= 0, got {total_bits}")
    if any(size < 0 for size in run_sizes):
        raise AllocationError("run sizes must be non-negative")
    active = [i for i, size in enumerate(run_sizes) if size > 0]
    budgets = [0.0] * len(run_sizes)
    if not active or total_bits == 0:
        return [0] * len(run_sizes)

    # Water-filling: FPR_i = exp(-M_i/n_i * beta); optimality requires the
    # *derivative* beta/n_i * exp(-M_i beta/n_i) equal across active runs.
    # Solve for the shared lambda by bisection on the implied total memory.
    def memory_for(lam: float) -> float:
        total = 0.0
        for i in active:
            n = run_sizes[i]
            # M_i = (n/beta) * ln(beta / (n * lam)), clamped at 0.
            value = (n / _BETA) * math.log(_BETA / (n * lam)) if lam > 0 else float("inf")
            total += max(0.0, value)
        return total

    lo, hi = 1e-300, 1e6
    for _ in range(500):
        mid = math.sqrt(lo * hi)
        if memory_for(mid) > total_bits:
            lo = mid
        else:
            hi = mid
    lam = hi
    for i in active:
        n = run_sizes[i]
        budgets[i] = max(0.0, (n / _BETA) * math.log(_BETA / (n * lam)))

    # Normalise rounding drift onto the biggest-budget runs (which can
    # always absorb a few bits in either direction).
    ints = [int(round(b)) for b in budgets]
    drift = total_bits - sum(ints)
    for index in sorted(active, key=lambda i: -ints[i]):
        adjusted = max(0, ints[index] + drift)
        drift += ints[index] - adjusted
        ints[index] = adjusted
        if drift == 0:
            break
    return ints


def expected_false_positive_ios(
    run_sizes: Sequence[int], budgets: Sequence[int]
) -> float:
    """Expected false-positive I/Os per point lookup over all runs."""
    if len(run_sizes) != len(budgets):
        raise AllocationError("run_sizes and budgets must align")
    total = 0.0
    for size, bits in zip(run_sizes, budgets):
        if size > 0:
            total += math.exp(-(bits / size) * _BETA)
    return total


@dataclass
class MonkeyBudgetPolicy:
    """Derives per-run bits/key from a global memory budget.

    Parameters
    ----------
    total_bits_per_key:
        Global budget, expressed per key across the whole store (so the
        total pool is ``total_bits_per_key * total_keys``).

    The policy is consulted with the current run-size layout; it returns
    the bits/key the *next* run of a given size should receive.  Uniform
    stores give every run the same bits/key; this policy gives small runs
    more.
    """

    total_bits_per_key: float = 10.0

    def budgets_for_layout(self, run_sizes: Sequence[int]) -> list[float]:
        """Per-run bits/key for a complete layout of run sizes."""
        total_keys = sum(run_sizes)
        pool = int(round(self.total_bits_per_key * total_keys))
        budgets = allocate_run_budgets(run_sizes, pool)
        return [
            budget / size if size else 0.0
            for budget, size in zip(budgets, run_sizes)
        ]

    def improvement_over_uniform(self, run_sizes: Sequence[int]) -> float:
        """Ratio of uniform-allocation FP I/Os to Monkey-allocation FP I/Os.

        > 1 means the skewed allocation is strictly better; equals 1 when
        all runs have the same size.
        """
        total_keys = sum(run_sizes)
        if total_keys == 0:
            return 1.0
        pool = int(round(self.total_bits_per_key * total_keys))
        uniform = [
            int(round(pool * size / total_keys)) for size in run_sizes
        ]
        tuned = allocate_run_budgets(run_sizes, pool)
        uniform_cost = expected_false_positive_ios(run_sizes, uniform)
        tuned_cost = expected_false_positive_ios(run_sizes, tuned)
        if tuned_cost == 0:
            return float("inf") if uniform_cost > 0 else 1.0
        return uniform_cost / tuned_cost
