"""Memory allocation across Rosetta's Bloom-filter levels (paper §2.3–2.4).

Given a total memory budget ``M`` (bits), the number of keys ``n``, and the
number of kept levels (``max_height + 1``), these strategies decide how many
bits each level's Bloom filter receives.  Levels are indexed by height ``r``
above the leaves: ``r = 0`` is the full-key level that also serves point
queries.

Strategies
----------
``uniform``
    Equal bits per level (the naive baseline the paper argues against).
``equilibrium``
    The first-cut solution of §2.3: the leaf level gets FPR ``eps`` and every
    other level gets ``1 / (2 - eps)`` so that each subtree's compounded FPR
    equals ``eps``; ``eps`` is solved numerically to hit the budget.  This is
    the variant with the 1.44-approximation space guarantee (§3.1).
``optimized``
    The workload-aware allocation of Eq. 3–4: bits proportional to
    ``ln(g(r)/C)`` where ``g`` is the access-frequency model, with negative
    allocations clamped to zero and the remainder re-balanced (water-filling).
``variable``
    §2.4's variable-level filter: same solver but driven by cumulative
    weights ``w(B_r) = sum_{s >= r} g(s)``, which pushes bits toward the
    bottom levels and can empty out upper levels entirely.
``single``
    §2.4's single-level extreme: the entire budget in the leaf filter; range
    queries then probe every key in the range.
``hybrid``
    The paper's workload rule: ``single`` when small ranges (<= 16) dominate
    the observed histogram, else ``variable``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.core import frequency
from repro.core.bloom import bits_for_fpr
from repro.errors import AllocationError

_BETA = math.log(2.0) ** 2

#: Range size at or below which the paper's hybrid rule prefers single-level.
HYBRID_SMALL_RANGE_CUTOFF = 16

STRATEGIES = ("uniform", "equilibrium", "optimized", "variable", "single", "hybrid")

__all__ = ["LevelAllocation", "allocate", "STRATEGIES", "HYBRID_SMALL_RANGE_CUTOFF"]


@dataclass(frozen=True)
class LevelAllocation:
    """The outcome of an allocation: bits per level plus provenance.

    ``bits_per_level[r]`` is the Bloom-filter size (bits) at height ``r``;
    index 0 is the leaf (full-key) level.
    """

    bits_per_level: tuple[int, ...]
    strategy: str
    weights: tuple[float, ...] = field(default=())

    @property
    def num_levels(self) -> int:
        """Number of levels covered by this allocation."""
        return len(self.bits_per_level)

    @property
    def total_bits(self) -> int:
        """Sum of all per-level budgets."""
        return sum(self.bits_per_level)

    def bits_at_height(self, height: int) -> int:
        """Bits assigned to the level ``height`` above the leaves."""
        return self.bits_per_level[height]


def allocate(
    strategy: str,
    *,
    num_keys: int,
    total_bits: int,
    max_height: int,
    range_size_histogram: Mapping[int, float] | None = None,
) -> LevelAllocation:
    """Split ``total_bits`` across ``max_height + 1`` levels.

    Parameters
    ----------
    strategy:
        One of :data:`STRATEGIES`.
    num_keys:
        Number of keys the filter will index (the paper's ``n``; per the §2.3
        footnote each level is modelled as holding ``n`` items).
    total_bits:
        Total memory budget ``M`` in bits.
    max_height:
        Tallest kept level; the allocation covers heights ``0..max_height``.
    range_size_histogram:
        Observed range-size distribution.  Required only to *specialise* the
        workload-aware strategies; when omitted they assume every query has
        the maximum size ``2^max_height``.
    """
    if strategy not in STRATEGIES:
        raise AllocationError(
            f"unknown allocation strategy {strategy!r}; expected one of {STRATEGIES}"
        )
    if num_keys < 0:
        raise AllocationError(f"num_keys must be non-negative, got {num_keys}")
    if total_bits < 0:
        raise AllocationError(f"total_bits must be non-negative, got {total_bits}")
    if max_height < 0:
        raise AllocationError(f"max_height must be >= 0, got {max_height}")

    num_levels = max_height + 1
    if num_keys == 0 or total_bits == 0:
        return LevelAllocation(
            bits_per_level=(0,) * num_levels, strategy=strategy
        )

    if strategy == "hybrid":
        strategy = _resolve_hybrid(range_size_histogram)

    if strategy == "single":
        bits = [0] * num_levels
        bits[0] = total_bits
        return LevelAllocation(bits_per_level=tuple(bits), strategy="single")

    if strategy == "uniform":
        return _finalize([total_bits / num_levels] * num_levels, "uniform")

    if strategy == "equilibrium":
        return _allocate_equilibrium(num_keys, total_bits, num_levels)

    weights = _model_weights(strategy, max_height, range_size_histogram)
    raw = _water_fill(weights, num_keys, total_bits)
    return _finalize(raw, strategy, weights=weights)


# ----------------------------------------------------------------------
# Strategy internals
# ----------------------------------------------------------------------

def _resolve_hybrid(histogram: Mapping[int, float] | None) -> str:
    """Pick single vs variable from the observed range-size mix (§2.4)."""
    if not histogram:
        return "variable"
    total = float(sum(histogram.values()))
    if total <= 0:
        return "variable"
    small = sum(
        mass for size, mass in histogram.items()
        if size <= HYBRID_SMALL_RANGE_CUTOFF
    )
    return "single" if small / total > 0.5 else "variable"


def _model_weights(
    strategy: str, max_height: int, histogram: Mapping[int, float] | None
) -> tuple[float, ...]:
    """Per-level probe weights for the workload-aware strategies."""
    if histogram:
        freqs = frequency.weighted_frequencies(histogram, max_height)
    else:
        freqs = frequency.access_frequencies(1 << max_height)
    if strategy == "variable":
        freqs = frequency.cumulative_weights(freqs)
    return tuple(freqs)


def _allocate_equilibrium(
    num_keys: int, total_bits: int, num_levels: int
) -> LevelAllocation:
    """First-cut FPR equilibrium (§2.3): solve for the leaf FPR ``eps``.

    The leaf level is sized for FPR ``eps`` and every non-terminal level for
    ``1/(2 - eps)``; total memory is monotone decreasing in ``eps``, so a
    binary search pins the budget.
    """

    def total_for(eps: float) -> int:
        non_terminal_fpr = 1.0 / (2.0 - eps)
        leaf = bits_for_fpr(num_keys, eps)
        upper = bits_for_fpr(num_keys, non_terminal_fpr)
        return leaf + (num_levels - 1) * upper

    lo, hi = 1e-15, 1.0 - 1e-15
    for _ in range(200):
        mid = math.sqrt(lo * hi)  # geometric: eps spans many decades
        if total_for(mid) > total_bits:
            lo = mid
        else:
            hi = mid
    eps = hi
    non_terminal_fpr = 1.0 / (2.0 - eps)
    raw = [float(bits_for_fpr(num_keys, non_terminal_fpr))] * num_levels
    raw[0] = float(bits_for_fpr(num_keys, eps))
    # Scale to use exactly the budget (the discrete solve may undershoot).
    scale_base = sum(raw)
    if scale_base > 0:
        raw = [value * total_bits / scale_base for value in raw]
    return _finalize(raw, "equilibrium")


def _water_fill(
    weights: Sequence[float], num_keys: int, total_bits: int
) -> list[float]:
    """Solve Eq. 3 with non-negativity by iterative water-filling.

    The unconstrained optimum is ``M_r = (n / ln^2 2) * ln(w_r / C)`` with
    ``C`` fixed by the budget (Eq. 4).  Whenever a level solves negative, the
    paper zeroes it and re-balances; repeating until feasible is exactly the
    KKT-correct water-filling for this objective.
    """
    active = [r for r, w in enumerate(weights) if w > 0.0]
    bits = [0.0] * len(weights)
    if not active:
        # No level is ever probed under the model; fall back to the leaf so
        # point queries remain protected.
        bits[0] = float(total_bits)
        return bits

    while active:
        h = len(active)
        log_weights = {r: math.log(weights[r]) for r in active}
        ln_c = (sum(log_weights.values()) / h) - (total_bits * _BETA) / (
            num_keys * h
        )
        solved = {r: (num_keys / _BETA) * (log_weights[r] - ln_c) for r in active}
        negative = [r for r, m in solved.items() if m < 0.0]
        if not negative:
            for r, m in solved.items():
                bits[r] = m
            return bits
        # Drop the most-starved levels and re-solve with the full budget
        # spread over the survivors.
        active = [r for r in active if r not in set(negative)]

    # Every level solved negative (tiny budgets): give it all to the most
    # frequently probed level.
    best = max(range(len(weights)), key=lambda r: weights[r])
    bits[best] = float(total_bits)
    return bits


def _finalize(
    raw: Sequence[float], strategy: str, weights: tuple[float, ...] = ()
) -> LevelAllocation:
    """Round to integer bits, steering rounding drift into the leaf level."""
    total = round(sum(raw))
    ints = [int(value) for value in raw]
    drift = total - sum(ints)
    ints[0] = max(0, ints[0] + drift)
    return LevelAllocation(
        bits_per_level=tuple(ints), strategy=strategy, weights=weights
    )
