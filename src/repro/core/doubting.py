"""Frontier-based, level-synchronous doubting engine (vectorized Algorithm 2).

The paper's range query doubts each dyadic block of the query top-down: probe
the block's prefix, and on a positive recursively probe its two children until
a full root-to-leaf positive path survives or every branch dies.  The
reference implementation (:meth:`repro.core.rosetta.Rosetta.may_contain_range_recursive`)
walks that recursion one Bloom probe at a time, which is the hot-path CPU cost
the paper's Fig. 4/5 numbers hinge on.

This module replaces the per-prefix recursion with a *frontier* sweep.  At
each height, the surviving candidate prefixes — across all dyadic intervals of
a query, across all queries of a batch, and across all filter stacks (LSM
runs) probing the same range — are collected into flat NumPy arrays and
resolved with **one bulk Bloom probe per level per stack**:

* *positional dedup* — a prefix shared by several queries (or several
  intervals) is probed once per level per stack, and its 64-bit base hashes
  are computed once across *all* stacks (every :class:`BloomFilter` shares the
  same seed stages, so hashes are filter-independent);
* *ownership tracking* — every frontier node carries the index of the query
  it descends from, so per-query verdicts, probe charges, and effective-range
  bounds fall out of vectorized scatter reductions;
* *chunked expansion* — work is sliced into rounds of at most ``chunk_leaves``
  covered keys, so an oversized range (or the single-level design of §2.4,
  where every key of the range is its own frontier node) never materializes
  gigabytes, and a query resolved positive in an early round skips the rest
  of its intervals, mirroring the sequential early exit;
* *leftmost/rightmost survivor extraction* — with ``want_bounds=True`` the
  leaf sweep records each query's smallest and largest surviving leaf, which
  is exactly the §2.2.1 effective-range tightening.

Probe accounting has two modes, selected by ``dedup``:

* ``dedup=True`` (the default, and the fast path): reported probe counts are
  the bulk probes actually issued — unique prefixes per level per stack.
  A call whose batch holds exactly one live query is routed through the
  exact mode below instead (unless bounds are requested): a batch of one is
  the scalar path in disguise, so its verdict, probe charge, and interval
  charge match :meth:`~repro.core.rosetta.Rosetta.may_contain_range`
  counter for counter.
* ``dedup=False``: counts (and ``probe_budget`` semantics, and budgeted
  answers) reproduce the sequential Algorithm-2 recursion *exactly*, query by
  query.  Execution stays vectorized — the engine probes the full frontier
  and then replays the pre-order descent over the recorded outcome tree,
  charging only the probes the recursion would have made and giving up with a
  (sound) positive at the same deadline.  This is the compatibility bar the
  equivalence tests pin down: same booleans, same
  :class:`~repro.core.rosetta.ProbeStats` ``bloom_probes``.

The engine is deliberately filter-agnostic: it takes plain sequences of
:class:`~repro.core.bloom.BloomFilter` levels ("stacks"), one per Rosetta
instance, so the LSM read path can doubt one range against every run's filter
in a single sweep (:func:`tighten_across_stacks`).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.bloom import BloomFilter, base_hash_arrays

__all__ = [
    "DEFAULT_CHUNK_LEAVES",
    "FrontierResult",
    "doubt_batch",
    "doubt_frontier",
    "tighten_across_stacks",
]

#: Default cap on keys covered per round; bounds frontier memory and sets the
#: early-exit granularity for oversized ranges.
DEFAULT_CHUNK_LEAVES = 1 << 16

_U64_MAX = np.uint64(0xFFFFFFFFFFFFFFFF)


@dataclass
class FrontierResult:
    """Per-call outcome of one frontier sweep."""

    #: One verdict per query (``True`` = range may be non-empty).
    answers: np.ndarray
    #: Smallest surviving leaf per query (valid where ``answers``); only
    #: populated with ``want_bounds=True``.
    effective_lows: np.ndarray | None
    #: Largest surviving leaf per query (valid where ``answers``).
    effective_highs: np.ndarray | None
    #: Bloom probes accounted (see module docstring for the two modes).
    probes: int
    #: Probe charge per stack (bulk mode only; ``None`` in exact mode).
    probes_per_job: np.ndarray | None
    #: Dyadic intervals charged per query.
    intervals_per_query: np.ndarray
    #: Unique 64-bit base-hash evaluations (shared across stacks).
    hash_evals: int
    #: Number of bulk Bloom-probe invocations issued.
    bulk_probe_calls: int

    @property
    def intervals(self) -> int:
        """Total dyadic intervals charged across all queries."""
        return int(self.intervals_per_query.sum())


def _decompose_chunk_reference(
    cursor: int, high: int, max_height: int, max_leaves: int
) -> tuple[list[tuple[int, int, int]], int, int]:
    """Greedy dyadic decomposition of ``[cursor, high]``, budget-limited.

    Returns ``(segments, new_cursor, leaves_taken)`` where each segment is
    ``(height, first_prefix, count)`` describing ``count`` consecutive blocks
    of size ``2^height``.  Segment order (and block order within a segment)
    matches :func:`repro.core.dyadic.decompose` exactly; runs of full-height
    blocks in the middle of an oversized range are emitted as one segment so
    a huge span never costs a Python iteration per block.  Always makes
    progress: at least one block is emitted even if it overshoots the budget.

    This is the original scalar walk, kept as the oracle for the closed-form
    :func:`_decompose_chunk` (the parity tests compare the two bit for bit).
    """
    segments: list[tuple[int, int, int]] = []
    leaves = 0
    while cursor <= high and leaves < max_leaves:
        remaining = high - cursor + 1
        align = max_height if cursor == 0 else min(
            max_height, (cursor & -cursor).bit_length() - 1
        )
        fit = remaining.bit_length() - 1
        height = min(align, fit)
        if height == max_height:
            # Aligned full-height run: take as many blocks as budget and
            # range allow in one go.
            block = 1 << max_height
            n_fit = remaining >> max_height
            n_budget = max(1, -(-(max_leaves - leaves) // block))
            n = min(n_fit, n_budget)
            segments.append((max_height, cursor >> max_height, n))
            cursor += n << max_height
            leaves += n << max_height
        else:
            segments.append((height, cursor >> height, 1))
            cursor += 1 << height
            leaves += 1 << height
    return segments, cursor, leaves


#: Per-height shift/mask tables for the closed-form decomposition, keyed by
#: the clamped tree height (at most 64 entries, built once per height seen).
_CLIMB_TABLES: dict[int, tuple[np.ndarray, np.ndarray]] = {}


def _climb_tables(top: int) -> tuple[np.ndarray, np.ndarray]:
    cached = _CLIMB_TABLES.get(top)
    if cached is None:
        heights = np.arange(1, top, dtype=np.uint64)
        masks = (np.uint64(1) << heights) - np.uint64(1)
        cached = _CLIMB_TABLES[top] = (heights, masks)
    return cached


def _decompose_chunk(
    cursor: int, high: int, max_height: int, max_leaves: int
) -> tuple[list[tuple[int, int, int]], int, int]:
    """Budget-limited dyadic decomposition of ``[cursor, high]``.

    Dispatches between the scalar greedy walk and the closed form: the
    closed form computes the entire cover at once, so it only wins when
    the cover is needed in full (no budget cut) and the climbs are tall
    enough to amortize the NumPy dispatch overhead.  Budget-cut calls
    (where the walk early-exits) and short trees stay scalar.  Batches of
    full-span queries go through :func:`_decompose_batch` instead, which
    amortizes that overhead across the whole round.
    """
    if max_height >= 48 and high - cursor < max_leaves:
        return _decompose_chunk_closed(cursor, high, max_height, max_leaves)
    return _decompose_chunk_reference(cursor, high, max_height, max_leaves)


def _decompose_chunk_closed(
    cursor: int, high: int, max_height: int, max_leaves: int
) -> tuple[list[tuple[int, int, int]], int, int]:
    """Closed-form dyadic decomposition of ``[cursor, high]``, budget-limited.

    Bit-for-bit replacement for :func:`_decompose_chunk_reference`.  The
    greedy largest-aligned-block walk produces exactly the canonical dyadic
    cover, which has a closed form: with ``l_h = ceil(cursor / 2**h)`` and
    ``r_h = floor((high + 1) / 2**h)``, the cover holds

    * a *left-climb* block ``(h, l_h)`` at every height ``h < max_height``
      where ``l_h`` is odd and ``l_h < r_h`` (ascending heights, in cursor
      order);
    * a *middle run* of ``r_H - l_H`` full-height blocks at
      ``H = max_height``;
    * a *right-climb* block ``(h, r_h - 1)`` at every height where ``r_h``
      is odd and a block still fits after the left climb
      (``r_h > l_h + (l_h odd)``), descending heights.

    Both sequences are evaluated for all heights at once with two NumPy
    expressions instead of a per-block loop; only the final budget trim
    stays scalar.  Height 0 and the middle run use Python ints so a
    ``2**64 - 1`` bound never overflows ``uint64`` arithmetic.
    """
    if cursor > high or max_leaves <= 0:
        return [], cursor, 0
    ordered: list[tuple[int, int, int]] = []
    if cursor & 1 and max_height > 0:
        ordered.append((0, cursor, 1))
    # Heights above 64 can never emit a climb block for sub-2**64 bounds
    # (l_h is at most 1 there, and r_h can never exceed it by 2); height 64
    # itself fires only for the full-domain query, handled below.
    top = min(max_height, 64)
    right_blocks: list[tuple[int, int]] = []
    if top > 1:
        heights, masks = _climb_tables(top)
        start = np.uint64(cursor)
        stop = np.uint64(high)
        lo = (start >> heights) + ((start & masks) != 0)
        hi = (stop >> heights) + ((stop & masks) == masks)
        odd = np.uint64(1)
        lo_odd = (lo & odd) != 0
        left_idx = np.nonzero(lo_odd & (lo < hi))[0]
        right_idx = np.nonzero(
            ((hi & odd) != 0) & (hi > lo + lo_odd)
        )[0]
        if left_idx.size:
            ordered.extend(
                (h + 1, p, 1)
                for h, p in zip(
                    left_idx.tolist(), lo[left_idx].tolist()
                )
            )
        if right_idx.size:
            right_blocks = list(
                zip(right_idx.tolist(), hi[right_idx].tolist())
            )
    mid_low = (cursor + (1 << max_height) - 1) >> max_height
    mid_high = (high + 1) >> max_height
    if mid_high > mid_low:
        ordered.append((max_height, mid_low, mid_high - mid_low))
    if max_height > 64 and cursor == 0 and high == int(_U64_MAX):
        # Full 64-bit domain under a taller tree: r_64 = 1 (odd), l_64 = 0,
        # so the canonical cover is exactly one height-64 block — and
        # nothing else can coexist with it.
        ordered.append((64, 0, 1))
    for idx, bound in reversed(right_blocks):
        ordered.append((idx + 1, bound - 1, 1))
    if (
        max_height > 0
        and high & 1 == 0
        and high >= cursor + (cursor & 1)
    ):
        ordered.append((0, high, 1))

    # Budget trim, same rules as the greedy walk: whole blocks always land
    # (the first may overshoot), only a middle run is count-truncated.
    segments: list[tuple[int, int, int]] = []
    leaves = 0
    for height, first, count in ordered:
        if leaves >= max_leaves:
            break
        if count > 1:
            block = 1 << height
            budgeted = max(1, -(-(max_leaves - leaves) // block))
            count = min(count, budgeted)
        segments.append((height, first, count))
        leaves += count << height
    return segments, cursor + leaves, leaves


def _decompose_batch(
    cursors: Sequence[int], highs: Sequence[int], tops: Sequence[int]
) -> list[list[tuple[int, int, int]]]:
    """Closed-form dyadic covers for many full ranges at once.

    Returns, per query, the same segment list as
    ``_decompose_chunk(cursor, high, top, span)`` with an unconstraining
    budget — the whole cover, in cursor order.  The left/right climb
    formulas of :func:`_decompose_chunk_closed` are evaluated for every
    query simultaneously on a ``(queries, heights)`` matrix, which is what
    amortizes NumPy's per-call overhead: this is the hot path of the round
    assembly in :func:`doubt_frontier`, where per-query scalar walks used
    to dominate the whole batch sweep.

    Callers guarantee ``cursor <= high`` and ``0 <= top < 64`` per query.
    """
    count = len(cursors)
    cur = np.array(cursors, dtype=np.uint64)
    high = np.array(highs, dtype=np.uint64)
    top = np.array(tops, dtype=np.uint64)
    out: list[list[tuple[int, int, int]]] = [[] for _ in range(count)]

    odd = np.uint64(1)
    has_leaf_level = top > 0
    left0 = ((cur & odd) != 0) & has_leaf_level
    for i in np.nonzero(left0)[0].tolist():
        out[i].append((0, cursors[i], 1))

    hmax = int(top.max())
    if hmax > 1:
        heights, masks = _climb_tables(hmax)
        lo = (cur[:, None] >> heights) + ((cur[:, None] & masks) != 0)
        hi = (high[:, None] >> heights) + ((high[:, None] & masks) == masks)
        valid = heights[None, :] < top[:, None]
        lo_odd = (lo & odd) != 0
        left = lo_odd & (lo < hi) & valid
        right = ((hi & odd) != 0) & (hi > lo + lo_odd) & valid
        qi, hidx = np.nonzero(left)
        if qi.size:
            for i, h, prefix in zip(
                qi.tolist(), hidx.tolist(), lo[qi, hidx].tolist()
            ):
                out[i].append((h + 1, prefix, 1))

    # Middle runs, via the same overflow-safe ceil/floor tricks.  The one
    # remaining wrap — ``high + 1`` for a height-0 tree ending at the
    # uint64 maximum — is patched per row with Python ints.
    top_masks = (np.uint64(1) << top) - odd
    mid_low = (cur >> top) + ((cur & top_masks) != 0)
    mid_high = (high >> top) + ((high & top_masks) == top_masks)
    wrapped = (top == 0) & (high == _U64_MAX)
    for i in np.nonzero(wrapped)[0].tolist():
        out[i].append((0, cursors[i], (1 << 64) - cursors[i]))
    mid = np.nonzero((mid_high > mid_low) & ~wrapped)[0]
    if mid.size:
        for i, first, stop in zip(
            mid.tolist(), mid_low[mid].tolist(), mid_high[mid].tolist()
        ):
            out[i].append((tops[i], first, stop - first))

    if hmax > 1:
        # Right climb, descending heights: flip the columns so nonzero's
        # row-major order yields tallest-first within each query.
        qi, flipped = np.nonzero(right[:, ::-1])
        if qi.size:
            width = right.shape[1]
            cols = width - 1 - flipped
            for i, col, bound in zip(
                qi.tolist(), cols.tolist(), hi[qi, cols].tolist()
            ):
                out[i].append((col + 1, bound - 1, 1))

    right0 = (
        ((high & odd) == 0)
        & has_leaf_level
        & (high >= cur + (cur & odd))
    )
    for i in np.nonzero(right0)[0].tolist():
        out[i].append((0, highs[i], 1))
    return out


def _simulate_doubt(levels: dict, height: int, index: int, state: list,
                    budget: int | None) -> bool:
    """Replay the sequential pre-order doubt over the recorded outcome tree.

    ``state[0]`` is the query's cumulative probe charge; the deadline check,
    charge order, and give-up-positive semantics mirror the reference
    recursion line for line.
    """
    if budget is not None and state[0] >= budget:
        return True
    outcome, child_base, counted = levels[height]
    if counted[index]:
        state[0] += 1
    if not outcome[index]:
        return False
    if height == 0:
        return True
    child = int(child_base[index])
    if _simulate_doubt(levels, height - 1, child, state, budget):
        return True
    return _simulate_doubt(levels, height - 1, child + 1, state, budget)


def doubt_frontier(
    stacks: Sequence[Sequence[BloomFilter]],
    job_of_query: Sequence[int],
    lows: Sequence[int],
    highs: Sequence[int],
    *,
    dedup: bool = True,
    probe_budget: int | None = None,
    want_bounds: bool = False,
    chunk_leaves: int = DEFAULT_CHUNK_LEAVES,
) -> FrontierResult:
    """Resolve a batch of range doubts, level-synchronously.

    Parameters
    ----------
    stacks:
        One Bloom-filter stack (leaf first) per Rosetta instance involved.
    job_of_query:
        For each query, the index of the stack it probes.
    lows, highs:
        Inclusive query bounds; every query must satisfy
        ``0 <= low <= high < 2^64`` (clamping is the caller's job).
    dedup:
        Accounting mode — see the module docstring.  ``probe_budget``
        requires ``dedup=False``.
    want_bounds:
        Also extract each query's leftmost/rightmost surviving leaf
        (disables early exit, since the rightmost survivor needs the full
        interval sweep; incompatible with exact accounting).
    chunk_leaves:
        Maximum keys covered per round.
    """
    exact = not dedup
    if want_bounds and exact:
        raise ValueError("want_bounds requires dedup=True accounting")
    if probe_budget is not None and not exact:
        raise ValueError("probe_budget requires dedup=False (exact) accounting")
    if chunk_leaves < 1:
        raise ValueError(f"chunk_leaves must be >= 1, got {chunk_leaves}")

    num_queries = len(lows)
    lows = [int(v) for v in lows]
    highs = [int(v) for v in highs]
    if (
        not exact
        and not want_bounds
        and sum(lo <= hi for lo, hi in zip(lows, highs)) == 1
    ):
        # A batch of one is the scalar path in disguise: give it the scalar
        # short-circuit (replayed exact accounting, per-interval early exit)
        # so bloom_probes / dyadic_intervals for a single query are identical
        # no matter which entry point issued it.  Without this, the round
        # assembly below decomposes and probes the whole round with no
        # per-query early exit, charging more probes and intervals than
        # may_contain_range does for the very same range.
        exact = True
    job_ids = np.asarray(list(job_of_query), dtype=np.int64)
    max_heights = [len(stack) - 1 for stack in stacks]

    answers = np.zeros(num_queries, dtype=bool)
    resolved = np.zeros(num_queries, dtype=bool)
    intervals_per_query = np.zeros(num_queries, dtype=np.int64)
    probes_per_job = np.zeros(len(stacks), dtype=np.int64)
    spent = [0] * num_queries  # exact-mode per-query probe charge
    hash_evals = 0
    bulk_probe_calls = 0
    bulk_probes = 0

    if want_bounds:
        eff_low = np.full(num_queries, _U64_MAX, dtype=np.uint64)
        eff_high = np.zeros(num_queries, dtype=np.uint64)
    else:
        eff_low = eff_high = None

    cursors = list(lows)
    pending = deque(
        q for q in range(num_queries) if lows[q] <= highs[q]
    )

    while pending:
        # -- Round assembly: pull intervals (in query order, left to right)
        #    until the leaf budget is spent.  Queries whose whole remaining
        #    span fits the budget are decomposed together with one batched
        #    closed-form evaluation (per-query scalar walks used to
        #    dominate the sweep); only the budget-boundary query falls back
        #    to the scalar, early-exiting walk.  Segments stay scalar
        #    triples here; they are materialized into arrays once per level
        #    below.
        budget_left = chunk_leaves
        round_segments: list[tuple[int, list[tuple[int, int, int]]]] = []
        batched: list[int] = []
        while pending:
            q = pending[0]
            if resolved[q]:
                pending.popleft()
                continue
            top = max_heights[job_ids[q]]
            span = highs[q] - cursors[q] + 1
            if top >= 64 or span > budget_left:
                break
            batched.append(q)
            budget_left -= span
            pending.popleft()
        if batched:
            covers = _decompose_batch(
                [cursors[q] for q in batched],
                [highs[q] for q in batched],
                [max_heights[job_ids[q]] for q in batched],
            )
            for q, segments in zip(batched, covers):
                round_segments.append((q, segments))
                cursors[q] = highs[q] + 1
        while pending and budget_left > 0:
            q = pending[0]
            if resolved[q]:
                pending.popleft()
                continue
            segments, cursors[q], used = _decompose_chunk(
                cursors[q], highs[q], max_heights[job_ids[q]], budget_left
            )
            budget_left -= used
            round_segments.append((q, segments))
            if cursors[q] > highs[q]:
                pending.popleft()

        seg_lists: dict[int, tuple[list[int], list[int], list[int]]] = {}
        roots_count: dict[int, int] = {}
        round_refs: list[tuple[int, list[tuple[int, int, int]]]] = []
        for q, segments in round_segments:
            refs: list[tuple[int, int, int]] = []
            for height, first_prefix, count in segments:
                start = roots_count.get(height, 0)
                roots_count[height] = start + count
                lists = seg_lists.get(height)
                if lists is None:
                    lists = ([], [], [])
                    seg_lists[height] = lists
                lists[0].append(first_prefix)
                lists[1].append(count)
                lists[2].append(q)
                refs.append((height, start, count))
            if refs:
                round_refs.append((q, refs))
        if not seg_lists:
            continue
        if not exact:
            for _, counts_l, owners_l in seg_lists.values():
                np.add.at(
                    intervals_per_query,
                    np.array(owners_l, dtype=np.int64),
                    np.array(counts_l, dtype=np.int64),
                )

        # -- Level-synchronous descent, top height to leaves.
        top = max(seg_lists)
        carry_prefix = np.zeros(0, dtype=np.uint64)
        carry_owner = np.zeros(0, dtype=np.int64)
        levels: dict[int, tuple] = {}
        root_offsets: dict[int, int] = {}
        for height in range(top, -1, -1):
            root_offsets[height] = len(carry_prefix)
            lists = seg_lists.get(height)
            if lists is None:
                prefixes, owners = carry_prefix, carry_owner
            else:
                firsts = np.array(lists[0], dtype=np.uint64)
                counts = np.array(lists[1], dtype=np.int64)
                seg_owners = np.array(lists[2], dtype=np.int64)
                if int(counts.max()) == 1:
                    root_prefix, root_owner = firsts, seg_owners
                else:
                    # Expand (first, count) runs: repeat each first and add
                    # its within-run offset.
                    starts = np.cumsum(counts) - counts
                    offsets = (
                        np.arange(int(counts.sum()), dtype=np.int64)
                        - np.repeat(starts, counts)
                    ).astype(np.uint64)
                    root_prefix = np.repeat(firsts, counts) + offsets
                    root_owner = np.repeat(seg_owners, counts)
                prefixes = np.concatenate([carry_prefix, root_prefix])
                owners = np.concatenate([carry_owner, root_owner])
            carry_prefix = np.zeros(0, dtype=np.uint64)
            carry_owner = np.zeros(0, dtype=np.int64)
            if len(prefixes) == 0:
                if exact:
                    levels[height] = (
                        np.zeros(0, dtype=bool),
                        np.zeros(0, dtype=np.int64),
                        np.zeros(0, dtype=bool),
                    )
                continue

            outcome = np.zeros(len(prefixes), dtype=bool)
            counted = np.ones(len(prefixes), dtype=bool)

            # Group frontier nodes by stack; nodes on an always-positive
            # level survive for free (and are never charged).
            if len(stacks) == 1:
                groups: list[tuple[int, np.ndarray | None]] = [(0, None)]
            else:
                node_jobs = job_ids[owners]
                groups = [
                    (int(j), np.nonzero(node_jobs == j)[0])
                    for j in np.unique(node_jobs)
                ]
            probing: list[tuple[int, np.ndarray | None]] = []
            for job, sel in groups:
                if stacks[job][height].is_always_positive:
                    if sel is None:
                        outcome[:] = True
                        counted[:] = False
                    else:
                        outcome[sel] = True
                        counted[sel] = False
                else:
                    probing.append((job, sel))

            if probing:
                if len(probing) == 1:
                    job, sel = probing[0]
                    values = prefixes if sel is None else prefixes[sel]
                    unique, inverse = np.unique(values, return_inverse=True)
                    h1, h2 = base_hash_arrays(unique)
                    hash_evals += len(unique)
                    survivors = stacks[job][height].survivors_hashed(h1, h2)
                    mask = np.zeros(len(unique), dtype=bool)
                    mask[survivors] = True
                    if sel is None:
                        outcome[:] = mask[inverse]
                    else:
                        outcome[sel] = mask[inverse]
                    probes_per_job[job] += len(unique)
                    bulk_probes += len(unique)
                    bulk_probe_calls += 1
                else:
                    # Hash each distinct prefix once across every stack.
                    all_values = np.concatenate(
                        [prefixes[sel] for _, sel in probing]
                    )
                    shared = np.unique(all_values)
                    shared_h1, shared_h2 = base_hash_arrays(shared)
                    hash_evals += len(shared)
                    for job, sel in probing:
                        unique, inverse = np.unique(
                            prefixes[sel], return_inverse=True
                        )
                        pos = np.searchsorted(shared, unique)
                        survivors = stacks[job][height].survivors_hashed(
                            shared_h1[pos], shared_h2[pos]
                        )
                        mask = np.zeros(len(unique), dtype=bool)
                        mask[survivors] = True
                        outcome[sel] = mask[inverse]
                        probes_per_job[job] += len(unique)
                        bulk_probes += len(unique)
                        bulk_probe_calls += 1

            survivor_idx = np.nonzero(outcome)[0]
            child_base = None
            if height > 0:
                if exact:
                    child_base = np.full(len(prefixes), -1, dtype=np.int64)
                    child_base[survivor_idx] = (
                        np.arange(len(survivor_idx), dtype=np.int64) * 2
                    )
                shifted = prefixes[survivor_idx] << np.uint64(1)
                carry_prefix = np.empty(2 * len(survivor_idx), dtype=np.uint64)
                carry_prefix[0::2] = shifted
                carry_prefix[1::2] = shifted | np.uint64(1)
                carry_owner = np.repeat(owners[survivor_idx], 2)
            else:
                hit_owners = owners[survivor_idx]
                answers[hit_owners] = True
                if want_bounds:
                    hit_prefixes = prefixes[survivor_idx]
                    np.minimum.at(eff_low, hit_owners, hit_prefixes)
                    np.maximum.at(eff_high, hit_owners, hit_prefixes)
            if exact:
                levels[height] = (outcome, child_base, counted)

        # -- Round resolution.
        if exact:
            # Replay the sequential recursion per query over this round's
            # outcome tree: interval order, probe charges, deadline, and the
            # budget-exhausted positive all match the reference path.
            for q, refs in round_refs:
                if resolved[q]:
                    continue
                state = [spent[q]]
                verdict = False
                for height, start, count in refs:
                    base = root_offsets[height] + start
                    for k in range(count):
                        intervals_per_query[q] += 1
                        if _simulate_doubt(
                            levels, height, base + k, state, probe_budget
                        ):
                            verdict = True
                            break
                    if verdict:
                        break
                spent[q] = state[0]
                answers[q] = verdict
                if verdict:
                    resolved[q] = True
        elif not want_bounds:
            np.logical_or(resolved, answers, out=resolved)

    probes = sum(spent) if exact else bulk_probes
    return FrontierResult(
        answers=answers,
        effective_lows=eff_low,
        effective_highs=eff_high,
        probes=probes,
        probes_per_job=None if exact else probes_per_job,
        intervals_per_query=intervals_per_query,
        hash_evals=hash_evals,
        bulk_probe_calls=bulk_probe_calls,
    )


def doubt_batch(
    filters: Sequence[BloomFilter],
    lows: Sequence[int],
    highs: Sequence[int],
    **kwargs,
) -> FrontierResult:
    """Frontier sweep for a batch of queries against a single filter stack."""
    return doubt_frontier(
        [filters], [0] * len(lows), lows, highs, **kwargs
    )


def tighten_across_stacks(
    stacks: Sequence[Sequence[BloomFilter]],
    key_bits: Sequence[int],
    low: int,
    high: int,
    *,
    chunk_leaves: int = DEFAULT_CHUNK_LEAVES,
) -> tuple[list[tuple[int, int] | None], FrontierResult]:
    """Doubt one range against many filter stacks in a single sweep.

    The LSM read path's multi-run seek: every overlapping run's Rosetta
    probes the same ``[low, high]``, so their frontiers share per-level hash
    evaluations.  Returns one §2.2.1-tightened range (or ``None`` for a
    definite miss) per stack, plus the raw :class:`FrontierResult` so the
    caller can distribute probe charges onto each instance's counters.

    ``key_bits[j]`` gives stack *j*'s key-domain width; the query is clamped
    to each stack's domain exactly as the scalar path would.
    """
    clamped_lows: list[int] = []
    clamped_highs: list[int] = []
    jobs: list[int] = []
    for job, bits in enumerate(key_bits):
        domain_max = (1 << bits) - 1
        lo = max(int(low), 0)
        hi = min(int(high), domain_max)
        if lo > hi:
            continue
        jobs.append(job)
        clamped_lows.append(lo)
        clamped_highs.append(hi)

    result = doubt_frontier(
        stacks,
        jobs,
        clamped_lows,
        clamped_highs,
        dedup=True,
        want_bounds=True,
        chunk_leaves=chunk_leaves,
    )
    tightened: list[tuple[int, int] | None] = [None] * len(stacks)
    for idx, job in enumerate(jobs):
        if not result.answers[idx]:
            continue
        leftmost = int(result.effective_lows[idx])
        rightmost = int(result.effective_highs[idx])
        tightened[job] = (
            max(leftmost, clamped_lows[idx]),
            min(max(rightmost, leftmost), clamped_highs[idx]),
        )
    return tightened, result
