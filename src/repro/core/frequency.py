"""Access-frequency model for Rosetta's segment-tree levels (paper §2.3–2.4).

To decide how much memory each Bloom-filter level deserves, Rosetta models
how often a node at each level is probed.  Levels are indexed by *height*
``r`` above the leaves (``r = 0`` is the full-key level).  If every range
query of size ``R`` is issued once, the paper derives the per-node access
frequency ``g(r)`` (Eq. 1–2):

.. math::

    g(r) = \\sum_{0 \\le c \\le \\lfloor\\log R\\rfloor - r} g(r + c, R - 1)

where the single-level term ``g(x, R-1)`` is 1 for ``x`` below
``floor(log2 R)``, ``(R - 2^x + 1)/2^x`` at ``x == floor(log2 R)``, and 0
above.  Intuitively, a query's dyadic decomposition touches one boundary node
per level below its largest block, plus a fractional number of top blocks.

The *variable-level* strategy of §2.4 re-weights each level by the cumulative
frequency of itself and every level above it, which shifts memory toward the
bottom levels: ``w(B_r) = sum_{r <= s <= floor(log R)} g(s)``.

A workload rarely has a single range size; :func:`weighted_frequencies`
averages ``g`` over an observed histogram of range sizes, which is what the
adaptive tuner (:mod:`repro.core.tuning`) feeds the allocator at compaction
time.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

__all__ = [
    "floor_log2",
    "single_level_term",
    "access_frequencies",
    "cumulative_weights",
    "weighted_frequencies",
]


def floor_log2(value: int) -> int:
    """Return ``floor(log2(value))`` for a positive integer."""
    if value < 1:
        raise ValueError(f"value must be >= 1, got {value}")
    return value.bit_length() - 1


def single_level_term(x: int, range_size: int) -> float:
    """The paper's ``g(x, R-1)`` term (Eq. 2) for one level ``x``."""
    if x < 0:
        raise ValueError(f"level height must be >= 0, got {x}")
    top = floor_log2(range_size)
    if x < top:
        return 1.0
    if x == top:
        return (range_size - (1 << x) + 1) / (1 << x)
    return 0.0


def access_frequencies(range_size: int) -> list[float]:
    """Per-level access frequencies ``g(r)`` for queries of one size (Eq. 1).

    Returns ``g[r]`` for ``r`` in ``0 .. floor(log2 range_size)``; index 0 is
    the leaf (full-key) level.
    """
    if range_size < 1:
        raise ValueError(f"range_size must be >= 1, got {range_size}")
    top = floor_log2(range_size)
    return [
        sum(single_level_term(r + c, range_size) for c in range(top - r + 1))
        for r in range(top + 1)
    ]


def cumulative_weights(frequencies: Sequence[float]) -> list[float]:
    """Variable-level weights: each level plus everything above it (§2.4).

    ``w[r] = sum(frequencies[r:])`` — the suffix sum from that height upward.
    """
    weights: list[float] = []
    running = 0.0
    for freq in reversed(frequencies):
        running += freq
        weights.append(running)
    weights.reverse()
    return weights


def weighted_frequencies(
    range_size_histogram: Mapping[int, float], max_height: int
) -> list[float]:
    """Average ``g(r)`` over an observed distribution of range sizes.

    Parameters
    ----------
    range_size_histogram:
        Maps range size -> observed count (or probability mass).  Sizes are
        clamped into ``[1, 2^(max_height)]``; larger queries still exercise
        every kept level at its cap.
    max_height:
        Height of the tallest kept level (so the result has
        ``max_height + 1`` entries).

    Returns
    -------
    list[float]
        ``g[r]`` averaged over the histogram, normalized by total mass.
        Uniform weights are returned for an empty histogram, which makes the
        optimized allocator degrade gracefully to uniform allocation.
    """
    if max_height < 0:
        raise ValueError(f"max_height must be >= 0, got {max_height}")
    for range_size, mass in range_size_histogram.items():
        if range_size < 1 or mass < 0:
            raise ValueError(
                f"invalid histogram entry: size={range_size}, mass={mass}"
            )
    size = max_height + 1
    total_mass = float(sum(range_size_histogram.values()))
    if total_mass <= 0.0:
        return [1.0] * size

    averaged = [0.0] * size
    cap = 1 << max_height
    for range_size, mass in range_size_histogram.items():
        clamped = min(range_size, cap)
        for r, freq in enumerate(access_frequencies(clamped)):
            averaged[r] += mass * freq
    return [value / total_mass for value in averaged]


def expected_probe_bound(range_size: int, theta: float) -> float:
    """Theoretical expected-probe upper bound ``O(log R / theta^2)`` (§3.2).

    For a Rosetta whose per-level FPR is ``0.5 + theta`` (``theta != 0``),
    the expected number of probes for an empty range is bounded by
    ``2 log2(R) * (E0 + 3 / (4 theta^2 sqrt(pi)))`` where ``E0`` is the
    constant single-probe term.  Exposed for the theory benchmarks.
    """
    if not 0.0 < abs(theta) < 0.5:
        raise ValueError(f"theta must satisfy 0 < |theta| < 0.5, got {theta}")
    if range_size < 1:
        raise ValueError(f"range_size must be >= 1, got {range_size}")
    dyadic_terms = max(1, 2 * math.ceil(math.log2(max(range_size, 2))))
    per_range = 1.0 + 3.0 / (4.0 * theta * theta * math.sqrt(math.pi))
    return dyadic_terms * per_range
