"""Dyadic interval decomposition over an implicit segment tree.

Rosetta translates a range query ``[low, high]`` into probes over *dyadic
ranges*: intervals of the form ``[p * 2^r, (p+1) * 2^r - 1]`` whose members
all share the binary prefix ``p`` of length ``L - r`` (``L`` = key width in
bits).  Any range of size ``R`` decomposes into at most ``2*log2(R)`` maximal
dyadic ranges; together the prefixes form the nodes of an implicit segment
tree (paper §2.1–2.2).

The decomposition here is the standard greedy one: repeatedly peel off the
largest aligned block that starts at ``low`` and fits in the range.  A
``max_height`` cap limits block size to ``2^max_height``, which is how
Rosetta restricts itself to its bottom ``max_height + 1`` Bloom-filter levels
when the maximum query size is bounded (paper §3.1) — and, at
``max_height=0``, degenerates into the single-level per-key probing mode of
§2.4.
"""

from __future__ import annotations

from typing import Iterator, NamedTuple

__all__ = ["DyadicInterval", "decompose", "max_intervals_for_range"]


class DyadicInterval(NamedTuple):
    """A dyadic block ``[low, low + 2^height - 1]`` with its prefix identity.

    ``prefix`` is the integer value of the shared binary prefix and
    ``height`` the block's level above the leaves, so ``prefix`` has
    ``L - height`` significant bits for key width ``L``.
    """

    prefix: int
    height: int

    @property
    def size(self) -> int:
        """Number of keys covered: ``2^height``."""
        return 1 << self.height

    def low(self) -> int:
        """Smallest key in the block."""
        return self.prefix << self.height

    def high(self) -> int:
        """Largest key in the block."""
        return ((self.prefix + 1) << self.height) - 1


def decompose(low: int, high: int, max_height: int) -> Iterator[DyadicInterval]:
    """Yield maximal dyadic intervals covering ``[low, high]``, left to right.

    Parameters
    ----------
    low, high:
        Inclusive query bounds, ``0 <= low <= high``.
    max_height:
        Largest permitted block height; blocks never exceed ``2^max_height``
        keys.  Must be >= 0.

    Yields
    ------
    DyadicInterval
        Non-overlapping blocks whose union is exactly ``[low, high]``.
    """
    if low < 0:
        raise ValueError(f"low must be non-negative, got {low}")
    if high < low:
        raise ValueError(f"empty range: low={low} > high={high}")
    if max_height < 0:
        raise ValueError(f"max_height must be >= 0, got {max_height}")

    cursor = low
    while cursor <= high:
        remaining = high - cursor + 1
        # Largest aligned block: limited by the alignment of `cursor`
        # (its trailing zeros), by what still fits, and by the cap.
        align = max_height if cursor == 0 else min(
            max_height, (cursor & -cursor).bit_length() - 1
        )
        fit = remaining.bit_length() - 1
        height = min(align, fit)
        yield DyadicInterval(prefix=cursor >> height, height=height)
        cursor += 1 << height


def max_intervals_for_range(range_size: int) -> int:
    """Upper bound on the number of dyadic intervals for a range of a size.

    A range of size ``R`` splits into at most ``2 * ceil(log2 R)`` maximal
    dyadic ranges (and at least 1).
    """
    if range_size < 1:
        raise ValueError(f"range_size must be >= 1, got {range_size}")
    if range_size == 1:
        return 1
    return 2 * (range_size - 1).bit_length()
