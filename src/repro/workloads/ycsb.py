"""YCSB-style workload generation — variations of Workload E (§5).

The paper's query workloads are "variations of Workload E, a majority
range scan workload", built from empty range and point queries "to capture
worst-case behavior" — a filter only matters when the queried range holds
no keys.  :class:`WorkloadBuilder` produces exactly that: given the loaded
key set, it generates

* **empty range queries** of a chosen size distribution (anchors drawn from
  the key distribution, rejected if they overlap a stored key),
* **empty point queries** (absent keys),
* optional **present** point/range queries for mixed workloads,
* **correlated** variants where the query's lower bound sits a fixed offset
  ``theta`` above an existing key (Fig. 5(B)),

all deterministically seeded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Literal, Sequence

import numpy as np

from repro.errors import WorkloadError
from repro.workloads.distributions import normal_keys, uniform_keys

QueryKind = Literal["range", "point"]

__all__ = ["Query", "Workload", "WorkloadBuilder"]


@dataclass(frozen=True)
class Query:
    """One operation: a point probe or an inclusive range scan."""

    kind: QueryKind
    low: int
    high: int

    @property
    def range_size(self) -> int:
        """Number of keys the query covers."""
        return self.high - self.low + 1


@dataclass
class Workload:
    """A generated query sequence plus its provenance."""

    queries: list[Query]
    description: str = ""
    metadata: dict = field(default_factory=dict)

    def __iter__(self) -> Iterator[Query]:
        return iter(self.queries)

    def __len__(self) -> int:
        return len(self.queries)


class WorkloadBuilder:
    """Generates query workloads against a fixed loaded key set.

    Parameters
    ----------
    keys:
        The loaded (stored) keys; empty-query generation rejects anchors
        whose range would intersect them.
    key_bits:
        Domain width.
    seed:
        RNG seed; every product of one builder instance is deterministic.
    """

    def __init__(self, keys: Sequence[int], key_bits: int, seed: int = 0) -> None:
        if not 1 <= key_bits <= 128:
            raise WorkloadError(f"key_bits must be in [1, 128], got {key_bits}")
        self.key_bits = key_bits
        self._wide = key_bits > 64  # beyond uint64 arithmetic
        if self._wide:
            self._keys_list = sorted(set(int(k) for k in keys))
            self._keys = None
        else:
            self._keys = np.unique(np.asarray(list(keys), dtype=np.uint64))
            self._keys_list = None
        self._rng = np.random.default_rng(seed)

    @property
    def domain_max(self) -> int:
        """Largest key in the domain."""
        return (1 << self.key_bits) - 1

    # ------------------------------------------------------------------
    # Emptiness machinery
    # ------------------------------------------------------------------
    def _num_keys(self) -> int:
        return len(self._keys_list) if self._wide else len(self._keys)

    def _key_at(self, index: int) -> int:
        if self._wide:
            return self._keys_list[index]
        return int(self._keys[index])

    def _ranges_are_empty(self, lows, highs) -> np.ndarray:
        """Per range: does [low, high] miss every stored key?"""
        if self._wide:
            import bisect

            out = np.empty(len(lows), dtype=bool)
            for i, (low, high) in enumerate(zip(lows, highs)):
                idx = bisect.bisect_left(self._keys_list, low)
                out[i] = not (
                    idx < len(self._keys_list) and self._keys_list[idx] <= high
                )
            return out
        idx = np.searchsorted(self._keys, lows, side="left")
        in_bounds = idx < len(self._keys)
        hit = np.zeros(len(lows), dtype=bool)
        hit[in_bounds] = self._keys[idx[in_bounds]] <= highs[in_bounds]
        return ~hit

    def _draw_anchors(self, count: int, distribution: str):
        if self._wide:
            # Compose 32-bit draws into key_bits-wide uniform integers.
            words = (self.key_bits + 31) // 32
            draws = self._rng.integers(0, 1 << 32, size=(count, words), dtype=np.uint64)
            anchors = []
            for row in draws:
                value = 0
                for word in row:
                    value = (value << 32) | int(word)
                anchors.append(value & self.domain_max)
            if distribution == "normal":
                # Skew by collapsing toward the domain midpoint.
                mid = self.domain_max // 2
                anchors = [mid + (a - mid) // 8 for a in anchors]
            return anchors
        if distribution == "uniform":
            return uniform_keys(count, self.key_bits, rng=self._rng)
        if distribution == "normal":
            return normal_keys(count, self.key_bits, rng=self._rng)
        raise WorkloadError(f"unknown anchor distribution {distribution!r}")

    # ------------------------------------------------------------------
    # Workload products
    # ------------------------------------------------------------------
    def empty_range_queries(
        self,
        count: int,
        range_size: int,
        distribution: str = "uniform",
        correlation_offset: int | None = None,
    ) -> Workload:
        """``count`` range queries of ``range_size`` that are all empty.

        With ``correlation_offset`` set, anchors are existing keys plus the
        offset (the paper's θ-correlated workload) instead of fresh draws —
        these ranges hug stored keys, which is the adversarial case for
        prefix-based filters.
        """
        if range_size < 1:
            raise WorkloadError(f"range_size must be >= 1, got {range_size}")
        queries: list[Query] = []
        attempts = 0
        while len(queries) < count:
            attempts += 1
            if attempts > 1000:
                raise WorkloadError(
                    "could not find enough empty ranges; key set too dense"
                )
            need = count - len(queries)
            batch = int(need * 1.5) + 8
            if correlation_offset is not None:
                picks = self._rng.integers(0, self._num_keys(), size=batch)
                lows = [
                    self._key_at(int(p)) + correlation_offset for p in picks
                ]
            else:
                lows = [int(a) for a in self._draw_anchors(batch, distribution)]
            cap = self.domain_max - range_size + 1
            lows = np.array(
                [min(low, cap) for low in lows], dtype=object
            )
            highs = lows + (range_size - 1)
            empty = self._ranges_are_empty(lows, highs)
            for low, high in zip(lows[empty][:need], highs[empty][:need]):
                queries.append(Query("range", int(low), int(high)))
        label = f"empty-range size={range_size} dist={distribution}"
        if correlation_offset is not None:
            label += f" correlated(theta={correlation_offset})"
        return Workload(
            queries,
            description=label,
            metadata={
                "range_size": range_size,
                "distribution": distribution,
                "correlation_offset": correlation_offset,
            },
        )

    def empty_point_queries(
        self, count: int, distribution: str = "uniform"
    ) -> Workload:
        """``count`` point queries on keys that are all absent."""
        queries: list[Query] = []
        attempts = 0
        while len(queries) < count:
            attempts += 1
            if attempts > 1000:
                raise WorkloadError("could not find enough absent keys")
            need = count - len(queries)
            anchors = np.array(
                [int(a) for a in self._draw_anchors(int(need * 1.5) + 8, distribution)],
                dtype=object,
            )
            empty = self._ranges_are_empty(anchors, anchors)
            for key in anchors[empty][:need]:
                queries.append(Query("point", int(key), int(key)))
        return Workload(
            queries,
            description=f"empty-point dist={distribution}",
            metadata={"distribution": distribution},
        )

    def occupied_range_queries(self, count: int, range_size: int) -> Workload:
        """``count`` range queries guaranteed to contain a stored key.

        Each range is anchored on a random stored key with a random offset
        inside the window — the true-positive complement of
        :meth:`empty_range_queries`, used to measure tightening benefits
        and true-positive I/O costs.
        """
        if range_size < 1:
            raise WorkloadError(f"range_size must be >= 1, got {range_size}")
        if self._num_keys() == 0:
            raise WorkloadError("no stored keys to anchor ranges on")
        picks = self._rng.integers(0, self._num_keys(), size=count)
        offsets = self._rng.integers(0, range_size, size=count)
        queries: list[Query] = []
        for pick, offset in zip(picks, offsets):
            anchor = self._key_at(int(pick))
            low = max(0, anchor - int(offset))
            high = min(low + range_size - 1, self.domain_max)
            low = min(low, high)
            queries.append(Query("range", low, high))
        return Workload(
            queries,
            description=f"occupied-range size={range_size}",
            metadata={"range_size": range_size, "occupied": True},
        )

    def present_point_queries(self, count: int) -> Workload:
        """``count`` point queries on keys that exist."""
        if self._num_keys() == 0:
            raise WorkloadError("no stored keys to query")
        picks = self._rng.integers(0, self._num_keys(), size=count)
        queries = [
            Query("point", self._key_at(int(p)), self._key_at(int(p)))
            for p in picks
        ]
        return Workload(queries, description="present-point")

    def workload_e(
        self,
        count: int,
        max_range_size: int = 64,
        scan_fraction: float = 0.95,
        distribution: str = "uniform",
    ) -> Workload:
        """A YCSB-E-shaped mix: mostly short scans plus some point reads.

        Scan lengths are drawn uniformly from ``[1, max_range_size]``
        (YCSB's default scan-length chooser); all queries are empty so the
        filters are on the critical path for every operation.
        """
        if not 0.0 <= scan_fraction <= 1.0:
            raise WorkloadError(
                f"scan_fraction must be in [0, 1], got {scan_fraction}"
            )
        num_scans = int(round(count * scan_fraction))
        sizes = self._rng.integers(1, max_range_size + 1, size=num_scans)
        queries: list[Query] = []
        for size in sizes:
            sub = self.empty_range_queries(1, int(size), distribution)
            queries.extend(sub.queries)
        queries.extend(
            self.empty_point_queries(count - num_scans, distribution).queries
        )
        order = self._rng.permutation(len(queries))
        queries = [queries[i] for i in order]
        return Workload(
            queries,
            description=(
                f"YCSB-E mix scans={scan_fraction:.0%} max_range={max_range_size}"
            ),
            metadata={"max_range_size": max_range_size},
        )
