"""Adversarial FP-attack workload generator.

A filter tells an attacker something every time it is wrong: a query that
returns empty yet costs a device read just revealed a false positive, and
because a Bloom-backed filter is deterministic, *that exact query is a
false positive forever* (until the filter is rebuilt with a different
hash family).  An adversary can therefore probe cheaply, remember the
queries the filter failed to reject, and replay them in a tight loop —
converting a filter designed for a ~1% FPR into one that eats a device
read on ~100% of the attacker's traffic.

:class:`AdversarialAttacker` implements that loop against a
:class:`repro.lsm.db.DB` (or any object with the same ``get`` /
``range_query`` / ``stats`` surface):

* **learn** — probe random absent point keys and random dyadic-aligned
  ranges, keeping every query classified as a false positive;
* **escalate** — replay the learned set in rounds of multiplying
  pressure, the way a real attacker amortizes a short learning phase
  over an arbitrarily long replay phase.

Two FP classifiers:

* ``mode="oracle"`` reads ``db.stats.filter_false_positives`` around each
  probe — the white-box upper bound (an insider, or a co-tenant reading
  exported metrics).  Assumes the attacker is the only client while
  probing, which is exactly the benchmark setting.
* ``mode="blackbox"`` classifies by wall-clock latency alone: a rejected
  query never touches a data block, a false positive does, so empty
  results split into a fast and a slow cluster.  The threshold is
  calibrated from the attacker's own probe latencies (no cooperation
  from the store), making this the realistic remote attacker.

The defenses this generator exists to evaluate (per-SST filter salting,
FP-feedback quarantine) live in :mod:`repro.lsm`; the attack itself never
needs more than the public query API plus, in oracle mode, the stats
counters.
"""

from __future__ import annotations

import statistics
import random
import time
from dataclasses import dataclass
from typing import Iterable

from repro.errors import WorkloadError

__all__ = ["AdversarialAttacker", "AttackReport"]


@dataclass(frozen=True)
class AttackReport:
    """Outcome of one full attack (learning + escalating replay)."""

    mode: str
    learn_probes: int
    learned_points: tuple[int, ...]
    learned_ranges: tuple[tuple[int, int], ...]
    replay_rounds: int
    replay_probes: int
    replay_false_positives: int

    @property
    def replay_fpr(self) -> float:
        """Share of replayed (empty) queries that cost a device read."""
        if self.replay_probes == 0:
            return 0.0
        return self.replay_false_positives / self.replay_probes

    @property
    def learned(self) -> int:
        """Total learned FP-triggering queries (points + ranges)."""
        return len(self.learned_points) + len(self.learned_ranges)


class AdversarialAttacker:
    """Learns FP-triggering queries against a store and replays them.

    Parameters
    ----------
    db:
        The store under attack (``get``/``range_query``; ``stats`` with a
        ``filter_false_positives`` counter in oracle mode).
    key_bits:
        Width of the key domain; defaults to ``db.options.key_bits``.
    mode:
        ``"oracle"`` (stats-delta classifier) or ``"blackbox"``
        (latency-threshold classifier).
    avoid:
        Keys known to be stored — probes landing on them are skipped, so
        every issued query is genuinely empty.  Optional; a probe that
        returns data is discarded either way.
    latency_threshold_ns:
        Fixed black-box decision threshold.  When omitted it is
        calibrated as ``blackbox_threshold_factor`` times the median
        latency of the first ``blackbox_calibration_probes`` empty
        probes (most of which are true negatives at any sane FPR).
    """

    def __init__(
        self,
        db,
        key_bits: int | None = None,
        mode: str = "oracle",
        seed: int = 0,
        avoid: Iterable[int] | None = None,
        latency_threshold_ns: float | None = None,
        blackbox_calibration_probes: int = 64,
        blackbox_threshold_factor: float = 4.0,
    ) -> None:
        if mode not in ("oracle", "blackbox"):
            raise WorkloadError(
                f"unknown attack mode {mode!r}; expected 'oracle' or 'blackbox'"
            )
        self._db = db
        self._key_bits = (
            key_bits if key_bits is not None else db.options.key_bits
        )
        if self._key_bits < 1:
            raise WorkloadError(f"key_bits must be >= 1, got {self._key_bits}")
        self._mode = mode
        self._rng = random.Random(seed)
        self._avoid = frozenset(int(k) for k in avoid) if avoid else frozenset()
        self._threshold_ns = latency_threshold_ns
        self._calibration_budget = blackbox_calibration_probes
        self._threshold_factor = blackbox_threshold_factor
        self._calibration_ns: list[int] = []
        self.probes_issued = 0
        self.learned_points: list[int] = []
        self.learned_ranges: list[tuple[int, int]] = []

    # ------------------------------------------------------------------
    # FP classification
    # ------------------------------------------------------------------
    def _probe_point(self, key: int) -> bool:
        """Issue ``get(key)``; True when classified as a false positive."""
        if self._mode == "oracle":
            before = self._db.stats.filter_false_positives
            value = self._db.get(key)
            self.probes_issued += 1
            if value is not None:
                return False
            return self._db.stats.filter_false_positives > before
        started = time.perf_counter_ns()
        value = self._db.get(key)
        elapsed = time.perf_counter_ns() - started
        self.probes_issued += 1
        if value is not None:
            return False
        return self._classify_latency(elapsed)

    def _probe_range(self, low: int, high: int) -> bool:
        """Issue ``range_query``; True when classified as a false positive."""
        if self._mode == "oracle":
            before = self._db.stats.filter_false_positives
            results = self._db.range_query(low, high)
            self.probes_issued += 1
            if results:
                return False
            return self._db.stats.filter_false_positives > before
        started = time.perf_counter_ns()
        results = self._db.range_query(low, high)
        elapsed = time.perf_counter_ns() - started
        self.probes_issued += 1
        if results:
            return False
        return self._classify_latency(elapsed)

    def _classify_latency(self, elapsed_ns: int) -> bool:
        """Black-box classifier: empty-but-slow means a false positive.

        The first ``blackbox_calibration_probes`` empty probes only feed
        the calibration sample (classified negative): at design FPR the
        sample median is a true-negative latency, and anything several
        times slower did real block work.
        """
        if self._threshold_ns is None:
            self._calibration_ns.append(elapsed_ns)
            if len(self._calibration_ns) < self._calibration_budget:
                return False
            self._threshold_ns = self._threshold_factor * statistics.median(
                self._calibration_ns
            )
            return False
        return elapsed_ns >= self._threshold_ns

    # ------------------------------------------------------------------
    # Learning
    # ------------------------------------------------------------------
    def _random_absent_key(self) -> int:
        domain = 1 << self._key_bits
        for _ in range(64):
            key = self._rng.randrange(domain)
            if key not in self._avoid:
                return key
        raise WorkloadError(
            "could not sample an absent key in 64 draws; pass a smaller "
            "'avoid' set or widen key_bits"
        )

    def learn_points(self, probes: int) -> list[int]:
        """Probe ``probes`` random absent keys; remember the FP hits."""
        found: list[int] = []
        for _ in range(probes):
            key = self._random_absent_key()
            if self._probe_point(key):
                found.append(key)
        self.learned_points.extend(found)
        return found

    def learn_ranges(self, probes: int, range_size: int = 8) -> list[tuple[int, int]]:
        """Probe ``probes`` random dyadic-aligned empty ranges.

        ``range_size`` is rounded up to a power of two and each probe is
        aligned to it, so every learned range maps onto exactly the
        dyadic intervals a Rosetta stack probes — the attacker replays
        the very prefixes whose Bloom probes false-positived.
        """
        if probes < 0:
            raise WorkloadError(f"probes must be >= 0, got {probes}")
        size = 1
        while size < max(1, range_size):
            size <<= 1
        domain = 1 << self._key_bits
        found: list[tuple[int, int]] = []
        for _ in range(probes):
            low = self._rng.randrange(max(1, domain // size)) * size
            high = min(low + size - 1, domain - 1)
            if any(low <= key <= high for key in self._avoid):
                continue
            if self._probe_range(low, high):
                found.append((low, high))
        self.learned_ranges.extend(found)
        return found

    # ------------------------------------------------------------------
    # Escalating replay
    # ------------------------------------------------------------------
    def replay(
        self, rounds: int = 3, pressure: int = 2, max_probes: int = 100_000
    ) -> tuple[int, int]:
        """Replay the learned set with multiplying per-round pressure.

        Round ``r`` (0-based) replays every learned query
        ``pressure ** r`` times, stopping at ``max_probes`` total.
        Returns ``(replay_probes, replay_false_positives)``; against an
        undefended store the FP count tracks the probe count one-for-one
        because the learned queries are deterministic repeat offenders.
        """
        if rounds < 0:
            raise WorkloadError(f"rounds must be >= 0, got {rounds}")
        if pressure < 1:
            raise WorkloadError(f"pressure must be >= 1, got {pressure}")
        probes = 0
        hits = 0
        for round_index in range(rounds):
            repeats = pressure ** round_index
            for _ in range(repeats):
                for key in self.learned_points:
                    if probes >= max_probes:
                        return probes, hits
                    probes += 1
                    if self._probe_point(key):
                        hits += 1
                for low, high in self.learned_ranges:
                    if probes >= max_probes:
                        return probes, hits
                    probes += 1
                    if self._probe_range(low, high):
                        hits += 1
        return probes, hits

    def run(
        self,
        point_probes: int = 400,
        range_probes: int = 200,
        range_size: int = 8,
        replay_rounds: int = 3,
        replay_pressure: int = 2,
        max_replay_probes: int = 100_000,
    ) -> AttackReport:
        """Full attack: learn points and ranges, then escalate replay."""
        learn_start = self.probes_issued
        self.learn_points(point_probes)
        self.learn_ranges(range_probes, range_size)
        learn_probes = self.probes_issued - learn_start
        replay_probes, replay_hits = self.replay(
            rounds=replay_rounds,
            pressure=replay_pressure,
            max_probes=max_replay_probes,
        )
        return AttackReport(
            mode=self._mode,
            learn_probes=learn_probes,
            learned_points=tuple(self.learned_points),
            learned_ranges=tuple(self.learned_ranges),
            replay_rounds=replay_rounds,
            replay_probes=replay_probes,
            replay_false_positives=replay_hits,
        )
