"""Workload generators for the paper's experiments (§5).

Key sets (uniform / normal-skewed / string corpora), YCSB-E-style query
mixes, empty-query construction, and θ-correlated workloads.
"""

from repro.workloads.adversarial import AdversarialAttacker, AttackReport
from repro.workloads.correlation import correlated_range_queries, correlation_sweep
from repro.workloads.distributions import (
    normal_keys,
    sample_distinct,
    uniform_keys,
    zipfian_ranks,
)
from repro.workloads.keygen import Dataset, generate_dataset, synthesize_value
from repro.workloads.trace import load_trace, replay, save_trace
from repro.workloads.strings import (
    StringKeyCodec,
    generate_wex_titles,
    string_to_int_key,
)
from repro.workloads.ycsb import Query, Workload, WorkloadBuilder

__all__ = [
    "AdversarialAttacker",
    "AttackReport",
    "Dataset",
    "Query",
    "StringKeyCodec",
    "Workload",
    "WorkloadBuilder",
    "correlated_range_queries",
    "correlation_sweep",
    "generate_dataset",
    "generate_wex_titles",
    "load_trace",
    "replay",
    "save_trace",
    "normal_keys",
    "sample_distinct",
    "string_to_int_key",
    "synthesize_value",
    "uniform_keys",
    "zipfian_ranks",
]
