"""Key/query distributions used across the paper's experiments (§5).

The paper generates keys and query anchor points from *uniform* and
*normal* distributions over a 64-bit domain, plus Zipfian access skew for
query popularity.  All samplers here are deterministic given a seed and
vectorized via NumPy.
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError

__all__ = [
    "uniform_keys",
    "normal_keys",
    "zipfian_ranks",
    "sample_distinct",
]


def uniform_keys(
    count: int, key_bits: int, seed: int = 0, rng: np.random.Generator | None = None
) -> np.ndarray:
    """``count`` uniform draws from ``[0, 2^key_bits)`` (with repeats)."""
    _check(count, key_bits)
    rng = rng if rng is not None else np.random.default_rng(seed)
    if key_bits <= 63:
        return rng.integers(0, 1 << key_bits, size=count, dtype=np.uint64)
    # Compose 64-bit draws for wider domains (returned as uint64 pairs is
    # overkill here; the paper's domain is 64-bit).
    return rng.integers(0, 1 << 63, size=count, dtype=np.uint64) << np.uint64(1)


def normal_keys(
    count: int,
    key_bits: int,
    seed: int = 0,
    mean_fraction: float = 0.5,
    std_fraction: float = 0.1,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Normally distributed keys — the paper's *skewed* key set (Fig. 5(C)).

    Keys cluster around ``mean_fraction`` of the domain with standard
    deviation ``std_fraction`` of the domain; draws are clamped into range.
    Clustering produces the prefix collisions that hurt trie culling.
    """
    _check(count, key_bits)
    if std_fraction <= 0:
        raise WorkloadError(f"std_fraction must be positive, got {std_fraction}")
    rng = rng if rng is not None else np.random.default_rng(seed)
    domain = float(1 << key_bits)
    raw = rng.normal(mean_fraction * domain, std_fraction * domain, size=count)
    clipped = np.clip(raw, 0, domain - 1)
    return clipped.astype(np.uint64)


def zipfian_ranks(
    count: int,
    universe: int,
    theta: float = 0.99,
    seed: int = 0,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Zipf-skewed ranks in ``[0, universe)`` (YCSB's scrambled-zipf core).

    Uses the standard rejection-free inverse-CDF approximation for the
    Zipf(θ) distribution over a finite universe.
    """
    if universe < 1:
        raise WorkloadError(f"universe must be >= 1, got {universe}")
    if not 0.0 < theta < 1.0:
        raise WorkloadError(f"theta must be in (0, 1), got {theta}")
    rng = rng if rng is not None else np.random.default_rng(seed)
    # Gray/Jim Gray's method constants.
    zetan = _zeta(universe, theta)
    alpha = 1.0 / (1.0 - theta)
    eta = (1.0 - (2.0 / universe) ** (1.0 - theta)) / (1.0 - _zeta(2, theta) / zetan)
    u = rng.random(count)
    uz = u * zetan
    ranks = np.empty(count, dtype=np.uint64)
    low_mask = uz < 1.0
    ranks[low_mask] = 0
    mid_mask = (~low_mask) & (uz < 1.0 + 0.5 ** theta)
    ranks[mid_mask] = 1
    rest = ~(low_mask | mid_mask)
    ranks[rest] = (universe * (eta * u[rest] - eta + 1.0) ** alpha).astype(np.uint64)
    return np.minimum(ranks, universe - 1)


def sample_distinct(count: int, key_bits: int, seed: int = 0) -> np.ndarray:
    """``count`` *distinct* uniform keys, sorted (the loaded key set).

    Oversamples and deduplicates; the 2^key_bits domain must comfortably
    exceed ``count``.
    """
    _check(count, key_bits)
    if count > (1 << key_bits) // 2:
        raise WorkloadError(
            f"cannot draw {count} distinct keys from a 2^{key_bits} domain"
        )
    rng = np.random.default_rng(seed)
    keys = np.unique(uniform_keys(int(count * 1.2) + 16, key_bits, rng=rng))
    while len(keys) < count:
        extra = uniform_keys(count, key_bits, rng=rng)
        keys = np.unique(np.concatenate([keys, extra]))
    return keys[:count]


def _zeta(n: int, theta: float) -> float:
    ranks = np.arange(1, min(n, 10_000_000) + 1)
    return float(np.sum(1.0 / ranks ** theta))


def _check(count: int, key_bits: int) -> None:
    if count < 0:
        raise WorkloadError(f"count must be >= 0, got {count}")
    if not 1 <= key_bits <= 128:
        raise WorkloadError(f"key_bits must be in [1, 128], got {key_bits}")
