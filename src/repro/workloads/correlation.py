"""Key-query correlated workloads (§5, Fig. 5(B)).

The paper models correlation with a factor θ: "a range query with
correlation degree θ has its lower bound at a distance θ from the lower
bound generated using the distribution" — concretely, the query's lower
bound is ``existing_key + θ``.  Such queries are empty yet sit right next
to stored keys, sharing long prefixes with them; this is the workload where
trie-culling (SuRF) and prefix-hashing filters produce a false positive on
almost every query, while Rosetta's exact per-level prefix probes do not.

This module is a thin, documented façade over
:class:`~repro.workloads.ycsb.WorkloadBuilder`'s correlation support, plus
a sweep helper used by the Fig. 5(B)/8(E–G) benchmarks.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import WorkloadError
from repro.workloads.ycsb import Workload, WorkloadBuilder

__all__ = ["correlated_range_queries", "correlation_sweep"]


def correlated_range_queries(
    keys: Sequence[int],
    key_bits: int,
    count: int,
    range_size: int,
    theta: int = 1,
    seed: int = 0,
) -> Workload:
    """``count`` empty range queries whose lows sit ``theta`` above a key.

    ``theta=1`` (the paper's setting) makes every query start immediately
    after an existing key — the adversarial "find the next order id" case.
    """
    if theta < 1:
        raise WorkloadError(f"theta must be >= 1, got {theta}")
    builder = WorkloadBuilder(keys, key_bits, seed=seed)
    return builder.empty_range_queries(
        count, range_size, correlation_offset=theta
    )


def correlation_sweep(
    keys: Sequence[int],
    key_bits: int,
    count: int,
    range_size: int,
    thetas: Sequence[int] = (1, 2, 4, 8, 16),
    seed: int = 0,
) -> dict[int, Workload]:
    """One correlated workload per θ, for sensitivity benchmarks."""
    return {
        theta: correlated_range_queries(
            keys, key_bits, count, range_size, theta=theta, seed=seed + theta
        )
        for theta in thetas
    }
