"""Key-set generation and value synthesis for loading the store.

Bundles the distribution samplers into "give me a dataset" helpers: a
distinct key set from a named distribution plus deterministic values of a
configurable size (the paper uses 512-byte values over 64-bit keys).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.errors import WorkloadError
from repro.workloads.distributions import normal_keys, sample_distinct

__all__ = ["Dataset", "generate_dataset", "synthesize_value"]


@dataclass(frozen=True)
class Dataset:
    """A loaded key set plus its generation parameters."""

    keys: np.ndarray  # sorted distinct uint64 keys
    key_bits: int
    distribution: str
    seed: int
    value_size: int

    def __len__(self) -> int:
        return len(self.keys)

    def items(self) -> Iterator[tuple[int, bytes]]:
        """Yield ``(key, value)`` pairs with synthesized values."""
        for key in self.keys:
            yield int(key), synthesize_value(int(key), self.value_size)


def synthesize_value(key: int, value_size: int) -> bytes:
    """A deterministic value for ``key``: the key echoed + filler bytes.

    Values are verifiable (the key is recoverable from the first 8 bytes),
    which integration tests use to detect cross-key corruption.
    """
    if value_size < 8:
        raise WorkloadError(f"value_size must be >= 8, got {value_size}")
    header = (key & 0xFFFFFFFFFFFFFFFF).to_bytes(8, "big")
    filler = bytes((key + i) & 0xFF for i in range(min(value_size - 8, 32)))
    if value_size - 8 > 32:
        filler = (filler * ((value_size - 8) // len(filler) + 1))[: value_size - 8]
    return header + filler


def generate_dataset(
    num_keys: int,
    key_bits: int = 64,
    distribution: str = "uniform",
    seed: int = 0,
    value_size: int = 64,
) -> Dataset:
    """Generate a distinct, sorted key set from a named distribution.

    ``distribution`` is ``uniform`` or ``normal`` (the paper's skewed set);
    normal draws are deduplicated, so very tight distributions may yield
    slightly fewer distinct keys than requested at small domains.
    """
    if distribution == "uniform":
        keys = sample_distinct(num_keys, key_bits, seed=seed)
    elif distribution == "normal":
        rng = np.random.default_rng(seed)
        keys = np.unique(normal_keys(int(num_keys * 1.1) + 16, key_bits, rng=rng))
        while len(keys) < num_keys:
            extra = normal_keys(num_keys, key_bits, rng=rng)
            keys = np.unique(np.concatenate([keys, extra]))
        keys = keys[:num_keys]
    else:
        raise WorkloadError(f"unknown distribution {distribution!r}")
    return Dataset(
        keys=keys,
        key_bits=key_bits,
        distribution=distribution,
        seed=seed,
        value_size=value_size,
    )
