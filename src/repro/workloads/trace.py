"""Workload trace recording and replay.

Benchmark reproducibility across machines and sessions benefits from
*materialized* workloads: a query sequence generated once, written to a
trace file, and replayed bit-identically later (or shared alongside
results).  Traces are JSON-lines — one query per line — with a header line
carrying provenance (key domain, generator description, metadata).

::

    save_trace("fig5_range16.trace", workload, key_bits=64)
    workload = load_trace("fig5_range16.trace")
"""

from __future__ import annotations

import json
from typing import Iterable

from repro.errors import WorkloadError
from repro.workloads.ycsb import Query, Workload

_FORMAT_VERSION = 1

__all__ = ["save_trace", "load_trace", "replay"]


def save_trace(path: str, workload: Workload, key_bits: int = 64) -> None:
    """Write a workload to a JSON-lines trace file."""
    with open(path, "w") as handle:
        header = {
            "version": _FORMAT_VERSION,
            "key_bits": key_bits,
            "description": workload.description,
            "metadata": workload.metadata,
            "num_queries": len(workload),
        }
        handle.write(json.dumps(header) + "\n")
        for query in workload:
            handle.write(
                json.dumps({"k": query.kind, "l": query.low, "h": query.high})
                + "\n"
            )


def load_trace(path: str) -> Workload:
    """Load a workload saved with :func:`save_trace`.

    Validates the header and every query (kinds, bounds ordering, count).
    """
    with open(path) as handle:
        header_line = handle.readline()
        if not header_line:
            raise WorkloadError(f"empty trace file: {path}")
        try:
            header = json.loads(header_line)
        except json.JSONDecodeError as exc:
            raise WorkloadError(f"bad trace header in {path}") from exc
        if header.get("version") != _FORMAT_VERSION:
            raise WorkloadError(
                f"unsupported trace version {header.get('version')!r}"
            )
        queries: list[Query] = []
        for line_number, line in enumerate(handle, start=2):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                kind, low, high = record["k"], record["l"], record["h"]
            except (json.JSONDecodeError, KeyError) as exc:
                raise WorkloadError(
                    f"bad trace record at {path}:{line_number}"
                ) from exc
            if kind not in ("point", "range"):
                raise WorkloadError(
                    f"unknown query kind {kind!r} at {path}:{line_number}"
                )
            if low > high:
                raise WorkloadError(
                    f"inverted range at {path}:{line_number}"
                )
            queries.append(Query(kind, int(low), int(high)))
    expected = header.get("num_queries")
    if expected is not None and expected != len(queries):
        raise WorkloadError(
            f"trace {path} advertises {expected} queries, found {len(queries)}"
        )
    return Workload(
        queries,
        description=header.get("description", ""),
        metadata=dict(header.get("metadata", {})),
    )


def replay(workload: Workload, point_fn, range_fn) -> list:
    """Drive a workload through caller-supplied query functions.

    ``point_fn(key)`` handles point queries, ``range_fn(low, high)`` range
    queries; returns the per-query results in order.  This is the
    trace-replay counterpart of the harness runners, usable with any
    object exposing the two calls (a filter, a DB, a remote client...).
    """
    results = []
    for query in workload:
        if query.kind == "point":
            results.append(point_fn(query.low))
        else:
            results.append(range_fn(query.low, query.high))
    return results
