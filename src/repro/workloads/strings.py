"""Synthetic Wikipedia-Extraction-like string dataset (Fig. 10 substitute).

The paper's string experiment uses the AWS *Wikipedia Extraction (WEX)*
dump — article titles and relational features extracted from English
Wikipedia.  That dataset is unavailable offline, so this module generates a
synthetic corpus reproducing the distributional properties the experiment
actually exercises:

* **variable-length keys** (titles span a few to dozens of bytes),
* **heavy shared prefixes** (titles cluster by leading words/categories —
  the property that stresses trie culling and prefix indexing),
* **Zipf-weighted vocabulary** (a small set of very common leading words).

Titles are built as 1–4 words drawn from a Zipf-weighted vocabulary with
namespace-style prefixes (``Category:``, ``Template:``, ...) mixed in, then
deduplicated.  Queries are drawn uniformly from the corpus neighbourhood
exactly as the paper draws its workload from the dataset.
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError

__all__ = ["generate_wex_titles", "string_to_int_key", "StringKeyCodec"]

_NAMESPACES = [b"", b"", b"", b"Category:", b"Template:", b"Wikipedia:", b"Talk:"]

_SYLLABLES = [
    b"an", b"ber", b"can", b"den", b"el", b"fran", b"gar", b"hol", b"in",
    b"jor", b"kar", b"lan", b"mar", b"nor", b"or", b"pol", b"qui", b"ran",
    b"ser", b"ton", b"un", b"ver", b"wil", b"xen", b"york", b"zur",
]


def _make_vocabulary(rng: np.random.Generator, size: int) -> list[bytes]:
    """A deterministic pseudo-English vocabulary of ``size`` words."""
    words = []
    for _ in range(size):
        num_syllables = int(rng.integers(1, 4))
        picks = rng.integers(0, len(_SYLLABLES), size=num_syllables)
        word = b"".join(_SYLLABLES[p] for p in picks)
        words.append(word.capitalize())
    return words


def generate_wex_titles(
    count: int, seed: int = 0, vocabulary_size: int = 2000
) -> list[bytes]:
    """``count`` distinct Wikipedia-title-like byte strings, sorted.

    Zipf-weighted word choice concentrates leading words, producing the
    shared-prefix structure of real title corpora.
    """
    if count < 1:
        raise WorkloadError(f"count must be >= 1, got {count}")
    rng = np.random.default_rng(seed)
    vocabulary = _make_vocabulary(rng, vocabulary_size)
    # Zipf weights over the vocabulary: rank r gets weight 1/r^0.9.
    ranks = np.arange(1, vocabulary_size + 1)
    weights = 1.0 / ranks ** 0.9
    weights /= weights.sum()

    titles: set[bytes] = set()
    while len(titles) < count:
        need = count - len(titles)
        batch = need + need // 2 + 16
        namespaces = rng.integers(0, len(_NAMESPACES), size=batch)
        lengths = rng.integers(1, 5, size=batch)
        word_picks = rng.choice(vocabulary_size, size=(batch, 4), p=weights)
        for i in range(batch):
            words = [vocabulary[word_picks[i, j]] for j in range(lengths[i])]
            title = _NAMESPACES[namespaces[i]] + b"_".join(words)
            titles.add(title)
            if len(titles) >= count:
                break
    return sorted(titles)


def string_to_int_key(value: bytes, key_bits: int) -> int:
    """Map a byte string into a ``2^key_bits`` integer domain, order-preserving.

    Truncates/zero-pads to ``key_bits`` bits (big-endian), so lexicographic
    order of the originals is preserved up to truncation ties.  Used to run
    string corpora through the integer-keyed filters and LSM store.
    """
    if key_bits % 8:
        raise WorkloadError(f"key_bits must be byte-aligned, got {key_bits}")
    width = key_bits // 8
    padded = value[:width] + b"\x00" * max(0, width - len(value))
    return int.from_bytes(padded, "big")


class StringKeyCodec:
    """Bidirectional-enough codec between strings and the integer domain.

    Encoding is order-preserving but lossy past ``key_bits`` bits; the codec
    tracks collisions so experiments can report the effective distinct-key
    count after truncation.
    """

    def __init__(self, key_bits: int = 128) -> None:
        if key_bits % 8:
            raise WorkloadError(f"key_bits must be byte-aligned, got {key_bits}")
        self.key_bits = key_bits

    def encode(self, value: bytes) -> int:
        """Byte string -> integer key."""
        return string_to_int_key(value, self.key_bits)

    def encode_all(self, values: list[bytes]) -> tuple[list[int], int]:
        """Encode a corpus; returns (keys, number of truncation collisions)."""
        keys = [self.encode(v) for v in values]
        collisions = len(keys) - len(set(keys))
        return keys, collisions
