"""Result-set regression comparison for reproduced experiments.

Reproduction work lives and dies by "did anything change?".  This tool
compares two CSV result sets (as written by ``repro-bench --csv`` or
:func:`repro.bench.report.write_csv`): rows are keyed by their non-numeric
columns, numeric columns are compared within a relative tolerance, and the
outcome is a structured diff suitable for CI gating.

::

    report = compare_result_csvs("results/fig8_old.csv",
                                 "results/fig8_new.csv", tolerance=0.25)
    assert report.ok, report.summary()
"""

from __future__ import annotations

import csv
from dataclasses import dataclass, field

from repro.errors import ReproError

__all__ = ["RegressionReport", "compare_result_csvs", "compare_tables"]


@dataclass
class RegressionReport:
    """Outcome of a result-set comparison."""

    rows_compared: int = 0
    values_compared: int = 0
    missing_rows: list[str] = field(default_factory=list)
    extra_rows: list[str] = field(default_factory=list)
    deviations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when the new results match the baseline within tolerance."""
        return not (self.missing_rows or self.extra_rows or self.deviations)

    def summary(self) -> str:
        """Human-readable diff."""
        status = "MATCH" if self.ok else "REGRESSION"
        lines = [
            f"{status}: {self.rows_compared} rows, "
            f"{self.values_compared} numeric values compared"
        ]
        for row in self.missing_rows:
            lines.append(f"  missing row: {row}")
        for row in self.extra_rows:
            lines.append(f"  extra row:   {row}")
        lines.extend(f"  {deviation}" for deviation in self.deviations)
        return "\n".join(lines)


def _is_number(value: str) -> bool:
    try:
        float(value)
        return True
    except (TypeError, ValueError):
        return False


def _is_measurement(value: str) -> bool:
    """Heuristic: floats are measurements, everything else identifies rows.

    Parameter columns (range sizes, bits/key) are written as plain
    integers; measured quantities (FPR, seconds) carry a decimal point or
    exponent.  Rows therefore key on labels *and* integer parameters.
    """
    if not _is_number(value):
        return False
    # Bare zeros are (almost always) zero *measurements* — e.g. an FPR of
    # exactly 0 — while zero parameters are essentially unheard of.
    return ("." in value) or ("e" in value.lower()) or value == "0"


def _row_key(headers: list[str], row: list[str]) -> str:
    parts = [
        f"{header}={value}"
        for header, value in zip(headers, row)
        if not _is_measurement(value)
    ]
    return ", ".join(parts) if parts else ", ".join(row)


def compare_tables(
    headers: list[str],
    baseline_rows: list[list[str]],
    candidate_rows: list[list[str]],
    tolerance: float = 0.25,
    absolute_floor: float = 1e-9,
) -> RegressionReport:
    """Compare two row sets sharing ``headers``.

    Rows pair up by their non-numeric cells.  Numeric cells must agree
    within ``tolerance`` (relative) or ``absolute_floor`` (for values near
    zero, where relative error is meaningless).
    """
    if tolerance < 0:
        raise ReproError(f"tolerance must be >= 0, got {tolerance}")
    report = RegressionReport()
    baseline = {_row_key(headers, row): row for row in baseline_rows}
    candidate = {_row_key(headers, row): row for row in candidate_rows}

    for key in baseline:
        if key not in candidate:
            report.missing_rows.append(key)
    for key in candidate:
        if key not in baseline:
            report.extra_rows.append(key)

    for key in sorted(set(baseline) & set(candidate)):
        report.rows_compared += 1
        old_row, new_row = baseline[key], candidate[key]
        for header, old_cell, new_cell in zip(headers, old_row, new_row):
            if not (_is_number(old_cell) and _is_number(new_cell)):
                continue
            report.values_compared += 1
            old_value, new_value = float(old_cell), float(new_cell)
            delta = abs(new_value - old_value)
            scale = max(abs(old_value), abs(new_value))
            if delta <= absolute_floor or (
                scale > 0 and delta / scale <= tolerance
            ):
                continue
            report.deviations.append(
                f"{key} :: {header}: {old_value:g} -> {new_value:g} "
                f"({delta / scale:.1%} off, tolerance {tolerance:.0%})"
            )
    return report


def compare_result_csvs(
    baseline_path: str, candidate_path: str, tolerance: float = 0.25
) -> RegressionReport:
    """Compare two CSV files produced by the benchmark harness."""
    baseline_headers, baseline_rows = _read_csv(baseline_path)
    candidate_headers, candidate_rows = _read_csv(candidate_path)
    if baseline_headers != candidate_headers:
        raise ReproError(
            f"header mismatch: {baseline_headers} vs {candidate_headers}"
        )
    return compare_tables(
        baseline_headers, baseline_rows, candidate_rows, tolerance
    )


def _read_csv(path: str) -> tuple[list[str], list[list[str]]]:
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        try:
            headers = next(reader)
        except StopIteration:
            raise ReproError(f"empty CSV: {path}") from None
        return headers, [row for row in reader if row]
