"""Benchmark harness: standalone filter measurement, end-to-end workload
execution, figure regeneration, and table rendering."""

from repro.bench.endtoend import EndToEndResult, load_database, run_workload, scratch_db
from repro.bench.factories import FILTER_NAMES, make_factory
from repro.bench.harness import (
    FilterMeasurement,
    end_to_end_latency_model,
    measure_filter,
)
from repro.bench.report import banner, format_table, write_csv

__all__ = [
    "EndToEndResult",
    "FILTER_NAMES",
    "FilterMeasurement",
    "banner",
    "end_to_end_latency_model",
    "format_table",
    "load_database",
    "make_factory",
    "measure_filter",
    "run_workload",
    "scratch_db",
    "write_csv",
]
