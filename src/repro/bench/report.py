"""Plain-text table/series rendering for the regenerated figures.

Each benchmark prints its figure's data as an aligned text table (the
"same rows/series the paper reports") and can persist it as CSV under
``results/`` for later plotting.
"""

from __future__ import annotations

import csv
import os
from typing import Sequence

__all__ = ["format_table", "write_csv", "banner", "emit", "ascii_bar_chart"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned monospace table.

    Floats are shown with up-to-6 significant digits; everything else via
    ``str``.
    """
    rendered = [[_cell(value) for value in row] for row in rows]
    widths = [
        max(len(str(header)), *(len(row[i]) for row in rendered)) if rendered
        else len(str(header))
        for i, header in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 1e-4:
            return f"{value:.3e}"
        return f"{value:.5g}"
    return str(value)


def write_csv(
    path: str, headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> None:
    """Persist a table as CSV, creating parent directories."""
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        writer.writerows(rows)


def banner(text: str) -> str:
    """A section banner for benchmark stdout."""
    bar = "=" * max(len(text), 8)
    return f"\n{bar}\n{text}\n{bar}"


def emit(title: str, headers: Sequence[str], rows) -> None:
    """Print a titled table (the benchmarks' figure-output helper)."""
    print(banner(title))
    print(format_table(headers, rows))


def ascii_bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 50,
    title: str = "",
    log_scale: bool = False,
) -> str:
    """Render a horizontal bar chart in plain text.

    Useful for eyeballing figure data in a terminal: FPR spans several
    orders of magnitude, so ``log_scale=True`` maps bar length to
    ``log10`` of the value (zeros render as an empty bar).

    >>> print(ascii_bar_chart(["a", "b"], [1.0, 0.5], width=10))
    a  ########## 1
    b  #####      0.5
    """
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    if not labels:
        return title
    import math

    if log_scale:
        positives = [v for v in values if v > 0]
        floor = math.log10(min(positives)) - 1 if positives else 0.0
        top = math.log10(max(positives)) if positives else 1.0
        span = max(top - floor, 1e-12)

        def bar_length(value: float) -> int:
            if value <= 0:
                return 0
            return max(1, round(width * (math.log10(value) - floor) / span))
    else:
        top = max(values)

        def bar_length(value: float) -> int:
            if top <= 0:
                return 0
            return round(width * value / top)

    label_width = max(len(str(label)) for label in labels)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        bar = "#" * bar_length(value)
        lines.append(
            f"{str(label).ljust(label_width)}  {bar.ljust(width)} {_cell(float(value))}"
        )
    return "\n".join(lines)
