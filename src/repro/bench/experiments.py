"""Experiment registry: one parameterised function per paper figure.

Every function returns ``(headers, rows)`` ready for
:func:`repro.bench.report.format_table`; the ``benchmarks/`` suite and the
``repro-bench`` CLI both dispatch here.  Scales default to laptop-friendly
sizes and grow via :class:`Scale` (or the ``REPRO_SCALE`` environment
variable: a multiplier applied to key and query counts).

Figure-to-function map
----------------------
========  =======================================
Fig. 4    :func:`fig4_allocation`
Fig. 5    :func:`fig5_endtoend` (+ ``workload=`` variants for B/C/D)
Fig. 6    :func:`fig6_construction`, :func:`fig6_write_cost`
Fig. 7    :func:`fig7_point_queries`
Fig. 8    :func:`fig8_tradeoff`, :func:`decision_map`
Fig. 9    :func:`fig9_memory_hierarchy`
Fig. 10   :func:`fig10_strings`
Fig. 11   :func:`fig8_tradeoff` with small ``range_size``
Fig. 1    :func:`decision_map` (the positioning summary)
§3        :func:`theory_validation`
========  =======================================
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.bench.endtoend import run_workload, scratch_db
from repro.bench.factories import make_factory
from repro.bench.harness import end_to_end_latency_model, measure_filter
from repro.core import analysis
from repro.core.bloom import fpr_for_bits
from repro.core.rosetta import Rosetta
from repro.filters.surf.surf import SuRF
from repro.lsm.options import DBOptions
from repro.workloads.keygen import generate_dataset
from repro.workloads.strings import StringKeyCodec, generate_wex_titles
from repro.workloads.ycsb import WorkloadBuilder

__all__ = [
    "Scale",
    "fig4_allocation",
    "fig5_endtoend",
    "fig6_construction",
    "fig6_write_cost",
    "fig7_point_queries",
    "fig8_tradeoff",
    "decision_map",
    "fig9_memory_hierarchy",
    "fig10_strings",
    "theory_validation",
    "extension_two_filters",
    "extension_monkey",
    "extension_correlation_offsets",
    "extension_tiered_vs_leveled",
]

_KEY_BITS = 64


def _scale_multiplier() -> float:
    return float(os.environ.get("REPRO_SCALE", "1"))


@dataclass(frozen=True)
class Scale:
    """Experiment sizing (defaults are paper-shape, laptop-size)."""

    num_keys: int = 20_000
    num_queries: int = 300
    value_size: int = 64

    @classmethod
    def default(cls) -> "Scale":
        mult = _scale_multiplier()
        return cls(
            num_keys=int(20_000 * mult),
            num_queries=int(300 * mult),
        )


def _small_db_options(device: str = "ssd-scaled") -> DBOptions:
    """Scaled-down analogue of the paper's RocksDB config.

    Defaults to the inflation-scaled SSD model so false positives carry an
    I/O penalty whose ratio to (Python) CPU matches the paper's testbed —
    see ``repro.lsm.env.PYTHON_CPU_INFLATION``.
    """
    return DBOptions(
        key_bits=_KEY_BITS,
        memtable_size_bytes=64 << 10,
        sst_size_bytes=256 << 10,
        max_bytes_for_level_base=1 << 20,
        level0_file_num_compaction_trigger=3,
        device=device,
    )


# ======================================================================
# Fig. 4 — bits-allocation mechanisms vs range size
# ======================================================================

def fig4_allocation(
    scale: Scale | None = None,
    bits_per_key: float = 10.0,
    range_sizes: tuple[int, ...] = (2, 8, 32, 128, 512),
    strategies: tuple[str, ...] = ("optimized", "single", "variable"),
):
    """FPR and probe cost of the §2.3/2.4 allocation mechanisms.

    The paper's turning points: single-level has the best FPR but probe
    cost linear in the range size (diverging from ~32); variable-level
    overtakes the original (Eq. 3) mechanism's FPR from range ~32.
    """
    scale = scale or Scale.default()
    dataset = generate_dataset(scale.num_keys, _KEY_BITS, seed=41)
    keys = [int(k) for k in dataset.keys]
    builder = WorkloadBuilder(keys, _KEY_BITS, seed=42)

    rows = []
    for range_size in range_sizes:
        workload = builder.empty_range_queries(scale.num_queries, range_size)
        for strategy in strategies:
            factory = make_factory(
                f"rosetta-{strategy}",
                _KEY_BITS,
                bits_per_key,
                max_range=range_size,
                range_size_histogram={range_size: 1},
            )
            m = measure_filter(factory.build, keys, workload, name=strategy)
            rows.append(
                (
                    range_size,
                    strategy,
                    m.fpr,
                    m.probes_per_query,
                    m.probe_micros_per_query,
                )
            )
    headers = ("range_size", "strategy", "fpr", "probes/query", "probe_us/query")
    return headers, rows


# ======================================================================
# Fig. 5 — end-to-end RocksDB performance across workloads
# ======================================================================

def fig5_endtoend(
    scale: Scale | None = None,
    workload: str = "uniform",
    filters: tuple[str, ...] = ("rosetta", "surf"),
    range_sizes: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64),
    bits_per_key: float = 22.0,
):
    """End-to-end latency breakdown + FPR vs range size, inside the store.

    ``workload``: ``uniform`` (Fig. 5(A)), ``correlated`` (B), ``skewed``
    (C).  Fig. 5(D) = ``filters=("rosetta", "surf", "prefix-bloom",
    "fence")`` over the uniform workload.
    """
    scale = scale or Scale.default()
    distribution = "normal" if workload == "skewed" else "uniform"
    dataset = generate_dataset(
        scale.num_keys, _KEY_BITS, distribution=distribution, seed=51,
        value_size=scale.value_size,
    )
    keys = [int(k) for k in dataset.keys]
    correlation = 1 if workload == "correlated" else None

    rows = []
    for filter_name in filters:
        for range_size in range_sizes:
            factory = (
                None
                if filter_name == "fence"
                else make_factory(
                    filter_name,
                    _KEY_BITS,
                    bits_per_key,
                    max_range=max(range_sizes),
                    range_size_histogram={range_size: 1},
                )
            )
            builder = WorkloadBuilder(keys, _KEY_BITS, seed=52 + range_size)
            if range_size == 1:
                queries = builder.empty_point_queries(scale.num_queries)
            else:
                queries = builder.empty_range_queries(
                    scale.num_queries, range_size,
                    correlation_offset=correlation,
                )
            with scratch_db(dataset, factory, _small_db_options()) as db:
                result = run_workload(db, queries)
            rows.append(
                (
                    filter_name,
                    range_size,
                    result.end_to_end_seconds,
                    result.io_seconds,
                    result.cpu_seconds,
                    result.filter_probe_seconds,
                    result.deserialize_seconds,
                    result.serialize_seconds,
                    result.residual_seek_seconds,
                    result.fpr,
                    result.block_reads,
                )
            )
    headers = (
        "filter", "range_size", "end_to_end_s", "io_s", "cpu_s",
        "probe_s", "deserialize_s", "serialize_s", "residual_seek_s",
        "fpr", "block_reads",
    )
    return headers, rows


# ======================================================================
# Fig. 6 — construction cost / write overhead
# ======================================================================

def fig6_construction(
    scale: Scale | None = None,
    filters: tuple[str, ...] = ("rosetta", "surf"),
    sst_sizes: tuple[int, ...] = (64 << 10, 128 << 10, 256 << 10),
    bits_per_key: float = 22.0,
):
    """Filter construction cost vs number of SST files (L0-only config).

    Mirrors Fig. 6(A): compaction disabled (huge L0 trigger) so the filter
    build cost is isolated; varying the SST size varies the number of
    filter instances.
    """
    scale = scale or Scale.default()
    dataset = generate_dataset(
        scale.num_keys, _KEY_BITS, seed=61, value_size=scale.value_size
    )
    rows = []
    for filter_name in filters:
        for sst_size in sst_sizes:
            options = _small_db_options()
            options.sst_size_bytes = sst_size
            options.level0_file_num_compaction_trigger = 10_000  # no compaction
            factory = make_factory(filter_name, _KEY_BITS, bits_per_key)
            with scratch_db(dataset, factory, options, write_path_fraction=0.0) as db:
                stats = db.stats
                rows.append(
                    (
                        filter_name,
                        sst_size,
                        db.num_live_files(),
                        stats.filters_built,
                        stats.filter_construction_ns / 1e9,
                        stats.filter_construction_ns / 1e3 / max(1, stats.filters_built),
                    )
                )
    headers = (
        "filter", "sst_size_bytes", "files", "filters_built",
        "construction_s_total", "construction_us_per_filter",
    )
    return headers, rows


def fig6_write_cost(
    scale: Scale | None = None,
    filters: tuple[str, ...] = ("rosetta", "surf", "fence"),
    bits_per_key: float = 22.0,
):
    """Read/write cost breakdown incl. compaction (Fig. 6(B)) + T/(R+W)."""
    scale = scale or Scale.default()
    dataset = generate_dataset(
        scale.num_keys, _KEY_BITS, seed=62, value_size=scale.value_size
    )
    keys = [int(k) for k in dataset.keys]
    rows = []
    for filter_name in filters:
        factory = (
            None if filter_name == "fence"
            else make_factory(filter_name, _KEY_BITS, bits_per_key)
        )
        # All data through the write path: flushes + compactions happen live.
        with scratch_db(
            dataset, factory, _small_db_options(), write_path_fraction=1.0
        ) as db:
            stats = db.stats
            builder = WorkloadBuilder(keys, _KEY_BITS, seed=63)
            queries = builder.empty_range_queries(scale.num_queries // 2, 16)
            result = run_workload(db, queries)
            rows.append(
                (
                    filter_name,
                    stats.compactions,
                    stats.compaction_time_ns / 1e9,
                    stats.filter_construction_ns / 1e9,
                    stats.compaction_overhead_us_per_byte(),
                    result.end_to_end_seconds,
                    result.fpr,
                )
            )
    headers = (
        "filter", "compactions", "compaction_s", "filter_construction_s",
        "overhead_us_per_byte", "read_workload_s", "read_fpr",
    )
    return headers, rows


# ======================================================================
# Fig. 7 — point-query FPR vs bits/key
# ======================================================================

def fig7_point_queries(
    scale: Scale | None = None,
    filters: tuple[str, ...] = (
        "rosetta", "bloom", "surf-hash", "surf-real", "prefix-bloom",
        "cuckoo", "quotient",
    ),
    bits_per_key_sweep: tuple[float, ...] = (10, 12, 14, 16, 18, 20),
):
    """Point-query FPR of every filter across memory budgets.

    The paper's claim: Rosetta matches (or beats, at high budgets) the
    plain Bloom filter because its last level indexes full keys, while
    SuRF-Hash/Real and Prefix Bloom degrade badly.
    """
    scale = scale or Scale.default()
    dataset = generate_dataset(scale.num_keys, _KEY_BITS, seed=71)
    keys = [int(k) for k in dataset.keys]
    builder = WorkloadBuilder(keys, _KEY_BITS, seed=72)
    workload = builder.empty_point_queries(scale.num_queries * 4)

    rows = []
    for filter_name in filters:
        for bits_per_key in bits_per_key_sweep:
            factory = make_factory(
                filter_name, _KEY_BITS, bits_per_key,
                max_range=1, range_size_histogram={1: 1},
            )
            m = measure_filter(factory.build, keys, workload, name=filter_name)
            rows.append((filter_name, bits_per_key, m.bits_per_key, m.fpr))
    headers = ("filter", "bits_per_key_budget", "bits_per_key_actual", "fpr")
    return headers, rows


# ======================================================================
# Fig. 8 / 11 — FPR-memory tradeoff, decision maps
# ======================================================================

def fig8_tradeoff(
    scale: Scale | None = None,
    workload: str = "uniform",
    range_size: int = 64,
    filters: tuple[str, ...] = ("rosetta", "surf"),
    bits_per_key_sweep: tuple[float, ...] = (10, 14, 18, 22, 26, 32),
):
    """FPR and end-to-end latency vs bits/key at a fixed range size.

    ``range_size=64`` reproduces Fig. 8 (Rosetta's worst case); smaller
    values reproduce Fig. 11.
    """
    scale = scale or Scale.default()
    distribution = "normal" if workload == "skewed" else "uniform"
    dataset = generate_dataset(
        scale.num_keys, _KEY_BITS, distribution=distribution, seed=81,
        value_size=scale.value_size,
    )
    keys = [int(k) for k in dataset.keys]
    correlation = 1 if workload == "correlated" else None
    builder = WorkloadBuilder(keys, _KEY_BITS, seed=82)
    queries = builder.empty_range_queries(
        scale.num_queries, range_size, correlation_offset=correlation
    )

    rows = []
    for filter_name in filters:
        for bits_per_key in bits_per_key_sweep:
            factory = make_factory(
                filter_name, _KEY_BITS, bits_per_key,
                max_range=range_size, range_size_histogram={range_size: 1},
            )
            with scratch_db(dataset, factory, _small_db_options()) as db:
                result = run_workload(db, queries)
            rows.append(
                (
                    filter_name, workload, range_size, bits_per_key,
                    result.fpr, result.end_to_end_seconds, result.io_seconds,
                )
            )
    headers = (
        "filter", "workload", "range_size", "bits_per_key",
        "fpr", "end_to_end_s", "io_s",
    )
    return headers, rows


def decision_map(rows) -> list[tuple]:
    """Fig. 8(D/H/L) & Fig. 1: who wins each (range, memory) cell.

    Consumes :func:`fig8_tradeoff` rows (possibly concatenated across range
    sizes) and reports, per ``(workload, range_size, bits_per_key)`` cell,
    the filter with the lowest end-to-end latency and the one with the
    lowest FPR.
    """
    cells: dict[tuple, list[tuple]] = {}
    for row in rows:
        filter_name, workload, range_size, bits_per_key = row[:4]
        fpr, latency = row[4], row[5]
        cells.setdefault((workload, range_size, bits_per_key), []).append(
            (filter_name, fpr, latency)
        )
    out = []
    for (workload, range_size, bits_per_key), entries in sorted(cells.items()):
        best_latency = min(entries, key=lambda e: e[2])
        best_fpr = min(entries, key=lambda e: e[1])
        out.append(
            (
                workload, range_size, bits_per_key,
                best_latency[0], best_fpr[0],
            )
        )
    return out


# ======================================================================
# Fig. 9 — memory hierarchy
# ======================================================================

def fig9_memory_hierarchy(
    scale: Scale | None = None,
    range_size: int = 32,
    bits_per_key: float = 22.0,
    devices: tuple[str, ...] = ("memory-scaled", "ssd-scaled", "hdd-scaled"),
    filters: tuple[str, ...] = ("rosetta", "surf"),
):
    """Standalone probe-vs-I/O tradeoff across storage devices.

    Rosetta spends more on probes but saves far more device time through a
    lower FPR; the gap widens from memory to SSD to HDD.
    """
    scale = scale or Scale.default()
    dataset = generate_dataset(scale.num_keys, _KEY_BITS, seed=91)
    keys = [int(k) for k in dataset.keys]
    builder = WorkloadBuilder(keys, _KEY_BITS, seed=92)
    workload = builder.empty_range_queries(scale.num_queries, range_size)

    rows = []
    for filter_name in filters:
        factory = make_factory(
            filter_name, _KEY_BITS, bits_per_key,
            max_range=range_size, range_size_histogram={range_size: 1},
        )
        m = measure_filter(factory.build, keys, workload, name=filter_name)
        for device in devices:
            model = end_to_end_latency_model(m, device=device)
            rows.append(
                (
                    filter_name, device, m.fpr,
                    model["probe_us"], model["io_us"], model["total_us"],
                )
            )
    headers = ("filter", "device", "fpr", "probe_us", "io_us", "total_us")
    return headers, rows


# ======================================================================
# Fig. 10 — string data (synthetic WEX)
# ======================================================================

def fig10_strings(
    scale: Scale | None = None,
    range_size: int = 128,
    bits_per_key_sweep: tuple[float, ...] = (6, 10, 14, 18, 22, 26, 30),
    string_key_bits: int = 96,
):
    """FPR / probe cost on a string corpus across memory budgets.

    Strings are order-preservingly packed into a ``string_key_bits``
    integer domain; Rosetta keeps working at budgets below SuRF's
    structural minimum (the paper's headline for this figure).
    """
    scale = scale or Scale.default()
    titles = generate_wex_titles(scale.num_keys, seed=101)
    codec = StringKeyCodec(key_bits=string_key_bits)
    keys, collisions = codec.encode_all(titles)
    keys = sorted(set(keys))
    # The paper draws query anchors "uniformly from the data set": ranges
    # start a small offset above a stored key, not uniformly in the domain.
    workload = _dataset_anchored_ranges(
        keys, string_key_bits, scale.num_queries, range_size, seed=102
    )

    rows = []
    for bits_per_key in bits_per_key_sweep:
        rosetta = make_factory(
            "rosetta", string_key_bits, bits_per_key,
            max_range=range_size, range_size_histogram={range_size: 1},
        )
        m_rosetta = measure_filter(rosetta.build, keys, workload, name="rosetta")
        surf = make_factory("surf", string_key_bits, bits_per_key,
                            max_range=range_size)
        m_surf = measure_filter(surf.build, keys, workload, name="surf")
        rows.append(
            (
                bits_per_key,
                m_rosetta.fpr, m_rosetta.bits_per_key,
                m_rosetta.probe_micros_per_query,
                m_surf.fpr, m_surf.bits_per_key,
                m_surf.probe_micros_per_query,
            )
        )
    headers = (
        "bits_per_key_budget",
        "rosetta_fpr", "rosetta_bpk", "rosetta_probe_us",
        "surf_fpr", "surf_bpk", "surf_probe_us",
    )
    return headers, rows


def _dataset_anchored_ranges(
    keys: list[int], key_bits: int, count: int, range_size: int, seed: int
):
    """Empty ranges anchored near stored keys (dataset-drawn queries).

    Each query starts a random offset (1..1024) above a random stored key,
    rejected if the range actually holds a key — the access pattern of a
    workload "drawn uniformly from the data set" (Fig. 10).
    """
    import bisect

    import numpy as np

    from repro.workloads.ycsb import Query, Workload

    rng = np.random.default_rng(seed)
    domain_max = (1 << key_bits) - 1
    queries = []
    guard = 0
    while len(queries) < count:
        guard += 1
        if guard > count * 200:
            raise RuntimeError("could not build enough empty anchored ranges")
        anchor = keys[int(rng.integers(0, len(keys)))]
        # Log-uniform offsets: a mix of tight (next-key) and loose queries,
        # as produced by sampling anchor strings from the corpus.
        offset = 1 << int(rng.integers(0, 33))
        low = min(anchor + offset, domain_max - range_size)
        high = low + range_size - 1
        idx = bisect.bisect_left(keys, low)
        if idx < len(keys) and keys[idx] <= high:
            continue
        queries.append(Query("range", low, high))
    return Workload(
        queries,
        description=f"dataset-anchored empty ranges size={range_size}",
        metadata={"range_size": range_size, "anchored": True},
    )


# ======================================================================
# Extensions (see DESIGN.md §4b)
# ======================================================================

def extension_two_filters(scale: Scale | None = None, bits_per_key: float = 22.0):
    """One filter vs two filters per run (§1's tradeoff), at equal memory."""
    from repro.bench.harness import measure_filter

    scale = scale or Scale.default()
    dataset = generate_dataset(scale.num_keys, _KEY_BITS, seed=301)
    keys = [int(k) for k in dataset.keys]
    builder = WorkloadBuilder(keys, _KEY_BITS, seed=302)
    points = builder.empty_point_queries(scale.num_queries * 2)
    ranges = builder.empty_range_queries(scale.num_queries, 16)
    rows = []
    for name in ("rosetta", "bloom+surf"):
        factory = make_factory(name, _KEY_BITS, bits_per_key, max_range=64,
                               range_size_histogram={16: 1})
        point_m = measure_filter(factory.build, keys, points, name=name)
        range_m = measure_filter(factory.build, keys, ranges, name=name)
        rows.append((name, point_m.fpr, range_m.fpr, range_m.bits_per_key))
    return ("filter", "point_fpr", "range16_fpr", "bits_per_key"), rows


def extension_monkey():
    """Monkey vs uniform cross-run filter-memory allocation."""
    from repro.core.monkey import MonkeyBudgetPolicy

    policy = MonkeyBudgetPolicy(total_bits_per_key=10)
    layouts = {
        "balanced (4 equal runs)": [25_000] * 4,
        "leveled (ratio 10)": [100, 1_000, 10_000, 100_000],
        "tiered (mixed tiers)": [500] * 4 + [50_000] * 2,
    }
    rows = [
        (label, round(policy.improvement_over_uniform(sizes), 3))
        for label, sizes in layouts.items()
    ]
    return ("run layout", "fp-I/O improvement (x)"), rows


def extension_correlation_offsets(
    scale: Scale | None = None,
    thetas: tuple[int, ...] = (1, 16, 256, 4096),
    range_size: int = 16,
    bits_per_key: float = 22.0,
):
    """FPR vs correlation offset θ (Fig. 5(B) fixes θ=1; this sweeps it)."""
    from repro.bench.harness import measure_filter
    from repro.workloads.correlation import correlation_sweep

    scale = scale or Scale.default()
    dataset = generate_dataset(scale.num_keys, _KEY_BITS, seed=303)
    keys = [int(k) for k in dataset.keys]
    sweeps = correlation_sweep(keys, _KEY_BITS, scale.num_queries,
                               range_size, thetas=thetas, seed=304)
    rows = []
    for theta, workload in sweeps.items():
        row = [theta]
        for name in ("rosetta", "surf"):
            factory = make_factory(name, _KEY_BITS, bits_per_key,
                                   max_range=64,
                                   range_size_histogram={range_size: 1})
            row.append(
                measure_filter(factory.build, keys, workload, name=name).fpr
            )
        rows.append(tuple(row))
    return ("theta", "rosetta_fpr", "surf_fpr"), rows


def extension_tiered_vs_leveled(
    scale: Scale | None = None, bits_per_key: float = 18.0
):
    """Tiered writes less; leveled leaves fewer runs to probe."""
    import shutil
    import tempfile

    from repro.lsm.db import DB

    scale = scale or Scale.default()
    rows = []
    for style in ("leveled", "tiered"):
        options = DBOptions(
            key_bits=_KEY_BITS,
            memtable_size_bytes=16 << 10,
            sst_size_bytes=64 << 10,
            max_bytes_for_level_base=128 << 10,
            level_size_ratio=4,
            block_size_bytes=1024,
            compaction_style=style,
            filter_factory=make_factory("rosetta", _KEY_BITS, bits_per_key,
                                        max_range=64),
        )
        path = tempfile.mkdtemp(prefix=f"repro-tiered-{style}-")
        try:
            db = DB(path, options)
            for i in range(scale.num_keys // 2):
                db.put(i * 31, bytes(24))
            db.flush()
            rows.append(
                (style, db.stats.compaction_bytes_written,
                 len(db.version.all_runs_newest_first()))
            )
            db.close()
        finally:
            shutil.rmtree(path, ignore_errors=True)
    return ("style", "compaction_bytes_written", "live_runs"), rows


# ======================================================================
# §3 — theory vs measurement
# ======================================================================

def theory_validation(
    scale: Scale | None = None,
    bits_per_key: float = 16.0,
    max_range: int = 64,
):
    """Compare the §3 analytical models against measurements.

    Rows: memory bounds (Goswami lower bound vs 1.44-bound vs actual), and
    expected-vs-measured probe counts / FPR for the equilibrium allocation.
    """
    scale = scale or Scale.default()
    dataset = generate_dataset(scale.num_keys, _KEY_BITS, seed=111)
    keys = [int(k) for k in dataset.keys]
    filt = Rosetta.build(
        keys, key_bits=_KEY_BITS, bits_per_key=bits_per_key,
        max_range=max_range, strategy="equilibrium",
    )
    level_fprs = [
        fpr_for_bits(scale.num_keys, bits) for bits in filt.memory_breakdown()
    ]
    builder = WorkloadBuilder(keys, _KEY_BITS, seed=112)
    range_size = max_range // 2
    workload = builder.empty_range_queries(scale.num_queries, range_size)
    filt.stats.reset()
    positives = sum(
        filt.may_contain_range(q.low, q.high) for q in workload
    )
    measured_fpr = positives / len(workload)
    measured_probes = filt.stats.bloom_probes / len(workload)

    predicted_fpr = analysis.predict_range_fpr(level_fprs, range_size)
    eps = level_fprs[0]
    goswami = analysis.goswami_lower_bound_bits(
        scale.num_keys, max_range, max(eps, 1e-9)
    )
    achieved = analysis.rosetta_memory_bound_bits(
        scale.num_keys, max_range, max(eps, 1e-9)
    )
    rows = [
        ("actual_memory_bits", filt.size_in_bits()),
        ("goswami_lower_bound_bits", goswami),
        ("rosetta_1.44_bound_bits", achieved),
        ("leaf_fpr_eps", eps),
        ("measured_range_fpr", measured_fpr),
        ("predicted_range_fpr", predicted_fpr),
        ("measured_probes_per_query", measured_probes),
        ("expected_probes_upper_bound",
         analysis.expected_range_probe_cost(min(max(level_fprs[1:-1] or [0.4]), 0.49),
                                            range_size)),
    ]
    return ("metric", "value"), rows
