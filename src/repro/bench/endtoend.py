"""End-to-end workload runner inside the LSM store (Fig. 5, 6, 8, 11).

Loads a dataset into a :class:`~repro.lsm.db.DB` (bulk-ingesting the bulk
into deep levels and pushing a slice through the write path so L0 and the
tree shape look like a live store), drives a query workload, and reports
the paper's cost taxonomy: total latency, modeled I/O time, and the CPU
sub-costs (filter probe, deserialization, serialization, residual seek).
"""

from __future__ import annotations

import shutil
import tempfile
import time
from dataclasses import dataclass, field

import numpy as np

from repro.filters.base import FilterFactory
from repro.lsm.db import DB
from repro.lsm.options import DBOptions
from repro.lsm.stats import PerfStats
from repro.workloads.keygen import Dataset, synthesize_value
from repro.workloads.ycsb import Workload

__all__ = ["EndToEndResult", "load_database", "run_workload", "scratch_db"]


@dataclass
class EndToEndResult:
    """Workload execution summary (the Fig. 5 stacked bars, in numbers)."""

    workload: str
    total_seconds: float
    io_seconds: float          # modeled device time (block_read_time)
    filter_probe_seconds: float
    deserialize_seconds: float
    serialize_seconds: float
    residual_seek_seconds: float
    block_reads: int
    filter_probes: int
    filter_negatives: int
    false_positives: int
    true_positives: int
    queries: int
    metadata: dict = field(default_factory=dict)

    @property
    def cpu_seconds(self) -> float:
        """Sum of the attributed CPU sub-costs."""
        return (
            self.filter_probe_seconds
            + self.deserialize_seconds
            + self.serialize_seconds
            + self.residual_seek_seconds
        )

    @property
    def fpr(self) -> float:
        """Per-run false positive rate among rejectable probes."""
        rejectable = self.filter_negatives + self.false_positives
        if rejectable == 0:
            return 0.0
        return self.false_positives / rejectable

    @property
    def end_to_end_seconds(self) -> float:
        """Measured wall time plus modeled device time.

        The paper's latencies are wall-clock on real devices; ours separate
        real CPU from modeled I/O, so the end-to-end figure is their sum.
        """
        return self.total_seconds + self.io_seconds


def load_database(
    path: str,
    dataset: Dataset,
    filter_factory: FilterFactory | None,
    options: DBOptions | None = None,
    write_path_fraction: float = 0.02,
) -> DB:
    """Create and load a DB with a realistic multi-level shape.

    Most of the dataset is bulk-ingested into a deep level; the last
    ``write_path_fraction`` goes through put/flush/compaction so L0 holds
    live runs and upper levels exist — the shape the paper's queries see.
    """
    if options is None:
        options = DBOptions(key_bits=dataset.key_bits)
    options.filter_factory = filter_factory
    options.use_wal = False  # bulk loads, as in the paper's setup
    db = DB(path, options)

    keys = dataset.keys
    split = max(0, int(len(keys) * (1.0 - write_path_fraction)))
    bulk, trickle = keys[:split], keys[split:]
    if len(bulk):
        db.ingest(
            (int(k), synthesize_value(int(k), dataset.value_size)) for k in bulk
        )
    for key in trickle:
        db.put(int(key), synthesize_value(int(key), dataset.value_size))
    db.flush()
    return db


def run_workload(db: DB, workload: Workload) -> EndToEndResult:
    """Execute every query of ``workload`` and report the cost breakdown."""
    before = db.stats.snapshot()
    start = time.perf_counter()
    for query in workload:
        if query.kind == "point":
            db.get(query.low)
        else:
            db.range_query(query.low, query.high)
    total_seconds = time.perf_counter() - start
    delta = db.stats.diff(before)
    return _result_from_stats(workload, total_seconds, delta)


def _result_from_stats(
    workload: Workload, total_seconds: float, delta: PerfStats
) -> EndToEndResult:
    return EndToEndResult(
        workload=workload.description,
        total_seconds=total_seconds,
        io_seconds=delta.block_read_time_ns / 1e9,
        filter_probe_seconds=delta.filter_probe_ns / 1e9,
        deserialize_seconds=delta.deserialize_ns / 1e9,
        serialize_seconds=delta.serialize_ns / 1e9,
        residual_seek_seconds=delta.residual_seek_ns / 1e9,
        block_reads=delta.block_reads,
        filter_probes=delta.filter_probes,
        filter_negatives=delta.filter_negatives,
        false_positives=delta.filter_false_positives,
        true_positives=delta.filter_true_positives,
        queries=len(workload),
        metadata=dict(workload.metadata),
    )


class scratch_db:
    """Context manager: a loaded DB in a temporary directory.

    >>> with scratch_db(dataset, factory) as db:   # doctest: +SKIP
    ...     result = run_workload(db, workload)
    """

    def __init__(
        self,
        dataset: Dataset,
        filter_factory: FilterFactory | None,
        options: DBOptions | None = None,
        write_path_fraction: float = 0.02,
    ) -> None:
        self._dataset = dataset
        self._factory = filter_factory
        self._options = options
        self._fraction = write_path_fraction
        self._path: str | None = None
        self._db: DB | None = None

    def __enter__(self) -> DB:
        self._path = tempfile.mkdtemp(prefix="repro-bench-")
        self._db = load_database(
            self._path,
            self._dataset,
            self._factory,
            self._options,
            self._fraction,
        )
        return self._db

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._db is not None:
            try:
                self._db.close()
            finally:
                self._db = None
        if self._path is not None:
            shutil.rmtree(self._path, ignore_errors=True)
            self._path = None
