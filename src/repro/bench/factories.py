"""Named filter recipes used throughout the benchmarks.

One place mapping the paper's baseline names to concrete
:class:`~repro.filters.base.FilterFactory` instances at a given memory
budget:

* ``rosetta`` (+ per-strategy variants) — the paper's filter;
* ``surf`` / ``surf-hash`` / ``surf-real`` / ``surf-base`` — Zhang et al.;
* ``prefix-bloom`` — RocksDB's built-in range helper;
* ``bloom`` — RocksDB's default point filter;
* ``cuckoo`` — hash-based point baseline;
* ``fence`` — no filter at all (fence pointers only): pass ``None`` to the
  store, or use the standalone :class:`FencePointerFilter` model.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.errors import WorkloadError
from repro.filters.base import FilterFactory, KeyFilter
from repro.filters.bloom_point import BloomPointFilter
from repro.filters.combined import CombinedPointRangeFilter
from repro.filters.cuckoo import CuckooFilter
from repro.filters.fence import FencePointerFilter
from repro.filters.prefix_bloom import PrefixBloomFilter
from repro.filters.quotient import QuotientFilter
from repro.filters.rosetta_adapter import RosettaFilter
from repro.filters.surf.surf import SurfFilter

__all__ = ["make_factory", "FILTER_NAMES"]

FILTER_NAMES = (
    "rosetta",
    "rosetta-single",
    "rosetta-variable",
    "rosetta-optimized",
    "rosetta-uniform",
    "rosetta-equilibrium",
    "surf",
    "surf-real",
    "surf-hash",
    "surf-base",
    "prefix-bloom",
    "bloom",
    "bloom+surf",
    "cuckoo",
    "quotient",
    "fence",
)


#: Recipes whose filters hash their keys and therefore accept a per-SST
#: salt (and a rebuild-time bits-per-key override).  Structural recipes —
#: the SuRF variants, the fence-pointer pseudo-filter, and ``bloom+surf``
#: (its SuRF half is structural) — derive their layout from the keys
#: themselves, so their builders deliberately take no ``salt`` parameter
#: and :meth:`FilterFactory.build` raises if one is supplied.
_SALTABLE = frozenset(
    {
        "rosetta",
        "rosetta-single",
        "rosetta-variable",
        "rosetta-optimized",
        "rosetta-uniform",
        "rosetta-equilibrium",
        "prefix-bloom",
        "bloom",
        "cuckoo",
        "quotient",
    }
)


def make_factory(
    name: str,
    key_bits: int,
    bits_per_key: float,
    max_range: int = 64,
    range_size_histogram: Mapping[int, float] | None = None,
) -> FilterFactory:
    """Build the named filter recipe at the given memory budget.

    ``rosetta`` uses the paper's hybrid rule (single-level for small-range
    workloads, variable-level otherwise), driven by
    ``range_size_histogram``; the ``rosetta-<strategy>`` variants pin one
    allocation strategy for the Fig. 4 ablations.
    """
    if name not in FILTER_NAMES:
        raise WorkloadError(
            f"unknown filter recipe {name!r}; expected one of {FILTER_NAMES}"
        )

    if name in _SALTABLE:

        def build(
            keys: Sequence[int],
            salt: int = 0,
            bits_per_key: float | None = None,
            _default_bpk: float = bits_per_key,
        ) -> KeyFilter:
            filt = _instantiate(
                name,
                key_bits,
                bits_per_key if bits_per_key is not None else _default_bpk,
                max_range,
                range_size_histogram,
                salt=salt,
            )
            filt.populate(keys)
            return filt

    else:

        def build(keys: Sequence[int]) -> KeyFilter:
            filt = _instantiate(
                name, key_bits, bits_per_key, max_range, range_size_histogram
            )
            filt.populate(keys)
            return filt

    return FilterFactory(name, build, bits_per_key=bits_per_key)


def _instantiate(
    name: str,
    key_bits: int,
    bits_per_key: float,
    max_range: int,
    histogram: Mapping[int, float] | None,
    salt: int = 0,
) -> KeyFilter:
    if name.startswith("rosetta"):
        strategy = "hybrid" if name == "rosetta" else name.split("-", 1)[1]
        return RosettaFilter(
            key_bits=key_bits,
            bits_per_key=bits_per_key,
            max_range=max_range,
            strategy=strategy,
            range_size_histogram=histogram,
            salt=salt,
        )
    if name.startswith("surf"):
        variant = {"surf": "real", "surf-real": "real",
                   "surf-hash": "hash", "surf-base": "base"}[name]
        return SurfFilter(
            key_bits=key_bits, variant=variant, bits_per_key=bits_per_key
        )
    if name == "bloom+surf":
        return CombinedPointRangeFilter(
            key_bits=key_bits, bits_per_key=bits_per_key
        )
    if name == "prefix-bloom":
        return PrefixBloomFilter(
            key_bits=key_bits, bits_per_key=bits_per_key, salt=salt
        )
    if name == "bloom":
        return BloomPointFilter(
            key_bits=key_bits, bits_per_key=bits_per_key, salt=salt
        )
    if name == "cuckoo":
        return CuckooFilter(
            key_bits=key_bits, bits_per_key=bits_per_key, salt=salt
        )
    if name == "quotient":
        return QuotientFilter(
            key_bits=key_bits, bits_per_key=bits_per_key, salt=salt
        )
    if name == "fence":
        return FencePointerFilter(key_bits=key_bits)
    raise WorkloadError(f"unhandled filter recipe {name!r}")
