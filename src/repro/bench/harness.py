"""Standalone filter measurement harness (outside the LSM store).

Reproduces the paper's isolated-filter experiments (Fig. 4, 7, 9, 10):
given a filter recipe, a key set, and a query workload, measure

* construction latency,
* memory actually used (bits/key),
* false positive rate (all workload queries target empty ranges/keys, so
  every positive is false),
* probe latency and internal probe counts.

For the memory-hierarchy experiment (Fig. 9) the harness converts FPR into
end-to-end latency with a device model: every false positive costs one
wasted device read.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.errors import WorkloadError
from repro.filters.base import KeyFilter
from repro.lsm.env import DEVICE_PRESETS, DeviceModel
from repro.workloads.ycsb import Workload

__all__ = ["FilterMeasurement", "measure_filter", "end_to_end_latency_model"]


@dataclass
class FilterMeasurement:
    """Everything the standalone figures report for one (filter, workload)."""

    filter_name: str
    num_keys: int
    bits_per_key: float
    construction_seconds: float
    queries: int
    positives: int
    probe_seconds: float
    internal_probes: int
    metadata: dict = field(default_factory=dict)

    @property
    def fpr(self) -> float:
        """False positive rate (workloads are all-empty by construction)."""
        if self.queries == 0:
            return 0.0
        return self.positives / self.queries

    @property
    def probe_micros_per_query(self) -> float:
        """Mean probe latency in microseconds."""
        if self.queries == 0:
            return 0.0
        return self.probe_seconds * 1e6 / self.queries

    @property
    def probes_per_query(self) -> float:
        """Mean internal probe count (Bloom probes / trie node accesses)."""
        if self.queries == 0:
            return 0.0
        return self.internal_probes / self.queries


def measure_filter(
    build: Callable[[Sequence[int]], KeyFilter],
    keys: Sequence[int],
    workload: Workload,
    name: str | None = None,
    batch_size: int | None = None,
) -> FilterMeasurement:
    """Build a filter over ``keys`` and drive ``workload`` through it.

    ``workload`` must contain only empty queries (the standard filter
    evaluation setting); every positive verdict is counted as a false
    positive.

    ``batch_size`` switches probing to the filter's bulk APIs
    (:meth:`~repro.filters.base.KeyFilter.may_contain_batch` /
    :meth:`~repro.filters.base.KeyFilter.may_contain_range_batch`),
    grouping consecutive same-kind queries into chunks of at most that
    many — the frontier-engine fast path for Rosetta.  Verdict counts are
    identical to the scalar loop; only the probing mechanics change.
    """
    keys = list(keys)
    start = time.perf_counter()
    filt = build(keys)
    construction_seconds = time.perf_counter() - start

    filt.reset_probe_count()
    positives = 0
    start = time.perf_counter()
    if batch_size is not None and batch_size > 0:
        for kind, lows, highs in _chunked_queries(workload, batch_size):
            if kind == "point":
                positives += sum(map(bool, filt.may_contain_batch(lows)))
            else:
                positives += sum(
                    map(bool, filt.may_contain_range_batch(lows, highs))
                )
    else:
        for query in workload:
            if query.kind == "point":
                positives += filt.may_contain(query.low)
            else:
                positives += filt.may_contain_range(query.low, query.high)
    probe_seconds = time.perf_counter() - start

    metadata = dict(workload.metadata)
    if batch_size is not None:
        metadata["batch_size"] = batch_size
    return FilterMeasurement(
        filter_name=name if name is not None else filt.name,
        num_keys=len(set(keys)),
        bits_per_key=filt.size_in_bits() / max(1, len(set(keys))),
        construction_seconds=construction_seconds,
        queries=len(workload),
        positives=positives,
        probe_seconds=probe_seconds,
        internal_probes=filt.probe_count(),
        metadata=metadata,
    )


def _chunked_queries(workload: Workload, batch_size: int):
    """Yield ``(kind, lows, highs)`` runs of consecutive same-kind queries."""
    kind: str | None = None
    lows: list[int] = []
    highs: list[int] = []
    for query in workload:
        if query.kind != kind or len(lows) >= batch_size:
            if lows:
                yield kind, lows, highs
            kind, lows, highs = query.kind, [], []
        lows.append(query.low)
        highs.append(query.high)
    if lows:
        yield kind, lows, highs


def end_to_end_latency_model(
    measurement: FilterMeasurement,
    device: str | DeviceModel = "ssd",
    wasted_read_bytes: int = 4096,
    reads_per_false_positive: int = 1,
) -> dict[str, float]:
    """Fig. 9's latency decomposition: probe CPU + FPR-induced device reads.

    In the standalone setting, end-to-end latency per query is the filter
    probe cost plus (FPR x the cost of the wasted device reads a false
    positive triggers).  Returns per-query microseconds: ``probe_us``,
    ``io_us``, and ``total_us``.
    """
    if isinstance(device, str):
        try:
            device = DEVICE_PRESETS[device]
        except KeyError:
            raise WorkloadError(f"unknown device {device!r}") from None
    io_ns_per_fp = reads_per_false_positive * device.block_read_ns(wasted_read_bytes)
    io_us = measurement.fpr * io_ns_per_fp / 1000.0
    probe_us = measurement.probe_micros_per_query
    return {
        "probe_us": probe_us,
        "io_us": io_us,
        "total_us": probe_us + io_us,
        "device": device.name,
    }
