"""Performance counters for the LSM store (paper §5 measurement taxonomy).

The paper instruments RocksDB with ``block_read_time``,
``iter_seek_cpu_nanos``, and custom stopwatches for serialization,
deserialization, and filter probes.  :class:`PerfStats` reproduces that
taxonomy so the benchmark harness can print the same cost breakdowns
(Fig. 5(A1)/(A2), Fig. 6(B)):

* ``block_read_time_ns`` — modeled device time for data/index/filter block
  reads (the I/O component);
* ``residual_seek_ns`` — iterator maintenance CPU: creating and advancing
  the two-level/merging iterators, fence-pointer comparisons;
* ``filter_probe_ns`` / ``serialize_ns`` / ``deserialize_ns`` — the filter
  sub-costs of Fig. 5(A2);
* compaction counters for Fig. 6's ``T/(R+W)`` overhead metric.

With background maintenance enabled, foreground queries and worker jobs
bump the same counter set concurrently, so every mutation goes through
:meth:`PerfStats.add`, which serializes updates behind an internal lock.
``snapshot``/``diff`` take the same lock and therefore observe a
consistent cut even while workers are running.

:class:`Stopwatch` is the measuring primitive (mirrors RocksDB's internal
``stopwatch()`` support).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, fields

from repro.core.tuning import observed_fpr as _observed_fpr

__all__ = ["PerfStats", "Stopwatch"]


@dataclass
class PerfStats:
    """Mutable counter set; one per DB instance (cheap to snapshot/diff)."""

    # --- I/O ---
    block_reads: int = 0
    block_read_bytes: int = 0
    block_read_time_ns: int = 0  # modeled device latency
    block_cache_hits: int = 0
    block_cache_misses: int = 0
    bytes_written: int = 0

    # --- Fault handling ---
    io_transient_errors: int = 0  # TransientIOError observed (incl. retried)
    io_retries: int = 0           # read attempts re-issued after one
    filters_degraded: int = 0     # runs whose filter envelope was unreadable
    filters_quarantined: int = 0  # runs flagged as under FP replay attack
    background_errors: int = 0    # flush/compaction failures -> degraded mode

    # --- Write backpressure ---
    memtable_seals: int = 0       # active memtable rotated into the queue
    write_slowdowns: int = 0      # writes admitted with a modeled delay
    write_stops: int = 0          # writes that blocked on the stop trigger
    write_delay_time_ns: int = 0  # modeled slowdown delay (not slept)
    write_stall_time_ns: int = 0  # measured wall time spent stop-blocked
    write_stall_timeouts: int = 0  # stop waits that gave up (WriteStallTimeoutError)

    # --- CPU sub-costs (measured wall time of the code paths) ---
    filter_probe_ns: int = 0
    serialize_ns: int = 0
    deserialize_ns: int = 0
    residual_seek_ns: int = 0

    # --- Filter verdicts ---
    filter_probes: int = 0
    # Bulk filter invocations: multi-run frontier sweeps on the range path
    # plus per-run point batches on the multi_get path share this counter.
    filter_batch_probes: int = 0
    filter_negatives: int = 0
    filter_true_positives: int = 0
    filter_false_positives: int = 0

    # --- Query counts ---
    point_queries: int = 0  # distinct lookups, whether scalar or batched
    multi_point_queries: int = 0  # batched multi_get operations
    range_queries: int = 0
    writes: int = 0

    # --- Flush / compaction (Fig. 6) ---
    flushes: int = 0
    compactions: int = 0
    compaction_bytes_read: int = 0
    compaction_bytes_written: int = 0
    compaction_time_ns: int = 0
    filter_construction_ns: int = 0
    filters_built: int = 0

    # --- Background-job overlap ---
    subcompactions: int = 0       # partitioned key-range slices executed
    jobs_overlapped: int = 0      # job dispatches that joined a live job
    max_jobs_in_flight: int = 0   # high-water mark of concurrent jobs
    leveled_range_admissions: int = 0  # leveled jobs admitted into a level
                                       # pair already holding a leveled job
                                       # (disjoint key ranges)
    stale_jobs_rejected: int = 0  # begin() refusals: planned inputs retired
                                  # by an install before dispatch

    def __post_init__(self) -> None:
        # Not a dataclass field: ``fields(self)`` must keep iterating only
        # the counters for snapshot/diff/reset and keyword construction.
        object.__setattr__(self, "_lock", threading.Lock())

    def add(self, **deltas: int) -> None:
        """Atomically add ``deltas`` to the named counters.

        The sole supported mutation path once worker threads are running:
        plain ``stats.field += n`` is a read-modify-write race under
        concurrency.
        """
        with self._lock:
            for name, delta in deltas.items():
                setattr(self, name, getattr(self, name) + delta)

    def observe_max(self, name: str, value: int) -> None:
        """Atomically raise the named counter to ``value`` if it is higher.

        High-water-mark counters (``max_jobs_in_flight``) are not additive,
        so ``add`` would double-count them; this is their mutation path.
        """
        with self._lock:
            if value > getattr(self, name):
                setattr(self, name, value)

    def snapshot(self) -> "PerfStats":
        """Consistent copy of the current counters."""
        with self._lock:
            return PerfStats(**{f.name: getattr(self, f.name) for f in fields(self)})

    def diff(self, earlier: "PerfStats") -> "PerfStats":
        """Counter deltas since ``earlier`` (for per-phase reporting)."""
        current = self.snapshot()
        return PerfStats(
            **{
                f.name: getattr(current, f.name) - getattr(earlier, f.name)
                for f in fields(self)
            }
        )

    def reset(self) -> None:
        """Zero every counter."""
        with self._lock:
            for f in fields(self):
                setattr(self, f.name, 0)

    # ------------------------------------------------------------------
    # Derived metrics
    # ------------------------------------------------------------------
    @property
    def observed_fpr(self) -> float:
        """Measured filter FPR: false positives / (negatives + false pos.).

        Matches the paper's convention of evaluating filters on empty
        queries: among queries the filter *could* have rejected, the share
        it failed to.  Delegates to the shared
        :func:`repro.core.tuning.observed_fpr` helper so this, the
        workload tracker, and the attack detector agree by construction.
        """
        return _observed_fpr(
            self.filter_false_positives, self.filter_negatives
        )

    @property
    def cpu_ns(self) -> int:
        """Total attributed CPU time (sum of the sub-cost stopwatches)."""
        return (
            self.filter_probe_ns
            + self.serialize_ns
            + self.deserialize_ns
            + self.residual_seek_ns
        )

    def compaction_overhead_us_per_byte(self) -> float:
        """Fig. 6's ``T / (R + W)`` metric in microseconds per byte."""
        moved = self.compaction_bytes_read + self.compaction_bytes_written
        if moved == 0:
            return 0.0
        return (self.compaction_time_ns / 1000.0) / moved


class Stopwatch:
    """Context manager accumulating elapsed wall time into a stats field.

    >>> stats = PerfStats()
    >>> with Stopwatch(stats, "filter_probe_ns"):
    ...     pass
    """

    __slots__ = ("_stats", "_field", "_start")

    def __init__(self, stats: PerfStats, field_name: str) -> None:
        self._stats = stats
        self._field = field_name

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        elapsed = time.perf_counter_ns() - self._start
        self._stats.add(**{self._field: elapsed})
