"""Iterator hierarchy: per-run cursors merged by a min-heap.

RocksDB range queries walk "a hierarchy of iterators" — one two-level
iterator per SST file (or memtable), consolidated by a merging iterator.
The paper identifies the maintenance of this hierarchy as the dominant CPU
cost of empty range queries, which is why its experiments bound the number
of L0 files.

:class:`MergingIterator` consumes any number of ``(key, tag, value)``
generators tagged with a recency priority (lower = newer) and yields
entries in global key order with newest-wins deduplication.  Tombstones are
*yielded* (tagged) so callers at non-terminal levels can preserve them;
:func:`live_entries` strips them for user-facing reads.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Iterator

from repro.lsm.format import ValueTag

__all__ = ["MergingIterator", "live_entries"]


class MergingIterator:
    """Heap-merge of prioritized sorted entry streams, newest-wins.

    Parameters
    ----------
    sources:
        ``(priority, iterator)`` pairs; iterators yield ``(key, tag,
        value)`` in strictly increasing key order.  Lower priority values
        shadow higher ones on key ties (L0-newest = 0, older runs higher).
    """

    def __init__(
        self, sources: Iterable[tuple[int, Iterator[tuple[bytes, int, bytes]]]]
    ) -> None:
        self._heap: list[tuple[bytes, int, int, bytes, Iterator]] = []
        for priority, iterator in sources:
            self._push(priority, iterator)

    def _push(self, priority: int, iterator: Iterator) -> None:
        try:
            key, tag, value = next(iterator)
        except StopIteration:
            return
        heapq.heappush(self._heap, (key, priority, tag, value, iterator))

    def __iter__(self) -> Iterator[tuple[bytes, int, bytes]]:
        previous_key: bytes | None = None
        while self._heap:
            key, priority, tag, value, iterator = heapq.heappop(self._heap)
            self._push(priority, iterator)
            if key == previous_key:
                continue  # an older (higher-priority-number) duplicate
            previous_key = key
            yield key, tag, value


def live_entries(
    merged: Iterable[tuple[bytes, int, bytes]]
) -> Iterator[tuple[bytes, bytes]]:
    """Strip tombstones from a merged stream: yield ``(key, value)`` only."""
    for key, tag, value in merged:
        if tag == ValueTag.PUT:
            yield key, value
