"""Chaos harness: concurrent mixed traffic against fault-injected shards.

The fault-tolerance contract of :class:`~repro.lsm.serving.ShardedServer`
is behavioral, not structural: *under faults, every request either
returns the correct answer or raises a typed serving error within its
deadline* — no hangs, no wrong answers, no stranded futures.  This
module drives that contract end to end:

* every shard DB runs on a :class:`~repro.lsm.faults.FaultInjectionEnv`
  (captured through ``DBOptions.env_factory``);
* concurrent client threads issue a seeded mix of ``get`` /
  ``multi_get`` / ``range_query`` / ``put`` while an injector thread
  arms transient read faults, background write faults (degraded-mode
  flips), and drain-worker crashes;
* the key domain is split so answers are checkable under concurrency:
  the lower half is preloaded once and never written again (every read
  there has one correct answer), and the upper half is divided into
  per-client disjoint write slices (each client verifies its own reads
  against its own acked writes — nobody else touches its slice);
* every async read is collected with a bounded ``Future.result`` wait;
  a timeout is a **hang violation**, a non-allowlisted exception is a
  **typed-error violation**, and a mismatched answer is a **wrong-answer
  violation**.  A clean run reports zero violations.

After the traffic stops, a final integrity sweep reads the stable
region straight from the shard DBs (bypassing the serving layer, so it
works even when an undefended configuration has permanently lost its
drain workers) to prove the data itself survived the chaos.

:func:`run_chaos` returns a :class:`ChaosReport`;
``benchmarks/bench_chaos.py`` runs it across defense configurations and
turns the reports into ``BENCH_chaos.json``.
"""

from __future__ import annotations

import concurrent.futures
import random
import threading
import time
from collections import Counter
from dataclasses import dataclass, field

from repro.errors import (
    ClosedStoreError,
    DeadlineExceededError,
    QueueFullError,
    ReadOnlyStoreError,
    ShardUnavailableError,
    TransientIOError,
    WorkerCrashedError,
    WriteStallTimeoutError,
)
from repro.lsm.db import DB
from repro.lsm.faults import FaultInjectionEnv
from repro.lsm.options import DBOptions
from repro.lsm.serving import ServingOptions, ShardedServer

__all__ = ["ChaosOptions", "ChaosReport", "run_chaos"]

#: Exceptions a request may legitimately surface under faults.  Anything
#: else escaping the serving layer is a violation — the taxonomy is the
#: contract.
TYPED_ERRORS: tuple[type[BaseException], ...] = (
    DeadlineExceededError,
    QueueFullError,
    ShardUnavailableError,
    WorkerCrashedError,
    ReadOnlyStoreError,
    WriteStallTimeoutError,
    TransientIOError,
    ClosedStoreError,
)


@dataclass
class ChaosOptions:
    """One chaos run: workload shape, serving config, fault schedule."""

    seed: int = 0
    clients: int = 4
    ops_per_client: int = 200
    num_shards: int = 4
    key_bits: int = 16
    preload: int = 500          # stable-region keys loaded before traffic
    # Serving configuration under test.
    queue_policy: str = "shed"
    default_deadline_s: float | None = 0.5
    breaker_enabled: bool = True
    max_worker_restarts: int = 3
    max_queue_depth: int = 256
    coalescing_window_s: float = 0.0005
    # Fault schedule (all faults disabled when ``inject_faults`` is off).
    inject_faults: bool = True
    fault_period_s: float = 0.02   # injector tick
    write_fault_every: int = 3     # ticks between armed background-write faults
    worker_crash_every: int = 6    # ticks between injected worker crashes
    #: Extra slack on top of the deadline before a pending future counts
    #: as hung.  Also the whole wait bound when there is no deadline.
    grace_s: float = 30.0


@dataclass
class ChaosReport:
    """What happened: totals, failures by type, violations, latency."""

    ops: int = 0
    ok_ops: int = 0
    typed_failures: Counter = field(default_factory=Counter)
    violations: list[str] = field(default_factory=list)
    latencies_s: list[float] = field(default_factory=list)
    injected: Counter = field(default_factory=Counter)
    counters: dict[str, int] = field(default_factory=dict)
    duration_s: float = 0.0

    @property
    def availability(self) -> float:
        """Fraction of requests answered correctly (1.0 = no failures)."""
        return self.ok_ops / self.ops if self.ops else 1.0

    def latency_percentile(self, q: float) -> float:
        """q-th latency percentile in seconds (0 when nothing completed)."""
        if not self.latencies_s:
            return 0.0
        ordered = sorted(self.latencies_s)
        index = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[index]


def _stable_value(key: int) -> bytes:
    return b"stable:%d" % key


class _Client:
    """One traffic thread: seeded op mix + its own verification model."""

    def __init__(
        self,
        index: int,
        harness: "_Harness",
        write_low: int,
        write_high: int,
    ) -> None:
        self.index = index
        self.harness = harness
        self.rng = random.Random(harness.options.seed * 1009 + index)
        self.write_low = write_low      # inclusive, this client's alone
        self.write_high = write_high    # exclusive
        self.model: dict[int, bytes] = {}  # acked writes in own slice
        self.write_seq = 0
        self.report = ChaosReport()

    # -- expected answers ------------------------------------------------
    def _expect_point(self, key: int) -> bytes | None:
        if key in self.harness.stable:
            return _stable_value(key)
        if self.write_low <= key < self.write_high:
            return self.model.get(key)
        return None

    # -- one op ----------------------------------------------------------
    def run_op(self) -> None:
        roll = self.rng.random()
        if roll < 0.45:
            self._op_get()
        elif roll < 0.65:
            self._op_multi_get()
        elif roll < 0.80:
            self._op_range()
        else:
            self._op_put()

    def _pick_read_key(self) -> int:
        # 70% stable region (always verifiable), 30% own write slice.
        if self.rng.random() < 0.7 or not self.harness.stable_list:
            if self.harness.stable_list:
                return self.rng.choice(self.harness.stable_list)
        return self.rng.randrange(self.write_low, self.write_high)

    def _collect(self, future: concurrent.futures.Future) -> object:
        """Bounded wait; a timeout here is the hang violation."""
        options = self.harness.options
        bound = options.grace_s
        if options.default_deadline_s is not None:
            bound = options.default_deadline_s + options.grace_s
        return future.result(timeout=bound)

    def _record(self, start: float, ok: bool) -> None:
        self.report.ops += 1
        self.report.ok_ops += 1 if ok else 0
        self.report.latencies_s.append(time.monotonic() - start)

    def _fail(self, start: float, exc: BaseException, what: str) -> None:
        if isinstance(exc, concurrent.futures.TimeoutError):
            self.report.violations.append(
                f"client {self.index}: HANG — {what} still pending past "
                f"its deadline + grace"
            )
        elif isinstance(exc, TYPED_ERRORS):
            self.report.typed_failures[type(exc).__name__] += 1
        else:
            self.report.violations.append(
                f"client {self.index}: UNTYPED {type(exc).__name__} "
                f"from {what}: {exc}"
            )
        self._record(start, ok=False)

    def _op_get(self) -> None:
        key = self._pick_read_key()
        start = time.monotonic()
        try:
            value = self._collect(self.harness.server.get_async(key))
        except BaseException as exc:  # noqa: BLE001 - classified above
            self._fail(start, exc, f"get({key})")
            return
        expected = self._expect_point(key)
        if value != expected:
            self.report.violations.append(
                f"client {self.index}: WRONG ANSWER get({key}) -> "
                f"{value!r}, expected {expected!r}"
            )
            self._record(start, ok=False)
        else:
            self._record(start, ok=True)

    def _op_multi_get(self) -> None:
        keys = [self._pick_read_key() for _ in range(self.rng.randint(2, 8))]
        start = time.monotonic()
        try:
            values = self._collect(self.harness.server.multi_get_async(keys))
        except BaseException as exc:  # noqa: BLE001 - classified above
            self._fail(start, exc, f"multi_get({len(keys)} keys)")
            return
        bad = [
            key for key in keys if values.get(key) != self._expect_point(key)
        ]
        if bad:
            self.report.violations.append(
                f"client {self.index}: WRONG ANSWER multi_get — keys {bad}"
            )
            self._record(start, ok=False)
        else:
            self._record(start, ok=True)

    def _op_range(self) -> None:
        # Ranges stay inside the stable region so the answer is fixed.
        low = self.rng.randrange(0, self.harness.stable_top)
        high = min(
            low + self.rng.randint(1, 64), self.harness.stable_top - 1
        )
        start = time.monotonic()
        try:
            result = self._collect(
                self.harness.server.range_query_async(low, high)
            )
        except BaseException as exc:  # noqa: BLE001 - classified above
            self._fail(start, exc, f"range_query({low}, {high})")
            return
        expected = [
            (key, _stable_value(key))
            for key in self.harness.stable_sorted
            if low <= key <= high
        ]
        if result != expected:
            self.report.violations.append(
                f"client {self.index}: WRONG ANSWER range_query({low}, "
                f"{high}) — {len(result)} rows, expected {len(expected)}"
            )
            self._record(start, ok=False)
        else:
            self._record(start, ok=True)

    def _op_put(self) -> None:
        key = self.rng.randrange(self.write_low, self.write_high)
        self.write_seq += 1
        value = b"c%d:%d" % (self.index, self.write_seq)
        start = time.monotonic()
        try:
            self.harness.server.put(key, value)
        except BaseException as exc:  # noqa: BLE001 - classified above
            self._fail(start, exc, f"put({key})")
            return
        self.model[key] = value  # acked -> must be readable from now on
        self._record(start, ok=True)

    def run(self) -> None:
        self.harness.barrier.wait()
        for _ in range(self.harness.options.ops_per_client):
            try:
                self.run_op()
            except BaseException as exc:  # noqa: BLE001 - harness bug guard
                self.report.violations.append(
                    f"client {self.index}: HARNESS ERROR "
                    f"{type(exc).__name__}: {exc}"
                )
                self.report.ops += 1


class _Harness:
    """Shared run state: server, envs, stable model, fault injector."""

    def __init__(self, path: str, options: ChaosOptions) -> None:
        self.options = options
        self.envs: list[FaultInjectionEnv] = []
        captured = self.envs

        def env_factory(root, device, stats):
            env = FaultInjectionEnv(
                root, device, stats, seed=options.seed + len(captured)
            )
            captured.append(env)
            return env

        db_options = DBOptions(
            key_bits=options.key_bits,
            memtable_size_bytes=4 << 10,
            sst_size_bytes=8 << 10,
            block_size_bytes=512,
            max_bytes_for_level_base=32 << 10,
            env_factory=env_factory,
        )
        serving = ServingOptions(
            num_shards=options.num_shards,
            queue_policy=options.queue_policy,
            default_deadline_s=options.default_deadline_s,
            breaker_enabled=options.breaker_enabled,
            max_worker_restarts=options.max_worker_restarts,
            max_queue_depth=options.max_queue_depth,
            coalescing_window_s=options.coalescing_window_s,
            breaker_backoff_initial_s=0.02,
            breaker_backoff_max_s=0.2,
        )
        self.server = ShardedServer(path, db_options, serving)
        domain = 1 << options.key_bits
        self.stable_top = domain // 2
        rng = random.Random(options.seed)
        self.stable: set[int] = set()
        while len(self.stable) < options.preload:
            self.stable.add(rng.randrange(0, self.stable_top))
        self.stable_sorted = sorted(self.stable)
        self.stable_list = self.stable_sorted
        self.barrier = threading.Barrier(options.clients)
        self._stop_injector = threading.Event()

    def preload(self) -> None:
        for key in self.stable_sorted:
            self.server.put(key, _stable_value(key))
        self.server.flush()

    def client_slices(self) -> list[tuple[int, int]]:
        domain = 1 << self.options.key_bits
        span = (domain - self.stable_top) // self.options.clients
        return [
            (self.stable_top + i * span, self.stable_top + (i + 1) * span)
            for i in range(self.options.clients)
        ]

    # -- fault injection -------------------------------------------------
    def _inject_loop(self, injected: Counter) -> None:
        rng = random.Random(self.options.seed ^ 0xFA)
        tick = 0
        while not self._stop_injector.wait(self.options.fault_period_s):
            tick += 1
            env = rng.choice(self.envs)
            # Transient read faults: absorbed by the storage layer's
            # bounded retry most of the time, surfaced (typed) otherwise.
            env.fail_next_reads(rng.randint(1, 2))
            injected["transient_reads"] += 1
            if tick % self.options.write_fault_every == 0:
                # The next background write on this shard fails ->
                # degraded read-only flip -> breaker territory.
                env.fail_next_writes(1)
                injected["write_faults"] += 1
            if tick % self.options.worker_crash_every == 0:
                shard = rng.choice(self.server._shards)
                shard.inject_worker_fault(
                    RuntimeError(f"chaos: injected worker crash @tick {tick}")
                )
                injected["worker_crashes"] += 1

    def start_injector(self, injected: Counter) -> threading.Thread | None:
        if not self.options.inject_faults:
            return None
        thread = threading.Thread(
            target=self._inject_loop,
            args=(injected,),
            name="chaos-injector",
            daemon=True,
        )
        thread.start()
        return thread

    def stop_injector(self, thread: threading.Thread | None) -> None:
        self._stop_injector.set()
        if thread is not None:
            thread.join(timeout=5.0)

    def final_integrity_check(self, report: ChaosReport) -> None:
        """Read the stable region straight off the shard DBs.

        Bypasses the serving layer so it works even when an undefended
        configuration lost its drain workers for good; retries transient
        read faults left armed by the injector.
        """
        router = self.server.router
        shards = self.server.shards
        for key in self.stable_sorted:
            db: DB = shards[router.shard_of(key)]
            value = None
            for _ in range(5):
                try:
                    value = db.get(key)
                    break
                except TransientIOError:
                    continue
            if value != _stable_value(key):
                report.violations.append(
                    f"INTEGRITY: stable key {key} -> {value!r} on direct "
                    f"shard read, expected {_stable_value(key)!r}"
                )


def run_chaos(path: str, options: ChaosOptions) -> ChaosReport:
    """Run one chaos configuration end to end; returns the merged report."""
    harness = _Harness(path, options)
    report = ChaosReport()
    try:
        harness.preload()
        clients = [
            _Client(index, harness, low, high)
            for index, (low, high) in enumerate(harness.client_slices())
        ]
        injector = harness.start_injector(report.injected)
        start = time.monotonic()
        threads = [
            threading.Thread(
                target=client.run, name=f"chaos-client-{client.index}"
            )
            for client in clients
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        report.duration_s = time.monotonic() - start
        harness.stop_injector(injector)
        for client in clients:
            report.ops += client.report.ops
            report.ok_ops += client.report.ok_ops
            report.typed_failures.update(client.report.typed_failures)
            report.violations.extend(client.report.violations)
            report.latencies_s.extend(client.report.latencies_s)
        harness.final_integrity_check(report)
        stats = harness.server.stats()
        report.counters = {
            "sheds": stats.sheds,
            "deadline_misses": stats.deadline_misses,
            "breaker_trips": stats.breaker_trips,
            "breaker_recoveries": stats.breaker_recoveries,
            "worker_crashes": stats.worker_crashes,
            "worker_restarts": stats.worker_restarts,
            "worker_leaks": stats.worker_leaks,
            "write_rejections": stats.write_rejections,
            "queue_waits": stats.queue_waits,
        }
    finally:
        leaked = harness.server.close()
        if leaked:
            report.violations.append(
                f"CLOSE: workers leaked on shards {leaked}"
            )
    return report
