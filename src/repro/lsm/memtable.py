"""Skip-list memtable — the in-memory write buffer of the LSM-tree.

A classic probabilistic skip list keyed by byte-string keys.  Overwrites
replace in place (the memtable holds at most one entry per key; sequence
ordering across runs is provided by run recency, as in LevelDB-style
stores).  Deletions store a tombstone tag so a flush propagates them.

The skip list is implemented from scratch (no ``sortedcontainers``): tower
nodes with geometric height, deterministic per-instance RNG so tests are
reproducible.

Concurrency contract: one writer, any number of readers, no lock.  Every
mutation that a reader could observe mid-flight is a single reference
assignment — an overwrite swaps one immutable ``(tag, value)`` entry
tuple, and an insert links the new node bottom-up after the node is fully
built — so under the GIL a concurrent reader sees either the old or the
new state of a key, never a torn ``(new_tag, old_value)`` pair.  Sealed
(immutable) memtables are never mutated at all.
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.lsm.format import ValueTag

_MAX_HEIGHT = 12
_BRANCHING = 4

__all__ = ["MemTable"]


class _Node:
    __slots__ = ("key", "entry", "next")

    def __init__(self, key: bytes, tag: int, value: bytes, height: int) -> None:
        self.key = key
        # One atomically-swappable slot instead of separate tag/value
        # attributes: overwrite-vs-read is then a single pointer race.
        self.entry: tuple[int, bytes] = (tag, value)
        self.next: list["_Node | None"] = [None] * height


class MemTable:
    """Sorted in-memory buffer with approximate byte accounting.

    ``approximate_bytes`` counts key+value payload plus a small per-entry
    overhead so the flush trigger tracks real memory use.
    """

    _ENTRY_OVERHEAD = 16

    def __init__(self, seed: int = 0) -> None:
        self._head = _Node(b"", ValueTag.PUT, b"", _MAX_HEIGHT)
        self._height = 1
        self._rng = random.Random(seed)
        self._num_entries = 0
        self._bytes = 0

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._num_entries

    @property
    def approximate_bytes(self) -> int:
        """Approximate memory footprint of buffered entries."""
        return self._bytes

    @property
    def is_empty(self) -> bool:
        """True when no entries are buffered."""
        return self._num_entries == 0

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def put(self, key: bytes, value: bytes) -> None:
        """Insert or overwrite ``key``."""
        self._upsert(key, ValueTag.PUT, value)

    def delete(self, key: bytes) -> None:
        """Record a tombstone for ``key``."""
        self._upsert(key, ValueTag.DELETE, b"")

    def _random_height(self) -> int:
        height = 1
        while height < _MAX_HEIGHT and self._rng.randrange(_BRANCHING) == 0:
            height += 1
        return height

    def _find_predecessors(self, key: bytes) -> list[_Node]:
        """Per-level rightmost nodes with key < ``key``."""
        previous = [self._head] * _MAX_HEIGHT
        node = self._head
        for level in range(self._height - 1, -1, -1):
            while node.next[level] is not None and node.next[level].key < key:
                node = node.next[level]
            previous[level] = node
        return previous

    def _upsert(self, key: bytes, tag: int, value: bytes) -> None:
        previous = self._find_predecessors(key)
        candidate = previous[0].next[0]
        if candidate is not None and candidate.key == key:
            self._bytes += len(value) - len(candidate.entry[1])
            candidate.entry = (tag, value)
            return
        height = self._random_height()
        if height > self._height:
            self._height = height
        node = _Node(key, tag, value, height)
        for level in range(height):
            node.next[level] = previous[level].next[level]
            previous[level].next[level] = node
        self._num_entries += 1
        self._bytes += len(key) + len(value) + self._ENTRY_OVERHEAD

    # ------------------------------------------------------------------
    # Lookup / iteration
    # ------------------------------------------------------------------
    def get(self, key: bytes) -> tuple[int, bytes] | None:
        """Return ``(tag, value)`` or None when the key is not buffered."""
        node = self._find_predecessors(key)[0].next[0]
        if node is not None and node.key == key:
            return node.entry
        return None

    def entries(self) -> Iterator[tuple[bytes, int, bytes]]:
        """Yield ``(key, tag, value)`` in ascending key order."""
        node = self._head.next[0]
        while node is not None:
            tag, value = node.entry
            yield node.key, tag, value
            node = node.next[0]

    def entries_from(self, key: bytes) -> Iterator[tuple[bytes, int, bytes]]:
        """Yield entries with key >= ``key`` in ascending order."""
        node = self._find_predecessors(key)[0].next[0]
        while node is not None:
            tag, value = node.entry
            yield node.key, tag, value
            node = node.next[0]

    def min_key(self) -> bytes | None:
        """Smallest buffered key (None when empty)."""
        node = self._head.next[0]
        return node.key if node is not None else None

    def max_key(self) -> bytes | None:
        """Largest buffered key (None when empty) — O(n) walk."""
        node = self._head.next[0]
        if node is None:
            return None
        # Walk the highest populated levels for an O(log n)-ish descent.
        current = self._head
        for level in range(self._height - 1, -1, -1):
            while current.next[level] is not None:
                current = current.next[level]
        return current.key
