"""On-disk block encodings for SST files (RocksDB-style).

Data blocks use restart-point prefix compression: within a block, each
entry stores how many key bytes it shares with its predecessor, and every
``restart_interval`` entries a *restart point* stores the full key so a
reader can binary-search restart points and scan forward.  Blocks end with
the restart offset array, its length, and a CRC32 checksum.

Entries carry a one-byte value tag distinguishing puts from deletion
tombstones — the merge machinery needs tombstones to shadow older values
until they reach the bottom level.

Index blocks map each data block's *last key* to its (offset, size); the
in-memory form of an index block is exactly the paper's fence pointers.
"""

from __future__ import annotations

import re
import struct
import zlib
from typing import Iterator, NamedTuple

from repro.errors import CorruptionError

__all__ = [
    "ValueTag",
    "BlockHandle",
    "encode_varint",
    "decode_varint",
    "DataBlockBuilder",
    "decode_data_block",
    "encode_index_block",
    "decode_index_block",
    "sst_file_number",
]

#: ``sst_<level>_<number>.sst`` — the number is allocation order.  The
#: compaction picker uses it as run age; per-SST filter salting mixes it
#: into the store's ``filter_salt_seed`` so every rebuild re-keys.
_SST_NUMBER = re.compile(r"^sst_\d+_(\d+)\.sst$")


def sst_file_number(name: str) -> int:
    """Allocation number embedded in an SST file name (0 if unparsable)."""
    match = _SST_NUMBER.match(name)
    return int(match.group(1)) if match else 0


class ValueTag:
    """One-byte entry type tags."""

    PUT = 0
    DELETE = 1


class BlockHandle(NamedTuple):
    """Location of a block within an SST file."""

    offset: int
    size: int

    def to_bytes(self) -> bytes:
        return struct.pack("<QQ", self.offset, self.size)

    @classmethod
    def from_bytes(cls, payload: bytes) -> "BlockHandle":
        offset, size = struct.unpack("<QQ", payload[:16])
        return cls(offset, size)


def encode_varint(value: int) -> bytes:
    """LEB128 unsigned varint."""
    if value < 0:
        raise ValueError(f"varints are unsigned, got {value}")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_varint(payload: bytes, offset: int) -> tuple[int, int]:
    """Decode a varint at ``offset``; returns (value, next_offset)."""
    value = 0
    shift = 0
    while True:
        if offset >= len(payload):
            raise CorruptionError("truncated varint")
        byte = payload[offset]
        offset += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, offset
        shift += 7
        if shift > 63:
            raise CorruptionError("varint too long")


class DataBlockBuilder:
    """Accumulates sorted entries into one prefix-compressed data block."""

    def __init__(self, restart_interval: int = 16) -> None:
        if restart_interval < 1:
            raise ValueError("restart_interval must be >= 1")
        self._restart_interval = restart_interval
        self._buffer = bytearray()
        self._restarts: list[int] = []
        self._entries_since_restart = 0
        self._last_key = b""
        self.num_entries = 0

    def add(self, key: bytes, tag: int, value: bytes) -> None:
        """Append an entry; keys must arrive in strictly increasing order."""
        if self.num_entries and key <= self._last_key:
            raise ValueError("data block keys must be strictly increasing")
        if self._entries_since_restart % self._restart_interval == 0:
            self._restarts.append(len(self._buffer))
            shared = 0
            self._entries_since_restart = 0
        else:
            shared = _shared_prefix_len(self._last_key, key)
        unshared = key[shared:]
        self._buffer += encode_varint(shared)
        self._buffer += encode_varint(len(unshared))
        self._buffer += encode_varint(len(value))
        self._buffer.append(tag)
        self._buffer += unshared
        self._buffer += value
        self._last_key = key
        self._entries_since_restart += 1
        self.num_entries += 1

    def size_estimate(self) -> int:
        """Bytes the finished block will occupy (approximately)."""
        return len(self._buffer) + 4 * len(self._restarts) + 12

    def finish(self) -> bytes:
        """Seal the block: body + restart array + counts + CRC32."""
        out = bytearray(self._buffer)
        for restart in self._restarts:
            out += struct.pack("<I", restart)
        out += struct.pack("<I", len(self._restarts))
        out += struct.pack("<I", self.num_entries)
        out += struct.pack("<I", zlib.crc32(bytes(out)))
        return bytes(out)


def decode_data_block(payload: bytes) -> list[tuple[bytes, int, bytes]]:
    """Decode a data block into ``[(key, tag, value), ...]``.

    Verifies the trailing CRC32 and reconstructs prefix-compressed keys.
    """
    if len(payload) < 16:
        raise CorruptionError("data block too small")
    body, crc_bytes = payload[:-4], payload[-4:]
    if zlib.crc32(body) != struct.unpack("<I", crc_bytes)[0]:
        raise CorruptionError("data block checksum mismatch")
    num_restarts, num_entries = struct.unpack("<II", body[-8:])
    restart_array_start = len(body) - 8 - 4 * num_restarts
    if restart_array_start < 0:
        raise CorruptionError("data block restart array overflow")
    entries: list[tuple[bytes, int, bytes]] = []
    offset = 0
    last_key = b""
    while offset < restart_array_start:
        shared, offset = decode_varint(body, offset)
        unshared_len, offset = decode_varint(body, offset)
        value_len, offset = decode_varint(body, offset)
        tag = body[offset]
        offset += 1
        key = last_key[:shared] + body[offset : offset + unshared_len]
        offset += unshared_len
        value = body[offset : offset + value_len]
        offset += value_len
        entries.append((key, tag, value))
        last_key = key
    if len(entries) != num_entries:
        raise CorruptionError(
            f"data block advertised {num_entries} entries, decoded {len(entries)}"
        )
    return entries


def encode_index_block(
    entries: list[tuple[bytes, BlockHandle]]
) -> bytes:
    """Encode fence pointers: (last key of block, handle) per data block."""
    out = bytearray(struct.pack("<I", len(entries)))
    for key, handle in entries:
        out += encode_varint(len(key))
        out += key
        out += handle.to_bytes()
    out += struct.pack("<I", zlib.crc32(bytes(out)))
    return bytes(out)


def decode_index_block(payload: bytes) -> list[tuple[bytes, BlockHandle]]:
    """Decode :func:`encode_index_block` output (checksum-verified)."""
    if len(payload) < 8:
        raise CorruptionError("index block too small")
    body, crc_bytes = payload[:-4], payload[-4:]
    if zlib.crc32(body) != struct.unpack("<I", crc_bytes)[0]:
        raise CorruptionError("index block checksum mismatch")
    (count,) = struct.unpack("<I", body[:4])
    offset = 4
    entries: list[tuple[bytes, BlockHandle]] = []
    for _ in range(count):
        key_len, offset = decode_varint(body, offset)
        key = body[offset : offset + key_len]
        offset += key_len
        handle = BlockHandle.from_bytes(body[offset : offset + 16])
        offset += 16
        entries.append((key, handle))
    return entries


def _shared_prefix_len(a: bytes, b: bytes) -> int:
    limit = min(len(a), len(b))
    for index in range(limit):
        if a[index] != b[index]:
            return index
    return limit
