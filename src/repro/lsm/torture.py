"""Crash-recovery torture harness.

The executable statement of the store's durability contract.  For one seed
it builds a randomized schedule of ``put`` / ``delete`` / ``batch`` /
``flush`` / ``compact`` operations, then replays that schedule once per
*crash point*: run *k* powers the store off at the *k*-th durable I/O
operation (see :class:`~repro.lsm.faults.FaultInjectionEnv`), applies the
power cut, reopens the store cold, and checks it against an in-memory
model under the WAL contract —

* **no acknowledged write lost**: every operation that returned before the
  cut is fully visible after recovery;
* **the in-flight operation is all-or-nothing**: a torn batch never
  applies partially, a torn WAL tail is never resurrected;
* **no wrong reads**: no key reports a value the model never acknowledged,
  and a full scan agrees with point lookups;
* **recovery itself never raises**.

Because crash points enumerate *every* durable operation the schedule
performs, one seed sweeps the full matrix of "what if the power died
here" — including mid-append torn WAL frames, between SST write and
manifest replace, between manifest replace and WAL truncate, and between
compaction install and input-file GC.

Shared by ``tests/lsm/test_crash_recovery.py`` (small matrix, runs in CI's
tier-1 suite) and ``benchmarks/torture.py`` (the full seed matrix).
"""

from __future__ import annotations

import os
import random
import shutil
from dataclasses import dataclass, field

from repro.errors import PowerCutError
from repro.filters.base import FilterFactory
from repro.filters.rosetta_adapter import RosettaFilter
from repro.lsm.db import DB
from repro.lsm.faults import FaultInjectionEnv
from repro.lsm.options import DBOptions
from repro.lsm.scheduler import DeterministicScheduler

__all__ = [
    "TortureConfig",
    "CrashPointResult",
    "SeedReport",
    "build_schedule",
    "run_crash_point",
    "torture_seed",
    "transient_fault_equivalence",
    "torture_options",
    "concurrent_torture_options",
    "run_concurrent_crash_point",
    "concurrent_torture_seed",
    "schedule_equivalence",
]


@dataclass(frozen=True)
class TortureConfig:
    """Shape of one torture workload (kept tiny so crash sweeps stay fast)."""

    num_ops: int = 36
    key_space: int = 96
    batch_max: int = 5
    value_repeat: int = 3          # value payload size multiplier
    compaction_style: str = "leveled"
    with_filters: bool = True
    io_retry_attempts: int = 6     # generous: rate-injected runs must finish
    #: Probability mass given to plain puts.  The default keeps the
    #: historical op mix (and thus every existing seed's schedule)
    #: byte-identical; overlap-focused configs raise it so seals come fast
    #: enough for flushes and compactions to genuinely collide.
    put_bias: float = 0.55
    #: Seal threshold for the store under test (options floor: 1 KiB).
    #: Background jobs yield only at durable writes, so to observe
    #: overlapping jobs the writer must seal within a job's handful of
    #: yields — overlap configs keep this at the floor and grow
    #: ``value_repeat`` until nearly every put seals.
    memtable_size_bytes: int = 1024
    #: Source-run window width for leveled compaction (the DBOptions
    #: default).  Overlap configs drop it to 1 so an oversize level yields
    #: several single-run jobs with disjoint footprints — the shape that
    #: exercises two leveled compactions in flight in one level pair.
    max_compaction_input_files: int = 4
    #: Per-SST filter-salting seed (0 = unsalted, the historical format).
    #: Salted configs prove the salt survives power cuts: it rides in the
    #: filter envelope inside the SST, so a recovered store probes every
    #: surviving run with the exact hash family it was built with.
    filter_salt_seed: int = 0


def torture_options(
    config: TortureConfig, env_factory=None, transient_rate: float = 0.0
) -> DBOptions:
    """A deliberately tiny store: every schedule crosses flush/compaction."""
    factory = None
    if config.with_filters:
        def build(keys, salt=0):
            filt = RosettaFilter(
                key_bits=32, bits_per_key=14.0, max_range=32, salt=salt
            )
            filt.populate(keys)
            return filt

        factory = FilterFactory(
            name="rosetta-torture", builder=build, bits_per_key=14.0
        )
    return DBOptions(
        key_bits=32,
        memtable_size_bytes=config.memtable_size_bytes,
        sst_size_bytes=4096,
        block_size_bytes=512,
        block_cache_bytes=0,  # every read touches the (possibly hostile) device
        level0_file_num_compaction_trigger=2,
        max_bytes_for_level_base=8192,
        compaction_style=config.compaction_style,
        max_compaction_input_files=config.max_compaction_input_files,
        filter_factory=factory,
        filter_salt_seed=config.filter_salt_seed,
        io_retry_attempts=config.io_retry_attempts,
        env_factory=env_factory,
    )


def build_schedule(seed: int, config: TortureConfig) -> list[tuple]:
    """Deterministic op list; values are unique per (seed, op index)."""
    rng = random.Random(seed)
    ops: list[tuple] = []
    # The non-put op kinds keep their historical relative proportions
    # (17 : 16 : 8 : 4 out of the default 45% non-put mass).
    if config.put_bias == 0.55:
        # Exact historical thresholds: every pre-existing seed's schedule
        # stays byte-identical (no float round-trip through the ratios).
        delete_cut, batch_cut, flush_cut = 0.72, 0.88, 0.96
    else:
        rest = max(1.0 - config.put_bias, 1e-9)
        delete_cut = config.put_bias + rest * (17 / 45)
        batch_cut = config.put_bias + rest * (33 / 45)
        flush_cut = config.put_bias + rest * (41 / 45)
    for index in range(config.num_ops):
        value = f"s{seed}o{index}".encode() * config.value_repeat
        draw = rng.random()
        if draw < config.put_bias:
            ops.append(("put", rng.randrange(config.key_space), value))
        elif draw < delete_cut:
            ops.append(("delete", rng.randrange(config.key_space)))
        elif draw < batch_cut:
            keys = rng.sample(
                range(config.key_space), rng.randint(1, config.batch_max)
            )
            items = tuple(
                (
                    ("delete", key, None)
                    if rng.random() < 0.3
                    else ("put", key, value + b"#%d" % position)
                )
                for position, key in enumerate(keys)
            )
            ops.append(("batch", items))
        elif draw < flush_cut:
            ops.append(("flush",))
        else:
            ops.append(("compact",))
    return ops


def _apply(db: DB, op: tuple) -> None:
    kind = op[0]
    if kind == "put":
        db.put(op[1], op[2])
    elif kind == "delete":
        db.delete(op[1])
    elif kind == "batch":
        batch = db.batch()
        for item_kind, key, value in op[1]:
            if item_kind == "put":
                batch.put_int(key, value)
            else:
                batch.delete_int(key)
        db.write(batch)
    elif kind == "flush":
        db.flush()
    elif kind == "compact":
        db.compact()


def _commit(model: dict[int, bytes], op: tuple) -> None:
    kind = op[0]
    if kind == "put":
        model[op[1]] = op[2]
    elif kind == "delete":
        model.pop(op[1], None)
    elif kind == "batch":
        for item_kind, key, value in op[1]:
            if item_kind == "put":
                model[key] = value
            else:
                model.pop(key, None)


def _pending_effects(op: tuple | None) -> dict[int, bytes | None]:
    """Post-state each key would have if the in-flight op had completed."""
    if op is None:
        return {}
    kind = op[0]
    if kind == "put":
        return {op[1]: op[2]}
    if kind == "delete":
        return {op[1]: None}
    if kind == "batch":
        return {
            key: (value if item_kind == "put" else None)
            for item_kind, key, value in op[1]
        }
    return {}  # flush/compact/close carry no user mutations


@dataclass
class CrashPointResult:
    """Outcome of one (seed, crash point) run."""

    crash_point: int
    crashed: bool              # False = schedule finished before the cut
    durable_ops: int
    acked_ops: int
    violations: list[str] = field(default_factory=list)
    #: Maintenance overlap observed before the cut (concurrent runs only):
    #: dispatches that joined a live job, the in-flight high-water mark,
    #: and leveled jobs admitted into an already-busy level pair on the
    #: strength of a disjoint key-range footprint.
    jobs_overlapped: int = 0
    max_jobs_in_flight: int = 0
    leveled_range_admissions: int = 0


@dataclass
class SeedReport:
    """Outcome of one seed's full crash-point sweep."""

    seed: int
    crash_points: int          # durable ops enumerated == runs that crashed
    recoveries: int
    violations: list[str] = field(default_factory=list)
    #: Aggregated over the sweep (concurrent runs only): crash points whose
    #: run had overlapping jobs, the highest in-flight count seen, and the
    #: total range-disjoint same-level-pair leveled admissions.
    overlapped_crash_points: int = 0
    max_jobs_in_flight: int = 0
    leveled_range_admissions: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations


def run_crash_point(
    base_dir: str, seed: int, crash_point: int, config: TortureConfig
) -> CrashPointResult:
    """Replay seed's schedule, cut power at ``crash_point``, verify recovery."""
    path = os.path.join(base_dir, f"s{seed}-cp{crash_point}")
    holder: dict[str, FaultInjectionEnv] = {}

    def factory(root, device, stats):
        env = FaultInjectionEnv(
            root, device, stats, seed=seed * 1_000_003 + crash_point
        )
        holder["env"] = env
        return env

    model: dict[int, bytes] = {}
    pending: tuple | None = None
    acked = 0
    crashed = False
    db = DB(path, torture_options(config, env_factory=factory))
    env = holder["env"]
    env.schedule_crash(crash_point)
    try:
        for op in build_schedule(seed, config):
            pending = op
            _apply(db, op)
            _commit(model, op)
            pending = None
            acked += 1
        pending = ("close",)
        db.close()
        pending = None
    except PowerCutError:
        crashed = True

    result = CrashPointResult(
        crash_point=crash_point,
        crashed=crashed,
        durable_ops=env.durable_ops,
        acked_ops=acked,
    )
    if crashed:
        env.crash()
        result.violations = _verify_recovery(path, config, model, pending)
    shutil.rmtree(path, ignore_errors=True)
    return result


def _verify_recovery(
    path: str,
    config: TortureConfig,
    model: dict[int, bytes],
    pending: tuple | None,
) -> list[str]:
    violations: list[str] = []
    try:
        db = DB(path, torture_options(config))
    except Exception as exc:  # recovery must never raise, whatever the cut
        return [f"recovery raised {type(exc).__name__}: {exc}"]
    try:
        allowed_new = _pending_effects(pending)
        for key in range(config.key_space):
            got = db.get(key)
            old = model.get(key)
            if key in allowed_new:
                if got != old and got != allowed_new[key]:
                    violations.append(
                        f"key {key}: got {got!r}, expected acked {old!r} "
                        f"or in-flight {allowed_new[key]!r}"
                    )
            elif got != old:
                kind = "lost acknowledged write" if got is None else "wrong read"
                violations.append(
                    f"key {key}: {kind} — got {got!r}, expected {old!r}"
                )
        if pending is not None and pending[0] == "batch":
            # All-or-nothing: keys whose old and new states differ must
            # agree on which side of the batch they observed.
            informative = {
                key: new
                for key, new in allowed_new.items()
                if model.get(key) != new
            }
            if informative:
                states = {key: db.get(key) for key in informative}
                all_old = all(
                    states[key] == model.get(key) for key in informative
                )
                all_new = all(
                    states[key] == informative[key] for key in informative
                )
                if not (all_old or all_new):
                    violations.append(
                        f"torn batch: per-key outcomes {states!r} are neither "
                        f"all-old nor all-new"
                    )
        # A full scan must agree with the point lookups (no phantoms).
        scanned = dict(db.iterator())
        for key, value in scanned.items():
            expected = model.get(key)
            if key in allowed_new:
                if value != expected and value != allowed_new[key]:
                    violations.append(f"scan phantom at key {key}: {value!r}")
            elif value != expected:
                violations.append(
                    f"scan mismatch at key {key}: {value!r} != {expected!r}"
                )
        # Zombie-run hygiene: after recovery the on-disk image must be
        # exactly the manifest — a cut between a concurrent install and its
        # input GC must not leak orphan SSTs, and no temp files survive.
        live = {run.name for run in db._super.version.all_runs_newest_first()}
        on_disk = {
            name for name in os.listdir(path) if name.endswith(".sst")
        }
        leaked = on_disk - live
        if leaked:
            violations.append(
                f"zombie sst files after recovery: {sorted(leaked)}"
            )
        temps = sorted(
            name for name in os.listdir(path) if name.endswith(".tmp")
        )
        if temps:
            violations.append(f"temp files survived recovery: {temps}")
    finally:
        db.close()
    return violations


def torture_seed(
    base_dir: str, seed: int, config: TortureConfig | None = None
) -> SeedReport:
    """Sweep every crash point of one seed's schedule."""
    config = config if config is not None else TortureConfig()
    report = SeedReport(seed=seed, crash_points=0, recoveries=0)
    crash_point = 1
    while True:
        result = run_crash_point(base_dir, seed, crash_point, config)
        if not result.crashed:
            # The schedule (incl. close) finished before the countdown: the
            # crash-point space is exhausted.
            return report
        report.crash_points += 1
        report.recoveries += 1
        report.violations.extend(
            f"seed={seed} crash_point={crash_point}: {violation}"
            for violation in result.violations
        )
        crash_point += 1


def transient_fault_equivalence(
    base_dir: str,
    seed: int,
    config: TortureConfig | None = None,
    rate: float = 0.05,
) -> dict:
    """Same workload, fault-free vs. transient-read-faults-with-retries.

    Builds the seed's store twice — once on a clean env, once on a
    :class:`FaultInjectionEnv` injecting transient read errors at ``rate``
    — then compares every point lookup and a sample of range queries.
    With retries enabled the answers must be identical, and every injected
    fault must be visible in ``PerfStats`` / ``DB.health()``.
    """
    config = config if config is not None else TortureConfig()
    answers: list[dict] = []
    holder: dict[str, FaultInjectionEnv] = {}
    for label, env_factory in (
        ("clean", None),
        (
            "faulty",
            lambda root, device, stats: holder.setdefault(
                "env",
                FaultInjectionEnv(
                    root, device, stats,
                    seed=seed, transient_read_error_rate=rate,
                ),
            ),
        ),
    ):
        path = os.path.join(base_dir, f"equiv-{label}-s{seed}")
        db = DB(path, torture_options(config, env_factory=env_factory))
        for op in build_schedule(seed, config):
            _apply(db, op)
        points = {key: db.get(key) for key in range(config.key_space)}
        span = max(config.key_space // 4, 1)
        ranges = {
            (low, low + span): db.range_query(low, low + span)
            for low in range(0, config.key_space, span)
        }
        # Close before snapshotting health: the final flush/compaction can
        # still hit (and retry) injected faults, which must all be counted.
        db.close()
        answers.append(
            {
                "label": label,
                "points": points,
                "ranges": ranges,
                "health": db.health(),
            }
        )
        shutil.rmtree(path, ignore_errors=True)
    clean, faulty = answers
    env = holder["env"]
    return {
        "seed": seed,
        "answers_match": (
            clean["points"] == faulty["points"]
            and clean["ranges"] == faulty["ranges"]
        ),
        "injected_transient_errors": env.injected["transient_read_errors"],
        "observed_transient_errors": faulty["health"].io_transient_errors,
        "io_retries": faulty["health"].io_retries,
        "health": faulty["health"],
    }


# ----------------------------------------------------------------------
# Concurrent-maintenance torture (deterministic interleavings)
# ----------------------------------------------------------------------
def concurrent_torture_options(
    config: TortureConfig,
    sched_seed: int,
    env_factory=None,
) -> DBOptions:
    """Torture options with background workers on a seeded deterministic
    scheduler.

    Backpressure triggers are set aggressively low (slowdown at 3 L0 runs,
    stop at 4, two sealed memtables max) so the tiny torture workload
    actually crosses the slowdown/stop state machine, and the
    :class:`~repro.lsm.scheduler.DeterministicScheduler` turns worker
    interleaving into a pure function of ``sched_seed`` — every run is
    replayable, including ones that power off mid-superversion-install.
    """
    options = torture_options(config, env_factory=env_factory)
    options.max_background_jobs = 2
    options.max_immutable_memtables = 2
    options.level0_slowdown_writes_trigger = 3
    options.level0_stop_writes_trigger = 4
    options.scheduler_factory = (
        lambda _options: DeterministicScheduler(seed=sched_seed)
    )
    options.validate()
    return options


def run_concurrent_crash_point(
    base_dir: str,
    seed: int,
    sched_seed: int,
    crash_point: int,
    config: TortureConfig,
) -> CrashPointResult:
    """One (workload seed, scheduler seed, crash point) run with workers.

    Identical contract to :func:`run_crash_point`, but flush/compaction run
    on deterministic background jobs, so the power cut can land while a
    worker is mid-flush, mid-compaction, or mid-superversion-install —
    interleavings the inline sweep can never produce.  The foreground
    writer may observe the cut indirectly (its next WAL append, stall
    wait, or ``close()`` raises :class:`PowerCutError`); either way the
    store is killed (workers joined, no further I/O), the seeded partial
    crash effects applied, and recovery verified against the model with
    the same acked/in-flight rules.
    """
    path = os.path.join(base_dir, f"s{seed}-g{sched_seed}-cp{crash_point}")
    holder: dict[str, FaultInjectionEnv] = {}

    def factory(root, device, stats):
        env = FaultInjectionEnv(
            root,
            device,
            stats,
            seed=(seed * 1_000_003 + crash_point) ^ (sched_seed * 7_368_787),
        )
        holder["env"] = env
        return env

    model: dict[int, bytes] = {}
    pending: tuple | None = None
    acked = 0
    crashed = False
    db = DB(path, concurrent_torture_options(config, sched_seed, env_factory=factory))
    env = holder["env"]
    env.schedule_crash(crash_point)
    try:
        for op in build_schedule(seed, config):
            pending = op
            _apply(db, op)
            _commit(model, op)
            pending = None
            acked += 1
        pending = ("close",)
        db.close()
        pending = None
    except PowerCutError:
        crashed = True
    finally:
        # Join workers and stop all further I/O before mutating the image.
        # A cut observed only by a background job leaves the foreground
        # loop running to completion; kill() is idempotent either way.
        db.kill()

    result = CrashPointResult(
        crash_point=crash_point,
        crashed=crashed or env.crashed,
        durable_ops=env.durable_ops,
        acked_ops=acked,
        jobs_overlapped=db.stats.jobs_overlapped,
        max_jobs_in_flight=db.stats.max_jobs_in_flight,
        leveled_range_admissions=db.stats.leveled_range_admissions,
    )
    if result.crashed:
        env.crash()
        result.violations = _verify_recovery(path, config, model, pending)
    shutil.rmtree(path, ignore_errors=True)
    return result


def concurrent_torture_seed(
    base_dir: str,
    seed: int,
    config: TortureConfig | None = None,
    sched_seeds: tuple[int, ...] = (0, 1),
) -> SeedReport:
    """Sweep every crash point of one seed under each scheduler seed."""
    config = config if config is not None else TortureConfig()
    report = SeedReport(seed=seed, crash_points=0, recoveries=0)
    for sched_seed in sched_seeds:
        crash_point = 1
        while True:
            result = run_concurrent_crash_point(
                base_dir, seed, sched_seed, crash_point, config
            )
            report.max_jobs_in_flight = max(
                report.max_jobs_in_flight, result.max_jobs_in_flight
            )
            report.leveled_range_admissions += result.leveled_range_admissions
            if result.jobs_overlapped:
                report.overlapped_crash_points += 1
            if not result.crashed:
                break
            report.crash_points += 1
            report.recoveries += 1
            report.violations.extend(
                f"seed={seed} sched_seed={sched_seed} "
                f"crash_point={crash_point}: {violation}"
                for violation in result.violations
            )
            crash_point += 1
    return report


def schedule_equivalence(
    base_dir: str,
    seed: int,
    config: TortureConfig | None = None,
    sched_seeds: tuple[int, ...] = (0, 1, 2),
) -> dict:
    """Same workload, crash-free, across interleavings: answers must match.

    Runs one seed's schedule to completion inline (the historical
    synchronous semantics) and once per scheduler seed with background
    workers, then compares every point lookup and a grid of range queries.
    Background maintenance may only change *when* flushes and compactions
    happen — never what the store answers.
    """
    config = config if config is not None else TortureConfig()
    schedule = build_schedule(seed, config)

    def run(label: str, options: DBOptions) -> dict:
        path = os.path.join(base_dir, f"sched-equiv-{label}-s{seed}")
        db = DB(path, options)
        for op in schedule:
            _apply(db, op)
        db.wait_idle()
        points = {key: db.get(key) for key in range(config.key_space)}
        span = max(config.key_space // 4, 1)
        ranges = {
            (low, low + span): db.range_query(low, low + span)
            for low in range(0, config.key_space, span)
        }
        db.close()
        shutil.rmtree(path, ignore_errors=True)
        return {
            "points": points,
            "ranges": ranges,
            "jobs_overlapped": db.stats.jobs_overlapped,
            "max_jobs_in_flight": db.stats.max_jobs_in_flight,
            "leveled_range_admissions": db.stats.leveled_range_admissions,
        }

    outcomes = {"inline": run("inline", torture_options(config))}
    for sched_seed in sched_seeds:
        outcomes[f"sched{sched_seed}"] = run(
            f"g{sched_seed}", concurrent_torture_options(config, sched_seed)
        )
    baseline = outcomes["inline"]
    mismatches = [
        label
        for label, outcome in outcomes.items()
        if outcome["points"] != baseline["points"]
        or outcome["ranges"] != baseline["ranges"]
    ]
    concurrent = [
        outcome
        for label, outcome in outcomes.items()
        if label != "inline"
    ]
    return {
        "seed": seed,
        "interleavings": len(outcomes),
        "equivalent": not mismatches,
        "mismatches": mismatches,
        "jobs_overlapped": sum(o["jobs_overlapped"] for o in concurrent),
        "max_jobs_in_flight": max(
            (o["max_jobs_in_flight"] for o in concurrent), default=0
        ),
        "leveled_range_admissions": sum(
            o["leveled_range_admissions"] for o in concurrent
        ),
    }
