"""Write-ahead log with CRC-framed records.

Every mutation is appended to the WAL before entering the memtable, so an
unflushed buffer survives a crash.  Records are individually framed
(length + CRC32); replay stops cleanly at the first corrupt or truncated
frame, which is the torn-write recovery contract of LevelDB/RocksDB logs.

Record layout::

    [u32 crc][u32 payload_len][u8 op][u32 key_len][key][value]
"""

from __future__ import annotations

import struct
import zlib
from typing import Iterator

from repro.lsm.env import StorageEnv
from repro.lsm.format import ValueTag

__all__ = ["WriteAheadLog", "BATCH_OP", "wal_file_name", "parse_wal_seq"]

_HEADER = struct.Struct("<II")

#: Record op-code for an atomic write batch (payload = WriteBatch.encode()).
BATCH_OP = 0xB0


def wal_file_name(seq: int) -> str:
    """Store-relative WAL name for rotation sequence ``seq``.

    Sequence 0 keeps the historical name ``wal.log`` so stores written
    before WAL rotation existed (and tests that pin the name) keep
    working; later rotations get numbered names.
    """
    return "wal.log" if seq == 0 else f"wal_{seq:06d}.log"


def parse_wal_seq(name: str) -> int | None:
    """Inverse of :func:`wal_file_name`; None when ``name`` is not a WAL."""
    if name == "wal.log":
        return 0
    if name.startswith("wal_") and name.endswith(".log"):
        digits = name[len("wal_") : -len(".log")]
        if digits.isdigit():
            return int(digits)
    return None


class WriteAheadLog:
    """Append-only mutation log bound to one :class:`StorageEnv` file.

    With ``sync=True`` every append ends with a durability barrier
    (:meth:`StorageEnv.sync_file`), which is what makes a write
    "acknowledged": a power cut afterwards may tear at most the record a
    crash interrupted mid-append, and CRC framing drops that torn tail on
    replay.  ``sync=False`` trades that guarantee for speed (bulk loads).
    """

    def __init__(
        self, env: StorageEnv, name: str = "wal.log", sync: bool = True
    ) -> None:
        self._env = env
        self.name = name
        self._sync = sync

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def append_put(self, key: bytes, value: bytes) -> None:
        """Log an upsert."""
        self._append(ValueTag.PUT, key, value)

    def append_delete(self, key: bytes) -> None:
        """Log a tombstone."""
        self._append(ValueTag.DELETE, key, b"")

    def append_batch(self, encoded_batch: bytes) -> None:
        """Log an atomic write batch as one frame (all-or-nothing replay)."""
        self._append(BATCH_OP, b"", encoded_batch)

    def _append(self, op: int, key: bytes, value: bytes) -> None:
        payload = bytes([op]) + struct.pack("<I", len(key)) + key + value
        frame = _HEADER.pack(zlib.crc32(payload), len(payload)) + payload
        self._env.append_file(self.name, frame)
        if self._sync:
            self._env.sync_file(self.name)

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def replay(self) -> Iterator[tuple[int, bytes, bytes]]:
        """Yield ``(op, key, value)`` for every intact record, in order.

        Stops silently at the first truncated/corrupt frame (torn tail).
        """
        if not self._env.exists(self.name):
            return
        payload = self._env.read_file(self.name)
        offset = 0
        while offset + _HEADER.size <= len(payload):
            crc, length = _HEADER.unpack_from(payload, offset)
            body_start = offset + _HEADER.size
            body = payload[body_start : body_start + length]
            if len(body) < length or zlib.crc32(body) != crc:
                return  # torn tail; everything before it was intact
            op = body[0]
            (key_len,) = struct.unpack_from("<I", body, 1)
            key = body[5 : 5 + key_len]
            value = body[5 + key_len :]
            yield op, key, value
            offset = body_start + length

    def truncate(self) -> None:
        """Discard the log (called after a successful flush)."""
        self._env.delete_file(self.name)
