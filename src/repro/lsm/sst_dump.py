"""SST file inspection — the ``sst_dump`` analogue.

Renders one SST file's physical layout (block map, sizes, entry counts),
its filter block's identity and memory, and optionally its entries.  Pure
read-side tooling for debugging store shapes and verifying what a
compaction actually wrote.

::

    from repro.lsm.sst_dump import dump_sst
    print(dump_sst("/path/to/store", "sst_1_00000007.sst"))
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.filters.base import deserialize_filter
from repro.lsm.block_cache import BlockCache
from repro.lsm.env import StorageEnv
from repro.lsm.format import ValueTag, decode_data_block
from repro.lsm.options import DBOptions
from repro.lsm.sstable import SSTMeta, SSTReader

__all__ = ["SstSummary", "summarize_sst", "dump_sst"]


@dataclass
class SstSummary:
    """Structured facts about one SST file."""

    name: str
    file_size: int
    num_entries: int
    num_tombstones: int
    num_data_blocks: int
    data_bytes: int
    index_bytes: int
    filter_bytes: int
    filter_kind: str
    filter_bits_per_key: float
    min_key: bytes = b""
    max_key: bytes = b""
    block_entry_counts: list[int] = field(default_factory=list)

    @property
    def metadata_overhead(self) -> float:
        """Fraction of the file that is not data blocks."""
        if self.file_size == 0:
            return 0.0
        return 1.0 - self.data_bytes / self.file_size


def summarize_sst(
    store_path: str, name: str, options: DBOptions | None = None
) -> SstSummary:
    """Read and summarize one SST file (full scan; no caching)."""
    options = options if options is not None else DBOptions()
    env = StorageEnv(store_path, "memory")
    try:
        file_size = env.file_size(name)
        meta = SSTMeta(
            name=name, num_entries=0, min_key=b"", max_key=b"",
            file_size=file_size,
        )
        reader = SSTReader(env, meta, options, BlockCache(0))

        entries = tombstones = data_bytes = 0
        block_entry_counts: list[int] = []
        min_key = max_key = b""
        for block_index in range(reader.num_data_blocks()):
            _, handle = reader._fence_pointers[block_index]  # noqa: SLF001
            payload = reader._read_block(handle, cacheable=False)  # noqa: SLF001
            decoded = decode_data_block(payload)
            data_bytes += handle.size
            block_entry_counts.append(len(decoded))
            entries += len(decoded)
            tombstones += sum(1 for _, tag, _ in decoded if tag == ValueTag.DELETE)
            if decoded:
                if not min_key:
                    min_key = decoded[0][0]
                max_key = decoded[-1][0]

        filter_kind = "none"
        filter_bits_per_key = 0.0
        filter_size = reader._filter_handle.size  # noqa: SLF001
        if filter_size:
            try:
                filt = deserialize_filter(reader.filter_block_bytes())
                filter_kind = filt.name
                if entries:
                    filter_bits_per_key = filt.size_in_bits() / entries
            except ReproError:
                filter_kind = "corrupt"

        return SstSummary(
            name=name,
            file_size=file_size,
            num_entries=entries,
            num_tombstones=tombstones,
            num_data_blocks=reader.num_data_blocks(),
            data_bytes=data_bytes,
            index_bytes=reader._index_handle.size,  # noqa: SLF001
            filter_bytes=filter_size,
            filter_kind=filter_kind,
            filter_bits_per_key=filter_bits_per_key,
            min_key=min_key,
            max_key=max_key,
            block_entry_counts=block_entry_counts,
        )
    finally:
        env.close()


def dump_sst(
    store_path: str,
    name: str,
    options: DBOptions | None = None,
    show_entries: int = 0,
) -> str:
    """Human-readable report for one SST file.

    ``show_entries`` additionally prints up to that many leading entries.
    """
    summary = summarize_sst(store_path, name, options)
    lines = [
        f"SST {summary.name}: {summary.file_size} bytes",
        f"  entries:     {summary.num_entries} "
        f"({summary.num_tombstones} tombstones)",
        f"  key span:    {summary.min_key.hex()} .. {summary.max_key.hex()}",
        f"  data blocks: {summary.num_data_blocks} "
        f"({summary.data_bytes} bytes)",
        f"  index block: {summary.index_bytes} bytes",
        f"  filter:      {summary.filter_kind} ({summary.filter_bytes} bytes"
        + (
            f", {summary.filter_bits_per_key:.1f} bits/key)"
            if summary.filter_bits_per_key else ")"
        ),
        f"  metadata overhead: {summary.metadata_overhead:.1%}",
    ]
    if show_entries > 0:
        options = options if options is not None else DBOptions()
        env = StorageEnv(store_path, "memory")
        try:
            meta = SSTMeta(
                name=name, num_entries=0, min_key=b"", max_key=b"",
                file_size=env.file_size(name),
            )
            reader = SSTReader(env, meta, options, BlockCache(0))
            lines.append("  leading entries:")
            for index, (key, tag, value) in enumerate(reader.iterate_from(b"")):
                if index >= show_entries:
                    lines.append("    ...")
                    break
                label = "DEL" if tag == ValueTag.DELETE else "PUT"
                lines.append(
                    f"    {label} {key.hex()} -> {len(value)}B"
                )
        finally:
            env.close()
    return "\n".join(lines)
