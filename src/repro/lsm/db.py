"""The LSM-tree key-value store (the paper's RocksDB stand-in).

Write path: WAL append → skip-list memtable → flush to an L0 SST (with a
freshly built per-SST filter) → leveled compaction.  Read path: memtable,
then every overlapping run newest-to-oldest, each guarded by its filter —
"for every run of the tree, a point or range query first probes the
corresponding [filter] for this run, and only tries to access the run on
disk if [it] returns a positive" (§2).

Range queries follow §4's implementation overview: probe all relevant
filter instances; if all answer negative, delete the iterator and return
empty; otherwise seek the merging iterator at the (possibly *tightened*,
§2.2.1) lower bound and advance until the upper bound.  Every sub-cost the
paper measures (filter probe, deserialization, residual seek, block read
time) is charged to :class:`~repro.lsm.stats.PerfStats`.

Workload statistics flow into a :class:`~repro.core.tuning.WorkloadTracker`;
:meth:`DB.retune_filters` applies the §2.4 auto-tuner so post-compaction
filter instances adopt the workload-optimal configuration.

Concurrency model
-----------------
All maintenance (flush of a sealed memtable, one compaction step) runs as
jobs on a pluggable scheduler (see :mod:`repro.lsm.scheduler`).  With
``DBOptions.max_background_jobs == 0`` (the default) the scheduler is
inline and the store behaves exactly like the historical fully-synchronous
implementation.  With workers, a full active memtable *seals* into a
read-only immutable queue (the WAL rotates with it) and writes continue
while a worker flushes it.

With workers, up to ``max(1, max_background_jobs)`` jobs run *at once*:
``_dispatch_maintenance`` fills free job slots with runnable work — at
most one flush (oldest immutable first) plus compactions whose inputs
and level pairs are disjoint from every in-flight job, as tracked by the
compactor's conflict table (``begin``/``finish``).  A compaction may
additionally split into key-range *subcompactions* executed by helper
jobs and stitched back into one output set.  However many jobs run, the
merge work itself is lock-free; every result funnels through a single
serialized commit point — the version install under ``_mutex`` — so
concurrent installs are ordered, each applies to the freshest clone
(name-based removal + union-merge, never whole-level clobber), and
replaced runs retire through the refcounted zombie queue exactly once.

Readers never take the write path's locks.  Every read operation pins a
*superversion* — an immutable ``(active memtable, sealed memtables, run
metadata)`` triple swapped atomically under ``_sv_lock`` — so a query sees
one consistent cut of the store even while installs happen mid-query.
SST files replaced by a compaction are destroyed only once no pinned
superversion can still reach them (epoch-based deferred deletion).

Lock order (outer to inner): ``_write_lock`` → ``_mutex`` → ``_sv_lock``.
``_write_lock`` serializes writers and seals; ``_mutex`` serializes
version installs and the manifest; ``_sv_lock`` (a plain mutex, never held
across I/O) guards the superversion pointer, refcounts, and the deferred
deletion list; ``_job_lock`` guards the job-slot bookkeeping
(``_jobs_in_flight``, ``_flush_inflight``, the inline-mode flags); the
compactor's ``_inflight_lock`` (conflict table) is a leaf below it.

Backpressure mirrors RocksDB's two write-stall triggers: past the
*slowdown* thresholds each write is admitted immediately but charged
``delayed_write_ns`` of modeled delay; past the *stop* thresholds (L0 run
count, sealed-memtable backlog) the writer blocks — bounded by
``write_stall_timeout_s``, after which it fails with
:class:`~repro.errors.WriteStallTimeoutError` — until maintenance catches
up.  The stop trigger only engages when maintenance actually runs in the
background; inline maintenance can never fall behind its own writer.
"""

from __future__ import annotations

import json
import re
import threading
import time
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Sequence

from repro.core.tuning import AutoTuner, TuningDecision, WorkloadTracker
from repro.errors import (
    ClosedStoreError,
    FilterQueryError,
    PowerCutError,
    ReadOnlyStoreError,
    ReproError,
    StoreError,
    WriteStallTimeoutError,
)
from repro.filters.base import FilterFactory, KeyFilter
from repro.filters.rosetta_adapter import RosettaFilter
from repro.lsm.block_cache import BlockCache
from repro.lsm.compaction import CompactionJob, Compactor
from repro.lsm.env import StorageEnv
from repro.lsm.filter_integration import (
    FilterDictionary,
    batched_point_verdicts,
    batched_tightened_ranges,
)
from repro.lsm.format import ValueTag
from repro.lsm.iterators import MergingIterator, live_entries
from repro.lsm.memtable import MemTable
from repro.lsm.options import DBOptions
from repro.lsm.perf_context import QueryContext
from repro.lsm.scheduler import InlineScheduler, ThreadPoolScheduler
from repro.lsm.sstable import SSTMeta, SSTReader, SSTWriter
from repro.lsm.stats import PerfStats, Stopwatch
from repro.lsm.version import Run, Version
from repro.lsm.wal import BATCH_OP, WriteAheadLog, parse_wal_seq, wal_file_name
from repro.lsm.write_batch import WriteBatch

_MANIFEST = "MANIFEST.json"

_SST_NAME = re.compile(r"^sst_(\d+)_(\d+)\.sst$")

__all__ = ["DB", "HealthReport"]


class _Immutable:
    """One sealed memtable bundled with the WAL file that backs it."""

    __slots__ = ("memtable", "wal_name")

    def __init__(self, memtable: MemTable, wal_name: str | None) -> None:
        self.memtable = memtable
        self.wal_name = wal_name


class _SuperVersion:
    """One immutable cut of the store a reader can pin.

    ``immutables`` is newest-first; ``version`` is the run metadata.  The
    object itself is frozen after install — a state change installs a new
    superversion rather than mutating this one.  ``refs``/``epoch`` are
    managed under ``DB._sv_lock`` only.
    """

    __slots__ = ("active", "immutables", "version", "refs", "epoch")

    def __init__(
        self,
        active: MemTable,
        immutables: tuple[_Immutable, ...],
        version: Version,
    ) -> None:
        self.active = active
        self.immutables = immutables
        self.version = version
        self.refs = 0
        self.epoch = 0

    def memtables(self) -> Iterator[MemTable]:
        """Active then sealed memtables, newest to oldest."""
        yield self.active
        for immutable in self.immutables:
            yield immutable.memtable


@dataclass(frozen=True)
class HealthReport:
    """Snapshot of the store's fault state (``DB.health()``).

    ``mode`` is ``"healthy"`` or ``"degraded"``; degraded means a
    background flush/compaction failed, writes raise
    :class:`~repro.errors.ReadOnlyStoreError`, and :meth:`DB.resume` is the
    way back.  The counters mirror the fault-handling fields of
    :class:`~repro.lsm.stats.PerfStats` so an operator sees every injected
    or real fault the store absorbed.

    ``stall_state`` is the write-backpressure state machine's last
    observation: ``"none"``, ``"slowdown"`` (writes admitted with modeled
    delay), or ``"stopped"`` (a writer is / was blocked on the stop
    trigger).  ``pending_immutables`` / ``level0_runs`` are the two
    quantities the triggers watch.
    """

    mode: str
    background_error: str | None
    degraded_filters: tuple[str, ...]
    io_transient_errors: int
    io_retries: int
    filters_degraded: int
    background_errors: int
    #: Runs currently flagged by the FP-feedback attack detector, and the
    #: same set as a gauge (cumulative flag events live in
    #: ``PerfStats.filters_quarantined``).
    attacked_filters: tuple[str, ...] = ()
    filters_under_attack: int = 0
    stall_state: str = "none"
    pending_immutables: int = 0
    level0_runs: int = 0
    write_slowdowns: int = 0
    write_stops: int = 0
    write_stall_time_ns: int = 0
    write_stall_timeouts: int = 0
    workers: int = 0
    jobs_in_flight: int = 0

    @property
    def ok(self) -> bool:
        """True when fully healthy (no degraded state of any kind)."""
        return (
            self.mode == "healthy"
            and not self.degraded_filters
            and not self.attacked_filters
        )

    def summary(self) -> str:
        """One-line human-readable digest."""
        parts = [f"mode={self.mode}"]
        if self.background_error:
            parts.append(f"background_error={self.background_error!r}")
        if self.degraded_filters:
            parts.append(
                f"degraded_filters=[{', '.join(self.degraded_filters)}]"
            )
        if self.attacked_filters:
            parts.append(
                f"filters_under_attack=[{', '.join(self.attacked_filters)}]"
            )
        parts.append(
            f"io: {self.io_transient_errors} transient errors, "
            f"{self.io_retries} retries"
        )
        if self.stall_state != "none" or self.write_stops or self.write_slowdowns:
            parts.append(
                f"writes: stall={self.stall_state}, "
                f"{self.write_slowdowns} slowdowns, {self.write_stops} stops"
            )
        return "; ".join(parts)


class DB:
    """An LSM-tree key-value store over integer keys and byte values.

    Examples
    --------
    >>> from repro.lsm import DB, DBOptions
    >>> db = DB("/tmp/example-db", DBOptions(key_bits=32))
    >>> db.put(42, b"value")
    >>> db.get(42)
    b'value'
    >>> db.range_query(40, 50)
    [(42, b'value')]
    >>> db.close()
    """

    def __init__(self, path: str, options: DBOptions | None = None) -> None:
        self.options = options if options is not None else DBOptions()
        self.options.validate()
        self.stats = PerfStats()
        self.tracker = WorkloadTracker()
        env_factory = self.options.env_factory or StorageEnv
        self._env = env_factory(path, self.options.device, self.stats)
        self._env.retry_attempts = self.options.io_retry_attempts
        self._env.retry_backoff_ns = self.options.io_retry_backoff_ns
        self._cache = BlockCache(self.options.block_cache_bytes)
        self._filter_dictionary = FilterDictionary(
            enabled=self.options.use_filter_dictionary,
            degrade_corrupt=self.options.degrade_corrupt_filters,
            quarantine=self.options.quarantine_filters,
            quarantine_fpr_multiple=self.options.quarantine_fpr_multiple,
            quarantine_min_probes=self.options.quarantine_min_probes,
        )
        self._current_filter_factory = self.options.filter_factory
        self._auto_tuner = AutoTuner()
        self._compactor = Compactor(
            self._env,
            self.options,
            self._cache,
            self._filter_dictionary,
            filter_factory_provider=lambda: self._current_filter_factory,
            tuner_provider=lambda: self._auto_tuner,
        )

        scheduler_factory = self.options.scheduler_factory
        if scheduler_factory is not None:
            self._scheduler = scheduler_factory(self.options)
        elif self.options.max_background_jobs > 0:
            self._scheduler = ThreadPoolScheduler(self.options.max_background_jobs)
        else:
            self._scheduler = InlineScheduler()
        self._concurrent = bool(getattr(self._scheduler, "concurrent", False))

        # Lock order: _write_lock -> _mutex -> _sv_lock.  The first two
        # come from the scheduler so the deterministic torture scheduler
        # can yield inside them; _sv_lock/_job_lock are plain mutexes that
        # are never held across I/O.
        self._write_lock = self._scheduler.make_lock()
        self._mutex = self._scheduler.make_lock()
        self._sv_lock = threading.Lock()
        self._job_lock = threading.Lock()
        self._maintenance_inflight = False
        self._maintenance_rearm = False
        self._jobs_in_flight = 0
        self._flush_inflight = False
        self._stall_state = "none"

        self._epoch = 0
        self._zombies: list[tuple[int, list[Run]]] = []
        self._live_svs: list[_SuperVersion] = []
        self._super: _SuperVersion | None = None
        self._wal_seq = 0
        self._active_wal: WriteAheadLog | None = None

        self._closed = False
        #: Description of the background failure that degraded the store
        #: to read-only, or None when healthy (see :meth:`health`).
        self._background_error: str | None = None
        #: Per-query performance context of the most recent read operation.
        self.last_query: QueryContext | None = None
        self._recover()
        # Only now start interleaving: recovery I/O runs before any job
        # exists, so it never consumes scheduler randomness.
        if self._concurrent:
            self._env.yield_hook = self._scheduler.sync_point
            if self._super.immutables:
                self._schedule_maintenance()

    # ------------------------------------------------------------------
    # Key codec
    # ------------------------------------------------------------------
    def _encode_key(self, key: int) -> bytes:
        key = int(key)
        if key < 0 or key >> self.options.key_bits:
            raise FilterQueryError(
                f"key {key} outside domain [0, 2^{self.options.key_bits})"
            )
        return key.to_bytes(self.options.key_width_bytes, "big")

    @staticmethod
    def _decode_key(key: bytes) -> int:
        return int.from_bytes(key, "big")

    # ------------------------------------------------------------------
    # Superversion management
    # ------------------------------------------------------------------
    def _ref_super(self) -> _SuperVersion:
        """Pin the current superversion for the duration of one read."""
        with self._sv_lock:
            sv = self._super
            sv.refs += 1
            return sv

    def _unref_super(self, sv: _SuperVersion) -> None:
        """Release a pin; destroy any runs that just became unreachable."""
        with self._sv_lock:
            sv.refs -= 1
            if sv.refs == 0 and sv in self._live_svs:
                self._live_svs.remove(sv)
            ready = self._collect_zombies_locked()
        if ready:
            self._destroy_zombies(ready)

    def _install_super(
        self, new_sv: _SuperVersion, obsolete: Sequence[Run] = ()
    ) -> None:
        """Atomically publish ``new_sv`` (caller holds ``_mutex``).

        ``obsolete`` runs are queued for deferred deletion: they are
        destroyed only once every superversion older than this install has
        been released, so an in-flight reader never loses a file under its
        feet.
        """
        with self._sv_lock:
            old = self._super
            self._epoch += 1
            new_sv.epoch = self._epoch
            new_sv.refs = 1  # the DB's own reference
            self._live_svs.append(new_sv)
            self._super = new_sv
            if obsolete:
                self._zombies.append((self._epoch, list(obsolete)))
            if old is not None:
                old.refs -= 1
                if old.refs == 0:
                    self._live_svs.remove(old)
            ready = self._collect_zombies_locked()
        if ready:
            self._destroy_zombies(ready)
        self._scheduler.notify()

    def _collect_zombies_locked(self) -> list[Run] | None:
        """Zombie runs whose epoch no live superversion predates."""
        if not self._zombies or not self._live_svs:
            return None
        min_epoch = min(sv.epoch for sv in self._live_svs)
        ready = [runs for epoch, runs in self._zombies if epoch <= min_epoch]
        if not ready:
            return None
        self._zombies = [z for z in self._zombies if z[0] > min_epoch]
        return [run for runs in ready for run in runs]

    def _destroy_zombies(self, runs: list[Run]) -> None:
        try:
            self._compactor.destroy_runs(runs)
        except (PowerCutError, ClosedStoreError):
            raise
        except (OSError, ReproError) as exc:
            self._enter_background_error("compaction", exc)

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def put(self, key: int, value: bytes) -> None:
        """Insert or overwrite a key."""
        self._check_open()
        self._check_writable()
        encoded = self._encode_key(key)
        with self._write_lock:
            self._check_open()
            self._apply_backpressure()
            if self._active_wal is not None:
                self._guard_wal_append(
                    lambda: self._active_wal.append_put(encoded, value)
                )
            self._super.active.put(encoded, bytes(value))
            self.stats.add(writes=1)
            self._maybe_seal()

    def delete(self, key: int) -> None:
        """Delete a key (writes a tombstone)."""
        self._check_open()
        self._check_writable()
        encoded = self._encode_key(key)
        with self._write_lock:
            self._check_open()
            self._apply_backpressure()
            if self._active_wal is not None:
                self._guard_wal_append(
                    lambda: self._active_wal.append_delete(encoded)
                )
            self._super.active.delete(encoded)
            self.stats.add(writes=1)
            self._maybe_seal()

    def put_batch(self, items: Iterable[tuple[int, bytes]]) -> None:
        """Insert many items through the normal write path."""
        for key, value in items:
            self.put(key, value)

    def write(self, batch) -> None:
        """Apply a :class:`~repro.lsm.write_batch.WriteBatch` atomically.

        The batch is persisted as a single WAL frame before touching the
        memtable, so recovery sees all of it or none of it.
        """
        self._check_open()
        self._check_writable()
        if len(batch) == 0:
            return
        # Validate every key before any side effect (atomicity).
        for _tag, key, _value in batch:
            decoded = self._decode_key(key)
            if decoded >> self.options.key_bits:
                raise FilterQueryError(
                    f"batched key {decoded} outside domain "
                    f"[0, 2^{self.options.key_bits})"
                )
        with self._write_lock:
            self._check_open()
            self._apply_backpressure()
            if self._active_wal is not None:
                self._guard_wal_append(
                    lambda: self._active_wal.append_batch(batch.encode())
                )
            active = self._super.active
            for tag, key, value in batch:
                if tag == ValueTag.PUT:
                    active.put(key, value)
                else:
                    active.delete(key)
            self.stats.add(writes=len(batch))
            self._maybe_seal()

    def batch(self) -> "WriteBatch":
        """A fresh :class:`WriteBatch` whose keys are encoded by this DB.

        Convenience wrapper so callers work with integer keys::

            b = db.batch()
            b.put_int(1, b"a").delete_int(2)
            db.write(b)
        """
        db = self

        class _IntBatch(WriteBatch):
            def put_int(self, key: int, value: bytes) -> "_IntBatch":
                self.put(db._encode_key(key), value)  # noqa: SLF001
                return self

            def delete_int(self, key: int) -> "_IntBatch":
                self.delete(db._encode_key(key))  # noqa: SLF001
                return self

        return _IntBatch()

    # ------------------------------------------------------------------
    # Write backpressure (caller holds _write_lock)
    # ------------------------------------------------------------------
    def _stall_conditions(self) -> tuple[bool, bool]:
        """Current ``(slowdown, stop)`` trigger state."""
        sv = self._super
        level0 = len(sv.version.level0)
        backlog = len(sv.immutables)
        opts = self.options
        stop = self._concurrent and (
            level0 >= opts.level0_stop_writes_trigger
            or backlog >= opts.max_immutable_memtables
        )
        slowdown = (
            level0 >= opts.level0_slowdown_writes_trigger
            or backlog >= max(1, opts.max_immutable_memtables - 1)
        )
        return slowdown, stop

    def _apply_backpressure(self) -> None:
        """Admit, slow, or stop this write based on maintenance debt.

        Stop = a real bounded block (the RocksDB stop trigger): wait until
        maintenance drains below the trigger, the store degrades, or
        ``write_stall_timeout_s`` elapses — then
        :class:`WriteStallTimeoutError`.  Slowdown = the write proceeds but
        is charged ``delayed_write_ns`` of modeled delay (no real sleep),
        so benchmarks observe the stall without timing jitter.
        """
        self._check_writable()
        slowdown, stop = self._stall_conditions()
        if stop:
            self.stats.add(write_stops=1)
            self._stall_state = "stopped"
            self._schedule_maintenance()
            started = time.perf_counter_ns()

            def cleared() -> bool:
                if self._background_error is not None or self._closed:
                    return True
                return self._stall_cleared()

            drained = self._scheduler.wait_for(
                cleared, self.options.write_stall_timeout_s
            )
            self.stats.add(
                write_stall_time_ns=time.perf_counter_ns() - started
            )
            if not drained:
                self.stats.add(write_stall_timeouts=1)
                raise WriteStallTimeoutError(
                    f"write stalled longer than "
                    f"{self.options.write_stall_timeout_s}s "
                    f"(L0={len(self._super.version.level0)}, "
                    f"sealed={len(self._super.immutables)})"
                )
            self._check_open()
            self._check_writable()
            slowdown = self._stall_conditions()[0]
        if slowdown:
            self.stats.add(
                write_slowdowns=1,
                write_delay_time_ns=self._write_delay_ns(),
            )
            self._stall_state = "slowdown"
            # Debt with no job running (post-resume, races): kick the
            # dispatcher.  Racy read — with jobs live, completions
            # re-dispatch, so a stale skip here self-heals.
            if self._concurrent and self._jobs_in_flight == 0:
                self._schedule_maintenance()
        else:
            self._stall_state = "none"

    def _stall_cleared(self) -> bool:
        """Stop-trigger release, with hysteresis on the memtable backlog.

        Resuming the moment the backlog dips below
        ``max_immutable_memtables`` lets the writer seal once and stop
        again immediately — a stop per seal.  Requiring one extra step of
        drain (the backlog below the *slowdown* threshold) costs one fast
        flush of extra wait and halves the stop frequency.
        """
        sv = self._super
        opts = self.options
        return (
            len(sv.version.level0) < opts.level0_stop_writes_trigger
            and len(sv.immutables) < max(1, opts.max_immutable_memtables - 1)
        )

    def _write_delay_ns(self) -> int:
        """Debt-proportional modeled slowdown charge for one write.

        RocksDB's ``delayed_write_rate`` analogue, simplified: the charge
        scales with how far the worse of the two debt gauges (L0 run
        count, sealed-memtable backlog) has travelled from its slowdown
        trigger toward its stop trigger — mild debt costs a fraction of
        ``delayed_write_ns``, near-stop debt the full charge.  Always at
        least 1 ns so a slowed write is visible in the counters.
        """
        opts = self.options
        sv = self._super

        def travelled(value: int, slow: int, stop: int) -> float:
            if value < slow:
                return 0.0
            if stop <= slow:
                return 1.0
            return min(1.0, (value - slow + 1) / (stop - slow + 1))

        debt = max(
            travelled(
                len(sv.version.level0),
                opts.level0_slowdown_writes_trigger,
                opts.level0_stop_writes_trigger,
            ),
            travelled(
                len(sv.immutables),
                max(1, opts.max_immutable_memtables - 1),
                opts.max_immutable_memtables,
            ),
        )
        return max(1, int(opts.delayed_write_ns * debt))

    # ------------------------------------------------------------------
    # Sealing and background maintenance
    # ------------------------------------------------------------------
    def _maybe_seal(self) -> None:
        if (
            self._super.active.approximate_bytes
            >= self.options.memtable_size_bytes
        ):
            if self._seal_active():
                self._schedule_maintenance()

    def _seal_active(self) -> bool:
        """Rotate the active memtable into the immutable queue.

        The WAL rotates with it: the sealed memtable keeps its log file
        (deleted only after its flush lands) and subsequent writes go to a
        fresh one.  Pure metadata — no I/O happens here, so a seal cannot
        fail.  Caller holds ``_write_lock``.
        """
        if self._super.active.is_empty:
            return False
        with self._mutex:
            sv = self._super
            bundle = _Immutable(
                sv.active,
                self._active_wal.name if self._active_wal is not None else None,
            )
            new_sv = _SuperVersion(
                MemTable(), (bundle,) + sv.immutables, sv.version
            )
            if self._active_wal is not None:
                self._wal_seq += 1
                self._active_wal = WriteAheadLog(
                    self._env,
                    wal_file_name(self._wal_seq),
                    sync=self.options.wal_sync,
                )
            self._install_super(new_sv)
        self.stats.add(memtable_seals=1)
        return True

    def _schedule_maintenance(self) -> None:
        """Ensure pending maintenance debt is (or will be) worked on.

        Concurrent mode fills free job slots via the dispatcher; inline
        mode keeps the historical single-job loop (a loop, not recursion,
        so deep debt cannot blow the stack on the caller's thread).
        """
        if self._closed:
            return
        if self._concurrent:
            self._dispatch_maintenance()
            return
        with self._job_lock:
            if self._maintenance_inflight:
                self._maintenance_rearm = True
                return
            self._maintenance_inflight = True
        self._scheduler.submit("maintenance", self._maintenance_job)

    def _job_slots(self) -> int:
        """Concurrent job-slot budget (>= 1 even for injected schedulers)."""
        return max(1, self.options.max_background_jobs)

    def _dispatch_maintenance(self) -> None:
        """Fill free job slots with runnable work (concurrent mode only).

        At most one flush runs at a time (flushes must retire immutables
        oldest-first); the remaining slots take compactions the conflict
        table deems disjoint from everything in flight.  Each completing
        job calls back here, so slots refill until ``plan()`` runs dry.
        """
        while self._background_error is None and not self._closed:
            # Racy fast path: with all slots busy, skip the lock — every
            # job completion re-dispatches, so a stale read self-heals.
            if self._jobs_in_flight >= self._job_slots():
                return
            kind: str
            body: Callable[[], None]
            with self._job_lock:
                if self._jobs_in_flight >= self._job_slots():
                    return
                sv = self._super
                if sv.immutables and not self._flush_inflight:
                    self._flush_inflight = True
                    kind, body = "flush", self._flush_job
                else:
                    cjob = self._compactor.plan(sv.version)
                    if cjob is None:
                        return
                    try:
                        self._compactor.begin(
                            cjob, lambda: self._super.version
                        )
                    except StoreError:
                        return  # lost a plan/begin race; a finishing job re-plans
                    kind = "compaction"
                    body = lambda job=cjob: self._compaction_job(job)  # noqa: E731
                self._jobs_in_flight += 1
                if self._jobs_in_flight > 1:
                    self.stats.add(jobs_overlapped=1)
                self.stats.observe_max(
                    "max_jobs_in_flight", self._jobs_in_flight
                )
            self._scheduler.submit(kind, body)

    def _flush_job(self) -> None:
        """Job body: drain the immutable backlog, release the slot, refill.

        Drains in a loop rather than one-memtable-per-job: under write
        pressure the backlog is what stops writers, and the
        re-dispatch round-trip between single flushes is latency the
        stalled writer would eat.
        """
        completed = False
        try:
            while self._background_error is None and self._super.immutables:
                if not self._run_background(
                    "flush", self._flush_oldest_immutable
                ):
                    break
            completed = True
        finally:
            with self._job_lock:
                self._flush_inflight = False
                self._jobs_in_flight -= 1
            self._scheduler.notify()
        # Skipped after PowerCutError/unexpected unwinding: no further
        # submissions to a dying scheduler.
        if completed and not self._closed:
            self._dispatch_maintenance()

    def _compaction_job(self, job: CompactionJob) -> None:
        """Job body: run one registered compaction, release slot, refill."""
        completed = False
        try:
            if self._background_error is None:
                self._run_background(
                    "compaction", lambda: self._run_compaction_job(job)
                )
            completed = True
        finally:
            self._compactor.finish(job)
            with self._job_lock:
                self._jobs_in_flight -= 1
            self._scheduler.notify()
        if completed and not self._closed:
            self._dispatch_maintenance()

    def _run_compaction_guarded(self, job: CompactionJob) -> bool:
        """Run a compaction bracketed by conflict-table registration.

        The foreground/inline entry point (``compact``, inline
        maintenance, trigger settling); background jobs register at
        dispatch instead.  Returns False if the job conflicts with an
        in-flight job (the caller simply re-plans later) or the body
        degraded the store.
        """
        try:
            self._compactor.begin(job, lambda: self._super.version)
        except StoreError:
            return False
        try:
            return self._run_background(
                "compaction", lambda: self._run_compaction_job(job)
            )
        finally:
            self._compactor.finish(job)

    def _maintenance_job(self) -> None:
        """Drain maintenance debt: flush sealed memtables, then compact.

        One job instance runs at a time; work submitted while it runs sets
        the re-arm flag instead of spawning a second job.  A background
        error stops the loop (the store is read-only until ``resume``).
        """
        try:
            while True:
                while self._background_error is None:
                    if not self._maintenance_step():
                        break
                with self._job_lock:
                    if self._maintenance_rearm and self._background_error is None:
                        self._maintenance_rearm = False
                        continue
                    self._maintenance_inflight = False
                    self._maintenance_rearm = False
                    break
        except BaseException:
            with self._job_lock:
                self._maintenance_inflight = False
                self._maintenance_rearm = False
            raise
        finally:
            self._scheduler.notify()

    def _maintenance_step(self) -> bool:
        """One unit of background work; False when nothing (more) to do."""
        sv = self._super
        if sv.immutables:
            return self._run_background("flush", self._flush_oldest_immutable)
        job = self._compactor.plan(sv.version)
        if job is None:
            return False
        return self._run_compaction_guarded(job)

    def _flush_oldest_immutable(self) -> None:
        """Flush the oldest sealed memtable to a new L0 SST.

        Durability ordering: the SST is written (synced) and the manifest
        persisted *before* the sealed memtable's WAL file is deleted — a
        crash between any two steps recovers either from the WAL or from
        the manifest, never from neither.
        """
        sv = self._super
        if not sv.immutables:
            return
        bundle = sv.immutables[-1]  # oldest
        run: Run | None = None
        if not bundle.memtable.is_empty:
            name = self._compactor.next_file_name(0)
            writer = SSTWriter(
                self._env,
                name,
                self.options,
                filter_factory=self._current_filter_factory,
            )
            for key, tag, value in bundle.memtable.entries():
                writer.add(key, tag, value)
            meta = writer.finish()
            reader = SSTReader(
                self._env, meta, self.options, self._cache, is_level0=True
            )
            run = Run(reader=reader, level=0)
        with self._mutex:
            current = self._super
            new_version = current.version
            if run is not None:
                new_version = current.version.clone()
                new_version.add_level0(run)
                self._write_manifest(new_version)
            new_sv = _SuperVersion(
                current.active, current.immutables[:-1], new_version
            )
            self._install_super(new_sv)
        # Only now is the run durable under the manifest; dropping the
        # logged copy can no longer lose acknowledged writes.
        if bundle.wal_name is not None:
            self._env.delete_file(bundle.wal_name)
        if run is not None:
            self.stats.add(flushes=1)

    def _run_compaction_job(self, job: CompactionJob) -> None:
        """Execute one planned compaction and install its result.

        The merge runs unlocked (it only reads immutable SSTs); the
        metadata swap happens on a version clone under ``_mutex`` with the
        manifest persisted before the new superversion is published.
        Input files become zombies, destroyed once unreferenced.
        """
        outputs = self._compactor.execute(
            job,
            scheduler=self._scheduler if self._concurrent else None,
            max_subcompactions=self._max_subcompactions(),
        )
        with self._mutex:
            current = self._super
            new_version = current.version.clone()
            self._compactor.apply(new_version, job, outputs)
            self._write_manifest(new_version)
            new_sv = _SuperVersion(
                current.active, current.immutables, new_version
            )
            self._install_super(new_sv, obsolete=job.inputs)

    def _max_subcompactions(self) -> int:
        """Effective slice budget: the option, or follow the job slots."""
        return self.options.max_subcompactions or self._job_slots()

    def _settle_triggers(self) -> None:
        """Run planned compactions until the tree is in shape (foreground)."""
        while self._background_error is None:
            job = self._compactor.plan(self._super.version)
            if job is None:
                return
            if not self._run_compaction_guarded(job):
                return

    def _drain_maintenance(self, timeout_s: float = 60.0) -> bool:
        """Wait until background maintenance is idle (or the store degrades)."""
        if not self._concurrent:
            return True

        def settled() -> bool:
            if self._background_error is not None:
                return True
            with self._job_lock:
                if self._maintenance_inflight or self._jobs_in_flight:
                    return False
            sv = self._super
            # plan() is read-only and the conflict table is empty once no
            # job is in flight, so this is exactly "would dispatch do more
            # work" — with job completions re-dispatching, reaching here
            # with a non-None plan can only be a transient race, and the
            # next predicate evaluation settles it.
            return not sv.immutables and self._compactor.plan(sv.version) is None

        return self._scheduler.wait_for(settled, timeout_s)

    def wait_idle(self, timeout_s: float = 60.0) -> bool:
        """Block until no background maintenance is pending or running.

        Returns True when the store settled (or runs inline, where there
        is never pending work); False on timeout.  A store parked in
        degraded mode counts as settled — the pending work cannot proceed
        until :meth:`resume`.
        """
        self._check_open()
        return self._drain_maintenance(timeout_s)

    def flush(self) -> None:
        """Flush buffered writes to L0 SSTs and settle compaction triggers.

        A synchronous barrier regardless of background workers: the active
        memtable seals and the call returns only once every sealed
        memtable is flushed (or the store degraded).  A failing background
        write does not raise: the store enters degraded read-only mode
        (see :meth:`health` / :meth:`resume`) with the sealed memtables
        and their WAL files intact, so no acknowledged write is lost.
        """
        self._check_open()
        self._check_writable()
        with self._write_lock:
            sealed = self._seal_active()
        if sealed or self._super.immutables:
            self._schedule_maintenance()
            self._drain_maintenance()

    def compact(self) -> None:
        """Force L0 into the tree and settle all compaction triggers."""
        self._check_open()
        self._check_writable()
        with self._write_lock:
            if self._seal_active() or self._super.immutables:
                self._schedule_maintenance()
                if not self._drain_maintenance():
                    return
            if self._background_error is not None:
                return
            job = self._compactor.forced_l0_job(self._super.version)
            if job is not None and not self._run_compaction_guarded(job):
                return
            # Settle even with an empty L0: quarantined runs at deeper
            # levels plan rebuild jobs regardless of size triggers.
            self._settle_triggers()

    def force_full_compaction(self) -> None:
        """Merge every run into the bottom-most populated level.

        The analogue of RocksDB's ``CompactRange`` over the whole keyspace:
        every SST is rewritten, so every filter instance is rebuilt with the
        *current* filter factory — the way a §2.4 retuning decision reaches
        all existing data.
        """
        self._check_open()
        self._check_writable()
        with self._write_lock:
            if self._seal_active() or self._super.immutables:
                self._schedule_maintenance()
                if not self._drain_maintenance():
                    return
            if self._background_error is not None:
                return
            job = self._compactor.full_compaction_job(self._super.version)
            if job is not None:
                self._run_compaction_guarded(job)

    # ------------------------------------------------------------------
    # Background-error state machine
    # ------------------------------------------------------------------
    def _run_background(self, op: str, body: Callable[[], None]) -> bool:
        """Run a background write; on failure degrade instead of crashing.

        Simulated power cuts and closed-store misuse propagate untouched —
        only genuine I/O / store errors park the DB in read-only mode.
        Returns True when the body completed.
        """
        try:
            body()
            return True
        except (PowerCutError, ClosedStoreError):
            raise
        except (OSError, ReproError) as exc:
            self._enter_background_error(op, exc)
            return False

    def _guard_wal_append(self, append: Callable[[], None]) -> None:
        """Run a foreground WAL append; on I/O failure park, don't leak.

        A failed WAL append means durability is gone for this write, so
        the memtable is left untouched (nothing is acked that the log
        cannot replay) and the store parks in degraded read-only mode —
        the same state machine as a failed background write — surfacing
        the typed :class:`ReadOnlyStoreError` instead of a raw
        ``OSError``.  Simulated power cuts propagate untouched, as
        everywhere.
        """
        try:
            append()
        except PowerCutError:
            raise
        except OSError as exc:
            self._enter_background_error("wal-append", exc)
            raise ReadOnlyStoreError(
                f"WAL append failed; store parked read-only "
                f"({type(exc).__name__}: {exc})"
            ) from exc

    def _enter_background_error(self, op: str, exc: BaseException) -> None:
        with self._mutex:
            self._background_error = f"{op}: {type(exc).__name__}: {exc}"
        self.stats.add(background_errors=1)
        self._scheduler.notify()

    def _check_writable(self) -> None:
        if self._background_error is not None:
            raise ReadOnlyStoreError(
                f"store is in degraded read-only mode after a background "
                f"error ({self._background_error}); call resume() to retry"
            )

    @property
    def background_error(self) -> str | None:
        """The current background-error string, or None when healthy.

        A cheap single-field read under ``_mutex`` — the serving layer's
        shard supervisor polls this every tick to catch degraded-mode
        flips without paying for a full :meth:`health` snapshot (which
        pins a superversion and snapshots every counter).
        """
        with self._mutex:
            return self._background_error

    def health(self) -> HealthReport:
        """The store's current fault state (always readable, never raises).

        The report is *self-consistent*: the superversion is pinned and
        the background-error / stall fields are read once under
        ``_mutex`` — the lock every state transition (version install,
        degraded-mode entry) happens under — so a concurrent superversion
        swap can never produce, say, a ``healthy`` mode paired with a
        stale ``level0_runs`` count or a ``degraded`` mode whose
        ``background_error`` is ``None``.  Counters come from one
        lock-protected ``PerfStats.snapshot()``.
        """
        with self._mutex:
            sv = self._ref_super()
            background_error = self._background_error
            stall_state = self._stall_state
        try:
            with self._job_lock:
                jobs_in_flight = self._jobs_in_flight
            stats = self.stats.snapshot()
            attacked = self._filter_dictionary.under_attack_snapshot()
            return HealthReport(
                mode="degraded" if background_error is not None else "healthy",
                background_error=background_error,
                degraded_filters=self._filter_dictionary.degraded_snapshot(),
                io_transient_errors=stats.io_transient_errors,
                io_retries=stats.io_retries,
                filters_degraded=stats.filters_degraded,
                background_errors=stats.background_errors,
                attacked_filters=attacked,
                filters_under_attack=len(attacked),
                stall_state=stall_state,
                pending_immutables=len(sv.immutables),
                level0_runs=len(sv.version.level0),
                write_slowdowns=stats.write_slowdowns,
                write_stops=stats.write_stops,
                write_stall_time_ns=stats.write_stall_time_ns,
                write_stall_timeouts=stats.write_stall_timeouts,
                workers=self.options.max_background_jobs,
                jobs_in_flight=jobs_in_flight,
            )
        finally:
            self._unref_super(sv)

    def resume(self) -> bool:
        """Leave degraded read-only mode and retry the pending maintenance.

        Mirrors RocksDB's ``DB::Resume``: clears the background error and
        re-attempts whatever the failed background write left behind —
        sealed memtables flush again (their WALs were kept), interrupted
        compactions re-plan.  The retry runs wherever maintenance normally
        runs (inline or on a worker).  Returns True when the store is
        writable again (a fresh failure re-enters degraded mode and
        returns False).
        """
        self._check_open()
        if self._background_error is None:
            return True
        with self._mutex:
            self._background_error = None
        self._stall_state = "none"
        if self._super.immutables or self._compactor.plan(self._super.version):
            self._schedule_maintenance()
            self._drain_maintenance()
        return self._background_error is None

    # ------------------------------------------------------------------
    # Bulk load
    # ------------------------------------------------------------------
    def ingest(self, items: Iterable[tuple[int, bytes]], level: int | None = None) -> None:
        """Bulk-load sorted unique items directly into one deep level.

        The paper's experiments load 50M keys before measuring queries;
        this path builds bottom-level SSTs (with filters) without write
        amplification.  ``level`` defaults to the shallowest level whose
        size target fits the data.
        """
        self._check_open()
        self._check_writable()
        pairs = sorted(items, key=lambda kv: kv[0])
        if not pairs:
            return
        with self._write_lock:
            self._drain_maintenance()
            if level is None:
                estimated = sum(
                    self.options.key_width_bytes + len(v) + 8 for _, v in pairs
                )
                level = 1
                while (
                    level < self.options.num_levels - 1
                    and estimated > self.options.level_target_bytes(level)
                ):
                    level += 1
            if not 1 <= level < self.options.num_levels:
                raise StoreError(f"ingest level {level} out of range")
            if self._super.version.level_runs(level):
                raise StoreError(f"ingest target level {level} is not empty")

            runs: list[Run] = []
            writer: SSTWriter | None = None
            previous: int | None = None
            for key, value in pairs:
                if key == previous:
                    continue
                previous = key
                if writer is None:
                    writer = SSTWriter(
                        self._env,
                        self._compactor.next_file_name(level),
                        self.options,
                        filter_factory=self._current_filter_factory,
                    )
                writer.add(self._encode_key(key), ValueTag.PUT, bytes(value))
                if writer.estimated_file_size >= self.options.sst_size_bytes:
                    runs.append(self._finish_ingest_writer(writer, level))
                    writer = None
            if writer is not None and writer.num_entries:
                runs.append(self._finish_ingest_writer(writer, level))
            with self._mutex:
                current = self._super
                if current.version.level_runs(level):
                    raise StoreError(
                        f"ingest target level {level} is not empty"
                    )
                new_version = current.version.clone()
                new_version.install_level(level, runs)
                self._write_manifest(new_version)
                new_sv = _SuperVersion(
                    current.active, current.immutables, new_version
                )
                self._install_super(new_sv)

    def _finish_ingest_writer(self, writer: SSTWriter, level: int) -> Run:
        meta = writer.finish()
        reader = SSTReader(
            self._env, meta, self.options, self._cache, is_level0=False
        )
        return Run(reader=reader, level=level)

    # ------------------------------------------------------------------
    # Point reads
    # ------------------------------------------------------------------
    def get(self, key: int) -> bytes | None:
        """Point lookup; returns None for absent or deleted keys."""
        self._check_open()
        self.stats.add(point_queries=1)
        self.tracker.record_point_query()
        encoded = self._encode_key(key)
        context = QueryContext(kind="point", low=int(key), high=int(key))
        before = self.stats.snapshot()
        sv = self._ref_super()
        try:
            for memtable in sv.memtables():
                buffered = memtable.get(encoded)
                if buffered is not None:
                    tag, value = buffered
                    context.memtable_hit = True
                    context.results = 1 if tag == ValueTag.PUT else 0
                    return value if tag == ValueTag.PUT else None

            runs = sv.version.runs_for_key(encoded)
            context.runs_considered = len(runs)
            for run in runs:
                verdict = self._probe_filter_point(run, encoded)
                if not verdict:
                    continue
                context.iterators_created += 1
                found = run.reader.get(encoded)
                truly_there = found is not None
                self._record_filter_outcome(
                    run, positive=True, truly=truly_there
                )
                self.tracker.record_filter_outcome(True, truly_there)
                if found is not None:
                    tag, value = found
                    context.results = 1 if tag == ValueTag.PUT else 0
                    return value if tag == ValueTag.PUT else None
            return None
        finally:
            self._finish_context(context, before)
            self._unref_super(sv)

    def _probe_filter_point(self, run: Run, encoded: bytes) -> bool:
        filt = self._filter_dictionary.get_filter(run.reader, self.stats)
        if filt is None:
            return True  # fence pointers only
        self.stats.add(filter_probes=1)
        with Stopwatch(self.stats, "filter_probe_ns"):
            verdict = filt.may_contain(self._decode_key(encoded))
        if not verdict:
            self.stats.add(filter_negatives=1)
            self.tracker.record_filter_outcome(False, False)
            self._note_filter_outcome(run, negatives=1)
        return verdict

    # ------------------------------------------------------------------
    # Range reads
    # ------------------------------------------------------------------
    def range_query(self, low: int, high: int) -> list[tuple[int, bytes]]:
        """Inclusive range scan; returns live ``(key, value)`` pairs."""
        return list(self.range_iter(low, high))

    def range_iter(self, low: int, high: int) -> Iterator[tuple[int, bytes]]:
        """Iterator form of :meth:`range_query` — genuinely streaming.

        Entries are yielded as the underlying merge advances, so the
        first result is available before the scan has read the rest of
        the range (long scans no longer buffer the full result list).
        The superversion pinned at call time stays pinned for the
        generator's whole lifetime and is released in a ``finally`` that
        runs on exhaustion, ``close()``, or garbage collection; filter
        true/false-positive outcomes and ``last_query`` are recorded when
        the generator terminates (partial consumption records what the
        scan actually observed).

        Validation is eager: a closed store or an inverted range raises
        here, at call time — not on the first ``next()`` — because this
        is a plain wrapper that returns the generator rather than a
        generator function itself.  Filter probing is eager too (the
        probes decide whether there is anything to stream at all).
        """
        self._check_open()
        if low > high:
            raise FilterQueryError(f"invalid range: low={low} > high={high}")
        self.stats.add(range_queries=1)
        self.tracker.record_range_query(high - low + 1)
        low_bytes = self._encode_key(low)
        high_bytes = self._encode_key(min(high, (1 << self.options.key_bits) - 1))
        context = QueryContext(kind="range", low=low, high=high)
        before = self.stats.snapshot()

        sv = self._ref_super()
        try:
            candidates = sv.version.runs_for_range(low_bytes, high_bytes)
            context.runs_considered = len(candidates)
            positive_runs: list[tuple[Run, bytes]] = []
            effectives = self._probe_filters_range(candidates, low, high)
            for run, effective in zip(candidates, effectives):
                if effective is not None:
                    seek_key = max(low_bytes, self._encode_key(effective[0]))
                    positive_runs.append((run, seek_key))

            live_memtables = [m for m in sv.memtables() if not m.is_empty]
            if not positive_runs and not live_memtables:
                # "If all filters answer negative, we delete the iterator
                # and return an empty result" — still a (small) residual cost.
                with Stopwatch(self.stats, "residual_seek_ns"):
                    pass
                self._finish_context(context, before)
                self._unref_super(sv)
                return iter(())
        except BaseException:
            self._unref_super(sv)
            raise
        return self._range_stream(
            sv, context, before, positive_runs, live_memtables,
            low_bytes, high_bytes,
        )

    def _range_stream(
        self,
        sv: _SuperVersion,
        context: QueryContext,
        before: PerfStats,
        positive_runs: list[tuple[Run, bytes]],
        live_memtables: list[MemTable],
        low_bytes: bytes,
        high_bytes: bytes,
    ) -> Iterator[tuple[int, bytes]]:
        """Generator half of :meth:`range_iter` (validated, sv pinned)."""
        contributed: dict[str, bool] = {
            run.name: False for run, _ in positive_runs
        }
        results = 0
        try:
            sources: list[tuple[int, Iterator]] = []
            priority = 0
            for memtable in live_memtables:
                sources.append((priority, memtable.entries_from(low_bytes)))
                priority += 1
            for offset, (run, seek_key) in enumerate(positive_runs):
                sources.append(
                    (
                        priority + offset,
                        self._tracking_iter(
                            run, seek_key, high_bytes, contributed
                        ),
                    )
                )
            context.iterators_created = len(sources)
            merged = live_entries(MergingIterator(sources))
            while True:
                # Charge only the merge-advance time to residual_seek_ns,
                # never the consumer's time between next() calls.
                started = time.perf_counter_ns()
                entry = next(merged, None)
                self.stats.add(
                    residual_seek_ns=time.perf_counter_ns() - started
                )
                if entry is None or entry[0] > high_bytes:
                    break
                results += 1
                yield self._decode_key(entry[0]), entry[1]
        finally:
            # Runs on exhaustion, close(), GC, or a consumer exception:
            # record what the scan observed, then release the pin.
            for run, _ in positive_runs:
                truly = contributed[run.name]
                self._record_filter_outcome(run, positive=True, truly=truly)
                self.tracker.record_filter_outcome(True, truly)
            context.results = results
            self._finish_context(context, before)
            self._unref_super(sv)

    def _finish_context(self, context: QueryContext, before: PerfStats) -> None:
        delta = self.stats.diff(before)
        context.filters_probed = delta.filter_probes
        context.filter_negatives = delta.filter_negatives
        context.blocks_read = delta.block_reads
        context.block_cache_hits = delta.block_cache_hits
        self.last_query = context

    def _tracking_iter(
        self,
        run: Run,
        seek_key: bytes,
        high_bytes: bytes,
        contributed: dict[str, bool],
    ) -> Iterator[tuple[bytes, int, bytes]]:
        """Two-level iterator wrapper marking runs that had in-range keys."""
        for key, tag, value in run.reader.iterate_from(seek_key):
            if key <= high_bytes:
                contributed[run.name] = True
            yield key, tag, value

    def _probe_filters_range(
        self, runs: list[Run], low: int, high: int
    ) -> list[tuple[int, int] | None]:
        """Probe every overlapping run's filter for ``[low, high]`` at once.

        All Rosetta-backed runs share one frontier sweep per level
        (:func:`~repro.lsm.filter_integration.batched_tightened_ranges`);
        runs without a filter block pass through as ``(low, high)``.
        Per-run verdict bookkeeping matches the old one-probe-per-run path.
        """
        if not runs:
            return []
        filters = [
            self._filter_dictionary.get_filter(run.reader, self.stats)
            for run in runs
        ]
        with Stopwatch(self.stats, "filter_probe_ns"):
            effectives, batch_sweeps = batched_tightened_ranges(
                filters, low, high
            )
        self.stats.add(filter_batch_probes=batch_sweeps)
        for run, filt, effective in zip(runs, filters, effectives):
            if filt is None:
                continue  # fence pointers already said "overlaps"
            self.stats.add(filter_probes=1)
            if effective is None:
                self.stats.add(filter_negatives=1)
                self.tracker.record_filter_outcome(False, False)
                self._note_filter_outcome(run, negatives=1)
        return effectives

    def _record_filter_outcome(self, run: Run, positive: bool, truly: bool) -> None:
        if positive:
            if truly:
                self.stats.add(filter_true_positives=1)
            else:
                self.stats.add(filter_false_positives=1)
                self._note_filter_outcome(run, false_positives=1)

    def _note_filter_outcome(
        self, run: Run, *, negatives: int = 0, false_positives: int = 0
    ) -> None:
        """Feed a run's rejectable-query outcome to the attack detector.

        No-op unless ``quarantine_filters`` is on, so the benign hot path
        pays one attribute read.  A run newly flagged here bumps
        ``filters_quarantined`` and, with background workers available,
        kicks maintenance so the prioritized rebuild starts immediately.
        """
        if not self.options.quarantine_filters:
            return
        newly_flagged = self._filter_dictionary.record_outcome(
            run.name, negatives=negatives, false_positives=false_positives
        )
        if newly_flagged:
            self.stats.add(filters_quarantined=1)
            if self._concurrent and self._background_error is None:
                self._schedule_maintenance()

    def multi_get(self, keys: Iterable[int]) -> dict[int, bytes | None]:
        """Point-look-up many keys in one batched pass.

        Equivalent to ``{k: db.get(k) for k in keys}`` — absent and deleted
        keys map to None — but resolved as a batch:

        * duplicate keys are deduplicated up front, so each distinct key
          runs the probe pipeline (and is counted in
          ``stats.point_queries``) exactly once;
        * the memtables (active, then sealed, newest first) answer the
          whole batch in one pass;
        * surviving keys are grouped per run, newest to oldest, and every
          run's filter answers its whole group with **one**
          :meth:`~repro.filters.base.KeyFilter.may_contain_batch` probe
          (each counted in ``PerfStats.filter_batch_probes``, like the
          range path's frontier sweeps);
        * ``last_query`` holds one aggregated ``kind="multi_point"``
          :class:`~repro.lsm.perf_context.QueryContext` for the batch
          instead of the final key's.

        Run recency is preserved: a key resolved by a newer run (value or
        tombstone) is never probed against older runs, so verdicts, values,
        and per-run filter true/false-positive counters match the per-key
        :meth:`get` loop exactly.
        """
        self._check_open()
        requested = 0
        distinct: list[int] = []
        seen: set[int] = set()
        for key in keys:
            requested += 1
            key = int(key)
            if key not in seen:
                seen.add(key)
                distinct.append(key)
        if not distinct:
            return {}
        encoded = [self._encode_key(key) for key in distinct]
        self.stats.add(point_queries=len(distinct), multi_point_queries=1)
        for _ in distinct:
            self.tracker.record_point_query()
        context = QueryContext(
            kind="multi_point",
            low=min(distinct),
            high=max(distinct),
            keys_requested=requested,
            distinct_keys=len(distinct),
        )
        before = self.stats.snapshot()
        values: dict[int, bytes | None] = {}
        sv = self._ref_super()
        try:
            # Memtable pass: buffered entries (puts and tombstones) resolve
            # immediately and never reach the filters.
            memtables = list(sv.memtables())
            pending: list[tuple[int, bytes]] = []
            for key, enc in zip(distinct, encoded):
                buffered = None
                for memtable in memtables:
                    buffered = memtable.get(enc)
                    if buffered is not None:
                        break
                if buffered is None:
                    pending.append((key, enc))
                    continue
                tag, value = buffered
                context.memtable_hits += 1
                values[key] = value if tag == ValueTag.PUT else None

            # Run passes, newest to oldest: one bulk filter probe per run
            # for the still-unresolved keys inside its fence span.
            for run in sv.version.all_runs_newest_first():
                if not pending:
                    break
                group = [kv for kv in pending if run.overlaps(kv[1], kv[1])]
                if not group:
                    continue
                context.runs_considered += 1
                verdicts = self._probe_filter_point_batch(
                    run, [key for key, _ in group]
                )
                resolved: set[int] = set()
                for (key, enc), verdict in zip(group, verdicts):
                    if not verdict:
                        continue
                    context.iterators_created += 1
                    found = run.reader.get(enc)
                    truly_there = found is not None
                    self._record_filter_outcome(
                        run, positive=True, truly=truly_there
                    )
                    self.tracker.record_filter_outcome(True, truly_there)
                    if found is not None:
                        tag, value = found
                        values[key] = value if tag == ValueTag.PUT else None
                        resolved.add(key)
                if resolved:
                    pending = [kv for kv in pending if kv[0] not in resolved]

            for key, _ in pending:
                values[key] = None
            results = {key: values[key] for key in distinct}
            context.results = sum(1 for v in results.values() if v is not None)
            return results
        finally:
            self._finish_context(context, before)
            self._unref_super(sv)

    def _probe_filter_point_batch(
        self, run: Run, keys: list[int]
    ) -> Sequence[bool]:
        """Bulk sibling of :meth:`_probe_filter_point` for one run's group."""
        filt = self._filter_dictionary.get_filter(run.reader, self.stats)
        with Stopwatch(self.stats, "filter_probe_ns"):
            verdicts, batch_sweeps = batched_point_verdicts(filt, keys)
        self.stats.add(filter_batch_probes=batch_sweeps)
        if filt is not None:
            negatives = len(keys) - sum(1 for v in verdicts if v)
            self.stats.add(filter_probes=len(keys), filter_negatives=negatives)
            for _ in range(negatives):
                self.tracker.record_filter_outcome(False, False)
            if negatives:
                self._note_filter_outcome(run, negatives=negatives)
        return verdicts

    def iterator(
        self, start: int | None = None, end: int | None = None
    ) -> Iterator[tuple[int, bytes]]:
        """Ordered scan over live entries, optionally bounded (inclusive).

        This is the full-scan path — the RocksDB-iterator analogue.  It
        deliberately bypasses the range filters: a scan reads the data
        anyway, so there is nothing for a filter to prune (the paper's
        filters matter for *selective* range queries, served by
        :meth:`range_query`).  The superversion pinned at creation stays
        pinned until the iterator is exhausted or closed, so the scan is
        stable even while flushes and compactions land mid-iteration.
        """
        self._check_open()
        start_bytes = self._encode_key(start if start is not None else 0)
        end_bytes = (
            self._encode_key(end)
            if end is not None
            else b"\xff" * self.options.key_width_bytes
        )
        sv = self._ref_super()
        try:
            sources: list[tuple[int, Iterator]] = []
            priority = 0
            for memtable in sv.memtables():
                if not memtable.is_empty:
                    sources.append(
                        (priority, memtable.entries_from(start_bytes))
                    )
                    priority += 1
            for offset, run in enumerate(
                sv.version.runs_for_range(start_bytes, end_bytes)
            ):
                sources.append(
                    (priority + offset, run.reader.iterate_from(start_bytes))
                )
            for key, value in live_entries(MergingIterator(sources)):
                if key > end_bytes:
                    return
                yield self._decode_key(key), value
        finally:
            self._unref_super(sv)

    # ------------------------------------------------------------------
    # Adaptive tuning (§2.4)
    # ------------------------------------------------------------------
    def retune_filters(
        self,
        tuner: AutoTuner | None = None,
        bits_per_key: float | None = None,
    ) -> TuningDecision:
        """Re-derive the Rosetta recipe from observed workload statistics.

        Future flushes and compactions build filters with the recommended
        strategy/max-range; existing runs keep their filters until they are
        next compacted, matching the paper's compaction-time reconciliation.
        """
        self._check_open()
        tuner = tuner if tuner is not None else AutoTuner()
        decision = tuner.recommend(self.tracker)
        if bits_per_key is None:
            current = self._current_filter_factory
            bits_per_key = (
                current.bits_per_key
                if current is not None and current.bits_per_key is not None
                else 22.0
            )
        kwargs = decision.build_kwargs()
        key_bits = self.options.key_bits

        def build(
            keys,
            salt=0,
            bits_per_key=None,
            _kwargs=kwargs,
            _default_bpk=bits_per_key,
            _kb=key_bits,
        ) -> KeyFilter:
            filt = RosettaFilter(
                key_bits=_kb,
                bits_per_key=(
                    bits_per_key if bits_per_key is not None else _default_bpk
                ),
                salt=salt,
                **_kwargs,
            )
            filt.populate(keys)
            return filt

        self._current_filter_factory = FilterFactory(
            name=f"rosetta-tuned[{decision.strategy}]",
            builder=build,
            bits_per_key=bits_per_key,
        )
        return decision

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def approximate_size(self, low: int, high: int) -> int:
        """Estimated on-disk bytes covering ``[low, high]`` (no I/O).

        The ``GetApproximateSizes`` analogue: sums the fence-pointer block
        sizes of every overlapping run.  Block-granular and level-additive
        (overlapping runs each contribute), so it upper-bounds the live
        data in the range.
        """
        self._check_open()
        if low > high:
            raise FilterQueryError(f"invalid range: low={low} > high={high}")
        low_bytes = self._encode_key(low)
        high_bytes = self._encode_key(
            min(high, (1 << self.options.key_bits) - 1)
        )
        sv = self._ref_super()
        try:
            return sum(
                run.reader.approximate_bytes_in_range(low_bytes, high_bytes)
                for run in sv.version.runs_for_range(low_bytes, high_bytes)
            )
        finally:
            self._unref_super(sv)

    def verify(self):
        """Walk every SST and validate checksums, ordering, and filters.

        The ``VerifyChecksum`` analogue; returns a
        :class:`~repro.lsm.verify.VerificationReport` (never raises on
        corruption — inspect ``report.ok`` / ``report.errors``).
        """
        from repro.lsm.verify import verify_version

        self._check_open()
        sv = self._ref_super()
        try:
            return verify_version(sv.version)
        finally:
            self._unref_super(sv)

    def describe(self) -> str:
        """Tree shape summary."""
        sv = self._super
        memtable_line = (
            f"memtable: {len(sv.active)} entries, "
            f"{sv.active.approximate_bytes} bytes"
        )
        if sv.immutables:
            sealed_entries = sum(len(i.memtable) for i in sv.immutables)
            memtable_line += (
                f"\nsealed: {len(sv.immutables)} memtables, "
                f"{sealed_entries} entries"
            )
        return memtable_line + "\n" + sv.version.describe()

    def num_live_files(self) -> int:
        """Number of SST files currently in the tree."""
        return self._super.version.total_files()

    @property
    def version(self) -> Version:
        """The current level/run metadata (read-mostly snapshot)."""
        return self._super.version

    @property
    def _version(self) -> Version:
        # Backward-compatible alias (tests and tools peeked at the old
        # attribute); the authoritative pointer lives in the superversion.
        return self._super.version

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _write_manifest(self, version: Version) -> None:
        manifest = {
            "level0": [run.name for run in version.level0],
            "levels": {
                str(level): [[run.name, run.group_id] for run in runs]
                for level, runs in version.levels.items()
            },
            # Workload statistics survive restarts so the §2.4 tuner can
            # keep learning across sessions.
            "tracker": self.tracker.to_dict(),
        }
        # Atomic replacement: a crash mid-write leaves the previous
        # manifest intact, never a torn half-JSON.
        self._env.write_file_atomic(
            _MANIFEST,
            json.dumps(manifest).encode(),
            fsync=self.options.manifest_fsync,
        )

    def _recover(self) -> None:
        version = Version()
        referenced: set[str] = set()
        max_file_number = 0
        max_group_id = 0
        for file_name in self._env.list_files():
            match = _SST_NAME.match(file_name)
            if match:
                max_file_number = max(max_file_number, int(match.group(2)))
        if self._env.exists(_MANIFEST):
            manifest = json.loads(self._env.read_file(_MANIFEST))
            if "tracker" in manifest:
                self.tracker = WorkloadTracker.from_dict(manifest["tracker"])
            for name in manifest.get("level0", []):
                referenced.add(name)
                meta = self._read_meta(name)
                reader = SSTReader(
                    self._env, meta, self.options, self._cache, is_level0=True
                )
                version.level0.append(Run(reader=reader, level=0))
            for level_str, entries in manifest.get("levels", {}).items():
                level = int(level_str)
                runs = []
                for entry in entries:
                    name, group_id = entry
                    referenced.add(name)
                    max_group_id = max(max_group_id, int(group_id or 0))
                    meta = self._read_meta(name)
                    reader = SSTReader(
                        self._env, meta, self.options, self._cache, is_level0=False
                    )
                    runs.append(Run(reader=reader, level=level, group_id=group_id))
                if runs:
                    # Preserve manifest (recency) order verbatim; tiered
                    # levels legitimately hold overlapping groups.
                    version.levels[level] = runs
        # Recovery hygiene.  (1) Never reuse a live file name: a fresh
        # counter colliding with a recovered SST would let a later
        # compaction overwrite or delete live data.  (2) Purge obsolete
        # files — SSTs a crash orphaned before/after their manifest entry,
        # and torn ``.tmp`` halves of interrupted atomic replacements.
        self._compactor.advance_file_number(max_file_number)
        self._compactor.advance_group_id(max_group_id)
        for file_name in self._env.list_files():
            if file_name.endswith(".tmp") or (
                _SST_NAME.match(file_name) and file_name not in referenced
            ):
                self._env.delete_file(file_name)

        # WAL replay.  With rotation there may be several logs: every log
        # but the newest belonged to a sealed-but-unflushed memtable, so
        # each is rebuilt as an immutable bundle (flushed by the first
        # maintenance pass); the newest becomes the active memtable.
        active = MemTable()
        immutables: list[_Immutable] = []
        wal_seq = 0
        if self.options.use_wal:
            wal_seqs = sorted(
                seq
                for seq in (
                    parse_wal_seq(name) for name in self._env.list_files()
                )
                if seq is not None
            )
            if wal_seqs:
                for seq in wal_seqs[:-1]:
                    memtable = MemTable()
                    self._replay_wal_into(wal_file_name(seq), memtable)
                    if memtable.is_empty:
                        self._env.delete_file(wal_file_name(seq))
                    else:
                        immutables.append(
                            _Immutable(memtable, wal_file_name(seq))
                        )
                wal_seq = wal_seqs[-1]
                self._replay_wal_into(wal_file_name(wal_seq), active)
            self._active_wal = WriteAheadLog(
                self._env, wal_file_name(wal_seq), sync=self.options.wal_sync
            )
        self._wal_seq = wal_seq

        sv = _SuperVersion(active, tuple(reversed(immutables)), version)
        sv.refs = 1
        self._super = sv
        self._live_svs = [sv]

    def _replay_wal_into(self, name: str, memtable: MemTable) -> None:
        wal = WriteAheadLog(self._env, name, sync=self.options.wal_sync)
        for op, key, value in wal.replay():
            if op == BATCH_OP:
                for tag, bkey, bvalue in WriteBatch.decode(value):
                    if tag == ValueTag.PUT:
                        memtable.put(bkey, bvalue)
                    else:
                        memtable.delete(bkey)
            elif op == ValueTag.PUT:
                memtable.put(key, value)
            else:
                memtable.delete(key)

    def _read_meta(self, name: str) -> SSTMeta:
        """Reconstruct SSTMeta by reading the file's meta block."""
        import struct

        file_size = self._env.file_size(name)
        footer = self._env.read_block(name, file_size - 52, 52)
        fields = struct.Struct("<QQQQQQI").unpack(footer)
        meta_payload = self._env.read_block(name, fields[4], fields[5])
        (num_entries,) = struct.unpack_from("<Q", meta_payload, 0)
        (min_len,) = struct.unpack_from("<I", meta_payload, 8)
        min_key = meta_payload[12 : 12 + min_len]
        (max_len,) = struct.unpack_from("<I", meta_payload, 12 + min_len)
        max_key = meta_payload[16 + min_len : 16 + min_len + max_len]
        return SSTMeta(
            name=name,
            num_entries=num_entries,
            min_key=min_key,
            max_key=max_key,
            file_size=file_size,
        )

    def close(self) -> None:
        """Flush if possible, persist the manifest, release file handles.

        Joins background workers before returning.  Safe in degraded
        read-only mode: the failing flush is skipped (the WAL still holds
        the buffered writes), the manifest is persisted best-effort, and
        nothing raises — so ``with DB(...)`` never throws from ``__exit__``
        because a background write failed earlier.  Only a simulated power
        cut propagates.
        """
        if self._closed:
            return
        try:
            if self._background_error is None:
                with self._write_lock:
                    sealed = self._seal_active()
                if sealed or self._super.immutables:
                    self._schedule_maintenance()
                    self._drain_maintenance()
            try:
                with self._mutex:
                    self._write_manifest(self._super.version)
            except PowerCutError:
                raise
            except (OSError, ReproError):
                pass  # best-effort; the last durable manifest still stands
        finally:
            self._closed = True
            self._env.yield_hook = None
            self._scheduler.close()
            self._env.close()

    def kill(self) -> None:
        """Abandon the store without any further I/O (simulated power loss).

        The torture harness's teardown after an injected power cut: no
        flush, no manifest write — background jobs are unwound, worker
        threads joined, and file handles dropped.  Whatever the crash left
        on disk is exactly what recovery will see.
        """
        if self._closed:
            return
        self._closed = True
        self._env.yield_hook = None
        self._scheduler.close(force=True)
        try:
            self._env.close()
        except (OSError, ReproError):
            pass

    def _check_open(self) -> None:
        if self._closed:
            raise ClosedStoreError("operation on a closed DB")

    def __enter__(self) -> "DB":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
